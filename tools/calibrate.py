"""Calibration report: simulated vs paper Table 3.

Run:  python tools/calibrate.py [--quick]

Prints, for every (machine, op):
  * startup latency at several machine sizes vs the paper's formula
  * per-byte transmission cost at p=32 (from two long messages) vs paper
"""

import argparse
import sys

from repro.core import (
    MeasurementConfig,
    measure_collective,
    measure_startup_latency,
    paper_expression,
)
from repro.core.metrics import PAPER_OPS

CFG = MeasurementConfig(iterations=3, warmup_iterations=1, runs=1)

MACHINES = ("sp2", "t3d", "paragon")


def startup_report(sizes):
    print("=== startup latency T0(p) [us] (sim vs paper) ===")
    for op in PAPER_OPS:
        for machine in MACHINES:
            expr = paper_expression(machine, op)
            cells = []
            for p in sizes:
                sim = measure_startup_latency(machine, op, p, CFG).time_us
                paper = expr.startup_latency_us(p)
                cells.append(f"p={p}: {sim:8.1f} vs {paper:8.1f}")
            print(f"{op:10s} {machine:8s} " + "  ".join(cells))
        print()


def per_byte_report(p, m1=16384, m2=65536):
    print(f"=== per-byte cost at p={p} [us/B] (sim vs paper) ===")
    for op in PAPER_OPS:
        if op == "barrier":
            continue
        for machine in MACHINES:
            expr = paper_expression(machine, op)
            t1 = measure_collective(machine, op, m1, p, CFG).time_us
            t2 = measure_collective(machine, op, m2, p, CFG).time_us
            sim = (t2 - t1) / (m2 - m1)
            paper = expr.per_byte.evaluate(p)
            ratio = sim / paper if paper > 0 else float("nan")
            print(f"{op:10s} {machine:8s} sim={sim:9.5f} "
                  f"paper={paper:9.5f} ratio={ratio:6.2f}")
        print()


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--ops", default=None)
    args = parser.parse_args()
    global PAPER_OPS
    if args.ops:
        PAPER_OPS = tuple(args.ops.split(","))
    sizes = (4, 16, 64) if not args.quick else (4, 16)
    startup_report(sizes)
    per_byte_report(16 if args.quick else 32)


if __name__ == "__main__":
    sys.exit(main())
