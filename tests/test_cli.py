"""Tests for the repro-bench command-line interface."""

import pytest

from repro.cli import main


def test_measure_command(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_FAST", "1")
    code = main(["measure", "t3d", "barrier", "--bytes", "0",
                 "--nodes", "8", "--iterations", "2", "--runs", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "t3d barrier" in out
    assert "per-process min/mean/max" in out


def test_measure_broadcast_reports_units(capsys):
    code = main(["measure", "sp2", "broadcast", "--bytes", "1024",
                 "--nodes", "4", "--iterations", "2", "--runs", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "us" in out or "ms" in out


def test_figure_command_fast(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_FAST", "1")
    code = main(["figure", "4"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Figure 4" in out
    assert "broadcast/t3d" in out


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["figure", "9"])


def test_unknown_machine_rejected():
    with pytest.raises(SystemExit):
        main(["measure", "cm5", "broadcast"])


def test_sensitivity_command(capsys):
    code = main(["sensitivity", "t3d", "scatter", "--bytes", "65536",
                 "--nodes", "64", "--top", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "sensitivity of scatter" in out
    assert "dma.us_per_byte" in out


def test_app_command(capsys):
    code = main(["app", "stap", "t3d", "--nodes", "4"])
    out = capsys.readouterr().out
    assert code == 0
    assert "STAP pipeline on t3d, 4 nodes" in out
    assert "corner-turn" in out


def test_app_unknown_rejected():
    with pytest.raises(SystemExit):
        main(["app", "linpack", "t3d"])


def test_trace_command_writes_valid_chrome_json(capsys, tmp_path):
    import json
    out = tmp_path / "trace.json"
    csv_path = tmp_path / "spans.csv"
    code = main(["trace", "sp2", "broadcast", "--bytes", "4096",
                 "--nodes", "16", "--out", str(out),
                 "--csv", str(csv_path)])
    text = capsys.readouterr().out
    assert code == 0
    assert "broadcast on sp2" in text
    assert "spans:" in text
    doc = json.loads(out.read_text())
    categories = {e.get("cat") for e in doc["traceEvents"]}
    assert {"collective", "phase", "message", "link"} <= categories
    assert csv_path.read_text().startswith("id,")


def test_trace_command_max_spans(capsys):
    code = main(["trace", "t3d", "broadcast", "--bytes", "1024",
                 "--nodes", "8", "--max-spans", "5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "spans: 5" in out
    assert "dropped:" in out


def test_profile_command_reports_utilization_and_engine(capsys):
    code = main(["profile", "sp2", "broadcast", "--bytes", "4096",
                 "--nodes", "16", "--top", "4"])
    out = capsys.readouterr().out
    assert code == 0
    assert "link utilization" in out
    assert "engine profile:" in out
    assert "metrics:" in out
    assert "mpi.messages_sent" in out


def test_fast_flag_sets_env(monkeypatch, capsys):
    monkeypatch.delenv("REPRO_BENCH_FAST", raising=False)
    import os
    main(["--fast", "measure", "t3d", "barrier", "--bytes", "0",
          "--nodes", "4", "--iterations", "1", "--runs", "1"])
    assert os.environ.get("REPRO_BENCH_FAST") == "1"
