"""Tests for the repro-bench command-line interface."""

import pytest

from repro.cli import main


def test_measure_command(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_FAST", "1")
    code = main(["measure", "t3d", "barrier", "--bytes", "0",
                 "--nodes", "8", "--iterations", "2", "--runs", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "t3d barrier" in out
    assert "per-process min/mean/max" in out


def test_measure_broadcast_reports_units(capsys):
    code = main(["measure", "sp2", "broadcast", "--bytes", "1024",
                 "--nodes", "4", "--iterations", "2", "--runs", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "us" in out or "ms" in out


def test_figure_command_fast(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_FAST", "1")
    code = main(["figure", "4"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Figure 4" in out
    assert "broadcast/t3d" in out


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["figure", "9"])


def test_unknown_machine_rejected():
    with pytest.raises(SystemExit):
        main(["measure", "cm5", "broadcast"])


def test_sensitivity_command(capsys):
    code = main(["sensitivity", "t3d", "scatter", "--bytes", "65536",
                 "--nodes", "64", "--top", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "sensitivity of scatter" in out
    assert "dma.us_per_byte" in out


def test_app_command(capsys):
    code = main(["app", "stap", "t3d", "--nodes", "4"])
    out = capsys.readouterr().out
    assert code == 0
    assert "STAP pipeline on t3d, 4 nodes" in out
    assert "corner-turn" in out


def test_app_unknown_rejected():
    with pytest.raises(SystemExit):
        main(["app", "linpack", "t3d"])


def test_trace_command_writes_valid_chrome_json(capsys, tmp_path):
    import json
    out = tmp_path / "trace.json"
    csv_path = tmp_path / "spans.csv"
    code = main(["trace", "sp2", "broadcast", "--bytes", "4096",
                 "--nodes", "16", "--out", str(out),
                 "--csv", str(csv_path)])
    text = capsys.readouterr().out
    assert code == 0
    assert "broadcast on sp2" in text
    assert "spans:" in text
    doc = json.loads(out.read_text())
    categories = {e.get("cat") for e in doc["traceEvents"]}
    assert {"collective", "phase", "message", "link"} <= categories
    assert csv_path.read_text().startswith("id,")


def test_trace_command_max_spans(capsys):
    code = main(["trace", "t3d", "broadcast", "--bytes", "1024",
                 "--nodes", "8", "--max-spans", "5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "spans: 5" in out
    assert "dropped:" in out


def test_profile_command_reports_utilization_and_engine(capsys):
    code = main(["profile", "sp2", "broadcast", "--bytes", "4096",
                 "--nodes", "16", "--top", "4"])
    out = capsys.readouterr().out
    assert code == 0
    assert "link utilization" in out
    assert "engine profile:" in out
    assert "metrics:" in out
    assert "mpi.messages_sent" in out


def test_fast_flag_sets_env(monkeypatch, capsys):
    monkeypatch.delenv("REPRO_BENCH_FAST", raising=False)
    import os
    main(["--fast", "measure", "t3d", "barrier", "--bytes", "0",
          "--nodes", "4", "--iterations", "1", "--runs", "1"])
    assert os.environ.get("REPRO_BENCH_FAST") == "1"


def test_sweep_command_cold_then_warm(capsys, tmp_path):
    out = tmp_path / "BENCH_sweep.json"
    args = ["sweep", "--grid", "smoke", "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"), "--out", str(out),
            "--csv", str(tmp_path / "sweep.csv"),
            "--iterations", "1", "--runs", "1"]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert "sweep smoke (mode=sim, workers=2)" in cold
    assert "0 cache hits" in cold
    assert out.exists()
    assert (tmp_path / "sweep.csv").read_text().startswith("grid,")

    assert main(args) == 0
    warm = capsys.readouterr().out
    assert "0 evaluated" in warm
    assert "20 cache hits" in warm


def test_sweep_command_unknown_grid(capsys):
    assert main(["sweep", "--grid", "fig9", "--no-cache"]) == 2
    assert "known presets" in capsys.readouterr().err


def test_sweep_machine_and_op_filters(capsys, tmp_path):
    import json
    out = tmp_path / "filtered.json"
    assert main(["sweep", "--grid", "smoke", "--machines", "t3d",
                 "--ops", "broadcast", "--no-cache",
                 "--iterations", "1", "--runs", "1",
                 "--out", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert {c["machine"] for c in payload["cells"]} == {"t3d"}
    assert {c["op"] for c in payload["cells"]} == {"broadcast"}


def test_sweep_rejects_filters_that_empty_the_grid(capsys):
    assert main(["sweep", "--grid", "smoke", "--machines", "paragon",
                 "--no-cache"]) == 2
    assert "not in grid" in capsys.readouterr().err
    assert main(["sweep", "--grid", "smoke", "--ops", "alltoall",
                 "--no-cache"]) == 2
    assert "not in grid" in capsys.readouterr().err


def test_sweep_rejects_invalid_workers_and_timeout(capsys):
    with pytest.raises(SystemExit):
        main(["sweep", "--grid", "smoke", "--workers", "0"])
    with pytest.raises(SystemExit):
        main(["sweep", "--grid", "smoke", "--cell-timeout", "0"])


def test_sweep_with_fault_preset_changes_fingerprints(capsys,
                                                      tmp_path):
    import json
    clean = tmp_path / "clean.json"
    faulty = tmp_path / "faulty.json"
    base = ["sweep", "--grid", "smoke", "--machines", "t3d",
            "--ops", "broadcast", "--no-cache",
            "--iterations", "1", "--runs", "1"]
    assert main(base + ["--out", str(clean)]) == 0
    assert main(base + ["--faults", "flaky-link",
                        "--out", str(faulty)]) == 0
    clean_doc = json.loads(clean.read_text())
    faulty_doc = json.loads(faulty.read_text())
    assert clean_doc["config"]["faults"] is None
    assert faulty_doc["config"]["faults"]["name"] == "flaky-link"
    assert {c["fingerprint"] for c in clean_doc["cells"]}.isdisjoint(
        c["fingerprint"] for c in faulty_doc["cells"])


def test_sweep_unknown_fault_preset(capsys):
    assert main(["sweep", "--grid", "smoke", "--faults", "gremlins",
                 "--no-cache"]) == 2
    assert "known presets" in capsys.readouterr().err


def test_chaos_command_reports_counters(capsys):
    code = main(["chaos", "t3d", "broadcast", "--bytes", "65536",
                 "--nodes", "16"])
    out = capsys.readouterr().out
    assert code == 0
    assert "plan 'single-link-outage'" in out
    assert "clean:" in out and "faulty:" in out
    assert "reroutes=" in out


def test_chaos_command_unknown_preset(capsys):
    assert main(["chaos", "t3d", "broadcast", "--faults",
                 "gremlins"]) == 2
    assert "known presets" in capsys.readouterr().err


def test_diff_command_clean_and_dirty(capsys, tmp_path):
    import json
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    base_args = ["sweep", "--grid", "smoke", "--mode", "model",
                 "--no-cache"]
    assert main(base_args + ["--out", str(first)]) == 0
    assert main(base_args + ["--out", str(second)]) == 0
    capsys.readouterr()

    assert main(["diff", str(first), str(second)]) == 0
    assert "identical" in capsys.readouterr().out

    payload = json.loads(second.read_text())
    payload["cells"][0]["result"]["time_us"] *= 2.0
    second.write_text(json.dumps(payload))
    assert main(["diff", str(first), str(second)]) == 1
    dirty = capsys.readouterr().out
    assert "1 changed" in dirty
    assert main(["diff", str(first), str(second), "--rtol", "2"]) == 0


def test_diff_against_checked_in_baseline(capsys, tmp_path):
    from pathlib import Path
    baseline = Path(__file__).parent / "golden" / \
        "BENCH_sweep_baseline.json"
    out = tmp_path / "BENCH_sweep.json"
    assert main(["sweep", "--grid", "smoke", "--mode", "model",
                 "--no-cache", "--out", str(out)]) == 0
    capsys.readouterr()
    assert main(["diff", str(baseline), str(out),
                 "--rtol", "1e-9"]) == 0
    assert "identical" in capsys.readouterr().out


def test_critpath_command_clean(capsys, tmp_path):
    csv_path = tmp_path / "chain.csv"
    code = main(["critpath", "sp2", "broadcast", "--bytes", "4096",
                 "--nodes", "16", "--csv", str(csv_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "critical path: broadcast" in out
    assert "fault-recovery 0.0 (0.0%)" in out
    assert "per-rank slack" in out
    assert csv_path.read_text().splitlines()[0].startswith("step,")


def test_critpath_command_faulty_attributes_recovery(capsys):
    code = main(["critpath", "t3d", "broadcast", "--bytes", "1048576",
                 "--nodes", "64", "--faults", "midflight-outage"])
    out = capsys.readouterr().out
    assert code == 0
    assert "fault-recovery" in out
    # The recovery component must be nonzero in the totals line.
    totals = next(line for line in out.splitlines()
                  if line.startswith("total"))
    assert "fault-recovery 0.0" not in totals


def test_critpath_command_unknown_preset(capsys):
    assert main(["critpath", "t3d", "broadcast", "--faults",
                 "gremlins"]) == 2
    assert "known presets" in capsys.readouterr().err


def test_audit_command_baseline_passes(capsys, tmp_path):
    from pathlib import Path
    baseline = Path(__file__).parent / "golden" / \
        "BENCH_sweep_baseline.json"
    out_path = tmp_path / "drift.json"
    code = main(["audit", str(baseline), "--out", str(out_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "-> PASS" in out
    assert out_path.exists()

    second = tmp_path / "drift2.json"
    assert main(["audit", str(baseline), "--out", str(second)]) == 0
    capsys.readouterr()
    assert out_path.read_bytes() == second.read_bytes()


def test_audit_command_exits_nonzero_on_breach(capsys, tmp_path):
    import json
    from pathlib import Path
    baseline = Path(__file__).parent / "golden" / \
        "BENCH_sweep_baseline.json"
    payload = json.loads(baseline.read_text())
    payload["cells"][0]["result"]["time_us"] *= 3.0
    doctored = tmp_path / "doctored.json"
    doctored.write_text(json.dumps(payload))
    code = main(["audit", str(doctored)])
    out = capsys.readouterr().out
    assert code == 1
    assert "BREACH" in out and "-> FAIL" in out


def test_audit_command_bad_artifact_path(capsys, tmp_path):
    assert main(["audit", str(tmp_path / "missing.json")]) == 2
    assert capsys.readouterr().err


def test_chaos_command_out_dumps_metrics(capsys, tmp_path):
    import json
    out_path = tmp_path / "chaos.json"
    code = main(["chaos", "t3d", "broadcast", "--bytes", "65536",
                 "--nodes", "16", "--out", str(out_path)])
    assert code == 0
    assert f"wrote {out_path}" in capsys.readouterr().out
    document = json.loads(out_path.read_text())
    assert document["plan"] == "single-link-outage"
    assert document["counters"]["reroutes"] > 0
    # The full registry snapshot rides along for offline analysis.
    assert "fabric.transfers" in document["metrics"]
    assert document["metrics"]["fabric.transfers"]["type"] == "counter"


def test_sweep_breakdown_attaches_components(capsys, tmp_path):
    import json
    out_path = tmp_path / "sweep.json"
    code = main(["sweep", "--grid", "smoke", "--no-cache",
                 "--breakdown", "--machines", "sp2",
                 "--ops", "broadcast", "--out", str(out_path)])
    assert code == 0
    capsys.readouterr()
    document = json.loads(out_path.read_text())
    assert document["breakdown"] is True
    for cell in document["cells"]:
        breakdown = cell["result"]["breakdown"]
        parts = breakdown["components"]
        assert set(parts) == {"software", "wire", "contention",
                              "fault_recovery"}
        assert sum(parts.values()) == pytest.approx(
            breakdown["total_us"], abs=1e-3)


def test_sweep_breakdown_requires_sim_mode(capsys):
    assert main(["sweep", "--grid", "smoke", "--mode", "model",
                 "--no-cache", "--breakdown"]) == 2
    assert "--breakdown requires" in capsys.readouterr().err


def test_profile_command_csv_folded_and_work(capsys, tmp_path):
    csv_path = tmp_path / "sites.csv"
    folded_path = tmp_path / "engine.folded"
    code = main(["profile", "t3d", "broadcast", "--bytes", "1024",
                 "--nodes", "8", "--work",
                 "--csv", str(csv_path), "--folded", str(folded_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "work counters:" in out
    assert "messages_sent" in out
    assert csv_path.read_text().startswith("site,calls,")
    folded = folded_path.read_text().strip().splitlines()
    assert folded
    assert all(line.rpartition(" ")[2].isdigit() for line in folded)


def test_perf_command_emits_and_checks_baseline(capsys, tmp_path):
    out = tmp_path / "BENCH_engine.json"
    code = main(["perf", "--suite", "smoke", "--out", str(out)])
    stdout = capsys.readouterr().out
    assert code == 0
    assert "engine perf suite 'smoke'" in stdout
    assert "micro/engine-timeouts" in stdout
    assert out.exists()

    assert main(["perf", "--suite", "smoke",
                 "--check", str(out)]) == 0
    checked = capsys.readouterr().out
    assert "identical to baseline" in checked
    assert "perf check: PASS" in checked


def test_perf_command_check_fails_on_counter_change(capsys, tmp_path):
    import json
    out = tmp_path / "BENCH_engine.json"
    assert main(["perf", "--suite", "smoke", "--out", str(out)]) == 0
    payload = json.loads(out.read_text())
    payload["work"]["micro/engine-timeouts"]["counters"][
        "events_fired"] += 1
    out.write_text(json.dumps(payload))
    capsys.readouterr()
    assert main(["perf", "--suite", "smoke",
                 "--check", str(out)]) == 1
    checked = capsys.readouterr().out
    assert "work-counter mismatches" in checked
    assert "perf check: FAIL" in checked


def test_perf_command_check_rejects_foreign_artifact(capsys, tmp_path):
    bogus = tmp_path / "bogus.json"
    bogus.write_text('{"schema": "other/1"}')
    assert main(["perf", "--suite", "smoke",
                 "--check", str(bogus)]) == 2
    assert "not an engine-perf artifact" in capsys.readouterr().err


def test_perf_command_flame_writes_folded_stacks(capsys, tmp_path):
    folded = tmp_path / "engine.folded"
    code = main(["perf", "--suite", "smoke", "--flame", str(folded),
                 "--top", "5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "engine profile:" in out
    lines = folded.read_text().strip().splitlines()
    assert lines
    assert any(";" in line for line in lines)  # nested stacks present


def test_tune_command_writes_byte_stable_artifact(capsys, tmp_path):
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    args = ["tune", "--machines", "sp2", "--grid", "smoke",
            "--no-cache"]
    assert main(args + ["--out", str(first)]) == 0
    out = capsys.readouterr().out
    assert "flips" in out
    assert str(first) in out
    assert main(args + ["--out", str(second)]) == 0
    assert first.read_bytes() == second.read_bytes()


def test_tune_command_artifact_loads_as_decision_table(capsys,
                                                       tmp_path):
    from repro.tuner import load_decision_table

    out = tmp_path / "BENCH_tuning.json"
    assert main(["tune", "--machines", "t3d", "--grid", "smoke",
                 "--no-cache", "--out", str(out)]) == 0
    table = load_decision_table(out)
    assert table.entries
    table.validate()


def test_tune_command_rejects_unknown_grid_and_machine(capsys):
    assert main(["tune", "--grid", "galaxy", "--no-cache"]) == 2
    assert "known grids" in capsys.readouterr().err
    assert main(["tune", "--machines", "cm5", "--no-cache"]) == 2
    assert "cm5" in capsys.readouterr().err


def test_tune_command_rejects_unknown_op(capsys):
    assert main(["tune", "--machines", "sp2", "--grid", "smoke",
                 "--ops", "teleport", "--no-cache"]) == 2
    assert "teleport" in capsys.readouterr().err


def test_sweep_with_decision_table_flips_cells(capsys, tmp_path):
    table = tmp_path / "BENCH_tuning.json"
    assert main(["tune", "--machines", "sp2", "--grid", "smoke",
                 "--no-cache", "--out", str(table)]) == 0
    capsys.readouterr()
    plain_out = tmp_path / "plain.json"
    tuned_out = tmp_path / "tuned.json"
    # fig3's broadcast panel reaches the long-message, large-p region
    # where the tuned crossovers actually fire (the sweep smoke grid
    # stops at p=4 and 1024 bytes, where the paper's defaults win).
    base = ["sweep", "--grid", "fig3", "--machines", "sp2",
            "--ops", "broadcast", "--no-cache"]
    assert main(base + ["--out", str(plain_out)]) == 0
    assert main(base + ["--decision-table", str(table),
                        "--out", str(tuned_out)]) == 0
    import json
    plain = json.loads(plain_out.read_text())
    tuned = json.loads(tuned_out.read_text())
    overridden = [row for row in tuned["cells"] if "algorithm" in row]
    assert overridden, "the tuned table flipped no smoke-grid cell"
    # Every flipped cell is strictly faster than the plain run.
    plain_times = {(row["machine"], row["op"], row["nbytes"],
                    row["p"]): row["result"]["time_us"]
                   for row in plain["cells"]}
    for row in overridden:
        key = (row["machine"], row["op"], row["nbytes"], row["p"])
        assert row["result"]["time_us"] < plain_times[key]


def test_sweep_decision_table_requires_sim_mode(capsys, tmp_path):
    table = tmp_path / "BENCH_tuning.json"
    assert main(["tune", "--machines", "sp2", "--grid", "smoke",
                 "--no-cache", "--out", str(table)]) == 0
    capsys.readouterr()
    assert main(["sweep", "--grid", "smoke", "--mode", "analytic",
                 "--decision-table", str(table), "--no-cache"]) == 2
    assert "sim" in capsys.readouterr().err


def test_sweep_decision_table_rejects_stale_table(capsys, tmp_path):
    import json
    from repro.tuner import TUNING_SCHEMA

    table = tmp_path / "stale.json"
    table.write_text(json.dumps({
        "schema": TUNING_SCHEMA,
        "machines": {"sp2": {"broadcast": {
            "default": None,
            "entries": [{"min_p": 0, "rules": [
                {"min_bytes": 0,
                 "algorithm": "no_such_algorithm"}]}],
        }}},
    }))
    assert main(["sweep", "--grid", "smoke",
                 "--decision-table", str(table), "--no-cache"]) == 2
    err = capsys.readouterr().err
    assert "no_such_algorithm" in err
    assert "known algorithms" in err


def test_sweep_decision_table_missing_file(capsys, tmp_path):
    assert main(["sweep", "--grid", "smoke", "--decision-table",
                 str(tmp_path / "absent.json"), "--no-cache"]) == 2
    assert capsys.readouterr().err


def test_audit_trend_renders_sparklines(capsys, tmp_path):
    from pathlib import Path
    baseline = Path(__file__).parent / "golden" / \
        "BENCH_sweep_baseline.json"
    out_path = tmp_path / "drift.json"
    # First audit seeds the history; second one trends against it.
    assert main(["audit", str(baseline), "--out", str(out_path)]) == 0
    capsys.readouterr()
    code = main(["audit", str(baseline), "--trend", "--out",
                 str(out_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "drift trend over 2 generation(s)" in out
    assert "verdicts: PP" in out
    assert "▁" in out


def test_audit_trend_without_history_is_single_generation(capsys,
                                                          tmp_path):
    from pathlib import Path
    baseline = Path(__file__).parent / "golden" / \
        "BENCH_sweep_baseline.json"
    code = main(["audit", str(baseline), "--trend", "--out",
                 str(tmp_path / "absent.json")])
    out = capsys.readouterr().out
    assert code == 0
    assert "drift trend over 1 generation(s)" in out


def test_audit_trend_bad_history_path(capsys, tmp_path):
    from pathlib import Path
    baseline = Path(__file__).parent / "golden" / \
        "BENCH_sweep_baseline.json"
    assert main(["audit", str(baseline), "--trend", "--history",
                 str(tmp_path / "missing.json")]) == 2
    assert capsys.readouterr().err


def test_dash_command_builds_ledger_and_page(capsys, tmp_path):
    import json
    from pathlib import Path
    baseline = Path(__file__).parent / "golden" / \
        "BENCH_sweep_baseline.json"
    out_dir = tmp_path / "site"
    code = main(["dash", "--artifacts", str(baseline),
                 "--capture", "t3d:broadcast", "--bytes", "4096",
                 "--nodes", "8", "--faults", "single-link-outage",
                 "--out", str(out_dir)])
    out = capsys.readouterr().out
    assert code == 0
    ledger_path = out_dir / "BENCH_ledger.json"
    page = out_dir / "index.html"
    replay = out_dir / "replay_t3d_broadcast.json"
    assert ledger_path.exists() and page.exists() and replay.exists()
    ledger = json.loads(ledger_path.read_text())
    assert ledger["families"] == {"replay": 1, "sweep": 1}
    assert ledger["bundle_digest"] in page.read_text("utf-8")
    assert ledger["bundle_digest"][:16] in out

    # Re-running over the same inputs reproduces the ledger byte for
    # byte (the out directory itself is never scanned for inputs).
    first = ledger_path.read_bytes()
    assert main(["dash", "--artifacts", str(baseline),
                 "--capture", "t3d:broadcast", "--bytes", "4096",
                 "--nodes", "8", "--faults", "single-link-outage",
                 "--out", str(out_dir)]) == 0
    capsys.readouterr()
    assert ledger_path.read_bytes() == first


def test_dash_command_rejects_bad_capture_spec(capsys, tmp_path):
    assert main(["dash", "--artifacts", str(tmp_path),
                 "--capture", "cm5:broadcast",
                 "--out", str(tmp_path / "site")]) == 2
    assert "sp2/t3d/paragon" in capsys.readouterr().err
    assert main(["dash", "--artifacts", str(tmp_path),
                 "--capture", "t3d", "--out",
                 str(tmp_path / "site")]) == 2
    assert capsys.readouterr().err


def test_dash_command_rejects_bad_faults_preset(capsys, tmp_path):
    assert main(["dash", "--artifacts", str(tmp_path),
                 "--capture", "t3d:broadcast", "--faults", "gremlins",
                 "--out", str(tmp_path / "site")]) == 2
    assert "known presets" in capsys.readouterr().err


def test_dash_command_rejects_unclassifiable_artifact(capsys,
                                                      tmp_path):
    junk = tmp_path / "junk.json"
    junk.write_text('{"just": "notes"}')
    assert main(["dash", "--artifacts", str(junk),
                 "--out", str(tmp_path / "site")]) == 2
    assert "not a recognised artifact" in capsys.readouterr().err
