"""Tests for the repro-bench command-line interface."""

import pytest

from repro.cli import main


def test_measure_command(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_FAST", "1")
    code = main(["measure", "t3d", "barrier", "--bytes", "0",
                 "--nodes", "8", "--iterations", "2", "--runs", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "t3d barrier" in out
    assert "per-process min/mean/max" in out


def test_measure_broadcast_reports_units(capsys):
    code = main(["measure", "sp2", "broadcast", "--bytes", "1024",
                 "--nodes", "4", "--iterations", "2", "--runs", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "us" in out or "ms" in out


def test_figure_command_fast(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_FAST", "1")
    code = main(["figure", "4"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Figure 4" in out
    assert "broadcast/t3d" in out


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["figure", "9"])


def test_unknown_machine_rejected():
    with pytest.raises(SystemExit):
        main(["measure", "cm5", "broadcast"])


def test_sensitivity_command(capsys):
    code = main(["sensitivity", "t3d", "scatter", "--bytes", "65536",
                 "--nodes", "64", "--top", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "sensitivity of scatter" in out
    assert "dma.us_per_byte" in out


def test_app_command(capsys):
    code = main(["app", "stap", "t3d", "--nodes", "4"])
    out = capsys.readouterr().out
    assert code == 0
    assert "STAP pipeline on t3d, 4 nodes" in out
    assert "corner-turn" in out


def test_app_unknown_rejected():
    with pytest.raises(SystemExit):
        main(["app", "linpack", "t3d"])


def test_fast_flag_sets_env(monkeypatch, capsys):
    monkeypatch.delenv("REPRO_BENCH_FAST", raising=False)
    import os
    main(["--fast", "measure", "t3d", "barrier", "--bytes", "0",
          "--nodes", "4", "--iterations", "1", "--runs", "1"])
    assert os.environ.get("REPRO_BENCH_FAST") == "1"
