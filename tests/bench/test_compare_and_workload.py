"""Tests for the bench helpers: comparison utilities and workloads."""

import pytest

from repro.bench import (
    bench_config,
    crossover_message_size,
    machine_sizes_for,
    monotonically_increasing,
    ranking,
    winner,
)
from repro.bench.figures import FigureData


def test_ranking_orders_fastest_first():
    values = {"sp2": 30.0, "t3d": 10.0, "paragon": 20.0}
    assert ranking(values) == ["t3d", "paragon", "sp2"]
    assert winner(values) == "t3d"


def test_winner_empty_rejected():
    with pytest.raises(ValueError):
        winner({})


def test_crossover_detects_sign_change():
    a = {4: 10.0, 1024: 50.0, 65536: 900.0}
    b = {4: 20.0, 1024: 40.0, 65536: 500.0}
    # a faster at 4, slower at 1024 -> crossover reported at 1024.
    assert crossover_message_size(a, b) == 1024


def test_crossover_none_when_dominated():
    a = {4: 1.0, 1024: 2.0}
    b = {4: 3.0, 1024: 4.0}
    assert crossover_message_size(a, b) is None


def test_crossover_ignores_ties():
    a = {4: 1.0, 8: 2.0, 16: 5.0}
    b = {4: 1.0, 8: 3.0, 16: 4.0}
    assert crossover_message_size(a, b) == 16


def test_crossover_disjoint_domains_rejected():
    with pytest.raises(ValueError):
        crossover_message_size({1: 1.0}, {2: 2.0})


def test_monotonically_increasing():
    assert monotonically_increasing({2: 1.0, 4: 2.0, 8: 2.0})
    assert not monotonically_increasing({2: 2.0, 4: 1.0})
    # Tolerance forgives small dips.
    assert monotonically_increasing({2: 2.0, 4: 1.9}, tolerance=0.1)


def test_t3d_capped_at_64_nodes():
    assert machine_sizes_for("t3d") == (2, 4, 8, 16, 32, 64)
    assert machine_sizes_for("sp2")[-1] == 128
    assert machine_sizes_for("paragon")[-1] == 128


def test_bench_config_fast_mode(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_FAST", "1")
    fast = bench_config()
    monkeypatch.setenv("REPRO_BENCH_FAST", "")
    quick = bench_config()
    assert fast.runs <= quick.runs
    assert fast.iterations <= quick.iterations


def test_figure_data_add_get_format():
    data = FigureData("Figure X", "demo", "us")
    data.add(("broadcast", "t3d"), 2, 35.0)
    data.add(("broadcast", "t3d"), 4, 58.0)
    assert data.get("broadcast", "t3d") == {2: 35.0, 4: 58.0}
    text = data.format()
    assert "Figure X: demo" in text
    assert "broadcast/t3d" in text


def test_document_diff_paths_walks_nested_documents():
    from repro.bench import document_diff_paths

    a = {"x": 1, "nested": {"same": True, "num": 1.5},
         "items": [1, 2, 3]}
    b = {"x": 2, "nested": {"same": True, "num": 2.5},
         "items": [1, 9, 3]}
    assert document_diff_paths(a, b) == \
        ["items/1", "nested/num", "x"]
    assert document_diff_paths(a, a) == []
    # Missing keys and length changes are reported as paths too.
    assert document_diff_paths({"k": 1}, {}) == ["k"]
    assert document_diff_paths([1], [1, 2]) == ["length"]
    # Scalar root mismatch.
    assert document_diff_paths(1, 2) == ["<root>"]
    # int vs float of equal value is not a difference (JSON numbers).
    assert document_diff_paths({"n": 1}, {"n": 1.0}) == []
    # ...but bool vs int is (True != 1 semantically in artifacts).
    assert document_diff_paths({"n": True}, {"n": 1}) == ["n"]
