"""Tests for CSV/JSON export of regenerated results."""

import csv
import json

from repro.bench import (
    figure_to_rows,
    table3_to_rows,
    write_figure_csv,
    write_figure_json,
    write_table3_csv,
    write_table3_json,
)
from repro.bench.figures import FigureData
from repro.bench.tables import Table3Row
from repro.core import paper_expression


def sample_figure():
    data = FigureData("Figure 1", "startup latencies", "us")
    data.add(("broadcast", "t3d"), 2, 35.0)
    data.add(("broadcast", "t3d"), 4, 58.0)
    data.add(("broadcast", "sp2"), 2, 85.0)
    return data


def sample_table():
    expression = paper_expression("t3d", "alltoall")
    return {("t3d", "alltoall"): Table3Row(
        machine="t3d", op="alltoall", fitted=expression,
        published=expression)}


def test_figure_to_rows_flat_and_sorted():
    rows = figure_to_rows(sample_figure())
    assert len(rows) == 3
    assert rows[0]["series"] == "broadcast/sp2"
    assert rows[1] == {"figure": "Figure 1", "series": "broadcast/t3d",
                       "x": 2, "value": 35.0, "unit": "us"}


def test_write_figure_csv(tmp_path):
    path = write_figure_csv(sample_figure(), tmp_path / "fig1.csv")
    with path.open() as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 3
    assert rows[1]["series"] == "broadcast/t3d"
    assert float(rows[1]["value"]) == 35.0


def test_write_figure_json(tmp_path):
    path = write_figure_json(sample_figure(), tmp_path / "fig1.json")
    payload = json.loads(path.read_text())
    assert payload["figure"] == "Figure 1"
    assert payload["series"]["broadcast/t3d"]["4"] == 58.0


def test_table3_to_rows():
    rows = table3_to_rows(sample_table())
    assert rows[0]["machine"] == "t3d"
    assert rows[0]["scaling_matches"] is True
    assert rows[0]["startup_ratio_p32"] == 1.0


def test_write_table3_csv_and_json(tmp_path):
    table = sample_table()
    csv_path = write_table3_csv(table, tmp_path / "t3.csv")
    json_path = write_table3_json(table, tmp_path / "t3.json")
    with csv_path.open() as handle:
        rows = list(csv.DictReader(handle))
    assert rows[0]["op"] == "alltoall"
    payload = json.loads(json_path.read_text())
    assert payload[0]["published"] == payload[0]["fitted"]


def test_cli_figure_export(tmp_path, capsys, monkeypatch):
    from repro.cli import main
    monkeypatch.setenv("REPRO_BENCH_FAST", "1")
    csv_path = tmp_path / "fig4.csv"
    json_path = tmp_path / "fig4.json"
    code = main(["figure", "4", "--csv", str(csv_path),
                 "--json", str(json_path)])
    assert code == 0
    assert csv_path.exists() and json_path.exists()
    out = capsys.readouterr().out
    assert "wrote" in out
