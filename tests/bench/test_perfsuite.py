"""Tests for the engine perf suite and BENCH_engine.json gate."""

import copy
import json

import pytest

from repro.bench.perfsuite import (
    PERF_SCHEMA,
    build_perf_artifact,
    check_perf_artifact,
    dumps_perf_artifact,
    load_perf_artifact,
    perf_workload_names,
    run_perf_suite,
    run_workload,
    work_section_text,
    write_perf_artifact,
)
from repro.bench import document_diff_paths


def _smoke_artifact():
    return build_perf_artifact(run_perf_suite("smoke"), suite="smoke")


def test_workload_names_per_suite():
    smoke = perf_workload_names("smoke")
    default = perf_workload_names("default")
    assert smoke
    assert set(smoke) < set(default)
    assert all(name.startswith("micro/") for name in smoke)
    assert any(name.startswith("collective/") for name in default)
    # All three machines are represented at p=64 and p=256.
    for machine in ("sp2", "t3d", "paragon"):
        assert f"collective/{machine}-broadcast-p64" in default
        assert f"collective/{machine}-broadcast-p256" in default


def test_unknown_suite_and_workload_rejected():
    with pytest.raises(ValueError):
        perf_workload_names("nope")
    with pytest.raises(ValueError):
        run_workload("micro/does-not-exist")


def test_run_workload_returns_work_and_clock():
    run = run_workload("micro/engine-timeouts")
    assert run.workload == "micro/engine-timeouts"
    assert run.work["events_fired"] > 400000
    assert run.sim_time_us == 400000.0
    assert run.wall_s > 0
    assert run.events_per_sec > 0


def test_artifact_roundtrip_and_schema_gate(tmp_path):
    artifact = _smoke_artifact()
    assert artifact["schema"] == PERF_SCHEMA
    path = tmp_path / "BENCH_engine.json"
    write_perf_artifact(artifact, path)
    assert load_perf_artifact(path) == artifact
    # Canonical serialization: sorted keys, final newline.
    text = path.read_text()
    assert text.endswith("\n")
    assert text == dumps_perf_artifact(artifact)
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "other/1"}))
    with pytest.raises(ValueError):
        load_perf_artifact(bad)


def test_work_section_byte_identical_across_runs():
    first, second = _smoke_artifact(), _smoke_artifact()
    assert work_section_text(first) == work_section_text(second)
    assert first["work"] == second["work"]


def test_runs_differ_only_in_throughput_paths():
    """Two runs of the same suite must diverge only under the
    designated volatile section (wall-clock throughput)."""
    first, second = _smoke_artifact(), _smoke_artifact()
    for path in document_diff_paths(first, second):
        assert path.startswith("throughput/"), \
            f"nondeterministic path outside throughput/: {path}"


def test_check_passes_against_own_run():
    artifact = _smoke_artifact()
    result = check_perf_artifact(_smoke_artifact(), artifact)
    assert result.passed()
    assert result.work_mismatches == []
    assert "PASS" in result.format()


def test_check_fails_on_counter_change():
    baseline = _smoke_artifact()
    mutated = copy.deepcopy(baseline)
    cell = mutated["work"]["micro/engine-timeouts"]
    cell["counters"]["events_fired"] += 1
    result = check_perf_artifact(mutated, baseline)
    assert not result.passed()
    assert any("events_fired" in message
               for message in result.work_mismatches)
    assert "FAIL" in result.format()


def test_check_fails_on_sim_time_change():
    baseline = _smoke_artifact()
    mutated = copy.deepcopy(baseline)
    mutated["work"]["micro/engine-timeouts"]["sim_time_us"] += 1.0
    result = check_perf_artifact(mutated, baseline)
    assert not result.passed()
    assert any("sim_time_us" in message
               for message in result.work_mismatches)


def test_check_fails_on_missing_or_extra_workload():
    baseline = _smoke_artifact()
    missing = copy.deepcopy(baseline)
    del missing["work"]["micro/ptp-t3d-p2"]
    result = check_perf_artifact(missing, baseline)
    assert any("missing from current run" in message
               for message in result.work_mismatches)
    extra = copy.deepcopy(baseline)
    extra["work"]["micro/new-kernel"] = {"counters": {}, "sim_time_us": 0}
    result = check_perf_artifact(extra, baseline)
    assert any("not in baseline" in message
               for message in result.work_mismatches)


def test_check_fails_on_throughput_regression():
    baseline = _smoke_artifact()
    current = copy.deepcopy(baseline)
    total = baseline["throughput"]["total"]
    total["events_per_sec"] = current["throughput"]["total"][
        "events_per_sec"] * 100.0
    result = check_perf_artifact(current, baseline, min_ratio=0.33)
    assert result.work_mismatches == []
    assert not result.throughput_ok
    assert not result.passed()
    assert "REGRESSION" in result.format()


def test_check_rejects_bad_min_ratio():
    artifact = _smoke_artifact()
    with pytest.raises(ValueError):
        check_perf_artifact(artifact, artifact, min_ratio=0.0)


def test_profiled_suite_has_identical_work():
    from repro.obs import EngineProfiler

    plain = _smoke_artifact()
    profiler = EngineProfiler()
    profiled = build_perf_artifact(
        run_perf_suite("smoke", profiler=profiler), suite="smoke")
    assert work_section_text(plain) == work_section_text(profiled)
    assert profiler.folded_lines()


def test_checked_in_baseline_matches_fresh_run():
    """The repo-root BENCH_engine.json reproduces from the live
    engine: every work counter byte-identical."""
    from pathlib import Path

    baseline_path = Path(__file__).resolve().parents[2] / \
        "BENCH_engine.json"
    baseline = load_perf_artifact(baseline_path)
    current = build_perf_artifact(run_perf_suite("default"),
                                  suite="default")
    result = check_perf_artifact(current, baseline, min_ratio=1e-9)
    assert result.work_mismatches == [], \
        "\n".join(result.work_mismatches)
    assert work_section_text(current) == work_section_text(baseline)
