"""Tests for Table3Row comparison logic (without the full-grid sweep)."""

import pytest

from repro.bench import Table3Row, format_table3
from repro.core import CONST_FORM, LINEAR_FORM, LOG_FORM, Term, \
    TimingExpression


def expr(machine, op, startup, per_byte):
    return TimingExpression(machine, op, startup, per_byte)


def make_row(fitted_startup, published_startup,
             fitted_per_byte=None, published_per_byte=None,
             op="broadcast"):
    zero = Term(CONST_FORM, 0.0, 0.0)
    return Table3Row(
        machine="sp2", op=op,
        fitted=expr("sp2", op, fitted_startup, fitted_per_byte or zero),
        published=expr("sp2", op, published_startup,
                       published_per_byte or zero))


def test_startup_ratio():
    row = make_row(Term(LOG_FORM, 50.0, 0.0), Term(LOG_FORM, 100.0, 0.0))
    assert row.startup_ratio(32) == pytest.approx(0.5)


def test_startup_ratio_guard():
    row = make_row(Term(LOG_FORM, 50.0, 0.0), Term(CONST_FORM, 0.0, 0.0))
    assert row.startup_ratio(32) != row.startup_ratio(32)  # NaN


def test_per_byte_ratio():
    row = make_row(Term(LOG_FORM, 1.0, 0.0), Term(LOG_FORM, 1.0, 0.0),
                   Term(LINEAR_FORM, 0.02, 0.0),
                   Term(LINEAR_FORM, 0.04, 0.0))
    assert row.per_byte_ratio(32) == pytest.approx(0.5)


def test_scaling_matches_same_form():
    row = make_row(Term(LOG_FORM, 50.0, 1.0), Term(LOG_FORM, 60.0, 2.0))
    assert row.scaling_matches()


def test_scaling_mismatch_detected():
    row = make_row(Term(LINEAR_FORM, 10.0, 0.0),
                   Term(LOG_FORM, 60.0, 2.0))
    assert not row.scaling_matches()


def test_scaling_flat_curve_matches_either_form():
    # A T3D-barrier-like flat fit: tiny linear coefficient against a
    # large constant must match a published log form.
    row = make_row(Term(LINEAR_FORM, 0.005, 3.3),
                   Term(LOG_FORM, 0.011, 3.0))
    assert row.scaling_matches()


def test_format_table3_renders():
    rows = {("sp2", "broadcast"): make_row(
        Term(LOG_FORM, 50.0, 30.0), Term(LOG_FORM, 55.0, 30.0),
        Term(LOG_FORM, 0.02, 0.0), Term(LOG_FORM, 0.014, 0.053))}
    text = format_table3(rows)
    assert "Table 3" in text
    assert "broadcast" in text
    assert "yes" in text


def test_format_table3_barrier_has_no_per_byte_ratio():
    rows = {("sp2", "barrier"): make_row(
        Term(LOG_FORM, 100.0, 0.0), Term(LOG_FORM, 123.0, -90.0),
        op="barrier")}
    text = format_table3(rows)
    lines = [line for line in text.splitlines() if "barrier" in line]
    assert lines and lines[0].rstrip().endswith("-")
