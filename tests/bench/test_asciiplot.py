"""Tests for the ASCII log-log plot renderer."""

import pytest

from repro.bench import ascii_plot, plot_figure, sparkline
from repro.bench.figures import FigureData


def sample_series():
    return {
        "t3d": {2: 35.0, 8: 80.0, 32: 130.0, 128: 190.0},
        "sp2": {2: 85.0, 8: 190.0, 32: 300.0, 128: 420.0},
    }


def test_plot_contains_markers_and_legend():
    text = ascii_plot(sample_series(), width=40, height=10)
    assert "legend:" in text
    assert "o=sp2" in text and "x=t3d" in text
    assert "[log x, log y]" in text


def test_plot_axes_ticks():
    text = ascii_plot(sample_series(), width=40, height=10,
                      x_label="p", y_label="us")
    assert "2" in text and "128" in text       # x range
    assert "35" in text and "420" in text      # y range
    assert text.count("|") == 10               # one per grid row


def test_plot_monotone_series_descends_on_grid():
    # A single increasing series: its marker must appear on the top
    # row (max) and the bottom row (min).
    text = ascii_plot({"s": {1: 1.0, 10: 10.0, 100: 100.0}},
                      width=30, height=9)
    rows = [line for line in text.splitlines() if "|" in line]
    assert "o" in rows[0]
    assert "o" in rows[-1]


def test_plot_title():
    text = ascii_plot(sample_series(), title="Figure 1 (startup)")
    assert text.splitlines()[0] == "Figure 1 (startup)"


def test_log_falls_back_for_nonpositive_values():
    text = ascii_plot({"s": {0: 0.0, 5: 10.0}}, width=20, height=5)
    assert "[" not in text.splitlines()[-2]  # no log annotation


def test_empty_series_rejected():
    with pytest.raises(ValueError):
        ascii_plot({})
    with pytest.raises(ValueError):
        ascii_plot({"s": {}})


def test_overlapping_markers_become_question_mark():
    series = {"a": {1: 1.0, 100: 100.0}, "b": {1: 1.0, 100: 42.0}}
    text = ascii_plot(series, width=20, height=8)
    assert "?" in text


def test_plot_figure_adapter():
    data = FigureData("Figure 1", "startup latencies", "us")
    data.add(("broadcast", "t3d"), 2, 35.0)
    data.add(("broadcast", "t3d"), 64, 150.0)
    text = plot_figure(data, width=30, height=8)
    assert "Figure 1: startup latencies" in text
    assert "broadcast/t3d" in text


def test_cli_plot_flag(capsys, monkeypatch):
    from repro.cli import main
    monkeypatch.setenv("REPRO_BENCH_FAST", "1")
    assert main(["figure", "4", "--plot"]) == 0
    out = capsys.readouterr().out
    assert "legend:" in out


def test_sparkline_maps_range_onto_blocks():
    line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
    assert line == "▁▂▃▄▅▆▇█"
    assert sparkline([5.0]) == "▁"
    assert sparkline([2, 2, 2]) == "▁▁▁"


def test_sparkline_explicit_bounds_and_clamping():
    assert sparkline([0.0, 10.0], lo=0.0, hi=10.0) == "▁█"
    # Values outside [lo, hi] clamp instead of wrapping.
    assert sparkline([-5.0, 99.0], lo=0.0, hi=10.0) == "▁█"
    assert sparkline([0.0, 0.0], lo=0.0, hi=10.0) == "▁▁"


def test_sparkline_rejects_bad_input():
    with pytest.raises(ValueError, match="nothing to plot"):
        sparkline([])
    with pytest.raises(ValueError, match="bad sparkline range"):
        sparkline([1.0], lo=5.0, hi=0.0)
