"""Tests for the run diagnostics collector."""

from repro.bench import collect_diagnostics
from repro.mpi import MpiWorld


def run_world(machine, nodes, op, nbytes):
    world = MpiWorld(machine, nodes, seed=4)

    def program(ctx):
        yield from ctx.collective(op, nbytes)
        return None

    world.run(program)
    return world


def test_counters_after_alltoall():
    world = run_world("sp2", 8, "alltoall", 1024)
    diag = collect_diagnostics(world)
    assert diag.machine == "sp2"
    assert diag.num_nodes == 8
    assert diag.messages_delivered == 8 * 7
    assert diag.nic_messages_sent == 8 * 7
    assert diag.nic_messages_received == 8 * 7
    # Buffered traffic stages through the memory bus on send and recv.
    assert diag.memory_bytes_copied >= 2 * 8 * 7 * 1024
    assert diag.total_link_bytes > 0


def test_unexpected_rate_high_for_sequential_alltoall():
    world = run_world("paragon", 8, "alltoall", 256)
    diag = collect_diagnostics(world)
    # The naive NX scheme sends everything before posting receives.
    assert diag.unexpected_rate > 0.5


def test_unexpected_rate_low_for_posted_alltoall():
    world = run_world("sp2", 8, "alltoall", 256)
    diag = collect_diagnostics(world)
    assert diag.unexpected_rate < 0.2


def test_dma_counter_on_t3d_scatter():
    world = run_world("t3d", 8, "scatter", 65536)
    diag = collect_diagnostics(world)
    # Root streams 7 x 64 KB through the BLT.
    assert diag.dma_bytes_streamed == 7 * 65536


def test_hardware_barrier_touches_nothing():
    world = run_world("t3d", 8, "barrier", 0)
    diag = collect_diagnostics(world)
    assert diag.messages_delivered == 0
    assert diag.total_link_bytes == 0
    assert diag.unexpected_rate == 0.0


def test_busiest_links_sorted():
    world = run_world("paragon", 16, "alltoall", 512)
    diag = collect_diagnostics(world)
    byte_counts = [nbytes for _, nbytes in diag.busiest_links]
    assert byte_counts == sorted(byte_counts, reverse=True)


def test_format_renders():
    world = run_world("t3d", 4, "broadcast", 4096)
    text = collect_diagnostics(world).format()
    assert "diagnostics: t3d, 4 nodes" in text
    assert "messages delivered" in text
