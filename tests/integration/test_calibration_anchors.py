"""Calibration anchors: guard the machine models against drift.

These pin the simulator to the paper's headline numbers with explicit
tolerances.  If a future change to the transport, algorithms, or
machine parameters moves any anchor outside its band, the reproduction
has regressed — EXPERIMENTS.md documents why each anchor matters.
"""

import pytest

from repro.core import (
    MeasurementConfig,
    estimate_rinf_two_point,
    measure_collective,
    measure_startup_latency,
)

CFG = MeasurementConfig(iterations=3, warmup_iterations=1, runs=1,
                        seed=1997)

#: (machine, op, p) -> (paper startup us, tolerance factor)
STARTUP_ANCHORS = {
    ("t3d", "broadcast", 64): (150.0, 1.35),
    ("t3d", "alltoall", 64): (1700.0, 1.35),
    ("t3d", "scatter", 64): (298.0, 1.35),
    ("t3d", "gather", 64): (365.0, 1.35),
    ("t3d", "scan", 64): (209.0, 1.35),
    ("t3d", "reduce", 64): (253.0, 1.35),
    ("sp2", "broadcast", 32): (305.0, 1.35),   # 55 log 32 + 30
    ("paragon", "alltoall", 32): (3186.0, 1.35),  # 97 * 32 + 82
}


@pytest.mark.parametrize("key", sorted(STARTUP_ANCHORS))
def test_startup_anchor(key):
    machine, op, p = key
    paper, factor = STARTUP_ANCHORS[key]
    simulated = measure_startup_latency(machine, op, p, CFG).time_us
    assert paper / factor < simulated < paper * factor, \
        (key, simulated, paper)


def test_anchor_t3d_barrier():
    simulated = measure_collective("t3d", "barrier", 0, 64, CFG).time_us
    assert 2.0 < simulated < 6.0


def test_anchor_sp2_64node_64kb_alltoall():
    simulated = measure_collective("sp2", "alltoall", 65536, 64,
                                   CFG).time_us
    assert 317_000 / 1.3 < simulated < 317_000 * 1.3


def test_anchor_alltoall_bandwidth_ordering_and_values():
    rinf = {}
    for machine in ("t3d", "paragon", "sp2"):
        samples = {m: measure_collective(machine, "alltoall", m, 64,
                                         CFG).time_us
                   for m in (16384, 65536)}
        rinf[machine] = estimate_rinf_two_point("alltoall", 64,
                                                samples) / 1024.0
    assert rinf["t3d"] > rinf["paragon"] > rinf["sp2"], rinf
    assert rinf["t3d"] == pytest.approx(1.745, rel=0.30)
    assert rinf["paragon"] == pytest.approx(0.879, rel=0.30)
    assert rinf["sp2"] == pytest.approx(0.818, rel=0.30)


def test_anchor_scan_crossover_band():
    # Paragon must win scan startup at 16+ nodes, T3D below 8.
    t3d_16 = measure_startup_latency("t3d", "scan", 16, CFG).time_us
    paragon_16 = measure_startup_latency("paragon", "scan", 16,
                                         CFG).time_us
    assert paragon_16 < t3d_16
    t3d_4 = measure_startup_latency("t3d", "scan", 4, CFG).time_us
    paragon_4 = measure_startup_latency("paragon", "scan", 4,
                                        CFG).time_us
    assert t3d_4 < paragon_4
