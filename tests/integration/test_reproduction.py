"""End-to-end reproduction checks at small scale.

Cheap (p <= 32) versions of the paper's central claims, so the unit
suite continuously guards the reproduction while the full-scale
versions live in benchmarks/.
"""

import pytest

from repro.core import (
    MeasurementConfig,
    measure_collective,
    measure_startup_latency,
    paper_expression,
)

CFG = MeasurementConfig(iterations=3, warmup_iterations=1, runs=1,
                        seed=23)


def t0(machine, op, p):
    return measure_startup_latency(machine, op, p, CFG).time_us


def t(machine, op, m, p):
    return measure_collective(machine, op, m, p, CFG).time_us


def test_t3d_barrier_is_microseconds_not_hundreds():
    assert t("t3d", "barrier", 0, 32) < 10.0


def test_t3d_barrier_at_least_30x_faster():
    t3d = t("t3d", "barrier", 0, 32)
    assert t("sp2", "barrier", 0, 32) > 30 * t3d
    assert t("paragon", "barrier", 0, 32) > 30 * t3d


def test_t3d_lowest_broadcast_startup():
    values = {m: t0(m, "broadcast", 32)
              for m in ("sp2", "t3d", "paragon")}
    assert min(values, key=values.get) == "t3d"


def test_t3d_two_node_broadcast_around_35us():
    # Paper: "The lowest latency of using the T3D is 35 us to
    # broadcast a message to two nodes."
    value = t0("t3d", "broadcast", 2)
    assert 20.0 < value < 55.0


def test_paragon_worst_alltoall_startup():
    values = {m: t0(m, "alltoall", 16)
              for m in ("sp2", "t3d", "paragon")}
    assert max(values, key=values.get) == "paragon"
    # "about 4 to 15 times greater" (prose) / ~4x (Table 3 fits).
    assert values["paragon"] > 3 * min(values.values())


def test_sp2_beats_paragon_short_messages():
    # Abstract: "For short messages, the SP2 outperforms the Paragon in
    # the barrier, total exchange, scatter, and gather operations."
    for op in ("barrier", "alltoall", "scatter", "gather"):
        probe = 0 if op == "barrier" else 16
        assert t("sp2", op, probe, 16) < t("paragon", op, probe, 16), op


def test_paragon_beats_sp2_long_messages():
    # Abstract: "The Paragon outperforms the SP2 in almost all
    # collective operations with long messages."
    for op in ("broadcast", "alltoall", "scatter", "gather"):
        assert t("paragon", op, 65536, 16) < t("sp2", op, 65536, 16), op


def test_sp2_beats_paragon_long_reduce():
    # ... "except the reduce operation".
    assert t("sp2", "reduce", 65536, 16) < t("paragon", "reduce",
                                             65536, 16)


def test_sp2_paragon_crossover_exists():
    # Section 5's crossover: SP2 faster for short alltoall, Paragon
    # faster for long.
    assert t("sp2", "alltoall", 16, 16) < t("paragon", "alltoall", 16, 16)
    assert t("paragon", "alltoall", 65536, 16) < \
        t("sp2", "alltoall", 65536, 16)


def test_paragon_scan_wins_at_16_nodes():
    # Conclusions: the T3D trails "the Paragon in performing the scan
    # operation on 16 nodes or more".
    values = {m: t0(m, "scan", 16) for m in ("sp2", "t3d", "paragon")}
    assert min(values, key=values.get) == "paragon"


def test_t3d_scan_wins_below_16_nodes():
    values = {m: t0(m, "scan", 4) for m in ("sp2", "t3d", "paragon")}
    assert min(values, key=values.get) == "t3d"


def test_startup_against_published_fit_within_2x():
    # Spot checks of T0 against Table 3's startup terms.
    for machine in ("sp2", "t3d", "paragon"):
        for op in ("broadcast", "scatter", "alltoall", "reduce"):
            simulated = t0(machine, op, 16)
            published = paper_expression(machine, op) \
                .startup_latency_us(16)
            assert 0.5 < simulated / published < 2.0, \
                (machine, op, simulated, published)


def test_total_time_against_published_fit_within_2x():
    for machine in ("sp2", "t3d", "paragon"):
        for op in ("broadcast", "alltoall"):
            simulated = t(machine, op, 16384, 16)
            published = paper_expression(machine, op).evaluate(16384, 16)
            assert 0.4 < simulated / published < 2.2, \
                (machine, op, simulated, published)


def test_transmission_dominates_beyond_4kb():
    # Section 5: beyond 4 KB the transmission delay dominates.
    for machine in ("sp2", "t3d", "paragon"):
        startup = t0(machine, "broadcast", 16)
        total = t(machine, "broadcast", 16384, 16)
        assert total > 2 * startup, machine


def test_deterministic_end_to_end():
    first = t("t3d", "alltoall", 1024, 8)
    second = t("t3d", "alltoall", 1024, 8)
    assert first == second
