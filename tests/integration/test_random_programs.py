"""Property test: arbitrary collective sequences always complete.

hypothesis composes random programs (sequences of collectives with
random sizes and roots) and runs them on random machines: nothing may
deadlock, every rank must finish, and no message may be left behind.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import COLLECTIVE_OPS, MpiWorld


@st.composite
def collective_sequences(draw):
    length = draw(st.integers(1, 5))
    sequence = []
    for _ in range(length):
        op = draw(st.sampled_from(COLLECTIVE_OPS))
        nbytes = 0 if op == "barrier" else \
            draw(st.sampled_from([0, 4, 512, 8192]))
        root_pick = draw(st.integers(0, 7))
        sequence.append((op, nbytes, root_pick))
    return sequence


@given(st.sampled_from(["sp2", "t3d", "paragon"]),
       st.integers(2, 9),
       collective_sequences())
@settings(max_examples=40, deadline=None)
def test_random_collective_sequences_complete(machine, size, sequence):
    world = MpiWorld(machine, size, seed=17)

    def program(ctx):
        for op, nbytes, root_pick in sequence:
            yield from ctx.collective(op, nbytes, root=root_pick % size)
        return ctx.env.now

    finish = world.run(program)
    assert len(finish) == size
    transport = world.comm.transport
    for rank in range(size):
        assert transport.pending_unexpected(rank) == 0, sequence
        assert transport.pending_posted(rank) == 0, sequence


@given(st.integers(2, 8), st.integers(0, 3))
@settings(max_examples=20, deadline=None)
def test_interleaved_ptp_and_collectives(size, extra_tag):
    # Point-to-point traffic between collectives must not interfere
    # with collective tag matching.
    world = MpiWorld("t3d", size, seed=3)

    def program(ctx):
        yield from ctx.bcast(128)
        if ctx.rank == 0:
            yield from ctx.send(size - 1, 64, tag=extra_tag)
        if ctx.rank == size - 1:
            yield from ctx.recv(0, tag=extra_tag)
        yield from ctx.alltoall(32)
        yield from ctx.barrier()
        return True

    assert all(world.run(program))
