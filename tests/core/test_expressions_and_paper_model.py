"""Tests for timing expressions and the transcribed paper model."""

import math

import pytest

from repro.core import (
    HEADLINE,
    LINEAR_FORM,
    LOG_FORM,
    PAPER_TABLE3,
    RAW_HARDWARE,
    Term,
    TimingExpression,
    paper_expression,
)


def test_term_evaluation_forms():
    assert Term(LOG_FORM, 10.0, 5.0).evaluate(8) == pytest.approx(35.0)
    assert Term(LINEAR_FORM, 2.0, 1.0).evaluate(8) == pytest.approx(17.0)
    assert Term("const", 0.0, 7.0).evaluate(8) == 7.0


def test_term_format():
    assert Term(LINEAR_FORM, 24.0, 90.0).format() == "24 p + 90"
    assert Term(LOG_FORM, 55.0, -30.0).format() == "55 log p - 30"
    assert Term("const", 0.0, 3.0).format() == "3"


def test_expression_format_matches_table3_style():
    expr = paper_expression("t3d", "alltoall")
    assert expr.format() == "(26 p + 8.6) + (0.038 p - 0.12) m"


def test_barrier_expression_format_has_no_message_term():
    assert paper_expression("t3d", "barrier").format() == \
        "0.011 log p + 3"


def test_paper_example_total_exchange_t3d():
    # Section 8: m=512, p=64 -> 2.86 ms on the T3D.
    expr = paper_expression("t3d", "alltoall")
    assert expr.evaluate(512, 64) / 1000 == pytest.approx(2.86, rel=0.05)


def test_paper_sp2_alltoall_64k_64nodes():
    # Section 5: 317 ms (the formula gives ~325 ms; the paper quotes a
    # measured 317).
    expr = paper_expression("sp2", "alltoall")
    assert expr.evaluate(65536, 64) / 1000 == pytest.approx(
        HEADLINE["sp2_alltoall_64x64k_ms"], rel=0.05)


def test_paper_t3d_startup_values_consistent_with_expressions():
    # Section 4's quoted 64-node startup latencies should be close to
    # Table 3's startup terms evaluated at p=64.
    quoted = HEADLINE["t3d_startup_64_us"]
    for op, value in quoted.items():
        formula = paper_expression("t3d", op).startup_latency_us(64)
        assert formula == pytest.approx(value, rel=0.35), op


def test_paper_aggregated_bandwidth_64_matches_abstract():
    # Abstract: 1.745 / 0.879 / 0.818 GB/s for T3D / Paragon / SP2.
    for machine, gbs in HEADLINE["alltoall_rinf_64_gbs"].items():
        expr = paper_expression(machine, "alltoall")
        computed = expr.aggregated_bandwidth_mbs(64) / 1024.0
        assert computed == pytest.approx(gbs, rel=0.1), machine


def test_paper_table_complete():
    ops = {"barrier", "broadcast", "scan", "gather", "scatter", "reduce",
           "alltoall"}
    machines = {"sp2", "t3d", "paragon"}
    assert set(PAPER_TABLE3) == {(m, o) for m in machines for o in ops}


def test_paper_scaling_classes():
    # Section 8: O(log p) startup for barrier/scan/reduce/broadcast,
    # O(p) for gather/scatter/total exchange.
    for machine in ("sp2", "t3d", "paragon"):
        for op in ("barrier", "broadcast", "scan", "reduce"):
            assert paper_expression(machine, op).startup.form == LOG_FORM
        for op in ("gather", "scatter", "alltoall"):
            assert paper_expression(machine, op).startup.form == \
                LINEAR_FORM


def test_unknown_paper_entry_rejected():
    with pytest.raises(KeyError):
        paper_expression("sp2", "allgather")


def test_raw_hardware_bandwidth_ordering():
    assert RAW_HARDWARE["t3d"]["network_bandwidth_mbs"] > \
        RAW_HARDWARE["paragon"]["network_bandwidth_mbs"] > \
        RAW_HARDWARE["sp2"]["network_bandwidth_mbs"]


def test_barrier_has_infinite_bandwidth():
    assert paper_expression("sp2", "barrier") \
        .aggregated_bandwidth_mbs(64) == float("inf")


def test_transmission_delay_linear_in_m():
    expr = paper_expression("sp2", "broadcast")
    d1 = expr.transmission_delay_us(1000, 32)
    d2 = expr.transmission_delay_us(2000, 32)
    assert d2 == pytest.approx(2 * d1)
