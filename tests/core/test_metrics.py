"""Tests for the performance metrics (Table 2 / Section 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CollectiveSample,
    aggregated_length_factor,
    aggregated_message_length,
)


def test_one_to_many_factor():
    for op in ("broadcast", "scatter", "gather", "reduce", "scan"):
        assert aggregated_length_factor(op, 64) == 63


def test_alltoall_factor():
    assert aggregated_length_factor("alltoall", 64) == 64 * 63


def test_barrier_moves_no_payload():
    assert aggregated_length_factor("barrier", 64) == 0


def test_aggregated_length_example_from_paper():
    # Section 5: 64 KB x 64 nodes total exchange = 256 MB total.
    total = aggregated_message_length("alltoall", 65536, 64)
    assert total == 65536 * 64 * 63
    assert total / 2 ** 20 == pytest.approx(258048 / 1024)  # ~252 MiB


def test_extension_factors():
    assert aggregated_length_factor("allreduce", 8) == 14
    assert aggregated_length_factor("allgather", 8) == 7 + 56


def test_unknown_op_rejected():
    with pytest.raises(ValueError):
        aggregated_length_factor("alltoallv", 8)


def test_negative_inputs_rejected():
    with pytest.raises(ValueError):
        aggregated_message_length("broadcast", -1, 8)
    with pytest.raises(ValueError):
        aggregated_length_factor("broadcast", 0)


@given(st.sampled_from(["broadcast", "scatter", "gather", "reduce",
                        "scan", "alltoall"]),
       st.integers(1, 4096), st.integers(2, 256))
@settings(max_examples=80, deadline=None)
def test_aggregated_length_scales_linearly_in_m(op, m, p):
    assert aggregated_message_length(op, 2 * m, p) == \
        2 * aggregated_message_length(op, m, p)


@given(st.integers(2, 128))
@settings(max_examples=30, deadline=None)
def test_alltoall_dominates_one_to_many(p):
    assert aggregated_length_factor("alltoall", p) >= \
        aggregated_length_factor("broadcast", p)


def make_sample(op="broadcast", nbytes=1024, p=8, time_us=500.0):
    return CollectiveSample(
        op=op, machine="sp2", nbytes=nbytes, num_nodes=p,
        time_us=time_us, run_times_us=(time_us,),
        process_min_us=time_us * 0.9, process_mean_us=time_us * 0.95,
        process_max_us=time_us)


def test_sample_aggregated_bytes():
    sample = make_sample(op="alltoall", nbytes=100, p=4)
    assert sample.aggregated_bytes == 100 * 4 * 3


def test_sample_bandwidth_subtracts_startup():
    sample = make_sample(time_us=1100.0)
    bw = sample.aggregated_bandwidth_mbs(startup_us=100.0)
    expected = (1024 * 7 / 1000.0) / 1.048576
    assert bw == pytest.approx(expected)


def test_sample_bandwidth_infinite_when_startup_dominates():
    sample = make_sample(time_us=50.0)
    assert sample.aggregated_bandwidth_mbs(startup_us=60.0) == \
        float("inf")
