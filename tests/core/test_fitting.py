"""Tests for the two-stage curve-fitting pipeline."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LINEAR_FORM,
    LOG_FORM,
    Term,
    classify_scaling,
    fit_line,
    fit_message_length_slices,
    fit_term,
    fit_timing_expression,
)


def test_fit_line_exact():
    slope, intercept, r2 = fit_line([1, 2, 3, 4], [3, 5, 7, 9])
    assert slope == pytest.approx(2.0)
    assert intercept == pytest.approx(1.0)
    assert r2 == pytest.approx(1.0)


def test_fit_line_degenerate_single_point():
    slope, intercept, r2 = fit_line([5.0], [42.0])
    assert slope == 0.0
    assert intercept == 42.0


def test_fit_line_constant_x():
    slope, intercept, _ = fit_line([2.0, 2.0, 2.0], [1.0, 2.0, 3.0])
    assert slope == 0.0
    assert intercept == pytest.approx(2.0)


def test_fit_line_rejects_mismatch_and_empty():
    with pytest.raises(ValueError):
        fit_line([1, 2], [1])
    with pytest.raises(ValueError):
        fit_line([], [])


def test_fit_term_recovers_log_form():
    ps = [2, 4, 8, 16, 32, 64]
    values = [55.0 * math.log2(p) + 30.0 for p in ps]
    term = fit_term(ps, values)
    assert term.form == LOG_FORM
    assert term.coef == pytest.approx(55.0)
    assert term.const == pytest.approx(30.0)


def test_fit_term_recovers_linear_form():
    ps = [2, 4, 8, 16, 32, 64]
    values = [3.7 * p + 128.0 for p in ps]
    term = fit_term(ps, values)
    assert term.form == LINEAR_FORM
    assert term.coef == pytest.approx(3.7)
    assert term.const == pytest.approx(128.0)


def test_fit_term_with_noise_still_classifies():
    rng = np.random.default_rng(1)
    ps = [2, 4, 8, 16, 32, 64, 128]
    values = [24.0 * p + 90.0 + rng.normal(0, 5) for p in ps]
    assert classify_scaling(ps, values) == LINEAR_FORM
    values = [123.0 * math.log2(p) - 90.0 + rng.normal(0, 5) for p in ps]
    assert classify_scaling(ps, values) == LOG_FORM


def test_fit_term_rejects_bad_input():
    with pytest.raises(ValueError):
        fit_term([1, 2], [1.0])
    with pytest.raises(ValueError):
        fit_term([0, 2], [1.0, 2.0])


def test_fit_message_length_slices():
    samples = {
        4: {0: 100.0, 1000: 150.0, 2000: 200.0},
        8: {0: 200.0, 1000: 300.0, 2000: 400.0},
    }
    intercepts, slopes = fit_message_length_slices(samples)
    assert intercepts[4] == pytest.approx(100.0)
    assert slopes[4] == pytest.approx(0.05)
    assert intercepts[8] == pytest.approx(200.0)
    assert slopes[8] == pytest.approx(0.1)


def test_fit_timing_expression_roundtrip():
    # Build synthetic data from a Table-3-like formula and verify the
    # fitting pipeline recovers it.
    def model(m, p):
        return (26.0 * p + 8.6) + (0.038 * p - 0.12) * m

    samples = {p: {m: model(m, p) for m in (4, 256, 4096, 65536)}
               for p in (2, 4, 8, 16, 32, 64)}
    expression = fit_timing_expression("t3d", "alltoall", samples)
    assert expression.startup.form == LINEAR_FORM
    assert expression.startup.coef == pytest.approx(26.0, rel=1e-6)
    assert expression.per_byte.form == LINEAR_FORM
    assert expression.per_byte.coef == pytest.approx(0.038, rel=1e-6)
    assert expression.evaluate(512, 64) == pytest.approx(model(512, 64))


def test_fit_timing_expression_barrier():
    samples = {p: {0: 123.0 * math.log2(p) - 90.0}
               for p in (2, 4, 8, 16, 32)}
    expression = fit_timing_expression("sp2", "barrier", samples)
    assert expression.startup.form == LOG_FORM
    assert expression.per_byte.evaluate(64) == 0.0


def test_fit_timing_expression_empty_rejected():
    with pytest.raises(ValueError):
        fit_timing_expression("sp2", "broadcast", {})


def test_term_validation():
    with pytest.raises(ValueError):
        Term("cubic", 1.0, 0.0)
    with pytest.raises(ValueError):
        Term(LOG_FORM, 1.0, 0.0).evaluate(0)


@given(st.floats(0.1, 100), st.floats(-50, 200))
@settings(max_examples=40, deadline=None)
def test_fit_term_exact_recovery_property(coef, const):
    ps = [2, 4, 8, 16, 32, 64, 128]
    values = [coef * math.log2(p) + const for p in ps]
    term = fit_term(ps, values)
    for p in ps:
        assert term.evaluate(p) == pytest.approx(
            coef * math.log2(p) + const, rel=1e-6, abs=1e-6)
