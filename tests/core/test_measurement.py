"""Tests for the paper's measurement procedure on the simulator."""

import pytest

from repro.core import (
    MeasurementConfig,
    QUICK_CONFIG,
    STARTUP_PROBE_BYTES,
    measure_collective,
    measure_startup_latency,
)

FAST = MeasurementConfig(iterations=2, warmup_iterations=1, runs=2,
                         seed=11)


def test_measurement_returns_sample_fields():
    sample = measure_collective("t3d", "broadcast", 1024, 8, FAST)
    assert sample.op == "broadcast"
    assert sample.machine == "t3d"
    assert sample.nbytes == 1024
    assert sample.num_nodes == 8
    assert len(sample.run_times_us) == 2
    assert sample.process_min_us <= sample.process_mean_us <= \
        sample.process_max_us
    assert sample.time_us > 0


def test_measurement_is_reproducible():
    a = measure_collective("sp2", "reduce", 256, 4, FAST)
    b = measure_collective("sp2", "reduce", 256, 4, FAST)
    assert a.time_us == b.time_us
    assert a.run_times_us == b.run_times_us


def test_different_seeds_differ():
    a = measure_collective("sp2", "reduce", 256, 4, FAST)
    other = MeasurementConfig(iterations=2, warmup_iterations=1, runs=2,
                              seed=99)
    b = measure_collective("sp2", "reduce", 256, 4, other)
    assert a.time_us != b.time_us


def test_runs_vary_with_jitter():
    sample = measure_collective("paragon", "gather", 512, 8, FAST)
    assert len(set(sample.run_times_us)) > 1


def test_warmup_discard_lowers_time():
    # Without warm-up discard the first-touch penalty lands inside the
    # timed loop, inflating the average.
    cold = MeasurementConfig(iterations=2, warmup_iterations=0, runs=1,
                             seed=5)
    warm = MeasurementConfig(iterations=2, warmup_iterations=1, runs=1,
                             seed=5)
    t_cold = measure_collective("sp2", "broadcast", 4096, 8, cold).time_us
    t_warm = measure_collective("sp2", "broadcast", 4096, 8, warm).time_us
    assert t_cold > t_warm


def test_startup_probe_uses_short_message():
    sample = measure_startup_latency("t3d", "broadcast", 8, FAST)
    assert sample.nbytes == STARTUP_PROBE_BYTES


def test_startup_probe_barrier_uses_zero_bytes():
    sample = measure_startup_latency("t3d", "barrier", 8, FAST)
    assert sample.nbytes == 0


def test_longer_message_never_faster():
    small = measure_collective("t3d", "alltoall", 16, 8, FAST).time_us
    large = measure_collective("t3d", "alltoall", 65536, 8, FAST).time_us
    assert large > small


def test_more_nodes_never_faster_for_linear_ops():
    few = measure_collective("paragon", "scatter", 1024, 4, FAST).time_us
    many = measure_collective("paragon", "scatter", 1024, 16, FAST).time_us
    assert many > few


def test_config_validation():
    with pytest.raises(ValueError):
        MeasurementConfig(iterations=0)
    with pytest.raises(ValueError):
        MeasurementConfig(warmup_iterations=-1)
    with pytest.raises(ValueError):
        MeasurementConfig(runs=0)


def test_quick_config_cheaper_than_paper():
    assert QUICK_CONFIG.iterations < 20
    assert QUICK_CONFIG.runs < 5


def test_max_reduce_uses_slowest_process():
    # The reported time must be >= the mean over processes.
    sample = measure_collective("sp2", "gather", 1024, 8, FAST)
    assert sample.process_max_us >= sample.process_mean_us
