"""Tests for bandwidth derivations and report formatting."""

import pytest

from repro.core import (
    aggregated_bandwidth_mbs,
    estimate_rinf_two_point,
    format_ratio,
    format_series,
    format_table,
    format_us,
    paper_expression,
    rinf_from_expression,
)


def test_aggregated_bandwidth_example():
    # 64-node total exchange of 64 KB in 317 ms -> ~847 MB/s per the
    # paper's own arithmetic in Section 5.
    bw = aggregated_bandwidth_mbs("alltoall", 65536, 64,
                                  total_time_us=317000.0)
    # paper rounds 64*63 to 64*64 = 256 MB; exact f gives ~795 MB/s.
    assert bw == pytest.approx(795.0, rel=0.02)


def test_aggregated_bandwidth_guard():
    assert aggregated_bandwidth_mbs("broadcast", 64, 8, 10.0,
                                    startup_us=20.0) == float("inf")


def test_two_point_estimate_matches_formula():
    expr = paper_expression("t3d", "alltoall")
    samples = {16384: expr.evaluate(16384, 64),
               65536: expr.evaluate(65536, 64)}
    estimated = estimate_rinf_two_point("alltoall", 64, samples)
    from_formula = rinf_from_expression(expr, 64)
    assert estimated == pytest.approx(from_formula, rel=1e-6)


def test_two_point_requires_two_samples():
    with pytest.raises(ValueError):
        estimate_rinf_two_point("alltoall", 64, {1024: 5.0})


def test_two_point_flat_curve_is_infinite():
    assert estimate_rinf_two_point("broadcast", 8,
                                   {100: 5.0, 200: 5.0}) == float("inf")


def test_format_us_units():
    assert format_us(12.3) == "12.3 us"
    assert format_us(4500.0) == "4.5 ms"
    assert format_us(2_500_000.0) == "2.5 s"
    assert format_us(float("inf")) == "inf"
    assert format_us(float("nan")) == "n/a"


def test_format_ratio():
    assert format_ratio(200.0, 100.0) == "2.00x"
    assert format_ratio(1.0, 0.0) == "n/a"


def test_format_table_alignment():
    table = format_table(["op", "time"],
                         [["broadcast", "1.0"], ["scan", "22.5"]],
                         title="demo")
    lines = table.splitlines()
    assert lines[0] == "demo"
    assert "op" in lines[1] and "time" in lines[1]
    assert len(lines) == 5
    # All data rows align on the separator column.
    assert lines[3].index("|") == lines[4].index("|")


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only one"]])


def test_format_series():
    out = format_series("t3d", {2: 35.0, 4: 58.1234})
    assert out.startswith("t3d [us]:")
    assert "2=35" in out
    assert "4=58.12" in out
