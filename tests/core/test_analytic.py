"""Tests for the analytic (no-simulation) performance model."""

import pytest

from repro.core import MeasurementConfig, measure_collective
from repro.core.analytic import AnalyticModel, predict_time_us
from repro.machines import PARAGON, SP2, T3D, get_machine_spec

CFG = MeasurementConfig(iterations=3, warmup_iterations=1, runs=1)

ALL_OPS = ("barrier", "broadcast", "reduce", "scan", "scatter",
           "gather", "alltoall", "allreduce", "allgather",
           "reduce_scatter")


@pytest.mark.parametrize("spec", [SP2, T3D, PARAGON])
@pytest.mark.parametrize("op", ALL_OPS)
def test_predict_every_op(spec, op):
    value = predict_time_us(spec, op, 1024, 16)
    assert value > 0


def test_predict_validation_errors():
    model = AnalyticModel(SP2)
    with pytest.raises(ValueError):
        model.predict("broadcast", 8, 1)
    with pytest.raises(ValueError):
        model.predict("broadcast", -1, 8)
    with pytest.raises(ValueError):
        model.predict("alltoallv", 8, 8)


def test_prediction_monotone_in_message_size():
    for spec in (SP2, T3D, PARAGON):
        small = predict_time_us(spec, "broadcast", 4, 16)
        large = predict_time_us(spec, "broadcast", 65536, 16)
        assert large > small


def test_prediction_monotone_in_machine_size():
    for op in ("scatter", "alltoall", "broadcast"):
        assert predict_time_us(SP2, op, 1024, 64) > \
            predict_time_us(SP2, op, 1024, 8)


def test_t3d_hardware_barrier_predicted_flat():
    assert predict_time_us(T3D, "barrier", 0, 64) < 10.0
    assert predict_time_us(SP2, "barrier", 0, 64) > 100.0


@pytest.mark.parametrize("machine,op,nbytes,p", [
    ("sp2", "broadcast", 4, 32),
    ("sp2", "broadcast", 65536, 32),
    ("sp2", "alltoall", 65536, 16),
    ("sp2", "barrier", 0, 32),
    ("t3d", "scatter", 65536, 32),
    ("t3d", "scan", 1024, 16),
    ("t3d", "alltoall", 4, 16),
    ("paragon", "gather", 4, 32),
    ("paragon", "reduce", 16384, 16),
    ("paragon", "alltoall", 65536, 16),
])
def test_prediction_matches_simulation_within_40_percent(machine, op,
                                                         nbytes, p):
    spec = get_machine_spec(machine)
    predicted = predict_time_us(spec, op, nbytes, p)
    simulated = measure_collective(machine, op, nbytes, p, CFG).time_us
    assert 0.6 < predicted / simulated < 1.4, (predicted, simulated)


def test_prediction_is_pure():
    # No simulation state: two calls agree exactly and are cheap.
    a = predict_time_us(SP2, "alltoall", 65536, 128)
    b = predict_time_us(SP2, "alltoall", 65536, 128)
    assert a == b
