"""Vectorized evaluation paths agree exactly with the scalar ones."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PAPER_TABLE3,
    AnalyticModel,
    predict_batch_us,
    table3_grid,
)
from repro.machines import PARAGON, SP2, T3D, get_machine_spec

ALL_OPS = ("barrier", "broadcast", "reduce", "scan", "scatter",
           "gather", "alltoall", "allreduce", "allgather",
           "reduce_scatter")

POWER_OF_TWO_P = (2, 4, 8, 16, 32, 64, 128)


@settings(max_examples=60, deadline=None)
@given(machine=st.sampled_from(("sp2", "t3d", "paragon")),
       op=st.sampled_from(ALL_OPS),
       p=st.sampled_from(POWER_OF_TWO_P),
       sizes=st.lists(st.integers(min_value=0, max_value=1 << 17),
                      min_size=1, max_size=6))
def test_predict_batch_elementwise_equals_scalar(machine, op, p, sizes):
    model = AnalyticModel(get_machine_spec(machine))
    batch = model.predict_batch(op, sizes, p)
    assert batch.shape == (len(sizes),)
    for nbytes, time_us in zip(sizes, batch):
        assert time_us == model.predict(op, nbytes, p)


def test_predict_batch_spans_dma_threshold():
    """One vector straddling the T3D BLT cutoff: both regimes in one
    pass must match the scalar path on each side."""
    assert T3D.dma is not None
    cutoff = T3D.dma.min_message_bytes
    sizes = [cutoff // 2, cutoff - 1, cutoff, cutoff + 1, 4 * cutoff]
    model = AnalyticModel(T3D)
    batch = model.predict_batch("scatter", sizes, 16)
    scalar = [model.predict("scatter", m, 16) for m in sizes]
    assert list(batch) == scalar


def test_predict_batch_validation():
    model = AnalyticModel(SP2)
    with pytest.raises(ValueError):
        model.predict_batch("broadcast", [8], 1)
    with pytest.raises(ValueError):
        model.predict_batch("broadcast", [8, -1], 8)
    with pytest.raises(ValueError):
        model.predict_batch("alltoallv", [8], 8)
    with pytest.raises(ValueError):
        model.predict_batch("broadcast", [[8, 16]], 8)


def test_predict_batch_wrapper_matches_model():
    values = predict_batch_us(PARAGON, "gather", (4, 1024), 32)
    model = AnalyticModel(PARAGON)
    assert list(values) == [model.predict("gather", 4, 32),
                            model.predict("gather", 1024, 32)]


def test_table3_grid_matches_pointwise_evaluation():
    sizes = (4, 1024, 65536)
    nodes = (2, 16, 128)
    grids = table3_grid(sizes, nodes)
    assert set(grids) == set(PAPER_TABLE3)
    for (machine, op), grid in grids.items():
        expression = PAPER_TABLE3[(machine, op)]
        assert grid.shape == (len(nodes), len(sizes))
        for i, p in enumerate(nodes):
            for j, m in enumerate(sizes):
                assert grid[i, j] == \
                    pytest.approx(expression.evaluate(m, p), rel=1e-12)


def test_table3_grid_key_selection():
    keys = [("sp2", "barrier"), ("t3d", "alltoall")]
    grids = table3_grid((4,), (2,), keys=keys)
    assert sorted(grids) == sorted(keys)


def test_term_evaluate_batch_matches_scalar():
    for (machine, op), expression in PAPER_TABLE3.items():
        batch = expression.startup.evaluate_batch(POWER_OF_TWO_P)
        for p, value in zip(POWER_OF_TWO_P, batch):
            assert value == pytest.approx(
                expression.startup.evaluate(p), rel=1e-12)


def test_term_evaluate_batch_rejects_bad_p():
    term = PAPER_TABLE3[("sp2", "broadcast")].startup
    with pytest.raises(ValueError):
        term.evaluate_batch([2, 0])
    assert isinstance(term.evaluate_batch([2, 4]), np.ndarray)
