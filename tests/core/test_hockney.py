"""Tests for the Hockney point-to-point model."""

import pytest

from repro.core import HockneyFit, fit_hockney, measure_pingpong


def test_pingpong_monotone_in_size():
    small = measure_pingpong("t3d", 4)
    large = measure_pingpong("t3d", 65536)
    assert large > small


def test_pingpong_repetitions_validated():
    with pytest.raises(ValueError):
        measure_pingpong("t3d", 4, repetitions=0)


def test_fit_recovers_nic_bandwidth():
    # r_inf must land on the host-driven NIC rate: 40 / 100 / 175 MB/s.
    for machine, expected in (("sp2", 40.0), ("t3d", 100.0),
                              ("paragon", 175.0)):
        fit = fit_hockney(machine)
        assert fit.r_inf_mbs == pytest.approx(expected, rel=0.05), \
            machine
        assert fit.r_squared > 0.999


def test_latency_ranking_t3d_best():
    fits = {m: fit_hockney(m) for m in ("sp2", "t3d", "paragon")}
    assert fits["t3d"].latency_us < fits["sp2"].latency_us
    assert fits["t3d"].latency_us < fits["paragon"].latency_us


def test_n_half_definition():
    fit = HockneyFit(machine="x", latency_us=50.0, r_inf_mbs=100.0,
                     r_squared=1.0)
    # At m = n_half the effective bandwidth is half of r_inf.
    assert fit.bandwidth_mbs(fit.n_half_bytes) == pytest.approx(50.0)


def test_predicted_time_matches_measured():
    fit = fit_hockney("sp2")
    measured = measure_pingpong("sp2", 16384)
    assert fit.time_us(16384) == pytest.approx(measured, rel=0.15)


def test_hockney_does_not_predict_collective_ranking():
    # The paper's point: the Paragon has the highest p2p r_inf of the
    # three, yet is the slowest machine for short-message collectives.
    from repro.core import MeasurementConfig, measure_startup_latency
    cfg = MeasurementConfig(iterations=2, warmup_iterations=1, runs=1)
    fits = {m: fit_hockney(m) for m in ("sp2", "t3d", "paragon")}
    assert max(fits, key=lambda m: fits[m].r_inf_mbs) == "paragon"
    startup = {m: measure_startup_latency(m, "alltoall", 16, cfg).time_us
               for m in ("sp2", "t3d", "paragon")}
    assert max(startup, key=startup.get) == "paragon"


def test_fit_validation():
    with pytest.raises(ValueError):
        fit_hockney("t3d", sizes=[64])
