"""Tests for the parameter-sensitivity scanner."""

import pytest

from repro.core import (
    format_sensitivities,
    scan_sensitivities,
    tunable_parameters,
)
from repro.machines import PARAGON, SP2, T3D


def test_tunable_parameters_cover_all_blocks():
    names = tunable_parameters(T3D)
    assert "software.send_msg_us" in names
    assert "memory.copy_us_per_byte" in names
    assert "nic.bandwidth_mbs" in names
    assert "network.hop_latency_us" in names
    assert "dma.setup_us" in names  # the T3D has a BLT


def test_sp2_has_no_dma_parameters():
    assert not any(name.startswith("dma.")
                   for name in tunable_parameters(SP2))


def test_scan_sorted_by_magnitude():
    results = scan_sensitivities(SP2, "broadcast", 4, 32)
    magnitudes = [abs(s.elasticity) for s in results]
    assert magnitudes == sorted(magnitudes, reverse=True)


def test_long_alltoall_is_copy_bound_on_sp2():
    results = scan_sensitivities(SP2, "alltoall", 65536, 64)
    assert results[0].parameter == "memory.copy_us_per_byte"
    assert results[0].elasticity > 0.8


def test_short_broadcast_is_software_bound():
    results = scan_sensitivities(T3D, "broadcast", 4, 64)
    top = {s.parameter for s in results[:3]}
    assert top <= {"software.deliver_us", "software.send_msg_us",
                   "software.recv_msg_us", "software.call_setup_us"}


def test_t3d_barrier_bypasses_the_messaging_stack():
    # The hardwired barrier depends only on its own (tiny) call setup;
    # every messaging-stack parameter is off its path.
    results = scan_sensitivities(T3D, "barrier", 0, 64)
    for s in results:
        if s.parameter == "software.barrier_call_setup_us":
            continue
        assert abs(s.elasticity) < 0.05, s.parameter


def test_long_scatter_on_t3d_depends_on_blt():
    results = scan_sensitivities(T3D, "scatter", 65536, 64)
    top = {s.parameter for s in results[:3]}
    assert "dma.us_per_byte" in top


def test_bandwidth_elasticity_is_negative():
    # Raising a bandwidth lowers time.
    results = scan_sensitivities(PARAGON, "alltoall", 65536, 32,
                                 parameters=["nic.bandwidth_mbs"])
    assert results[0].elasticity <= 0.0


def test_invalid_step_rejected():
    with pytest.raises(ValueError):
        scan_sensitivities(SP2, "broadcast", 4, 8, relative_step=0.0)


def test_format_renders_table():
    results = scan_sensitivities(SP2, "reduce", 1024, 16)
    text = format_sensitivities(results, top=4)
    assert "sensitivity of reduce" in text
    assert "elasticity" in text
    with pytest.raises(ValueError):
        format_sensitivities([])


def test_elasticity_definition():
    results = scan_sensitivities(SP2, "broadcast", 65536, 2,
                                 parameters=["memory.copy_us_per_byte"],
                                 relative_step=0.10)
    s = results[0]
    expected = ((s.perturbed_us - s.baseline_us) / s.baseline_us) / 0.10
    assert s.elasticity == pytest.approx(expected)
