"""Regression: every FaultPlan field is covered by the cache key.

The sweep cache must never serve a result computed under a different
fault plan, so changing *any* plan field — including nested retry
parameters and individual fault-event fields — has to produce a
different cell fingerprint.
"""

import dataclasses

from repro.core import MeasurementConfig
from repro.faults import (
    FaultPlan,
    LinkDegradation,
    LinkOutage,
    NicStall,
    NodeSlowdown,
    RetryConfig,
)
from repro.machines import get_machine_spec
from repro.runner import cell_fingerprint

#: A plan with every field populated, so each mutation below changes
#: an *existing* value rather than adding a first entry.
BASE_PLAN = FaultPlan(
    name="base",
    loss_probability=0.01,
    corruption_probability=0.005,
    link_outages=(LinkOutage(src=0, dst=1, start_us=10.0,
                             end_us=20.0),),
    link_degradations=(LinkDegradation(src=1, dst=2, factor=2.0,
                                       start_us=5.0),),
    nic_stalls=(NicStall(node=1, start_us=50.0, duration_us=25.0),),
    node_slowdowns=(NodeSlowdown(node=2, factor=1.5),),
    retry=RetryConfig(timeout_us=500.0, backoff=1.5,
                      max_timeout_us=4000.0, max_retries=4,
                      ack_bytes=8),
)

#: One mutated variant per FaultPlan field (and per RetryConfig field,
#: since the retry protocol changes timings too).
MUTATIONS = {
    "name": dataclasses.replace(BASE_PLAN, name="renamed"),
    "loss_probability": dataclasses.replace(
        BASE_PLAN, loss_probability=0.02),
    "corruption_probability": dataclasses.replace(
        BASE_PLAN, corruption_probability=0.01),
    "link_outages": dataclasses.replace(
        BASE_PLAN,
        link_outages=(LinkOutage(src=0, dst=1, start_us=10.0,
                                 end_us=21.0),)),
    "link_degradations": dataclasses.replace(
        BASE_PLAN,
        link_degradations=(LinkDegradation(src=1, dst=2, factor=3.0,
                                           start_us=5.0),)),
    "nic_stalls": dataclasses.replace(
        BASE_PLAN,
        nic_stalls=(NicStall(node=1, start_us=50.0,
                             duration_us=26.0),)),
    "node_slowdowns": dataclasses.replace(
        BASE_PLAN,
        node_slowdowns=(NodeSlowdown(node=3, factor=1.5),)),
    "retry.timeout_us": dataclasses.replace(
        BASE_PLAN, retry=dataclasses.replace(
            BASE_PLAN.retry, timeout_us=501.0)),
    "retry.backoff": dataclasses.replace(
        BASE_PLAN, retry=dataclasses.replace(
            BASE_PLAN.retry, backoff=1.6)),
    "retry.max_timeout_us": dataclasses.replace(
        BASE_PLAN, retry=dataclasses.replace(
            BASE_PLAN.retry, max_timeout_us=5000.0)),
    "retry.max_retries": dataclasses.replace(
        BASE_PLAN, retry=dataclasses.replace(
            BASE_PLAN.retry, max_retries=5)),
    "retry.ack_bytes": dataclasses.replace(
        BASE_PLAN, retry=dataclasses.replace(
            BASE_PLAN.retry, ack_bytes=16)),
}


def _fingerprint(plan):
    config = MeasurementConfig(iterations=1, warmup_iterations=0,
                               runs=1, faults=plan)
    return cell_fingerprint(get_machine_spec("t3d"), "broadcast",
                            1024, 4, config)


def test_mutations_cover_every_plan_field():
    mutated = {key.split(".")[0] for key in MUTATIONS}
    plan_fields = {f.name for f in dataclasses.fields(FaultPlan)}
    assert mutated == plan_fields
    retry_mutated = {key.split(".")[1] for key in MUTATIONS
                     if key.startswith("retry.")}
    retry_fields = {f.name for f in dataclasses.fields(RetryConfig)}
    assert retry_mutated == retry_fields


def test_any_plan_field_change_alters_the_fingerprint():
    base = _fingerprint(BASE_PLAN)
    seen = {base}
    for name, plan in MUTATIONS.items():
        key = _fingerprint(plan)
        assert key != base, f"mutating {name} left the cache key intact"
        seen.add(key)
    # All mutations are also distinct from one another.
    assert len(seen) == len(MUTATIONS) + 1


def test_plan_presence_alters_the_fingerprint():
    config = MeasurementConfig(iterations=1, warmup_iterations=0,
                               runs=1)
    spec = get_machine_spec("t3d")
    without = cell_fingerprint(spec, "broadcast", 1024, 4, config)
    assert _fingerprint(BASE_PLAN) != without
