"""Tests for the transport's ack/timeout/retransmit protocol and
graceful degradation around dead links."""

import pytest

from repro.faults import FaultPlan, LinkDegradation, LinkOutage, \
    RetryConfig
from repro.mpi import DeliveryError, MpiWorld


def _send_program(nbytes, count=1):
    def program(ctx):
        if ctx.rank == 0:
            for i in range(count):
                yield from ctx.send(1, nbytes, tag=i)
        elif ctx.rank == 1:
            for i in range(count):
                yield from ctx.recv(0, tag=i)
            return ctx.wtime()
        return None
        yield  # pragma: no cover - make every rank a generator

    return program


def test_lost_messages_are_retransmitted_and_delivered():
    plan = FaultPlan(name="lossy", loss_probability=0.4)
    world = MpiWorld("sp2", 2, seed=5, faults=plan)
    done = world.run(_send_program(4096, count=20))[1]
    injector = world.machine.injector
    assert injector.messages_lost > 0
    assert injector.retransmits >= injector.messages_lost
    assert done > 0  # every message still arrived


def test_corrupted_messages_are_retransmitted():
    plan = FaultPlan(name="corrupting", corruption_probability=0.5)
    world = MpiWorld("sp2", 2, seed=5, faults=plan)
    world.run(_send_program(4096, count=20))
    injector = world.machine.injector
    assert injector.messages_corrupted > 0
    assert injector.retransmits >= injector.messages_corrupted


def test_retry_exhaustion_raises_delivery_error():
    plan = FaultPlan(name="hopeless", loss_probability=0.98,
                     retry=RetryConfig(max_retries=0))
    world = MpiWorld("sp2", 2, seed=1, faults=plan)
    with pytest.raises(DeliveryError) as excinfo:
        world.run(_send_program(1024))
    error = excinfo.value
    assert (error.src, error.dst) == (0, 1)
    assert error.attempts == 1


def test_retransmission_timeout_is_visible_in_the_clock():
    plan = FaultPlan(name="lossy", loss_probability=0.4,
                     retry=RetryConfig(timeout_us=1000.0, backoff=2.0))
    world = MpiWorld("sp2", 2, seed=5, faults=plan)
    done = world.run(_send_program(1024, count=10))[1]
    clean = MpiWorld("sp2", 2, seed=5).run(
        _send_program(1024, count=10))[1]
    injector = world.machine.injector
    assert injector.retransmits >= 1
    # The wire processes pipeline, so RTO waits overlap — but at least
    # one full initial RTO must show up on the receiver's clock.
    assert done >= clean + plan.retry.timeout_us


def test_unroutable_destination_fails_cleanly():
    # A 2-node mesh has exactly one link; kill it and the transport
    # runs out of alternatives instead of hanging.
    plan = FaultPlan(
        name="partitioned",
        link_outages=(LinkOutage(src=0, dst=1, start_us=0.0),),
        retry=RetryConfig(max_retries=2))
    world = MpiWorld("paragon", 2, seed=0, faults=plan)
    with pytest.raises(DeliveryError):
        world.run(_send_program(1024))
    injector = world.machine.injector
    assert injector.unroutable >= 1
    assert injector.retransmits == 2


def test_spurious_retransmit_detected_when_wire_outruns_rto():
    # A harmless degradation activates the protocol; with an RTO far
    # below the 64 KB wire time the ack can never beat the timer, so
    # the protocol books the redundant retransmission it would have
    # sent.
    plan = FaultPlan(
        name="tight-rto",
        link_degradations=(LinkDegradation(src=0, dst=1,
                                           factor=1.0),),
        retry=RetryConfig(timeout_us=10.0, max_timeout_us=10.0))
    world = MpiWorld("t3d", 2, seed=0, faults=plan)
    world.run(_send_program(65536))
    assert world.machine.injector.spurious_retransmits >= 1


def test_collectives_survive_a_lossy_fabric():
    plan = FaultPlan(name="lossy", loss_probability=0.05)
    world = MpiWorld("t3d", 8, seed=11, faults=plan)
    elapsed = world.run_collective("allreduce", 2048, iterations=3)
    clean = MpiWorld("t3d", 8, seed=11).run_collective(
        "allreduce", 2048, iterations=3)
    injector = world.machine.injector
    assert injector.messages_lost > 0
    assert elapsed > clean  # losses cost RTO waits
