"""Tests for the fault-injection runtime: point queries, determinism,
stream isolation, and the outage watchdog."""

import pytest

from repro.faults import (
    FAULT_FREE,
    FaultPlan,
    LinkDegradation,
    LinkOutage,
    NicStall,
    NodeSlowdown,
    fault_preset,
)
from repro.mpi import MpiWorld
from repro.sim import RandomStreams

MB = 1 << 20


def _send_program(nbytes):
    """Rank 0 sends ``nbytes`` to rank 1; everyone else idles."""

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, nbytes)
        elif ctx.rank == 1:
            yield from ctx.recv(0)
            return ctx.wtime()
        return None
        yield  # pragma: no cover - make every rank a generator

    return program


def test_fault_free_plan_builds_no_injector():
    world = MpiWorld("t3d", 4, seed=1, faults=FAULT_FREE)
    assert world.machine.injector is None


def test_fault_free_plan_changes_no_timing():
    baseline = MpiWorld("t3d", 8, seed=7).run_collective(
        "broadcast", 4096)
    with_plan = MpiWorld("t3d", 8, seed=7,
                         faults=FAULT_FREE).run_collective(
        "broadcast", 4096)
    assert with_plan == baseline


def test_point_queries():
    plan = FaultPlan(
        name="composite",
        link_outages=(LinkOutage(src=0, dst=1, start_us=100.0,
                                 end_us=200.0),),
        link_degradations=(LinkDegradation(src=1, dst=2, factor=3.0,
                                           start_us=0.0),),
        nic_stalls=(NicStall(node=2, start_us=50.0,
                             duration_us=25.0),),
        node_slowdowns=(NodeSlowdown(node=3, factor=2.0,
                                     start_us=0.0, end_us=500.0),),
    )
    world = MpiWorld("t3d", 8, seed=0, faults=plan)
    injector = world.machine.injector
    topology = world.machine.topology

    assert injector.dead_links(0.0) == frozenset()
    dead_link = topology.route(0, 1)[0]
    assert injector.dead_links(150.0) == frozenset({dead_link})
    assert injector.dead_links(250.0) == frozenset()

    degraded = topology.route(1, 2)[0]
    assert injector.degrade_factor(degraded, 10.0) == 3.0
    assert injector.degrade_factor(dead_link, 10.0) == 1.0
    assert injector.route_degrade_factor([dead_link, degraded],
                                         10.0) == 3.0

    assert injector.nic_delay(2, 60.0) == pytest.approx(15.0)
    assert injector.nic_delay(2, 80.0) == 0.0
    assert injector.nic_delay(0, 60.0) == 0.0

    assert injector.cpu_factor(3, 100.0) == 2.0
    assert injector.cpu_factor(3, 600.0) == 1.0
    assert injector.cpu_factor(1, 100.0) == 1.0


def test_fault_referencing_missing_node_rejected():
    plan = FaultPlan(nic_stalls=(NicStall(node=10, start_us=0.0,
                                          duration_us=1.0),))
    with pytest.raises(ValueError, match="node 10"):
        MpiWorld("t3d", 4, seed=0, faults=plan)


def test_link_fault_needs_distinct_nodes():
    plan = FaultPlan(link_outages=(LinkOutage(src=2, dst=2),))
    with pytest.raises(ValueError, match="distinct nodes"):
        MpiWorld("t3d", 4, seed=0, faults=plan)


def test_scheduled_faults_leave_message_stream_untouched():
    # A plan without probabilistic faults must not consume the
    # faults.message stream, so its draws stay aligned with a fresh
    # RandomStreams at the same seed.
    world = MpiWorld("t3d", 8, seed=42,
                     faults=fault_preset("single-link-outage"))
    world.run_collective("broadcast", 1024)
    fresh = RandomStreams(42)
    assert world.streams.uniform("faults.message", 0.0, 1.0) == \
        fresh.uniform("faults.message", 0.0, 1.0)


def test_probabilistic_fates_are_seed_deterministic():
    plan = fault_preset("lossy")

    def run():
        world = MpiWorld("sp2", 8, seed=13, faults=plan)
        elapsed = world.run_collective("alltoall", 2048)
        injector = world.machine.injector
        return (elapsed, injector.messages_lost,
                injector.messages_corrupted, injector.retransmits)

    assert run() == run()


def test_outage_watchdog_aborts_in_flight_transfer():
    # A 1 MB transfer is on the wire when the 0->1 link dies at
    # t=2000; the watchdog interrupts it, the transport waits out the
    # RTO, and the retransmission goes around the dead link.
    plan = FaultPlan(
        name="mid-flight",
        link_outages=(LinkOutage(src=0, dst=1, start_us=2000.0),))
    clean = MpiWorld("t3d", 8, seed=3)
    clean_done = clean.run(_send_program(MB))[1]
    world = MpiWorld("t3d", 8, seed=3, faults=plan)
    done = world.run(_send_program(MB))[1]
    injector = world.machine.injector
    assert injector.transfers_aborted == 1
    assert injector.retransmits >= 1
    assert injector.reroutes >= 1
    assert done > clean_done  # the RTO + detour cost is visible


def test_outage_from_start_reroutes_without_abort():
    plan = FaultPlan(
        name="down-from-boot",
        link_outages=(LinkOutage(src=0, dst=1, start_us=0.0),))
    world = MpiWorld("t3d", 8, seed=3, faults=plan)
    world.run(_send_program(4096))
    injector = world.machine.injector
    assert injector.reroutes >= 1
    assert injector.transfers_aborted == 0
