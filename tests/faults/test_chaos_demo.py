"""The PR's acceptance demo: a 64-node T3D broadcast survives a
single-link outage via reroute + retransmit, and the latency penalty
shows up in exported T0(p) curves."""

from repro.bench import degradation_curves, fault_counters
from repro.core import QUICK_CONFIG
from repro.faults import FaultPlan, LinkOutage, fault_preset
from repro.mpi import MpiWorld

MB = 1 << 20

#: Timed so the 0->1 link dies while the root's 1 MB transfers that
#: cross it are on the wire (see test below for the scan that found
#: the window).
MID_FLIGHT_OUTAGE = FaultPlan(
    name="mid-broadcast-outage",
    link_outages=(LinkOutage(src=0, dst=1, start_us=23000.0),))


def test_64_node_broadcast_survives_mid_flight_outage():
    clean = MpiWorld("t3d", 64, seed=0).run_collective("broadcast", MB)
    world = MpiWorld("t3d", 64, seed=0, faults=MID_FLIGHT_OUTAGE)
    elapsed = world.run_collective("broadcast", MB)
    injector = world.machine.injector
    # The dying link aborted in-flight transfers...
    assert injector.transfers_aborted >= 1
    # ...which were retransmitted around the dead link...
    assert injector.retransmits >= 1
    assert injector.reroutes >= 1
    assert injector.unroutable == 0
    # ...and the broadcast still completed, at a visible latency cost.
    assert elapsed > clean


def test_demo_counters_via_bench_helper():
    world = MpiWorld("t3d", 64, seed=0, faults=MID_FLIGHT_OUTAGE)
    world.run_collective("broadcast", MB)
    counters = fault_counters(world)
    assert counters["transfers_aborted"] >= 1
    assert counters["retransmits"] >= 1
    clean_world = MpiWorld("t3d", 64, seed=0)
    clean_world.run_collective("broadcast", MB)
    assert all(count == 0
               for count in fault_counters(clean_world).values())


def test_penalty_visible_in_t0_curves():
    data = degradation_curves("t3d", "broadcast",
                              fault_preset("lossy"),
                              config=QUICK_CONFIG)
    clean = data.get("broadcast", "t3d", "clean")
    faulty = data.get("broadcast", "t3d", "lossy")
    assert set(clean) == set(faulty)
    assert all(faulty[p] >= clean[p] for p in clean)
    # At 64 nodes the probe storm guarantees losses, so the RTO
    # penalty is unambiguous.
    assert faulty[64] > clean[64]
