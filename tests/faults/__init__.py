"""Tests for the deterministic fault-injection subsystem."""
