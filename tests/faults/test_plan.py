"""Tests for fault-plan declaration, validation, and serialization."""

import dataclasses

import pytest

from repro.faults import (
    FAULT_FREE,
    FAULT_PRESETS,
    FaultPlan,
    LinkDegradation,
    LinkOutage,
    NicStall,
    NodeSlowdown,
    RetryConfig,
    fault_preset,
)


def test_fault_free_plan_is_fault_free():
    assert FAULT_FREE.is_fault_free()
    assert not FAULT_FREE.is_probabilistic


def test_every_preset_except_none_injects_something():
    for name, plan in FAULT_PRESETS.items():
        assert plan.name == ("fault-free" if name == "none" else name)
        if name != "none":
            assert not plan.is_fault_free()


def test_fault_preset_lookup_and_unknown():
    assert fault_preset("lossy") is FAULT_PRESETS["lossy"]
    with pytest.raises(KeyError, match="unknown fault preset"):
        fault_preset("bogus")


def test_probability_validation():
    with pytest.raises(ValueError, match="probability"):
        FaultPlan(loss_probability=1.0)
    with pytest.raises(ValueError, match="probability"):
        FaultPlan(corruption_probability=-0.1)
    with pytest.raises(ValueError, match="loss \\+ corruption"):
        FaultPlan(loss_probability=0.6, corruption_probability=0.5)


def test_window_validation():
    with pytest.raises(ValueError, match="empty fault window"):
        LinkOutage(src=0, dst=1, start_us=5.0, end_us=5.0)
    with pytest.raises(ValueError, match="starts in the past"):
        LinkOutage(src=0, dst=1, start_us=-1.0)
    with pytest.raises(ValueError, match="factor"):
        LinkDegradation(src=0, dst=1, factor=0.5)
    with pytest.raises(ValueError, match="factor"):
        NodeSlowdown(node=0, factor=0.9)
    with pytest.raises(ValueError, match="duration"):
        NicStall(node=0, start_us=0.0, duration_us=0.0)


def test_outage_window_activity():
    outage = LinkOutage(src=0, dst=1, start_us=10.0, end_us=20.0)
    assert not outage.active(9.9)
    assert outage.active(10.0)
    assert outage.active(19.9)
    assert not outage.active(20.0)
    forever = LinkOutage(src=0, dst=1, start_us=10.0)
    assert forever.active(1e12)


def test_nic_stall_delay():
    stall = NicStall(node=3, start_us=100.0, duration_us=50.0)
    assert stall.delay_at(99.0) == 0.0
    assert stall.delay_at(100.0) == 50.0
    assert stall.delay_at(130.0) == pytest.approx(20.0)
    assert stall.delay_at(150.0) == 0.0


def test_retry_backoff_is_bounded():
    retry = RetryConfig(timeout_us=100.0, backoff=2.0,
                        max_timeout_us=500.0, max_retries=8)
    assert retry.timeout_for_attempt(0) == 100.0
    assert retry.timeout_for_attempt(1) == 200.0
    assert retry.timeout_for_attempt(2) == 400.0
    assert retry.timeout_for_attempt(3) == 500.0  # capped
    assert retry.timeout_for_attempt(20) == 500.0


def test_retry_validation():
    with pytest.raises(ValueError, match="timeout_us"):
        RetryConfig(timeout_us=0.0)
    with pytest.raises(ValueError, match="backoff"):
        RetryConfig(backoff=0.5)
    with pytest.raises(ValueError, match="max_timeout_us"):
        RetryConfig(timeout_us=100.0, max_timeout_us=50.0)
    with pytest.raises(ValueError, match="max_retries"):
        RetryConfig(max_retries=-1)


def test_round_trip_through_dict():
    for plan in FAULT_PRESETS.values():
        assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_from_dict_rejects_unknown_fields():
    data = FAULT_FREE.to_dict()
    data["typo_field"] = 1
    with pytest.raises(ValueError, match="unknown fault-plan fields"):
        FaultPlan.from_dict(data)


def test_lists_coerced_to_tuples():
    plan = FaultPlan(link_outages=[LinkOutage(src=0, dst=1)])
    assert isinstance(plan.link_outages, tuple)
    hash(plan)  # hashable, so it can live in a frozen config
