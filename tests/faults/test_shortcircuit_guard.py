"""The analytic short-circuit must never be taken where a fault could
observe the difference.

The fast path books transfers with timestamp arithmetic instead of
simulating engines and links, which is only sound when nothing can
perturb the transfer mid-flight.  Any attached
:class:`~repro.faults.FaultPlan` therefore disables it wholesale —
these tests pin that guard and prove faulted runs behave identically
whether or not the fast path was *offered*.
"""

from repro.faults import FaultPlan, LinkOutage, RetryConfig
from repro.mpi import MpiWorld
from repro.obs.perf import WorkMeter


def _run(machine, p, op, nbytes, faults=None, fast_wire=True, seed=5):
    world = MpiWorld(machine, p, seed=seed, faults=faults,
                     fast_wire=fast_wire)
    meter = WorkMeter()
    world.env.work = meter
    elapsed = world.run_collective(op, nbytes)
    injector = world.machine.injector
    return elapsed, meter.snapshot(), injector


def test_clean_run_takes_the_short_circuit():
    _elapsed, work, injector = _run("t3d", 16, "broadcast", 4096)
    assert injector is None
    assert work["transfers_shortcircuited"] > 0


def test_fault_plan_disables_short_circuit_entirely():
    # Both a payload-level plan (loss) and a topology-level plan (link
    # outage) must force every transfer onto the simulated path.
    plans = [
        FaultPlan(name="lossy", loss_probability=0.3),
        FaultPlan(name="outage",
                  link_outages=(LinkOutage(src=0, dst=1, start_us=0.0,
                                           end_us=500.0),)),
    ]
    for plan in plans:
        _elapsed, work, injector = _run("t3d", 16, "broadcast", 4096,
                                        faults=plan)
        assert injector is not None, plan.name
        assert work["transfers_shortcircuited"] == 0, plan.name
        assert work["transfers_booked"] > 0, plan.name


def test_midflight_outage_identical_with_and_without_fast_wire():
    """A link dies while traffic is in flight: with faults attached the
    fast path is ineligible, so offering it (fast_wire=True) must not
    change a single counter or microsecond — the recovery (reroutes,
    retransmissions, RTO spans) replays exactly."""
    plan = FaultPlan(
        name="midflight",
        loss_probability=0.2,
        link_outages=(LinkOutage(src=1, dst=0, start_us=100.0,
                                 end_us=2000.0),),
        retry=RetryConfig(timeout_us=500.0, backoff=2.0, max_retries=8))
    fast = _run("sp2", 8, "allreduce", 4096, faults=plan)
    slow = _run("sp2", 8, "allreduce", 4096, faults=plan,
                fast_wire=False)
    assert fast[0] == slow[0]          # same simulated finish time
    assert fast[1] == slow[1]          # same work, byte for byte
    assert fast[1]["transfers_shortcircuited"] == 0
    # The run actually exercised the recovery machinery.
    assert fast[2].retransmits == slow[2].retransmits
    assert fast[2].retransmits > 0 or fast[1]["transfers_rerouted"] > 0


def test_faulted_time_differs_from_clean_time():
    # Sanity anchor: the guard matters because faults DO change what
    # the short-circuit would have precomputed.
    clean, _, _ = _run("sp2", 8, "allreduce", 4096)
    plan = FaultPlan(name="lossy", loss_probability=0.4,
                     retry=RetryConfig(timeout_us=1000.0))
    faulted, _, _ = _run("sp2", 8, "allreduce", 4096, faults=plan)
    assert faulted > clean
