"""Properties: faulty sweeps are bit-reproducible, and a fault-free
plan is timing-identical to running with no plan at all."""

import dataclasses

from repro.core import MeasurementConfig
from repro.faults import FAULT_FREE, fault_preset
from repro.runner import (
    ResultCache,
    SweepConfig,
    build_artifact,
    dumps_artifact,
    preset_grid,
    run_sweep,
)

FAST = MeasurementConfig(iterations=1, warmup_iterations=0, runs=1)


def _sweep_artifact(measurement, workers=1):
    grid = preset_grid("smoke")
    config = SweepConfig(mode="sim", workers=workers,
                         measurement=measurement, use_cache=False)
    result = run_sweep(grid.cells(), config, ResultCache(enabled=False))
    assert not result.quarantined
    return build_artifact(result, grid.name, config)


def test_same_seed_and_plan_give_byte_identical_artifacts():
    measurement = dataclasses.replace(FAST,
                                      faults=fault_preset("lossy"))
    first = dumps_artifact(_sweep_artifact(measurement))
    second = dumps_artifact(_sweep_artifact(measurement))
    assert first == second


def test_worker_count_does_not_change_faulty_artifacts():
    measurement = dataclasses.replace(FAST,
                                      faults=fault_preset("chaos"))
    serial = dumps_artifact(_sweep_artifact(measurement, workers=1))
    parallel = dumps_artifact(_sweep_artifact(measurement, workers=2))
    assert serial == parallel


def test_fault_free_plan_matches_no_plan_on_the_smoke_grid():
    without = _sweep_artifact(FAST)
    with_plan = _sweep_artifact(
        dataclasses.replace(FAST, faults=FAULT_FREE))
    # Fingerprints differ (the plan is part of the cache key), but
    # every measured timing must be bit-identical.
    assert with_plan["cells"] == [
        dict(cell, fingerprint=other["fingerprint"])
        for cell, other in zip(without["cells"], with_plan["cells"])
    ]
    assert [c["result"] for c in with_plan["cells"]] == \
        [c["result"] for c in without["cells"]]


def test_different_plans_give_different_fingerprints():
    lossy = _sweep_artifact(
        dataclasses.replace(FAST, faults=fault_preset("lossy")))
    chaos = _sweep_artifact(
        dataclasses.replace(FAST, faults=fault_preset("chaos")))
    lossy_keys = [c["fingerprint"] for c in lossy["cells"]]
    chaos_keys = [c["fingerprint"] for c in chaos["cells"]]
    assert set(lossy_keys).isdisjoint(chaos_keys)
