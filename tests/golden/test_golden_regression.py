"""Golden regression layer: snapshots of the closed-form outputs.

Any change to the Table 3 transcription, the timing-expression
evaluator, or the analytic cost model shows up here as a reviewable
JSON diff instead of a silent drift.  Regenerate intentionally with
``pytest --update-golden``.

All values are rounded to 9 significant digits before snapshotting so
the goldens survive last-ulp libm differences across platforms while
still catching any real (model-level) change.
"""

from repro.bench.workload import machine_sizes_for
from repro.core import (
    PAPER_MACHINE_SIZES,
    STARTUP_PROBE_BYTES,
    AnalyticModel,
    table3_grid,
)
from repro.machines import get_machine_spec
from repro.runner import preset_grid

TABLE3_SIZES = (4, 64, 1024, 16384, 65536)
TABLE3_NODES = (2, 4, 8, 16, 32, 64, 128)


def _round9(value: float) -> float:
    return float(f"{value:.9g}")


def test_table3_expression_outputs_golden(golden):
    """Table 3's 21 expressions evaluated over the paper grid."""
    grids = table3_grid(TABLE3_SIZES, TABLE3_NODES)
    payload = {}
    for (machine, op), grid in sorted(grids.items()):
        series = {}
        for i, p in enumerate(TABLE3_NODES):
            series[str(p)] = {str(m): _round9(grid[i, j])
                              for j, m in enumerate(TABLE3_SIZES)}
        payload[f"{machine}/{op}"] = series
    golden.check("table3_expressions.json", payload)


def _analytic_curves(ops, sizes):
    """op/machine -> p -> m -> predicted us, over the paper's sizes."""
    payload = {}
    for op in ops:
        for machine in ("sp2", "t3d", "paragon"):
            model = AnalyticModel(get_machine_spec(machine))
            series = {}
            for p in machine_sizes_for(machine, PAPER_MACHINE_SIZES):
                times = model.predict_batch(op, sizes, p)
                series[str(p)] = {str(m): _round9(t)
                                  for m, t in zip(sizes, times)}
            payload[f"{op}/{machine}"] = series
    return payload


def test_fig1_curve_points_golden(golden):
    """Figure 1's startup-latency curves via the analytic model."""
    ops = ("broadcast", "alltoall", "scatter", "gather", "scan",
           "reduce")
    golden.check("fig1_analytic_curves.json",
                 _analytic_curves(ops, (STARTUP_PROBE_BYTES,)))


def test_fig3_curve_points_golden(golden):
    """Figure 3's short/long machine-size curves (plus the barrier)."""
    ops = ("broadcast", "alltoall", "scatter", "gather", "scan",
           "reduce")
    payload = _analytic_curves(ops, (16, 65536))
    payload.update(_analytic_curves(("barrier",), (0,)))
    golden.check("fig3_analytic_curves.json", payload)


def test_sweep_baseline_matches_model_mode():
    """The checked-in sweep baseline reproduces from the live model.

    ``tests/golden/BENCH_sweep_baseline.json`` is what ``repro-bench
    diff`` gates against; this test regenerates the same smoke grid in
    ``model`` mode and requires a clean diff, so the baseline can
    never drift from the code that claims to reproduce it.
    """
    from pathlib import Path

    from repro.runner import (
        ResultCache,
        SweepConfig,
        build_artifact,
        diff_artifacts,
        load_artifact,
        run_sweep,
    )

    baseline_path = Path(__file__).parent / "BENCH_sweep_baseline.json"
    config = SweepConfig(mode="model", use_cache=False)
    result = run_sweep(preset_grid("smoke").cells(), config,
                       ResultCache(enabled=False))
    regenerated = build_artifact(result, "smoke", config)
    diff = diff_artifacts(load_artifact(baseline_path), regenerated,
                          rtol=1e-9)
    assert diff.clean(), diff.format()
