"""Structural tests of the collective algorithms (who talks to whom)."""

import pytest

from repro.mpi import MpiWorld


def nic_counts(machine, nodes, op, nbytes=64, algorithm=None, seed=3):
    spec = machine
    if algorithm is not None:
        from dataclasses import replace
        from repro.machines import get_machine_spec
        base = get_machine_spec(machine)
        spec = replace(base, name=f"{base.name}-struct",
                       algorithms={**dict(base.algorithms),
                                   op: algorithm})
    world = MpiWorld(spec, nodes, seed=seed)

    def program(ctx):
        yield from ctx.collective(op, nbytes)
        return None

    world.run(program)
    return ([node.nic.messages_sent for node in world.machine.nodes],
            [node.nic.messages_received for node in world.machine.nodes])


def test_binomial_broadcast_root_sends_log_p():
    sent, received = nic_counts("sp2", 16, "broadcast")
    assert sent[0] == 4  # log2(16) children
    assert received[0] == 0
    assert all(r == 1 for r in received[1:])  # everyone receives once
    # vrank 15 (0b1111) is a pure leaf.
    assert sent[15] == 0


def test_binomial_reduce_root_receives_log_p():
    sent, received = nic_counts("sp2", 16, "reduce")
    assert received[0] == 4
    assert sent[0] == 0
    assert all(s == 1 for s in sent[1:])


def test_binary_tree_reduce_interior_receives_two():
    sent, received = nic_counts("t3d", 15, "reduce")  # full binary tree
    assert received[0] == 2
    # Interior vranks 1..6 receive two and send one.
    for v in range(1, 7):
        assert received[v] == 2, v
        assert sent[v] == 1, v
    # Leaves 7..14 only send.
    for v in range(7, 15):
        assert received[v] == 0
        assert sent[v] == 1


def test_linear_gather_root_receives_all():
    sent, received = nic_counts("paragon", 8, "gather")
    assert received[0] == 7
    assert all(s == 1 for s in sent[1:])


def test_linear_scatter_root_sends_all():
    sent, received = nic_counts("paragon", 8, "scatter")
    assert sent[0] == 7
    assert all(r == 1 for r in received[1:])


def test_posted_alltoall_symmetric_load():
    sent, received = nic_counts("sp2", 8, "alltoall")
    assert all(s == 7 for s in sent)
    assert all(r == 7 for r in received)


def test_tree_barrier_root_degree():
    sent, received = nic_counts("sp2", 8, "barrier", nbytes=0)
    # Root: receives log p arrivals, sends log p releases.
    assert received[0] == 3
    assert sent[0] == 3


def test_nonzero_root_shifts_structure():
    world = MpiWorld("sp2", 8, seed=3)

    def program(ctx):
        yield from ctx.bcast(64, root=3)
        return None

    world.run(program)
    nodes = world.machine.nodes
    assert nodes[3].nic.messages_sent == 3
    assert nodes[3].nic.messages_received == 0
    assert nodes[0].nic.messages_received == 1


def test_vandegeijn_root_degree():
    sent, _ = nic_counts("sp2", 8, "broadcast",
                         algorithm="scatter_allgather_broadcast")
    # Root: 7 scatter chunks + 7 ring steps.
    assert sent[0] == 14
    # Non-roots: 7 ring sends each.
    assert all(s == 7 for s in sent[1:])
