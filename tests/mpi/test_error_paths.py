"""Error-path coverage: receive-buffer truncation and root/rank
validation across every collective."""

import pytest

from repro.mpi import MpiError, MpiWorld, RankError, TruncationError
from repro.mpi.context import COLLECTIVE_OPS


def test_oversized_message_raises_truncation_error():
    world = MpiWorld("sp2", 2, seed=0)

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 1024)
        else:
            yield from ctx.recv(0, expected_nbytes=512)

    with pytest.raises(MpiError, match="rank 1 failed") as excinfo:
        world.run(program)
    cause = excinfo.value.__cause__
    assert isinstance(cause, TruncationError)
    assert (cause.expected_nbytes, cause.actual_nbytes) == (512, 1024)
    assert (cause.src, cause.dst) == (0, 1)


def test_exact_fit_passes_the_truncation_check():
    world = MpiWorld("sp2", 2, seed=0)

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 1024)
            return None
        envelope = yield from ctx.recv(0, expected_nbytes=1024)
        return envelope.nbytes

    assert world.run(program)[1] == 1024


def test_truncation_check_on_nonblocking_wait():
    world = MpiWorld("t3d", 2, seed=0)

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 256)
        else:
            receive = ctx.irecv(0)
            yield from ctx.wait(receive, expected_nbytes=128)

    with pytest.raises(MpiError) as excinfo:
        world.run(program)
    assert isinstance(excinfo.value.__cause__, TruncationError)


@pytest.mark.parametrize("op", COLLECTIVE_OPS)
def test_out_of_range_root_raises_rank_error(op):
    world = MpiWorld("t3d", 4, seed=0)

    def program(ctx):
        yield from ctx.collective(op, 8, root=ctx.size)

    with pytest.raises(MpiError) as excinfo:
        world.run(program)
    cause = excinfo.value.__cause__
    assert isinstance(cause, RankError)
    assert "4" in str(cause)


@pytest.mark.parametrize("op", COLLECTIVE_OPS)
def test_negative_root_raises_rank_error(op):
    world = MpiWorld("t3d", 4, seed=0)

    def program(ctx):
        yield from ctx.collective(op, 8, root=-1)

    with pytest.raises(MpiError) as excinfo:
        world.run(program)
    assert isinstance(excinfo.value.__cause__, RankError)


def test_unknown_collective_rejected():
    world = MpiWorld("t3d", 2, seed=0)

    def program(ctx):
        yield from ctx.collective("bogus", 8)

    with pytest.raises(MpiError, match="rank 0 failed"):
        world.run(program)
