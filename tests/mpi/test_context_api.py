"""Tests for the RankContext public API surface."""

import pytest

from repro.mpi import MpiWorld


def run(program, machine="t3d", nodes=4, **kwargs):
    return MpiWorld(machine, nodes, seed=8, **kwargs).run(program)


def test_rank_and_size_visible():
    def program(ctx):
        yield from ctx.delay(1.0)
        return (ctx.rank, ctx.size)

    results = run(program)
    assert results == [(0, 4), (1, 4), (2, 4), (3, 4)]


def test_log2_size():
    def program(ctx):
        yield from ctx.delay(1.0)
        return ctx.log2_size()

    assert run(program, nodes=8)[0] == 3
    assert run(program, nodes=5)[0] == 3
    assert run(program, nodes=2)[0] == 1


def test_wtime_monotone_per_rank():
    def program(ctx):
        readings = [ctx.wtime()]
        for _ in range(5):
            yield from ctx.delay(10.0)
            readings.append(ctx.wtime())
        return readings

    for readings in run(program):
        assert readings == sorted(readings)


def test_wtime_differs_across_ranks():
    def program(ctx):
        yield from ctx.delay(1.0)
        return ctx.wtime()

    readings = run(program)
    assert len(set(readings)) > 1  # skewed clocks


def test_delay_is_jittered_but_positive():
    def program(ctx):
        start = ctx.env.now
        yield from ctx.delay(100.0)
        return ctx.env.now - start

    durations = run(program)
    assert all(50.0 < d < 200.0 for d in durations)
    assert len(set(durations)) > 1


def test_collective_rejects_negative_bytes():
    def program(ctx):
        yield from ctx.collective("broadcast", -4)

    with pytest.raises(Exception):
        run(program)


def test_node_one_process_per_node():
    def program(ctx):
        yield from ctx.delay(1.0)
        return ctx.node.index

    assert run(program) == [0, 1, 2, 3]


def test_world_rank_equals_rank_on_world_comm():
    def program(ctx):
        yield from ctx.delay(1.0)
        return ctx.world_rank == ctx.rank

    assert all(run(program))


def test_sendrecv_roundtrip_time_positive():
    def program(ctx):
        if ctx.rank == 0:
            start = ctx.wtime()
            yield from ctx.send(1, 512, tag="ping")
            yield from ctx.recv(1, tag="pong")
            return ctx.wtime() - start
        if ctx.rank == 1:
            yield from ctx.recv(0, tag="ping")
            yield from ctx.send(0, 512, tag="pong")
        return None

    rtt = run(program)[0]
    assert rtt > 0


def test_run_collective_many_iterations_accumulate():
    # The first iteration carries the warm-up penalty, so compare the
    # marginal cost of extra iterations instead of naive multiples.
    one = MpiWorld("t3d", 4, seed=8).run_collective(
        "broadcast", 256, iterations=1)
    three = MpiWorld("t3d", 4, seed=8).run_collective(
        "broadcast", 256, iterations=3)
    five = MpiWorld("t3d", 4, seed=8).run_collective(
        "broadcast", 256, iterations=5)
    assert three > one
    marginal_35 = (five - three) / 2
    marginal_13 = (three - one) / 2
    assert marginal_35 == pytest.approx(marginal_13, rel=0.3)
