"""Tests for MPI_Comm_split and sub-communicator semantics."""

import pytest

from repro.mpi import MpiError, MpiWorld


def test_split_halves_sizes_and_ranks():
    world = MpiWorld("sp2", 8, seed=1)

    def program(ctx):
        half = yield from ctx.comm_split(color=ctx.rank // 4)
        return (half.size, half.rank, half.world_rank)

    results = world.run(program)
    assert all(size == 4 for size, _, _ in results)
    # Local ranks restart at 0 in each half, world ranks are preserved.
    assert [r[1] for r in results] == [0, 1, 2, 3, 0, 1, 2, 3]
    assert [r[2] for r in results] == list(range(8))


def test_split_key_reorders_ranks():
    world = MpiWorld("sp2", 4, seed=1)

    def program(ctx):
        child = yield from ctx.comm_split(color=0, key=-ctx.rank)
        return child.rank

    results = world.run(program)
    # Descending keys invert the ordering.
    assert results == [3, 2, 1, 0]


def test_split_undefined_color_returns_none():
    world = MpiWorld("t3d", 4, seed=1)

    def program(ctx):
        child = yield from ctx.comm_split(
            color=None if ctx.rank == 0 else 1)
        return child if child is None else child.size

    results = world.run(program)
    assert results[0] is None
    assert results[1:] == [3, 3, 3]


def test_collectives_within_subcommunicator():
    world = MpiWorld("sp2", 8, seed=1)

    def program(ctx):
        half = yield from ctx.comm_split(color=ctx.rank % 2)
        yield from half.bcast(1024, root=0)
        yield from half.barrier()
        return half.rank

    results = world.run(program)
    assert len(results) == 8


def test_disjoint_collectives_run_concurrently():
    # Two halves broadcasting at once should take about the time of one
    # half's broadcast, not two serialized ones (separate fences).
    def elapsed(split):
        world = MpiWorld("sp2", 8, seed=1)

        def program(ctx):
            if split:
                comm = yield from ctx.comm_split(color=ctx.rank // 4)
            else:
                comm = ctx
            for _ in range(4):
                yield from comm.bcast(256, root=0)
            return None

        world.run(program)
        return world.now

    assert elapsed(True) < 1.25 * elapsed(False)


def test_subcomm_messages_do_not_leak_across_comms():
    world = MpiWorld("t3d", 4, seed=1)

    def program(ctx):
        child = yield from ctx.comm_split(color=ctx.rank // 2)
        # Same (src, tag) shape in both comms; payload sizes differ so
        # a cross-comm match would be visible.
        if child.rank == 0:
            yield from child.send(1, 100 * (1 + ctx.rank // 2), tag=7)
            return None
        envelope = yield from child.recv(0, tag=7)
        return envelope.nbytes

    results = world.run(program)
    assert results[1] == 100   # from world rank 0
    assert results[3] == 200   # from world rank 2


def test_t3d_subcomm_barrier_falls_back_to_software():
    world = MpiWorld("t3d", 8, seed=1)

    def program(ctx):
        sub = yield from ctx.comm_split(color=ctx.rank // 4)
        yield from sub.barrier()
        return None

    world.run(program)
    # The software fallback exchanges messages; the hardwired barrier
    # would not.
    assert world.comm.transport.messages_delivered > 0


def test_world_barrier_still_hardwired_on_t3d():
    world = MpiWorld("t3d", 8, seed=1)

    def program(ctx):
        yield from ctx.barrier()
        return None

    world.run(program)
    assert world.comm.transport.messages_delivered == 0


def test_nested_splits():
    world = MpiWorld("paragon", 8, seed=1)

    def program(ctx):
        half = yield from ctx.comm_split(color=ctx.rank // 4)
        quarter = yield from half.comm_split(color=half.rank // 2)
        yield from quarter.barrier()
        return (quarter.size, quarter.world_rank)

    results = world.run(program)
    assert all(size == 2 for size, _ in results)
    assert [wr for _, wr in results] == list(range(8))


def test_double_split_call_same_round_rejected():
    world = MpiWorld("sp2", 2, seed=1)

    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.register_split(0, 0, 0)
            with pytest.raises(MpiError):
                ctx.comm.register_split(0, 0, 0)
        yield from ctx.delay(1.0)
        return None

    world.run(program)
