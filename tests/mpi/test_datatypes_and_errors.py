"""Tests for datatypes, error types, and world-level failure handling."""

import pytest

from repro.mpi import (
    MPI_BYTE,
    MPI_DOUBLE,
    MPI_FLOAT,
    MPI_INT,
    Datatype,
    MpiError,
    MpiWorld,
    RankError,
    message_bytes,
)


def test_standard_datatype_sizes():
    assert MPI_BYTE.size_bytes == 1
    assert MPI_INT.size_bytes == 4
    assert MPI_FLOAT.size_bytes == 4  # the paper's element type
    assert MPI_DOUBLE.size_bytes == 8


def test_message_bytes():
    # Paper: messages are counted in MPI_FLOAT elements.
    assert message_bytes(16) == 64
    assert message_bytes(16, MPI_DOUBLE) == 128
    assert message_bytes(0) == 0


def test_message_bytes_negative_rejected():
    with pytest.raises(ValueError):
        message_bytes(-1)


def test_custom_datatype_validation():
    with pytest.raises(ValueError):
        Datatype("MPI_NOTHING", 0)


def test_rank_error_message():
    error = RankError(9, 4)
    assert "9" in str(error) and "4" in str(error)
    assert isinstance(error, MpiError)


def test_deadlock_detected_via_until():
    # Rank 1 waits for a message nobody sends; with an `until` bound
    # the world reports the hang instead of spinning forever.
    world = MpiWorld("t3d", 2, seed=0)

    def program(ctx):
        if ctx.rank == 1:
            yield from ctx.recv(0, tag=42)
        return None
        yield  # make rank 0 a generator too

    with pytest.raises(MpiError, match="did not finish"):
        world.run(program, until=1_000_000.0)


def test_rank_failure_reported_with_cause():
    world = MpiWorld("t3d", 2, seed=0)

    def program(ctx):
        yield from ctx.delay(1.0)
        if ctx.rank == 1:
            raise RuntimeError("application bug")
        return None

    with pytest.raises(MpiError, match="rank 1 failed") as excinfo:
        world.run(program)
    assert isinstance(excinfo.value.__cause__, RuntimeError)


def test_run_collective_validates_iterations():
    world = MpiWorld("t3d", 2, seed=0)
    with pytest.raises(ValueError):
        world.run_collective("broadcast", 8, iterations=0)


def test_mismatched_collective_order_deadlocks():
    # MPI requires every rank to call collectives in the same order;
    # the serialization fence turns a mismatch into a detectable hang.
    world = MpiWorld("sp2", 2, seed=0)

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.gather(64)   # root waits to receive
        else:
            yield from ctx.bcast(64)    # non-root waits to receive
        yield from ctx.barrier()

    with pytest.raises(MpiError):
        world.run(program, until=10_000_000.0)
