"""Tests for the point-to-point transport: matching, costs, pipelines."""

import pytest

from repro.mpi import MpiWorld, RankError


def world(machine="t3d", nodes=4, **kwargs):
    return MpiWorld(machine, nodes, seed=7, **kwargs)


def test_send_recv_delivers():
    w = world()

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 256, tag=5)
            return None
        if ctx.rank == 1:
            envelope = yield from ctx.recv(0, tag=5)
            return (envelope.src, envelope.nbytes)
        return None

    results = w.run(program)
    assert results[1] == (0, 256)


def test_tag_matching_selects_correct_message():
    w = world()

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 64, tag="a")
            yield from ctx.send(1, 128, tag="b")
            return None
        if ctx.rank == 1:
            second = yield from ctx.recv(0, tag="b")
            first = yield from ctx.recv(0, tag="a")
            return (first.nbytes, second.nbytes)
        return None

    results = w.run(program)
    assert results[1] == (64, 128)


def test_fifo_between_identical_envelopes():
    w = world()

    def program(ctx):
        if ctx.rank == 0:
            for _ in range(3):
                yield from ctx.send(1, 8, tag=0)
            return None
        if ctx.rank == 1:
            order = []
            for _ in range(3):
                envelope = yield from ctx.recv(0, tag=0)
                order.append(envelope.sent_at)
            return order
        return None

    results = w.run(program)
    assert results[1] == sorted(results[1])


def test_unexpected_message_costs_more():
    # Receiver that posts late (unexpected) pays more than one that
    # posts early (expected), all else equal.
    def program_factory(post_late):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 4096, tag=0)
                return None
            if ctx.rank == 1:
                if post_late:
                    yield from ctx.delay(2000.0)  # message arrives first
                    start = ctx.env.now
                    yield from ctx.recv(0, tag=0)
                    return ctx.env.now - start
                receive = ctx.irecv(0, tag=0)
                yield from ctx.delay(2000.0)
                start = ctx.env.now
                yield from ctx.wait(receive)
                return ctx.env.now - start
            return None
        return program

    late = world().run(program_factory(True))[1]
    early = world().run(program_factory(False))[1]
    assert late > early


def test_unexpected_counter_increments():
    w = world()

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 16, tag=0)
            return None
        if ctx.rank == 1:
            yield from ctx.delay(5000.0)
            yield from ctx.recv(0, tag=0)
        return None

    w.run(program)
    assert w.comm.transport.unexpected_arrivals == 1


def test_invalid_rank_rejected():
    w = world()

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(9, 4)
        return None

    with pytest.raises(Exception) as excinfo:
        w.run(program)
    assert isinstance(excinfo.value.__cause__, RankError) or \
        isinstance(excinfo.value, RankError)


def test_negative_size_rejected():
    w = world()

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, -4)
        return None

    with pytest.raises(Exception):
        w.run(program)


def test_longer_messages_take_longer():
    def elapsed_for(nbytes):
        w = world("sp2")

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, nbytes, tag=0)
                return None
            if ctx.rank == 1:
                start = ctx.env.now
                yield from ctx.recv(0, tag=0)
                return ctx.env.now - start
            return None

        return w.run(program)[1]

    assert elapsed_for(65536) > elapsed_for(1024) > elapsed_for(4)


def test_t3d_message_faster_than_sp2():
    # T3D's fast messaging hardware gives lower one-way latency.
    def latency(machine):
        w = world(machine)

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 4, tag=0)
                return None
            if ctx.rank == 1:
                yield from ctx.recv(0, tag=0)
                return ctx.env.now
            return None

        return w.run(program)[1]

    assert latency("t3d") < latency("sp2")
    assert latency("t3d") < latency("paragon")


def test_sender_not_blocked_by_wire():
    # The sender's local cost must be far below the end-to-end latency
    # (that is what lets a scatter root pipeline).
    w = world("paragon")

    def program(ctx):
        if ctx.rank == 0:
            start = ctx.env.now
            yield from ctx.send(1, 4, tag=0)
            return ctx.env.now - start
        if ctx.rank == 1:
            yield from ctx.recv(0, tag=0)
            return ctx.env.now
        return None

    results = w.run(program)
    sender_cost, receiver_done = results[0], results[1]
    assert sender_cost < receiver_done / 1.5


def test_pending_introspection():
    w = world()
    transport = w.comm.transport

    def program(ctx):
        if ctx.rank == 1:
            ctx.irecv(0, tag=99)
        if ctx.rank == 2:
            yield from ctx.delay(1.0)
        return None
        yield  # pragma: no cover

    w.run(program)
    assert transport.pending_posted(1) == 1
    assert transport.pending_unexpected(1) == 0
