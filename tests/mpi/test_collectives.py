"""Semantic tests for the collective algorithms.

These verify mechanism (message counts, tree shapes, synchronization
semantics), not absolute timing.
"""

import math

import pytest

from repro.mpi import MpiWorld
from repro.mpi.collectives import algorithm_names, get_algorithm


def run_collective(machine, nodes, op, nbytes=64, seed=3, **kwargs):
    w = MpiWorld(machine, nodes, seed=seed, **kwargs)

    def program(ctx):
        yield from ctx.collective(op, nbytes)
        return ctx.env.now

    finish_times = w.run(program)
    return w, finish_times


ALL_OPS = ("barrier", "broadcast", "gather", "scatter", "reduce", "scan",
           "alltoall", "allreduce", "allgather", "reduce_scatter")


@pytest.mark.parametrize("machine", ["sp2", "t3d", "paragon"])
@pytest.mark.parametrize("op", ALL_OPS)
def test_every_op_completes_on_every_machine(machine, op):
    w, finish = run_collective(machine, 8, op)
    assert all(t > 0 for t in finish)


@pytest.mark.parametrize("op", ALL_OPS)
def test_non_power_of_two_sizes(op):
    for nodes in (3, 5, 7, 12):
        w, finish = run_collective("sp2", nodes, op)
        assert all(t > 0 for t in finish)


def test_two_node_degenerate_case():
    for op in ALL_OPS:
        w, finish = run_collective("t3d", 2, op)
        assert all(t > 0 for t in finish)


# ---------------------------------------------------------------------------
# Message-count invariants (f(m, p) from Section 3)
# ---------------------------------------------------------------------------

def delivered_messages(machine, nodes, op, nbytes=32):
    w, _ = run_collective(machine, nodes, op, nbytes)
    return w.comm.transport.messages_delivered


@pytest.mark.parametrize("nodes", [2, 4, 8, 13, 16])
def test_broadcast_moves_p_minus_1_messages(nodes):
    assert delivered_messages("sp2", nodes, "broadcast") == nodes - 1


@pytest.mark.parametrize("nodes", [2, 4, 8, 13])
def test_gather_scatter_reduce_move_p_minus_1_messages(nodes):
    for op in ("gather", "scatter", "reduce"):
        assert delivered_messages("sp2", nodes, op) == nodes - 1


@pytest.mark.parametrize("nodes", [2, 4, 8, 9])
def test_alltoall_moves_p_times_p_minus_1_messages(nodes):
    assert delivered_messages("sp2", nodes, "alltoall") == \
        nodes * (nodes - 1)
    assert delivered_messages("paragon", nodes, "alltoall") == \
        nodes * (nodes - 1)


@pytest.mark.parametrize("nodes", [2, 4, 8])
def test_software_barrier_message_count(nodes):
    # Binomial gather up + binomial broadcast down: 2 (p-1) messages.
    assert delivered_messages("sp2", nodes, "barrier") == 2 * (nodes - 1)


def test_hardware_barrier_moves_no_messages():
    assert delivered_messages("t3d", 8, "barrier") == 0


@pytest.mark.parametrize("nodes", [2, 4, 8, 16])
def test_scan_message_count_recursive_doubling(nodes):
    # Round with mask 2**r carries (p - 2**r) messages.
    expected = sum(nodes - mask
                   for mask in (1 << r for r in range(20))
                   if mask < nodes)
    assert delivered_messages("sp2", nodes, "scan") == expected


# ---------------------------------------------------------------------------
# Algorithm structure
# ---------------------------------------------------------------------------

def test_registry_contains_all_algorithms():
    names = algorithm_names()
    for expected in ("binomial_broadcast", "binomial_reduce",
                     "binary_tree_reduce", "recursive_doubling_scan",
                     "offloaded_scan", "linear_gather", "linear_scatter",
                     "posted_alltoall", "pairwise_exchange_alltoall",
                     "sequential_alltoall", "tree_barrier",
                     "hardware_barrier"):
        assert expected in names


def test_unknown_algorithm_rejected():
    with pytest.raises(KeyError):
        get_algorithm("quantum_broadcast")


def test_duplicate_registration_rejected():
    from repro.mpi.collectives.base import collective_algorithm
    with pytest.raises(ValueError):
        @collective_algorithm("binomial_broadcast")
        def duplicate(ctx, seq, nbytes, root=0):  # pragma: no cover
            yield


def test_broadcast_root_finishes_before_leaves():
    w = MpiWorld("sp2", 16, seed=3)

    def program(ctx):
        yield from ctx.bcast(1024, root=0)
        return ctx.env.now

    finish = w.run(program)
    assert finish[0] < max(finish[1:])


def test_broadcast_nonzero_root():
    w = MpiWorld("sp2", 8, seed=3)

    def program(ctx):
        yield from ctx.bcast(128, root=5)
        return ctx.env.now

    finish = w.run(program)
    assert finish[5] == min(finish)


def test_gather_root_is_the_bottleneck():
    w = MpiWorld("paragon", 16, seed=3)

    def program(ctx):
        yield from ctx.gather(1024, root=0)
        return ctx.env.now

    finish = w.run(program)
    assert finish[0] == max(finish)


def test_scatter_leaves_finish_in_send_order_tail():
    w = MpiWorld("sp2", 8, seed=3)

    def program(ctx):
        yield from ctx.scatter(64, root=0)
        return ctx.env.now

    finish = w.run(program)
    # The root issues sends in rank order, so the last rank cannot
    # finish before the first.
    assert finish[7] >= finish[1] - 1e-9


def test_offloaded_scan_requires_offload_params():
    from repro.mpi import MpiError
    w = MpiWorld("sp2", 4, seed=3)

    def program(ctx):
        algorithm = get_algorithm("offloaded_scan")
        seq = yield from ctx._enter_collective("scan", 8)
        yield from algorithm(ctx, seq, 8)
        return None

    with pytest.raises(MpiError):
        w.run(program)


def test_collective_sequence_fence_orders_operations():
    # Two back-to-back broadcasts must not overlap: the global finish
    # time of the first bounds the start of the second's messages.
    w = MpiWorld("sp2", 8, seed=3)
    marks = {}

    def program(ctx):
        yield from ctx.bcast(256)
        if ctx.rank == 0:
            marks["first_done_root"] = ctx.env.now
        yield from ctx.bcast(256)
        return ctx.env.now

    finish = w.run(program)
    # Root waited for the fence before its second call finished.
    assert finish[0] > marks["first_done_root"]


def test_unknown_collective_rejected():
    from repro.mpi import MpiError
    w = MpiWorld("sp2", 4, seed=3)

    def program(ctx):
        yield from ctx.collective("alltoallv", 8)

    with pytest.raises(MpiError):
        w.run(program)


def test_invalid_root_rejected():
    w = MpiWorld("sp2", 4, seed=3)

    def program(ctx):
        yield from ctx.bcast(8, root=4)

    with pytest.raises(Exception):
        w.run(program)


# ---------------------------------------------------------------------------
# Composite extensions
# ---------------------------------------------------------------------------

def test_allreduce_message_count():
    # reduce (p-1) + broadcast (p-1).
    assert delivered_messages("sp2", 8, "allreduce") == 2 * 7


def test_allgather_message_count():
    assert delivered_messages("sp2", 8, "allgather") == 2 * 7


def test_reduce_scatter_message_count():
    # Composite: reduce (p-1) + scatter (p-1).
    assert delivered_messages("sp2", 8, "reduce_scatter") == 2 * 7


def test_ring_reduce_scatter_variant():
    from dataclasses import replace
    from repro.machines import T3D
    spec = replace(T3D, name="t3d-ring",
                   algorithms={**dict(T3D.algorithms),
                               "reduce_scatter": "ring_reduce_scatter"})
    w, finish = run_collective(spec, 8, "reduce_scatter", 4096)
    assert w.comm.transport.messages_delivered == 8 * 7
    assert all(t > 0 for t in finish)


def test_ring_reduce_scatter_beats_composite_for_long_blocks():
    from dataclasses import replace
    from repro.machines import SP2
    ring_spec = replace(SP2, name="sp2-ring",
                        algorithms={**dict(SP2.algorithms),
                                    "reduce_scatter":
                                        "ring_reduce_scatter"})
    _, composite = run_collective(SP2, 16, "reduce_scatter", 32768)
    _, ring = run_collective(ring_spec, 16, "reduce_scatter", 32768)
    assert max(ring) < max(composite)


def test_allgather_broadcast_carries_full_buffer():
    # allgather of m bytes must take longer than gather + broadcast of
    # m bytes because the downstream broadcast carries p*m.
    def timed(op, nbytes):
        w, finish = run_collective("t3d", 8, op, nbytes)
        return max(finish)

    assert timed("allgather", 4096) > timed("gather", 4096)
