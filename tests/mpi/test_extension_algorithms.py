"""Tests for the improved (further-work) collective algorithms."""

from dataclasses import replace

import pytest

from repro.mpi import MpiWorld
from repro.machines import SP2, T3D


def _with_algorithm(spec, op, algorithm):
    return replace(spec, name=f"{spec.name}-ext",
                   algorithms={**dict(spec.algorithms), op: algorithm})


def run_op(spec, nodes, op, nbytes, seed=9):
    world = MpiWorld(spec, nodes, seed=seed)

    def program(ctx):
        yield from ctx.collective(op, nbytes)
        return ctx.env.now

    finish = world.run(program)
    return world, max(finish)


@pytest.mark.parametrize("nodes", [2, 4, 7, 8, 16])
def test_vandegeijn_broadcast_completes(nodes):
    spec = _with_algorithm(SP2, "broadcast",
                           "scatter_allgather_broadcast")
    world, _ = run_op(spec, nodes, "broadcast", 4096)
    # Scatter: p-1 messages; ring: p (p-1) messages.
    expected = (nodes - 1) + nodes * (nodes - 1)
    assert world.comm.transport.messages_delivered == expected


def test_vandegeijn_wins_long_messages_on_sp2():
    binomial = run_op(SP2, 16, "broadcast", 262144)[1]
    vdg_spec = _with_algorithm(SP2, "broadcast",
                               "scatter_allgather_broadcast")
    vandegeijn = run_op(vdg_spec, 16, "broadcast", 262144)[1]
    assert vandegeijn < binomial


def test_binomial_wins_short_messages_on_sp2():
    binomial = run_op(SP2, 16, "broadcast", 4)[1]
    vdg_spec = _with_algorithm(SP2, "broadcast",
                               "scatter_allgather_broadcast")
    vandegeijn = run_op(vdg_spec, 16, "broadcast", 4)[1]
    assert binomial < vandegeijn


@pytest.mark.parametrize("nodes", [2, 3, 8, 12])
def test_ring_allgather_completes(nodes):
    spec = _with_algorithm(T3D, "allgather", "ring_allgather")
    world, _ = run_op(spec, nodes, "allgather", 1024)
    assert world.comm.transport.messages_delivered == \
        nodes * (nodes - 1)


def test_ring_allgather_beats_gather_broadcast_for_long_blocks():
    composed = run_op(T3D, 16, "allgather", 65536)[1]
    ring_spec = _with_algorithm(T3D, "allgather", "ring_allgather")
    ring = run_op(ring_spec, 16, "allgather", 65536)[1]
    assert ring < composed


@pytest.mark.parametrize("nodes", [2, 4, 8, 11, 16])
def test_binomial_gather_completes(nodes):
    spec = _with_algorithm(SP2, "gather", "binomial_tree_gather")
    world, _ = run_op(spec, nodes, "gather", 512)
    # Binomial gather: one message per non-root vertex of the tree.
    assert world.comm.transport.messages_delivered == nodes - 1


def test_binomial_gather_lower_latency_at_scale():
    linear = run_op(SP2, 64, "gather", 4)[1]
    tree_spec = _with_algorithm(SP2, "gather", "binomial_tree_gather")
    tree = run_op(tree_spec, 64, "gather", 4)[1]
    assert tree < linear


def test_binomial_gather_aggregates_subtree_bytes():
    # The root's children forward whole subtree segments: total bytes
    # through the transport exceed (p-1) * m.
    spec = _with_algorithm(SP2, "gather", "binomial_tree_gather")
    world = MpiWorld(spec, 8, seed=9)
    sizes = []

    def program(ctx):
        yield from ctx.collective("gather", 100)
        return None

    world.run(program)
    nic_bytes = sum(node.nic.messages_sent for node in
                    world.machine.nodes)
    assert nic_bytes == 7  # 7 messages, but carrying 700 bytes total


# -- non-divisible sizes and awkward communicators (regression) ---------

def _drive_stub(name, p, nbytes, root=0):
    from tests.mpi.test_zoo_algorithms import drive
    from repro.mpi.collectives import get_algorithm
    return drive(get_algorithm(name), p, nbytes, root)


@pytest.mark.parametrize("p", [3, 5, 7, 12])
@pytest.mark.parametrize("root", [0, 1, -1])
@pytest.mark.parametrize("nbytes", [11, 101, 4097])
def test_vandegeijn_moves_exactly_nbytes_when_indivisible(p, root,
                                                          nbytes):
    """Regression: the uniform ceil(nbytes/p) chunk over-sent whenever
    p did not divide nbytes; blocks must sum to exactly nbytes."""
    assert nbytes % p != 0
    root = p - 1 if root == -1 else root
    contexts = _drive_stub("scatter_allgather_broadcast", p, nbytes,
                           root)
    for ctx in contexts:
        # Scatter leg: each non-root receives its own block from the
        # root; ring leg: everyone receives the other p - 1 blocks.
        # Together each rank takes delivery of exactly nbytes — the
        # root already holds its own block, so one block less.
        if ctx.rank == root:
            assert ctx.received_bytes == nbytes - \
                _own_block(nbytes, p, ctx.rank, root)
        else:
            assert ctx.received_bytes == nbytes


def _own_block(nbytes, p, rank, root):
    from repro.mpi.collectives.extensions import block_counts
    from repro.mpi.collectives import virtual_rank
    return block_counts(nbytes, p)[virtual_rank(rank, root, p)]


@pytest.mark.parametrize("nbytes", [4096, 4100])
def test_vandegeijn_total_bytes_match_divisible_case(nbytes):
    """The indivisible case must move the same per-rank volume as the
    divisible one (plus the 4-byte remainder), not p extra bytes per
    ring step."""
    p = 8
    contexts = _drive_stub("scatter_allgather_broadcast", p, nbytes)
    total = sum(ctx.sent_bytes for ctx in contexts)
    # Scatter moves (p-1)/p of the message, the ring moves (p-1)
    # copies of it: total = (p-1)/p * nbytes + (p-1) * nbytes.
    from repro.mpi.collectives.extensions import block_counts
    counts = block_counts(nbytes, p)
    expected = (nbytes - counts[0]) + (p - 1) * nbytes
    assert total == expected


@pytest.mark.parametrize("p", [3, 5, 7, 12])
@pytest.mark.parametrize("root", [0, 1, -1])
def test_extension_algorithms_awkward_sizes_and_roots(p, root):
    """Satellite audit: every extension algorithm completes with exact
    byte accounting at non-power-of-two p and nonzero roots."""
    root = p - 1 if root == -1 else root
    nbytes = 1000

    contexts = _drive_stub("ring_allgather", p, nbytes, root)
    assert all(ctx.received_bytes == (p - 1) * nbytes
               for ctx in contexts)

    contexts = _drive_stub("ring_reduce_scatter", p, nbytes, root)
    assert all(ctx.combined_bytes == (p - 1) * nbytes
               for ctx in contexts)

    contexts = _drive_stub("binomial_tree_gather", p, nbytes, root)
    assert sum(ctx.messages_sent for ctx in contexts) == p - 1
    # Subtree aggregation: the root takes delivery of every other
    # rank's block exactly once, however the tree folds.
    assert contexts[root].received_bytes == (p - 1) * nbytes
    assert contexts[root].sent_bytes == 0


@pytest.mark.parametrize("p", [3, 5, 7, 12])
@pytest.mark.parametrize("root", [0, 1, -1])
def test_vandegeijn_nonzero_root_completes_on_simulator(p, root):
    root = p - 1 if root == -1 else root
    spec = _with_algorithm(SP2, "broadcast",
                           "scatter_allgather_broadcast")
    world = MpiWorld(spec, p, seed=9)
    elapsed = world.run_collective("broadcast", 4097, root=root)
    assert elapsed > 0
    expected = (p - 1) + p * (p - 1)
    assert world.comm.transport.messages_delivered == expected
