"""Tests for the improved (further-work) collective algorithms."""

from dataclasses import replace

import pytest

from repro.mpi import MpiWorld
from repro.machines import SP2, T3D


def _with_algorithm(spec, op, algorithm):
    return replace(spec, name=f"{spec.name}-ext",
                   algorithms={**dict(spec.algorithms), op: algorithm})


def run_op(spec, nodes, op, nbytes, seed=9):
    world = MpiWorld(spec, nodes, seed=seed)

    def program(ctx):
        yield from ctx.collective(op, nbytes)
        return ctx.env.now

    finish = world.run(program)
    return world, max(finish)


@pytest.mark.parametrize("nodes", [2, 4, 7, 8, 16])
def test_vandegeijn_broadcast_completes(nodes):
    spec = _with_algorithm(SP2, "broadcast",
                           "scatter_allgather_broadcast")
    world, _ = run_op(spec, nodes, "broadcast", 4096)
    # Scatter: p-1 messages; ring: p (p-1) messages.
    expected = (nodes - 1) + nodes * (nodes - 1)
    assert world.comm.transport.messages_delivered == expected


def test_vandegeijn_wins_long_messages_on_sp2():
    binomial = run_op(SP2, 16, "broadcast", 262144)[1]
    vdg_spec = _with_algorithm(SP2, "broadcast",
                               "scatter_allgather_broadcast")
    vandegeijn = run_op(vdg_spec, 16, "broadcast", 262144)[1]
    assert vandegeijn < binomial


def test_binomial_wins_short_messages_on_sp2():
    binomial = run_op(SP2, 16, "broadcast", 4)[1]
    vdg_spec = _with_algorithm(SP2, "broadcast",
                               "scatter_allgather_broadcast")
    vandegeijn = run_op(vdg_spec, 16, "broadcast", 4)[1]
    assert binomial < vandegeijn


@pytest.mark.parametrize("nodes", [2, 3, 8, 12])
def test_ring_allgather_completes(nodes):
    spec = _with_algorithm(T3D, "allgather", "ring_allgather")
    world, _ = run_op(spec, nodes, "allgather", 1024)
    assert world.comm.transport.messages_delivered == \
        nodes * (nodes - 1)


def test_ring_allgather_beats_gather_broadcast_for_long_blocks():
    composed = run_op(T3D, 16, "allgather", 65536)[1]
    ring_spec = _with_algorithm(T3D, "allgather", "ring_allgather")
    ring = run_op(ring_spec, 16, "allgather", 65536)[1]
    assert ring < composed


@pytest.mark.parametrize("nodes", [2, 4, 8, 11, 16])
def test_binomial_gather_completes(nodes):
    spec = _with_algorithm(SP2, "gather", "binomial_tree_gather")
    world, _ = run_op(spec, nodes, "gather", 512)
    # Binomial gather: one message per non-root vertex of the tree.
    assert world.comm.transport.messages_delivered == nodes - 1


def test_binomial_gather_lower_latency_at_scale():
    linear = run_op(SP2, 64, "gather", 4)[1]
    tree_spec = _with_algorithm(SP2, "gather", "binomial_tree_gather")
    tree = run_op(tree_spec, 64, "gather", 4)[1]
    assert tree < linear


def test_binomial_gather_aggregates_subtree_bytes():
    # The root's children forward whole subtree segments: total bytes
    # through the transport exceed (p-1) * m.
    spec = _with_algorithm(SP2, "gather", "binomial_tree_gather")
    world = MpiWorld(spec, 8, seed=9)
    sizes = []

    def program(ctx):
        yield from ctx.collective("gather", 100)
        return None

    world.run(program)
    nic_bytes = sum(node.nic.messages_sent for node in
                    world.machine.nodes)
    assert nic_bytes == 7  # 7 messages, but carrying 700 bytes total
