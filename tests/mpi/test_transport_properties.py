"""Property-based tests for the transport: conservation and matching.

hypothesis generates random point-to-point traffic patterns; the
transport must deliver every message exactly once to the right
receiver, regardless of posting order, sizes, or timing.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import MpiWorld


@st.composite
def traffic_patterns(draw):
    """A random set of (src, dst, nbytes, delay) sends on 4 ranks."""
    n_messages = draw(st.integers(1, 12))
    messages = []
    for index in range(n_messages):
        src = draw(st.integers(0, 3))
        dst = draw(st.integers(0, 3).filter(lambda d: d != src))
        nbytes = draw(st.sampled_from([0, 4, 128, 4096, 65536]))
        sender_delay = draw(st.floats(0.0, 500.0))
        receiver_delay = draw(st.floats(0.0, 500.0))
        messages.append((index, src, dst, nbytes, sender_delay,
                         receiver_delay))
    return messages


@given(traffic_patterns())
@settings(max_examples=40, deadline=None)
def test_every_message_delivered_exactly_once(messages):
    world = MpiWorld("t3d", 4, seed=5)
    received = []

    def program(ctx):
        my_sends = [m for m in messages if m[1] == ctx.rank]
        my_recvs = [m for m in messages if m[2] == ctx.rank]
        # Post receives (some early, some late) in a subprocess per
        # message so posting order varies with the draws.
        for index, src, _, nbytes, _, recv_delay in my_recvs:
            def receiver(index=index, src=src, delay=recv_delay):
                yield from ctx.delay(delay)
                envelope = yield from ctx.recv(src, tag=index)
                received.append((index, envelope.nbytes))
            ctx.env.process(receiver())
        for index, _, dst, nbytes, send_delay, _ in my_sends:
            yield from ctx.delay(send_delay)
            yield from ctx.send(dst, nbytes, tag=index)
        return None

    world.run(program)
    world.env.run()  # drain receiver subprocesses
    assert sorted(index for index, _ in received) == \
        sorted(m[0] for m in messages)
    by_index = dict(received)
    for index, _, _, nbytes, _, _ in messages:
        assert by_index[index] == nbytes


@given(st.integers(2, 12), st.integers(0, 65536))
@settings(max_examples=25, deadline=None)
def test_broadcast_always_terminates_and_orders_root_first(size, nbytes):
    world = MpiWorld("paragon", size, seed=2)

    def program(ctx):
        yield from ctx.bcast(nbytes, root=0)
        return ctx.env.now

    finish = world.run(program)
    assert len(finish) == size
    assert finish[0] <= max(finish)


@given(st.sampled_from(["sp2", "t3d", "paragon"]),
       st.integers(2, 10))
@settings(max_examples=20, deadline=None)
def test_alltoall_conserves_messages(machine, size):
    world = MpiWorld(machine, size, seed=4)

    def program(ctx):
        yield from ctx.alltoall(64)
        return None

    world.run(program)
    transport = world.comm.transport
    assert transport.messages_delivered == size * (size - 1)
    for rank in range(size):
        assert transport.pending_unexpected(rank) == 0
        assert transport.pending_posted(rank) == 0
