"""Correctness sweep over the algorithm zoo (and a message harness).

The stub harness below drives an algorithm's per-rank generators with
a round-robin run-to-block scheduler over an in-memory message board,
so tests can assert *exact* byte movement — every send matched, every
byte accounted — at awkward communicator sizes (non-power-of-two p,
nonzero roots) without a full simulation.  The real-simulator tests
then lock in end-to-end completion on every machine.
"""

import pytest

from repro.machines import PARAGON, SP2, T3D, get_machine_spec
from repro.mpi import MpiWorld
from repro.mpi.collectives import get_algorithm
from repro.mpi.collectives.zoo import (
    make_segmented_broadcast,
    make_segmented_reduce,
)

AWKWARD_SIZES = [3, 5, 7, 12]
ROOTS = [0, 1, -1]  # -1 means p - 1

ZOO = {
    "recursive_doubling_allgather": "allgather",
    "recursive_doubling_allreduce": "allreduce",
    "recursive_halving_reduce_scatter": "reduce_scatter",
    "rabenseifner_allreduce": "allreduce",
    "segmented_binomial_broadcast": "broadcast",
    "segmented_binomial_reduce": "reduce",
}


# -- the stub harness ---------------------------------------------------

_BLOCKED = object()


class StubContext:
    """Just enough of RankContext to drive an algorithm generator."""

    def __init__(self, board, rank, size):
        self.board = board
        self.rank = rank
        self.size = size
        self.sent_bytes = 0
        self.received_bytes = 0
        self.combined_bytes = 0
        self.messages_sent = 0
        self.messages_received = 0

    def coll_send(self, seq, phase, dst, nbytes, op=None, **kwargs):
        assert 0 <= dst < self.size and dst != self.rank
        assert nbytes >= 0
        key = (self.rank, dst, phase)
        assert key not in self.board, f"phase collision on {key}"
        self.board[key] = nbytes
        self.sent_bytes += nbytes
        self.messages_sent += 1
        yield

    def coll_post(self, seq, phase, src):
        return (src, phase)

    def coll_wait(self, posted, op=None, **kwargs):
        return (yield from self._recv(*posted))

    def coll_recv(self, seq, phase, src, op=None, **kwargs):
        return (yield from self._recv(src, phase))

    def combine(self, nbytes):
        assert nbytes >= 0
        self.combined_bytes += nbytes
        yield

    def delay(self, base_us):
        yield

    def _recv(self, src, phase):
        key = (src, self.rank, phase)
        while key not in self.board:
            yield _BLOCKED
        nbytes = self.board.pop(key)
        self.received_bytes += nbytes
        self.messages_received += 1
        return nbytes


def drive(algorithm, size, nbytes, root=0):
    """Run every rank to completion; fail on deadlock or lost sends."""
    board = {}
    contexts = [StubContext(board, rank, size) for rank in range(size)]
    programs = {rank: algorithm(contexts[rank], 0, nbytes, root)
                for rank in range(size)}
    while programs:
        progressed = False
        for rank in sorted(programs):
            while True:
                try:
                    step = next(programs[rank])
                except StopIteration:
                    del programs[rank]
                    progressed = True
                    break
                if step is _BLOCKED:
                    break
                progressed = True
        if not progressed:
            waiting = sorted(programs)
            raise AssertionError(
                f"deadlock: ranks {waiting} blocked, board {board}")
    assert not board, f"unmatched sends left on the board: {board}"
    return contexts


def _root(p, root):
    return p - 1 if root == -1 else root


# -- exact byte accounting at awkward sizes -----------------------------

@pytest.mark.parametrize("p", AWKWARD_SIZES + [2, 4, 8, 16])
@pytest.mark.parametrize("nbytes", [0, 1, 10, 4096])
def test_recursive_doubling_allgather_byte_exact(p, nbytes):
    contexts = drive(get_algorithm("recursive_doubling_allgather"),
                     p, nbytes)
    core = 1 << (p.bit_length() - 1)
    for ctx in contexts:
        if ctx.rank < core:
            # A core rank obtains every other rank's block exactly
            # once (a folded twin's via the fold exchange).
            assert ctx.received_bytes == (p - 1) * nbytes
        else:
            # A folded rank contributes its block and gets the full
            # gathered result back.
            assert ctx.sent_bytes == nbytes
            assert ctx.received_bytes == p * nbytes


@pytest.mark.parametrize("p", AWKWARD_SIZES + [2, 4, 8, 16])
@pytest.mark.parametrize(
    "name", ["recursive_doubling_allreduce", "rabenseifner_allreduce"])
def test_allreduce_zoo_conserves_and_combines(p, name):
    nbytes = 4096
    contexts = drive(get_algorithm(name), p, nbytes)
    total_sent = sum(ctx.sent_bytes for ctx in contexts)
    total_received = sum(ctx.received_bytes for ctx in contexts)
    assert total_sent == total_received
    core = 1 << (p.bit_length() - 1)
    extra = p - core
    for ctx in contexts:
        if ctx.rank >= core:
            # Folded ranks hand their vector over and receive the
            # reduced result — exactly nbytes each way.
            assert ctx.sent_bytes == nbytes
            assert ctx.received_bytes == nbytes
            assert ctx.combined_bytes == 0
    combined = sum(ctx.combined_bytes for ctx in contexts)
    if name == "rabenseifner_allreduce":
        # Reduce-scatter + allgather is combine-minimal: p vectors
        # reduce into one, p - 1 vector combines in total (the
        # per-round group sums telescope to core - 1, plus the folds).
        assert combined == (p - 1) * nbytes
    else:
        # Recursive doubling redundantly combines the full vector on
        # every core rank every round — that is its price for halving
        # the latency of short messages.
        rounds = core.bit_length() - 1
        assert combined == (core * rounds + extra) * nbytes


@pytest.mark.parametrize("p", AWKWARD_SIZES + [2, 4, 8, 16])
def test_recursive_halving_reduce_scatter_byte_exact(p):
    nbytes = 64  # per result block; each rank contributes p * nbytes
    contexts = drive(get_algorithm("recursive_halving_reduce_scatter"),
                     p, nbytes)
    core = 1 << (p.bit_length() - 1)
    assert sum(ctx.combined_bytes for ctx in contexts) == \
        (p - 1) * p * nbytes
    for ctx in contexts:
        if ctx.rank >= core:
            assert ctx.sent_bytes == p * nbytes
            assert ctx.received_bytes == nbytes


@pytest.mark.parametrize("p", AWKWARD_SIZES)
@pytest.mark.parametrize("root", ROOTS)
@pytest.mark.parametrize("nbytes", [0, 10, 4096, 10000])
def test_segmented_broadcast_byte_exact(p, root, nbytes):
    root = _root(p, root)
    contexts = drive(get_algorithm("segmented_binomial_broadcast"),
                     p, nbytes, root)
    for ctx in contexts:
        # Every non-root receives the message exactly once, segmented
        # or not — the pipelined tree must not duplicate or drop bytes.
        expected = 0 if ctx.rank == root else nbytes
        assert ctx.received_bytes == expected


@pytest.mark.parametrize("p", AWKWARD_SIZES)
@pytest.mark.parametrize("root", ROOTS)
def test_segmented_reduce_byte_exact(p, root):
    nbytes = 10000  # three segments at the default segment size
    root = _root(p, root)
    contexts = drive(get_algorithm("segmented_binomial_reduce"),
                     p, nbytes, root)
    for ctx in contexts:
        expected = 0 if ctx.rank == root else nbytes
        assert ctx.sent_bytes == expected
    assert sum(ctx.combined_bytes for ctx in contexts) == \
        (p - 1) * nbytes


@pytest.mark.parametrize("segment", [1, 100, 4096, 1 << 20])
def test_segment_size_is_tunable(segment):
    p, nbytes = 5, 10000
    broadcast = make_segmented_broadcast(segment)
    contexts = drive(broadcast, p, nbytes)
    assert all(ctx.received_bytes == nbytes
               for ctx in contexts if ctx.rank != 0)
    import math
    expected_segments = max(1, math.ceil(nbytes / segment))
    leaf = max(ctx.rank for ctx in contexts)
    assert contexts[leaf].messages_received == expected_segments

    reduce_ = make_segmented_reduce(segment)
    contexts = drive(reduce_, p, nbytes)
    # The root combines one operand per direct child; the interior
    # ranks handle the rest — (p - 1) contributions overall.
    assert sum(ctx.combined_bytes for ctx in contexts) == \
        (p - 1) * nbytes


def test_segment_factory_rejects_nonpositive():
    with pytest.raises(ValueError):
        make_segmented_broadcast(0)
    with pytest.raises(ValueError):
        make_segmented_reduce(-1)


# -- real-simulator completion on every machine -------------------------

def _spec_with(spec, op, algorithm):
    from dataclasses import replace
    return replace(spec, name=f"{spec.name}-zoo",
                   algorithms={**dict(spec.algorithms), op: algorithm})


@pytest.mark.parametrize("spec", [SP2, T3D, PARAGON],
                         ids=lambda s: s.name)
@pytest.mark.parametrize("name", sorted(ZOO))
def test_zoo_runs_on_every_machine(spec, name):
    op = ZOO[name]
    world = MpiWorld(_spec_with(spec, op, name), 12, seed=5)
    elapsed = world.run_collective(op, 4096)
    assert elapsed > 0


@pytest.mark.parametrize("p", AWKWARD_SIZES)
@pytest.mark.parametrize("root", ROOTS)
@pytest.mark.parametrize("name", ["segmented_binomial_broadcast",
                                  "segmented_binomial_reduce"])
def test_segmented_trees_complete_at_nonzero_roots(p, root, name):
    op = ZOO[name]
    world = MpiWorld(_spec_with(SP2, op, name), p, seed=5)
    elapsed = world.run_collective(op, 10000, root=_root(p, root))
    assert elapsed > 0


def test_rabenseifner_beats_composed_allreduce_long_messages():
    tuned = _spec_with(SP2, "allreduce", "rabenseifner_allreduce")
    baseline = MpiWorld(SP2, 16, seed=5).run_collective("allreduce",
                                                        262144)
    improved = MpiWorld(tuned, 16, seed=5).run_collective("allreduce",
                                                          262144)
    assert improved < baseline


def test_recursive_doubling_beats_composed_allreduce_short_messages():
    tuned = _spec_with(SP2, "allreduce", "recursive_doubling_allreduce")
    baseline = MpiWorld(SP2, 16, seed=5).run_collective("allreduce", 16)
    improved = MpiWorld(tuned, 16, seed=5).run_collective("allreduce",
                                                          16)
    assert improved < baseline


def test_decision_table_threads_through_world():
    """MpiWorld(decision_table=...) flips the dispatched algorithm."""

    class OneCellTable:
        def lookup(self, machine, op, nbytes, p):
            if op == "allgather":
                return "ring_allgather"
            return None

    spec = get_machine_spec("t3d")
    world = MpiWorld("t3d", 8, seed=3,
                     decision_table=OneCellTable())
    world.run_collective("allgather", 1024)
    # Ring allgather: every rank sends p - 1 blocks.
    assert all(node.nic.messages_sent == 7
               for node in world.machine.nodes)
    # The spec object handed to MpiWorld was not mutated.
    assert getattr(spec, "_decision_table", None) is None
