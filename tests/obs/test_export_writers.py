"""Tests for the CSV/folded writers and Chrome-trace determinism."""

import csv
import json
import os
import subprocess
import sys
from pathlib import Path

from repro.obs import (
    EngineProfiler,
    chrome_trace_document,
    chrome_trace_events,
    write_chrome_trace,
    write_folded_stacks,
    write_profile_csv,
    write_spans_csv,
)
from repro.sim import Tracer

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

SPAN_FIELDS = ["id", "parent", "category", "name", "node", "start_us",
               "end_us", "duration_us", "detail"]


def _tracer_with_awkward_names():
    tracer = Tracer(enabled=True)
    root = tracer.begin(0.0, 'phase "one", early', "phase")
    span = tracer.begin(1.0, "msg 3->0, retry", "message", node=3,
                        parent=root, dst=0, nbytes=16)
    tracer.end(span, 2.5)
    open_span = tracer.begin(2.0, 'quoted "name"', "link", node=1)
    assert open_span.end is None  # stays open on purpose
    tracer.end(root, 3.0)
    return tracer


# -- spans CSV ------------------------------------------------------------

def test_spans_csv_header_is_stable(tmp_path):
    path = tmp_path / "spans.csv"
    write_spans_csv(Tracer(enabled=True), str(path))
    assert path.read_text().splitlines() == [",".join(SPAN_FIELDS)]


def test_spans_csv_escapes_commas_and_quotes(tmp_path):
    path = tmp_path / "spans.csv"
    write_spans_csv(_tracer_with_awkward_names(), str(path))
    with open(path, newline="") as handle:
        rows = list(csv.DictReader(handle))
    assert [row["name"] for row in rows] == [
        'phase "one", early', "msg 3->0, retry", 'quoted "name"']
    # The detail column is JSON and survives the CSV round-trip.
    assert json.loads(rows[1]["detail"]) == {"dst": 0, "nbytes": 16}
    # Open spans leave end_us empty rather than inventing a time.
    assert rows[2]["end_us"] == ""
    assert rows[0]["node"] == ""


# -- profile CSV / folded stacks ------------------------------------------

def test_profile_csv_empty_profiler(tmp_path):
    path = tmp_path / "profile.csv"
    write_profile_csv(EngineProfiler(), str(path))
    assert path.read_text().splitlines() == [
        "site,calls,cumulative_s,self_s"]


def test_profile_csv_rows(tmp_path):
    profiler = EngineProfiler()
    profiler.enter("outer")
    profiler.enter("inner")
    profiler.leave()
    profiler.leave()
    path = tmp_path / "profile.csv"
    write_profile_csv(profiler, str(path))
    with open(path, newline="") as handle:
        rows = list(csv.DictReader(handle))
    assert {row["site"] for row in rows} >= {"outer"}


def test_folded_stacks_empty_profiler(tmp_path):
    path = tmp_path / "stacks.folded"
    write_folded_stacks(EngineProfiler(), str(path))
    assert path.read_text() == ""


def test_folded_stacks_end_with_newline(tmp_path):
    profiler = EngineProfiler()
    profiler.enter("site")
    profiler.leave()
    path = tmp_path / "stacks.folded"
    write_folded_stacks(profiler, str(path))
    text = path.read_text()
    assert text.endswith("\n")
    assert len(text.splitlines()) == len(profiler.folded_lines())


# -- chrome trace determinism (satellite: explicit track ordering) --------

def test_thread_metadata_up_front_in_sorted_tid_order():
    tracer = Tracer(enabled=True)
    # Nodes first seen out of order: 5 before 2 before 0.
    for node in (5, 2, 0):
        span = tracer.begin(float(node), f"msg {node}", "message",
                            node=node)
        tracer.end(span, float(node) + 1)
    events = chrome_trace_events(tracer)
    meta = [e for e in events if e["ph"] == "M"]
    rest = [e for e in events if e["ph"] != "M"]
    # All metadata precedes all span events, and track names come in
    # ascending tid order regardless of first-seen span order.
    assert events[:len(meta)] == meta
    thread_names = [e for e in meta if e["name"] == "thread_name"]
    assert [e["tid"] for e in thread_names] == [0, 1, 3, 6]
    assert thread_names[1]["args"]["name"] == "node 0"
    assert [e["tid"] for e in rest] == [6, 3, 1]


def test_record_only_tracks_get_no_thread_name():
    tracer = Tracer(enabled=True)
    span = tracer.begin(0.0, "msg 0", "message", node=0)
    tracer.end(span, 1.0)
    tracer.emit(0.5, "link-contention", node=9, waited_us=1.0)
    events = chrome_trace_events(tracer)
    named = {e["tid"] for e in events
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert named == {0, 1}  # node 9's record track stays unnamed
    assert any(e["ph"] == "i" and e["tid"] == 10 for e in events)


_TRACE_SNIPPET = """\
import json
from repro.faults import fault_preset
from repro.obs import chrome_trace_document
from repro.obs.capture import capture_collective

capture = capture_collective("t3d", "broadcast", nbytes=4096,
                             num_nodes=16, seed=7,
                             faults=fault_preset("flaky-link"))
print(json.dumps(chrome_trace_document(capture.tracer),
                 sort_keys=True), end="")
"""


def test_chrome_trace_byte_identical_across_processes():
    outputs = []
    for _ in range(2):
        result = subprocess.run(
            [sys.executable, "-c", _TRACE_SNIPPET],
            capture_output=True, text=True, check=True,
            env={**os.environ, "PYTHONPATH": REPO_SRC,
                 "PYTHONHASHSEED": "random"})
        outputs.append(result.stdout)
    assert outputs[0] == outputs[1]
    document = json.loads(outputs[0])
    assert document["otherData"]["spans"] > 0


def test_write_chrome_trace_byte_identical_across_calls(tmp_path):
    tracer = _tracer_with_awkward_names()
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    write_chrome_trace(tracer, str(first))
    write_chrome_trace(tracer, str(second))
    assert first.read_bytes() == second.read_bytes()
    assert json.loads(first.read_text()) \
        == chrome_trace_document(tracer)
