"""Tests for the engine profiler hook."""

from repro.obs import EngineProfiler
from repro.obs.profiler import _process_type
from repro.sim import Environment


def test_process_type_strips_instance_suffixes():
    assert _process_type("rank-3") == "rank"
    assert _process_type("wire-0-15") == "wire"
    assert _process_type("process") == "process"
    assert _process_type("42") == "42"  # never returns empty


def test_profiler_counts_events_and_times_callbacks():
    env = Environment()
    profiler = EngineProfiler()
    env.profiler = profiler

    def worker():
        for _ in range(5):
            yield env.timeout(1.0)

    env.process(worker(), name="rank-0")
    env.process(worker(), name="rank-1")
    env.run()

    assert profiler.events_scheduled.get("Timeout") == 10
    assert profiler.events_fired.get("Timeout") == 10
    assert profiler.total_scheduled == profiler.total_fired
    assert "rank" in profiler.callback_stats
    count, seconds = profiler.callback_stats["rank"]
    assert count >= 10
    assert seconds >= 0


def test_profiler_report_ranks_hot_paths():
    env = Environment()
    profiler = EngineProfiler()
    env.profiler = profiler

    def busy():
        yield env.timeout(1.0)

    env.process(busy(), name="rank-0")
    env.run()
    report = profiler.format_report(top=3)
    assert "engine profile:" in report
    assert "events scheduled:" in report
    assert "rank" in report
    hottest = profiler.hottest()
    assert hottest and hottest[0][2] >= hottest[-1][2]


def test_profiler_detached_has_no_effect_on_results():
    def run(with_profiler):
        env = Environment()
        if with_profiler:
            env.profiler = EngineProfiler()

        def worker():
            for _ in range(20):
                yield env.timeout(0.5)

        env.process(worker())
        env.run()
        return env.now

    assert run(False) == run(True) == 10.0


def test_profiler_empty_run_reports_cleanly():
    profiler = EngineProfiler()
    assert profiler.total_scheduled == 0
    assert profiler.total_fired == 0
    assert profiler.total_callback_seconds == 0.0
    assert profiler.rankings() == []
    assert profiler.hottest() == []
    assert profiler.folded_lines() == []
    report = profiler.format_report()
    assert "engine profile:" in report
    assert "events scheduled: 0" in report


def test_profiler_nested_regions_split_self_and_cumulative():
    """Resource request/release open nested frames inside the worker's
    callback frames, so the worker's self time is strictly less than
    its cumulative time and the folded export carries the nesting."""
    from repro.sim import Resource

    env = Environment()
    profiler = EngineProfiler()
    env.profiler = profiler
    resource = Resource(env, capacity=1)

    def worker():
        for _ in range(25):
            request = resource.request()
            yield request
            yield env.timeout(0.1)
            resource.release(request)

    for index in range(4):
        env.process(worker(), name=f"worker-{index}")
    env.run()

    assert "resource.request" in profiler.sites
    assert "resource.release" in profiler.sites
    calls, cum_s, self_s = profiler.sites["worker"]
    assert calls > 0
    assert self_s < cum_s  # nested region time was subtracted
    folded = profiler.folded_lines()
    assert any(line.startswith("worker;resource.") for line in folded)
    # Self times sum to the true total (no double counting).
    total = profiler.total_callback_seconds
    cum_total = sum(cum for _, (_, cum, _s) in profiler.sites.items())
    assert total <= cum_total


def test_profiler_attach_detach_mid_run():
    """Detaching mid-run keeps already-open frames balanced (the
    engine holds its own reference for the duration of a callback) and
    stops recording new ones."""
    env = Environment()
    profiler = EngineProfiler()

    def phase_one():
        yield env.timeout(1.0)
        env.profiler = None  # detach from inside a profiled callback

    def phase_two():
        yield env.timeout(5.0)

    env.profiler = profiler
    env.process(phase_one(), name="early-0")
    env.process(phase_two(), name="late-0")
    env.run()
    assert env.profiler is None
    assert profiler._stack == []  # every frame was closed
    assert "early" in profiler.sites
    # Re-attach works and keeps accumulating into the same profiler.
    env2 = Environment()
    env2.profiler = profiler

    def more():
        yield env2.timeout(1.0)

    env2.process(more(), name="early-1")
    env2.run()
    assert profiler.sites["early"][0] >= 2


def test_profiler_rankings_tie_broken_by_name():
    profiler = EngineProfiler()
    for site in ("zeta", "alpha", "mid"):
        profiler.enter(site)
        profiler.leave()
    # Force identical costs so ordering falls back to the name.
    for site in profiler.sites:
        profiler.sites[site] = [1, 0.5, 0.5]
    ranked = [site for site, _, _, _ in profiler.rankings()]
    assert ranked == ["alpha", "mid", "zeta"]
    assert [site for site, _, _ in profiler.hottest(2)] == \
        ["alpha", "mid"]


def test_profiler_callback_timed_legacy_hook():
    profiler = EngineProfiler()

    class Owner:
        name = "rank-7"

    class Bound:
        __self__ = Owner()

        def __call__(self, event):  # pragma: no cover - never invoked
            pass

    profiler.callback_timed(Bound(), 0.25)
    count, seconds = profiler.callback_stats["rank"]
    assert count == 1
    assert seconds == 0.25
    assert profiler.sites["rank"][2] == 0.25  # self == cumulative
    assert profiler.folded_lines() == ["rank 250000"]


def test_profiler_csv_and_folded_exports(tmp_path):
    from repro.obs import write_folded_stacks, write_profile_csv

    env = Environment()
    profiler = EngineProfiler()
    env.profiler = profiler

    def busy():
        yield env.timeout(1.0)

    env.process(busy(), name="rank-0")
    env.run()
    csv_path = tmp_path / "profile.csv"
    write_profile_csv(profiler, str(csv_path))
    lines = csv_path.read_text().strip().splitlines()
    assert lines[0] == "site,calls,cumulative_s,self_s"
    assert any(line.startswith("rank,") for line in lines[1:])
    folded_path = tmp_path / "engine.folded"
    write_folded_stacks(profiler, str(folded_path))
    content = folded_path.read_text()
    assert content.endswith("\n")
    for line in content.strip().splitlines():
        stack, _, weight = line.rpartition(" ")
        assert stack
        assert weight.isdigit()
