"""Tests for the engine profiler hook."""

from repro.obs import EngineProfiler
from repro.obs.profiler import _process_type
from repro.sim import Environment


def test_process_type_strips_instance_suffixes():
    assert _process_type("rank-3") == "rank"
    assert _process_type("wire-0-15") == "wire"
    assert _process_type("process") == "process"
    assert _process_type("42") == "42"  # never returns empty


def test_profiler_counts_events_and_times_callbacks():
    env = Environment()
    profiler = EngineProfiler()
    env.profiler = profiler

    def worker():
        for _ in range(5):
            yield env.timeout(1.0)

    env.process(worker(), name="rank-0")
    env.process(worker(), name="rank-1")
    env.run()

    assert profiler.events_scheduled.get("Timeout") == 10
    assert profiler.events_fired.get("Timeout") == 10
    assert profiler.total_scheduled == profiler.total_fired
    assert "rank" in profiler.callback_stats
    count, seconds = profiler.callback_stats["rank"]
    assert count >= 10
    assert seconds >= 0


def test_profiler_report_ranks_hot_paths():
    env = Environment()
    profiler = EngineProfiler()
    env.profiler = profiler

    def busy():
        yield env.timeout(1.0)

    env.process(busy(), name="rank-0")
    env.run()
    report = profiler.format_report(top=3)
    assert "engine profile:" in report
    assert "events scheduled:" in report
    assert "rank" in report
    hottest = profiler.hottest()
    assert hottest and hottest[0][2] >= hottest[-1][2]


def test_profiler_detached_has_no_effect_on_results():
    def run(with_profiler):
        env = Environment()
        if with_profiler:
            env.profiler = EngineProfiler()

        def worker():
            for _ in range(20):
                yield env.timeout(0.5)

        env.process(worker())
        env.run()
        return env.now

    assert run(False) == run(True) == 10.0
