"""Tests for the metrics registry primitives."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_accumulates():
    registry = MetricsRegistry(enabled=True)
    counter = registry.counter("x")
    counter.inc()
    counter.inc(41)
    assert registry.counter("x").value == 42


def test_gauge_tracks_high_water():
    gauge = MetricsRegistry().gauge("depth")
    gauge.set(3)
    gauge.set(7)
    gauge.set(2)
    assert gauge.value == 2
    assert gauge.high_water == 7
    assert gauge.samples == 3


def test_gauge_inc_dec():
    gauge = MetricsRegistry().gauge("g")
    gauge.inc()
    gauge.inc()
    gauge.dec()
    assert gauge.value == 1
    assert gauge.high_water == 2


def test_histogram_log2_buckets():
    hist = MetricsRegistry().histogram("h")
    for value in (0, 0.5, 1, 2, 3, 1024, 1500):
        hist.observe(value)
    assert hist.count == 7
    buckets = dict(hist.nonzero_buckets())
    assert buckets[1] == 2       # 0 and 0.5 (below 1)
    assert buckets[2] == 1       # 1 -> [1, 2)
    assert buckets[4] == 2       # 2, 3 -> [2, 4)
    assert buckets[2048] == 2    # 1024, 1500 -> [1024, 2048)
    assert hist.min == 0
    assert hist.max == 1500
    assert hist.mean == pytest.approx(sum((0, 0.5, 1, 2, 3, 1024, 1500)) / 7)


def test_histogram_huge_values_clamp_to_last_bucket():
    hist = MetricsRegistry().histogram("h")
    hist.observe(2 ** 40)
    assert hist.count == 1
    assert sum(count for _, count in hist.nonzero_buckets()) == 1


def test_histogram_rejects_negative():
    with pytest.raises(ValueError):
        MetricsRegistry().histogram("h").observe(-1)


def test_registry_get_or_create_and_type_conflict():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    with pytest.raises(TypeError):
        registry.gauge("a")


def test_registry_snapshot_is_json_friendly():
    import json

    registry = MetricsRegistry(enabled=True)
    registry.counter("c").inc(5)
    registry.gauge("g").set(1.5)
    registry.histogram("h").observe(10)
    snapshot = registry.snapshot()
    json.dumps(snapshot)  # must not raise
    assert snapshot["c"] == {"type": "counter", "value": 5}
    assert snapshot["g"]["high_water"] == 1.5
    assert snapshot["h"]["count"] == 1


def test_registry_format_report_mentions_all_instruments():
    registry = MetricsRegistry(enabled=True)
    registry.counter("alpha").inc()
    registry.gauge("beta").set(2)
    registry.histogram("gamma").observe(4)
    report = registry.format_report()
    for name in ("alpha", "beta", "gamma"):
        assert name in report


def test_registry_disabled_by_default():
    assert MetricsRegistry().enabled is False
    assert len(MetricsRegistry()) == 0


def test_instruments_importable_directly():
    assert Counter("c").value == 0
    assert Gauge("g").high_water == 0.0
    assert Histogram("h").count == 0
