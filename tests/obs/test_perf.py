"""Tests for the deterministic work meter (repro.obs.perf)."""

import os
import subprocess
import sys
from pathlib import Path

from repro.obs import WORK_COUNTERS, WorkMeter
from repro.sim import Environment, Resource
from repro.mpi import MpiWorld

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _run_micro(meter=None):
    env = Environment()
    env.work = meter
    resource = Resource(env, capacity=1)

    def worker():
        for _ in range(10):
            request = resource.request()
            yield request
            yield env.timeout(0.5)
            resource.release(request)

    for index in range(3):
        env.process(worker(), name=f"worker-{index}")
    env.run()
    return env.now


def test_meter_starts_zeroed_and_snapshots_sorted():
    meter = WorkMeter()
    snapshot = meter.snapshot()
    assert set(snapshot) == set(WORK_COUNTERS)
    assert list(snapshot) == sorted(snapshot)
    assert all(value == 0 for value in snapshot.values())
    assert meter.total() == 0


def test_meter_counts_engine_and_resource_work():
    meter = WorkMeter()
    _run_micro(meter)
    assert meter.events_scheduled > 0
    assert meter.events_fired == meter.events_scheduled
    assert meter.heap_pushes == meter.events_scheduled
    assert meter.heap_pops == meter.events_fired
    assert meter.heap_peak >= 1
    # Events with no waiters dispatch zero callbacks, so the two
    # counters are close but not equal.
    assert meter.callbacks_dispatched > 0
    assert meter.resource_requests == 30
    assert meter.resource_grants == 30
    assert meter.resource_releases == 30
    assert meter.resource_cancellations == 0
    # Untouched subsystems stay zero.
    assert meter.transfers_booked == 0
    assert meter.messages_sent == 0


def test_meter_reset_and_equality():
    first, second = WorkMeter(), WorkMeter()
    _run_micro(first)
    assert first != second
    assert first == first
    first.reset()
    assert first == second
    assert first.total() == 0


def test_meter_attachment_does_not_change_results():
    assert _run_micro(None) == _run_micro(WorkMeter()) == 15.0


def test_meter_counts_transport_and_fabric_work():
    meter = WorkMeter()
    world = MpiWorld("t3d", 4, seed=0)
    world.env.work = meter
    world.run_collective("broadcast", 1024)
    assert meter.messages_sent > 0
    assert meter.messages_delivered == meter.messages_sent
    assert meter.transfers_booked > 0
    assert meter.transfers_completed == meter.transfers_booked
    assert meter.link_acquisitions >= meter.transfers_booked
    assert meter.retransmissions == 0
    assert meter.transfers_aborted == 0


def test_meter_counts_store_traffic():
    from repro.sim import Store

    env = Environment()
    meter = WorkMeter()
    env.work = meter
    store = Store(env)

    def producer():
        for item in range(5):
            store.put(item)
            yield env.timeout(1.0)

    def consumer():
        for _ in range(5):
            yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert meter.store_puts == 5
    assert meter.store_gets == 5


def test_meter_format_report_lists_nonzero_counters():
    meter = WorkMeter()
    report = meter.format_report()
    assert "no work recorded" in report
    _run_micro(meter)
    report = meter.format_report()
    assert "work counters:" in report
    assert "resource_requests" in report
    assert "transfers_booked" not in report  # zero counters omitted


def test_work_counters_identical_across_runs():
    first, second = WorkMeter(), WorkMeter()
    world = MpiWorld("sp2", 8, seed=0)
    world.env.work = first
    world.run_collective("broadcast", 4096)
    world = MpiWorld("sp2", 8, seed=0)
    world.env.work = second
    world.run_collective("broadcast", 4096)
    assert first.snapshot() == second.snapshot()


def test_work_counters_unaffected_by_profiler():
    from repro.obs import EngineProfiler

    def counters(profile):
        meter = WorkMeter()
        world = MpiWorld("paragon", 4, seed=0)
        world.env.work = meter
        if profile:
            world.env.profiler = EngineProfiler()
        world.run_collective("allreduce", 512)
        return meter.snapshot()

    assert counters(False) == counters(True)


_SUBPROCESS_SNIPPET = """
import json
from repro.mpi import MpiWorld
from repro.obs import WorkMeter

meter = WorkMeter()
world = MpiWorld("t3d", 4, seed=0)
world.env.work = meter
world.run_collective("broadcast", 1024)
print(json.dumps(meter.snapshot(), sort_keys=True))
"""


def test_work_counters_identical_across_processes():
    """The work section must be byte-stable across process boundaries
    (fresh interpreter, fresh hash seed)."""
    outputs = set()
    for _ in range(2):
        proc = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SNIPPET],
            capture_output=True, text=True, check=True,
            env={**os.environ, "PYTHONPATH": REPO_SRC,
                 "PYTHONHASHSEED": "random"})
        outputs.add(proc.stdout)
    assert len(outputs) == 1
    meter = WorkMeter()
    world = MpiWorld("t3d", 4, seed=0)
    world.env.work = meter
    world.run_collective("broadcast", 1024)
    import json
    assert json.loads(outputs.pop()) == meter.snapshot()
