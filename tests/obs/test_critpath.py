"""Causal critical-path analyzer: chain, attribution, slack."""

import pytest

from repro.faults import fault_preset
from repro.obs.capture import capture_collective
from repro.obs.critpath import (
    COMPONENTS,
    critical_path,
    critpath_rows,
    write_critpath_csv,
)
from repro.sim import Tracer

#: The attribution must be exact: acceptance tolerance is 1e-9 s,
#: i.e. 1e-3 us.
SUM_TOL_US = 1e-3


def _assert_exact_partition(path):
    assert set(path.components) == set(COMPONENTS)
    assert sum(path.components.values()) == \
        pytest.approx(path.total_us, abs=SUM_TOL_US)
    for step in path.steps:
        assert sum(step.components.values()) == \
            pytest.approx(step.duration_us, abs=SUM_TOL_US)


def test_clean_broadcast_chain_and_attribution():
    capture = capture_collective("sp2", "broadcast", nbytes=4096,
                                 num_nodes=16)
    path = capture.critical_path()
    assert path.op == "broadcast"
    assert path.messages == 15
    assert path.steps, "clean broadcast must have a causal chain"
    # Binomial-tree depth: the chain is log2(p) hops deep.
    assert len(path.steps) == 4
    _assert_exact_partition(path)
    assert path.components["fault_recovery"] == 0.0
    assert path.components["wire"] > 0.0
    assert path.components["software"] > 0.0
    # Chain steps are causally ordered and connected by rank.
    for earlier, later in zip(path.steps, path.steps[1:]):
        assert earlier.end_us <= later.start_us + 1e-9
        assert earlier.dst == later.src


def test_clean_broadcast_slack_bounds():
    capture = capture_collective("sp2", "broadcast", nbytes=4096,
                                 num_nodes=16)
    path = capture.critical_path()
    assert set(path.slack_us) == set(range(16))
    for slack in path.slack_us.values():
        assert 0.0 <= slack <= path.total_us + 1e-9
    extremes = path.slack_extremes()
    assert extremes is not None
    (lo_rank, lo), (hi_rank, hi) = extremes
    assert lo <= hi
    assert lo == min(path.slack_us.values())
    assert hi == max(path.slack_us.values())


def test_faulty_broadcast_attributes_fault_recovery():
    """The acceptance scenario: a 64-node T3D broadcast losing a link
    mid-flight must attribute at least the injected recovery time
    (one full RTO of backoff) to the fault-recovery component."""
    plan = fault_preset("midflight-outage")
    capture = capture_collective("t3d", "broadcast", nbytes=1 << 20,
                                 num_nodes=64, faults=plan)
    path = capture.critical_path()
    _assert_exact_partition(path)
    assert path.components["fault_recovery"] >= plan.retry.timeout_us
    categories = {span.category for span in capture.tracer.spans()}
    assert "retransmit" in categories


def test_lost_small_messages_produce_backoff_spans():
    """When the wasted wire time is shorter than the RTO, the sender
    sits out the remainder under a ``backoff`` span."""
    from repro.faults import FaultPlan

    plan = FaultPlan(name="very-lossy", loss_probability=0.5)
    capture = capture_collective("sp2", "broadcast", nbytes=1024,
                                 num_nodes=16, faults=plan, seed=7)
    spans = capture.tracer.spans()
    retransmits = [s for s in spans if s.category == "retransmit"]
    backoffs = [s for s in spans if s.category == "backoff"]
    assert retransmits, "p=0.5 loss over 15 messages must lose some"
    assert backoffs, "1 KB wire time is far below the 1 ms RTO"
    for span in backoffs:
        assert span.end is not None
        assert span.detail["rto_us"] >= span.end - span.start
    path = capture.critical_path()
    _assert_exact_partition(path)
    assert path.components["fault_recovery"] > 0.0


def test_outage_from_start_produces_reroute_spans():
    plan = fault_preset("single-link-outage")
    capture = capture_collective("t3d", "broadcast", nbytes=65536,
                                 num_nodes=16, faults=plan)
    reroutes = [span for span in capture.tracer.spans()
                if span.category == "reroute"]
    assert reroutes, "dead link from t=0 must force detours"
    for span in reroutes:
        assert span.end is not None and span.end >= span.start
    path = capture.critical_path()
    _assert_exact_partition(path)


def test_multiple_iterations_selects_longest_collective():
    capture = capture_collective("sp2", "broadcast", nbytes=4096,
                                 num_nodes=8, iterations=3)
    collectives = [span for span in capture.tracer.spans()
                   if span.category == "collective"]
    assert len(collectives) == 3
    longest = max(collectives, key=lambda s: s.duration)
    path = capture.critical_path()
    assert path.total_us == pytest.approx(longest.duration)
    explicit = critical_path(capture.tracer, collective=collectives[0])
    assert explicit.seq == collectives[0].detail.get("seq")


def test_format_mentions_every_component():
    capture = capture_collective("t3d", "reduce", nbytes=1024,
                                 num_nodes=8)
    text = capture.critical_path().format()
    assert "critical path: reduce" in text
    for name in ("software", "wire", "contention", "fault-recovery"):
        assert name in text
    assert "per-rank slack" in text


def test_format_top_truncates_steps():
    capture = capture_collective("sp2", "broadcast", nbytes=4096,
                                 num_nodes=16)
    path = capture.critical_path()
    text = path.format(top=2)
    assert f"({len(path.steps) - 2} more steps)" in text


def test_csv_writer_chain_plus_total_row(tmp_path):
    capture = capture_collective("sp2", "broadcast", nbytes=4096,
                                 num_nodes=8)
    path = capture.critical_path()
    out = tmp_path / "critpath.csv"
    assert write_critpath_csv(path, str(out)) == str(out)
    lines = out.read_text().strip().splitlines()
    # header + one row per step + the totals row
    assert len(lines) == len(path.steps) + 2
    assert lines[0].startswith("step,span_id,name")
    assert lines[-1].startswith("total,")
    rows = critpath_rows(path)
    assert len(rows) == len(path.steps)
    for row, step in zip(rows, path.steps):
        assert row["duration_us"] == pytest.approx(step.duration_us)


def test_no_collective_span_raises():
    with pytest.raises(ValueError, match="no closed collective span"):
        critical_path(Tracer(enabled=True))
