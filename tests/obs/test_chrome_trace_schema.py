"""Golden schema lock for the Chrome-trace/Perfetto export.

Perfetto compatibility depends on exact field names, the pid/tid
mapping, and sane timestamps.  The schema skeleton (field-name sets
per event phase, categories, track names — no timings) is locked
against a checked-in fixture so a silent field rename or track
reshuffle fails loudly; timestamp sanity is asserted in code.
"""

from repro.faults import fault_preset
from repro.obs import chrome_trace_document
from repro.obs.capture import capture_collective


def _clean_capture():
    return capture_collective("sp2", "broadcast", nbytes=1024,
                              num_nodes=4)


def _faulty_capture():
    return capture_collective("t3d", "broadcast", nbytes=65536,
                              num_nodes=16,
                              faults=fault_preset("single-link-outage"))


def _schema_skeleton(doc):
    """Structure of the trace document with all timings stripped."""
    events = doc["traceEvents"]
    phases = {}
    for event in events:
        keyset = sorted(event)
        shapes = phases.setdefault(event["ph"], [])
        if keyset not in shapes:
            shapes.append(keyset)
    tracks = {str(e["tid"]): e["args"]["name"] for e in events
              if e["ph"] == "M" and e["name"] == "thread_name"}
    return {
        "document_keys": sorted(doc),
        "other_data_keys": sorted(doc["otherData"]),
        "phases": {ph: sorted(map(tuple, shapes))
                   for ph, shapes in phases.items()},
        "categories": sorted({e["cat"] for e in events if "cat" in e}),
        "pids": sorted({e["pid"] for e in events}),
        "tracks": tracks,
        "span_events": sum(1 for e in events if e["ph"] == "X"),
    }


def test_clean_trace_schema_matches_golden(golden):
    doc = chrome_trace_document(_clean_capture().tracer)
    golden.check("chrome_trace_schema.json", _schema_skeleton(doc))


def test_faulty_trace_schema_matches_golden(golden):
    """Locks the fault-recovery span categories (reroute etc.) into
    the exported schema alongside the clean ones."""
    doc = chrome_trace_document(_faulty_capture().tracer)
    golden.check("chrome_trace_schema_faulty.json",
                 _schema_skeleton(doc))


def test_complete_events_have_monotonic_timestamps():
    """Spans are exported in begin order, so clean-trace "X" events
    carry non-decreasing ts and non-negative dur."""
    doc = chrome_trace_document(_clean_capture().tracer)
    complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert complete
    last = 0.0
    for event in complete:
        assert event["ts"] >= last
        assert event["dur"] >= 0
        last = event["ts"]


def test_faulty_trace_timestamps_sane():
    """Retroactive recovery spans may begin before later spans, so
    the order guarantee relaxes to: every timestamp non-negative,
    every duration non-negative."""
    doc = chrome_trace_document(_faulty_capture().tracer)
    complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert complete
    for event in complete:
        assert event["ts"] >= 0
        assert event["dur"] >= 0


def test_span_ids_unique_and_parents_resolvable():
    doc = chrome_trace_document(_faulty_capture().tracer)
    complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    ids = [e["args"]["id"] for e in complete]
    assert len(ids) == len(set(ids))
    known = set(ids)
    for event in complete:
        parent = event["args"].get("parent")
        if parent is not None:
            assert parent in known


def test_pid_tid_mapping():
    """One process; track 0 for aggregate spans, node n on track n+1."""
    doc = chrome_trace_document(_clean_capture().tracer)
    events = doc["traceEvents"]
    assert {e["pid"] for e in events} == {0}
    tracks = {e["tid"]: e["args"]["name"] for e in events
              if e["ph"] == "M" and e["name"] == "thread_name"}
    assert tracks[0] == "collectives"
    for event in events:
        if event["ph"] != "X":
            continue
        if event["cat"] in ("collective", "phase"):
            assert event["tid"] == 0
        else:
            # Per-node spans land on track node+1, which must be named.
            assert event["tid"] >= 1
            assert tracks[event["tid"]] == f"node {event['tid'] - 1}"
