"""Tests for replay-frame serialization (CollectiveCapture)."""

import json

import pytest

from repro.faults import fault_preset
from repro.obs.capture import (
    REPLAY_SCHEMA,
    capture_collective,
    dumps_replay_frames,
    load_replay_frames,
    write_replay_frames,
)


def _capture(machine="t3d", faults="single-link-outage", **kwargs):
    plan = fault_preset(faults) if faults else None
    return capture_collective(machine, "broadcast", nbytes=4096,
                              num_nodes=16, seed=7, faults=plan,
                              **kwargs)


def test_replay_document_shape():
    doc = _capture().to_replay_frames()
    assert doc["schema"] == REPLAY_SCHEMA
    assert doc["machine"] == "t3d"
    assert doc["op"] == "broadcast"
    assert doc["num_nodes"] == 16
    assert doc["seed"] == 7
    assert doc["faults"] == "single-link-outage"
    assert doc["elapsed_us"] > 0
    assert len(doc["topology"]["positions"]) == 16
    for x, y in doc["topology"]["positions"]:
        assert 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0
    assert doc["frames"]
    categories = {frame["category"] for frame in doc["frames"]}
    assert "message" in categories
    assert "link" in categories
    # The outage forced a detour, so recovery work is in the replay.
    assert categories & {"retransmit", "backoff", "reroute"}


def test_frames_sorted_and_linked_to_critical_path():
    doc = _capture().to_replay_frames()
    keys = [(frame["start_us"], frame["id"])
            for frame in doc["frames"]]
    assert keys == sorted(keys)
    ids = {frame["id"] for frame in doc["frames"]}
    critical = doc["critical_path"]
    assert critical is not None
    assert critical["total_us"] > 0
    assert set(critical["span_ids"]) <= ids
    assert set(critical["components"]) == {
        "software", "wire", "contention", "fault_recovery"}


def test_torus_and_mesh_links_carry_geometry():
    for machine in ("t3d", "paragon"):
        doc = _capture(machine=machine,
                       faults=None).to_replay_frames()
        links = [f for f in doc["frames"] if f["category"] == "link"]
        assert links
        assert all("points" in frame for frame in links)
        for frame in links:
            assert len(frame["points"]) == 2


def test_omega_links_have_no_geometry():
    # SP2 link ids name switch ports, not nodes; the replay falls back
    # to the message's src->dst line.
    doc = _capture(machine="sp2", faults=None).to_replay_frames()
    links = [f for f in doc["frames"] if f["category"] == "link"]
    assert links
    assert all("points" not in frame for frame in links)


def test_clean_capture_omits_faults_key():
    doc = _capture(faults=None).to_replay_frames()
    assert "faults" not in doc


def test_replay_serialization_is_byte_stable():
    first = dumps_replay_frames(_capture().to_replay_frames())
    second = dumps_replay_frames(_capture().to_replay_frames())
    assert first == second
    assert first.endswith("\n")
    assert json.loads(first)["schema"] == REPLAY_SCHEMA


def test_write_and_load_roundtrip(tmp_path):
    doc = _capture().to_replay_frames()
    path = write_replay_frames(doc, tmp_path / "replay.json")
    assert load_replay_frames(path) == doc
    path.write_text('{"schema": "repro-sweep/1"}')
    with pytest.raises(ValueError, match="not a replay document"):
        load_replay_frames(path)
