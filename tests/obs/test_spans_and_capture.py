"""End-to-end span/metrics tests over real collective runs.

These assert the paper-level invariants the observability layer
exists for: a binomial broadcast on p=16 really shows ceil(log2 p)=4
phases, and per-link busy time is consistent with the transmission
delay D(m, p) the simulator reports.
"""

import json
import math

import pytest

from repro.core import aggregated_message_length
from repro.obs import (
    chrome_trace_document,
    format_utilization_report,
    link_stats,
    write_chrome_trace,
)
from repro.obs.capture import capture_collective


@pytest.fixture(scope="module")
def broadcast_capture():
    return capture_collective("sp2", "broadcast", nbytes=4096,
                              num_nodes=16, seed=3)


def test_broadcast_has_exactly_ceil_log2_p_phase_spans(broadcast_capture):
    phases = broadcast_capture.tracer.spans("phase")
    assert len(phases) == math.ceil(math.log2(16)) == 4


def test_span_nesting_collective_phase_message_link(broadcast_capture):
    tracer = broadcast_capture.tracer
    collectives = tracer.spans("collective")
    assert len(collectives) == 1
    collective = collectives[0]
    phases = tracer.spans("phase")
    assert all(p.parent == collective.id for p in phases)
    phase_ids = {p.id for p in phases}
    messages = tracer.spans("message")
    # One message per non-root rank.
    assert len(messages) == 15
    assert all(m.parent in phase_ids for m in messages)
    message_ids = {m.id for m in messages}
    links = tracer.spans("link")
    assert links and all(s.parent in message_ids for s in links)


def test_all_spans_closed_and_ordered(broadcast_capture):
    for span in broadcast_capture.tracer.spans():
        assert span.end is not None
        assert span.end >= span.start


def test_phase_spans_cover_member_messages(broadcast_capture):
    tracer = broadcast_capture.tracer
    by_id = {p.id: p for p in tracer.spans("phase")}
    for message in tracer.spans("message"):
        phase = by_id[message.parent]
        assert phase.start <= message.start
        assert phase.end >= message.end


def test_collective_metrics_recorded(broadcast_capture):
    metrics = broadcast_capture.metrics
    assert metrics.counter("coll.broadcast.calls").value == 1
    histogram = metrics.histogram("coll.broadcast.phases")
    assert histogram.count == 1
    assert histogram.max == 4
    assert metrics.counter("mpi.messages_sent").value == 15
    assert metrics.counter("mpi.messages_delivered").value == 15


def test_link_busy_consistent_with_transmission_delay():
    """Table 3 case: SP2 broadcast, m=64 KB, p=16.

    Per-link busy time can never exceed the elapsed window, and the
    total serialization work on the wire must account for at least
    f(m, p) bytes at the link's per-byte cost — the transmission-delay
    component D(m, p) decomposes onto links consistently.
    """
    nbytes, nodes = 65536, 16
    capture = capture_collective("sp2", "broadcast", nbytes=nbytes,
                                 num_nodes=nodes, seed=1, trace=False)
    elapsed = capture.elapsed_us
    stats = link_stats(capture.world.machine.fabric)
    used = [s for s in stats if s["transfers"]]
    assert used
    for s in used:
        assert 0 < s["busy_us"] <= elapsed + 1e-6
    aggregated = aggregated_message_length("broadcast", nbytes, nodes)
    assert sum(s["bytes"] for s in used) >= aggregated
    us_per_byte = capture.world.spec.network.link_parameters.us_per_byte
    total_busy = sum(s["busy_us"] for s in used)
    assert total_busy >= aggregated * us_per_byte
    report = format_utilization_report(capture.world.machine, elapsed)
    assert "busiest links" in report
    assert "achieved aggregate bandwidth" in report


def test_contention_recorded_under_alltoall():
    capture = capture_collective("paragon", "alltoall", nbytes=16384,
                                 num_nodes=16, seed=2, trace=False)
    stats = link_stats(capture.world.machine.fabric)
    assert any(s["wait_us"] > 0 for s in stats)
    assert capture.metrics.counter("fabric.contention_stalls").value > 0


def test_chrome_trace_document_valid_and_nested(broadcast_capture,
                                                tmp_path):
    path = write_chrome_trace(broadcast_capture.tracer,
                              str(tmp_path / "trace.json"))
    doc = json.loads(open(path).read())
    events = doc["traceEvents"]
    complete = [e for e in events if e.get("ph") == "X"]
    categories = {e["cat"] for e in complete}
    assert {"collective", "phase", "message", "link"} <= categories
    for event in complete:
        assert event["dur"] >= 0
        assert "id" in event["args"]
    # Spot-check parenting survived export.
    ids = {e["args"]["id"] for e in complete}
    children = [e for e in complete if "parent" in e["args"]]
    assert children and all(e["args"]["parent"] in ids for e in children)
    assert chrome_trace_document(broadcast_capture.tracer)[
        "otherData"]["dropped"] == 0


def test_spans_csv_round_trip(broadcast_capture, tmp_path):
    import csv

    from repro.obs import write_spans_csv

    path = write_spans_csv(broadcast_capture.tracer,
                           str(tmp_path / "spans.csv"))
    with open(path, newline="") as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == len(broadcast_capture.tracer.spans())
    assert {"collective", "phase", "message", "link"} <= \
        {row["category"] for row in rows}


def test_capture_max_spans_ring_drops_oldest():
    capture = capture_collective("sp2", "broadcast", nbytes=1024,
                                 num_nodes=16, seed=0, max_spans=10)
    assert len(capture.tracer.spans()) == 10
    assert capture.tracer.dropped_spans > 0


def test_tracing_off_by_default_world():
    from repro.mpi import MpiWorld

    world = MpiWorld("t3d", 4, seed=0)
    world.run_collective("broadcast", 256)
    assert world.tracer.spans() == []
    assert len(world.machine.metrics) == 0
