"""Drift auditor: Table 3 comparison, tolerances, byte stability."""

import copy
import json
from pathlib import Path

import pytest

from repro.obs.drift import (
    DRIFT_SCHEMA,
    DriftTolerance,
    audit_artifact,
    build_drift_artifact,
    dumps_drift_artifact,
    format_drift_trend,
    load_drift_artifact,
    write_drift_artifact,
)
from repro.runner import load_artifact

REPO_ROOT = Path(__file__).parents[2]
BASELINE = REPO_ROOT / "tests" / "golden" / "BENCH_sweep_baseline.json"
TREND = REPO_ROOT / "BENCH_drift.json"


@pytest.fixture(scope="module")
def baseline():
    return load_artifact(BASELINE)


def test_baseline_audit_passes(baseline):
    report = audit_artifact(baseline)
    assert report.cells, "the smoke baseline must produce audit cells"
    assert report.passed()
    assert not report.skipped
    # Model mode evaluates the same Table 3 expressions the auditor
    # compares against; only vectorized-vs-scalar libm noise remains.
    assert max(abs(cell.rel_error) for cell in report.cells) < 1e-9
    for cell in report.cells:
        assert cell.model_us > 0
        assert cell.within


def test_report_format_table(baseline):
    text = audit_artifact(baseline).format()
    assert "drift audit vs Table 3" in text
    assert "grid=smoke" in text and "mode=model" in text
    assert "sp2/broadcast" in text and "t3d/barrier" in text
    assert text.endswith("-> PASS")


def test_drift_artifact_byte_stable(baseline, tmp_path):
    first = dumps_drift_artifact(
        build_drift_artifact(audit_artifact(baseline)))
    second = dumps_drift_artifact(
        build_drift_artifact(audit_artifact(baseline)))
    assert first == second
    path = write_drift_artifact(
        build_drift_artifact(audit_artifact(baseline)),
        tmp_path / "drift.json")
    assert path.read_text("utf-8") == first
    assert load_drift_artifact(path)["schema"] == DRIFT_SCHEMA


def test_checked_in_trend_artifact_regenerates_identically(baseline):
    """Regenerating BENCH_drift.json from the golden sweep baseline
    must reproduce the checked-in file byte for byte."""
    regenerated = dumps_drift_artifact(
        build_drift_artifact(audit_artifact(baseline)))
    assert TREND.exists(), \
        "BENCH_drift.json trend artifact missing from the repo root"
    assert TREND.read_text("utf-8") == regenerated


def test_breach_detected_and_reported(baseline):
    doctored = copy.deepcopy(baseline)
    cell = doctored["cells"][0]
    cell["result"]["time_us"] = cell["result"]["time_us"] * 2.0
    report = audit_artifact(doctored)
    assert not report.passed()
    assert len(report.breaches) == 1
    breach = report.breaches[0]
    assert breach.rel_error == pytest.approx(1.0)
    text = report.format()
    assert "BREACH" in text and text.endswith("-> FAIL")
    payload = build_drift_artifact(report)
    assert payload["pass"] is False
    assert payload["breaches"] == 1
    assert payload["worst_cells"][0]["cell"] == breach.key()


def test_per_op_tolerance_override(baseline):
    doctored = copy.deepcopy(baseline)
    for cell in doctored["cells"]:
        if cell["op"] == "barrier":
            cell["result"]["time_us"] *= 1.5
    strict = audit_artifact(doctored)
    assert not strict.passed()
    lax = audit_artifact(doctored, DriftTolerance(
        max_rel_error=0.25, per_op={"barrier": 0.6}))
    assert lax.passed()
    assert lax.tolerance.limit_for("barrier") == 0.6
    assert lax.tolerance.limit_for("broadcast") == 0.25


def test_unknown_op_is_skipped_not_judged(baseline):
    doctored = copy.deepcopy(baseline)
    doctored["cells"].append({
        "machine": "sp2", "op": "alltoallv", "nbytes": 64, "p": 4,
        "result": {"time_us": 123.0},
    })
    report = audit_artifact(doctored)
    assert report.passed()
    assert len(report.skipped) == 1
    key, reason = report.skipped[0]
    assert key == "sp2/alltoallv/64/4"
    assert "no Table 3 model" in reason
    assert "skipped" in report.format()


def test_tolerance_validation():
    with pytest.raises(ValueError, match="max_rel_error"):
        DriftTolerance(max_rel_error=0.0)
    with pytest.raises(ValueError, match="barrier"):
        DriftTolerance(per_op={"barrier": -1.0})


def test_load_rejects_wrong_schema(tmp_path):
    bogus = tmp_path / "bogus.json"
    bogus.write_text(json.dumps({"schema": "other/1"}))
    with pytest.raises(ValueError, match="not a drift artifact"):
        load_drift_artifact(bogus)


def test_trend_sparklines_over_generations(baseline):
    first = build_drift_artifact(audit_artifact(baseline))
    worse = copy.deepcopy(first)
    for stats in worse["summary"].values():
        stats["max_abs_rel_error"] = 0.5
        stats["breaches"] = 2
    worse["breaches"] = 2 * len(worse["summary"])
    worse["pass"] = False
    text = format_drift_trend([first, worse])
    assert "drift trend over 2 generation(s)" in text
    assert "verdicts: PF" in text
    # The degraded generation renders as a taller block than the first.
    line = next(l for l in text.splitlines()
                if l.startswith("sp2/broadcast"))
    assert "\u2581\u2588" in line  # flat start, full-height spike
    assert "50.000%" in line


def test_trend_single_generation(baseline):
    payload = build_drift_artifact(audit_artifact(baseline))
    text = format_drift_trend([payload])
    assert "1 generation(s)" in text
    assert "verdicts: P" in text


def test_trend_rejects_empty_history():
    with pytest.raises(ValueError, match="no drift generations"):
        format_drift_trend([])
