"""Tests for the canonical run ledger (repro.obs.ledger)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.ledger import (
    ARTIFACT_FAMILIES,
    LEDGER_SCHEMA,
    build_ledger,
    classify_document,
    discover_artifacts,
    document_digest,
    dumps_ledger,
    load_ledger,
    scrub_volatile_deep,
    summarize_document,
    validate_ledger,
    write_ledger,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
REPO_SRC = str(REPO_ROOT / "src")

#: The fixed, checked-in inputs of the golden bundle.
GOLDEN_INPUTS = [
    REPO_ROOT / "BENCH_drift.json",
    REPO_ROOT / "BENCH_engine.json",
    REPO_ROOT / "tests/golden/BENCH_sweep_baseline.json",
    REPO_ROOT / "tests/golden/BENCH_tuning_smoke.json",
]


def _golden_ledger():
    return build_ledger(discover_artifacts(GOLDEN_INPUTS))


def test_classify_by_schema():
    for family, schema in ARTIFACT_FAMILIES.items():
        if schema is not None:
            assert classify_document({"schema": schema}) == family


def test_classify_trace_and_chaos_by_shape():
    assert classify_document({"traceEvents": [], "otherData": {}}) \
        == "trace"
    chaos = {"machine": "t3d", "op": "broadcast", "plan": "lossy",
             "nbytes": 64, "nodes": 8, "iterations": 1, "seed": 0,
             "clean_us": 1.0, "faulty_us": 2.0, "penalty_us": 1.0,
             "counters": {}, "metrics": {}}
    assert classify_document(chaos) == "chaos"


def test_classify_rejects_ledgers_and_junk():
    # No ledger-in-ledger: a bundle never indexes another bundle.
    assert classify_document({"schema": LEDGER_SCHEMA,
                              "entries": []}) is None
    assert classify_document({"schema": "unknown/9"}) is None
    assert classify_document({"random": "dict"}) is None
    assert classify_document([1, 2, 3]) is None
    assert classify_document("text") is None


def test_scrub_volatile_deep_reaches_every_level():
    payload = {
        "wall_s": 1.5,
        "keep": {"hostname": "x", "nested": [{"timestamp": 1,
                                              "value": 2}]},
    }
    assert scrub_volatile_deep(payload) == {
        "keep": {"nested": [{"value": 2}]}}


def test_document_digest_ignores_volatile_fields():
    doc = {"schema": "repro-drift/1", "pass": True}
    noisy = dict(doc, wall_s=9.9, hostname="elsewhere")
    assert document_digest(doc) == document_digest(noisy)
    assert document_digest(doc) != document_digest(
        dict(doc, extra=1))


def test_every_family_summarizes():
    chaos = {"machine": "t3d", "op": "broadcast", "plan": "lossy",
             "nbytes": 64, "nodes": 8, "iterations": 1, "seed": 0,
             "clean_us": 1.0, "faulty_us": 2.5, "penalty_us": 1.5,
             "counters": {}, "metrics": {}}
    trace = {"traceEvents": [
        {"ph": "M", "name": "process_name"},
        {"ph": "X", "cat": "message", "name": "msg 0->1"},
        {"ph": "X", "cat": "link", "name": "link x"},
    ], "otherData": {"spans": 2, "records": 0, "dropped": 0}}
    replay = {"schema": "repro-replay/1", "machine": "t3d",
              "op": "broadcast", "nbytes": 64, "num_nodes": 4,
              "frames": [{"id": 1}], "faults": "lossy",
              "critical_path": {"total_us": 1.0}}
    ledger = build_ledger([("chaos.json", "chaos", chaos),
                           ("replay.json", "replay", replay),
                           ("trace.json", "trace", trace)])
    validate_ledger(ledger)
    summaries = {e["family"]: e["summary"] for e in ledger["entries"]}
    assert summaries["chaos"]["penalty_us"] == 1.5
    assert summaries["trace"]["events"] == 3
    assert summaries["trace"]["categories"] == ["link", "message"]
    assert summaries["replay"]["frames"] == 1
    assert summaries["replay"]["has_critical_path"] is True


def test_summarize_unknown_family_rejected():
    with pytest.raises(ValueError, match="unknown artifact family"):
        summarize_document("nope", {})


def test_golden_ledger(golden):
    golden.check("BENCH_ledger.json", _golden_ledger())


def test_ledger_is_byte_stable_across_builds():
    assert dumps_ledger(_golden_ledger()) \
        == dumps_ledger(_golden_ledger())


def test_ledger_is_byte_stable_across_processes():
    snippet = (
        "from repro.obs.ledger import build_ledger, "
        "discover_artifacts, dumps_ledger\n"
        f"inputs = {[str(p) for p in GOLDEN_INPUTS]!r}\n"
        "print(dumps_ledger(build_ledger("
        "discover_artifacts(inputs))), end='')\n"
    )
    outputs = []
    for _ in range(2):
        result = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True, text=True, check=True,
            env={**os.environ, "PYTHONPATH": REPO_SRC,
                 "PYTHONHASHSEED": "random"})
        outputs.append(result.stdout)
    assert outputs[0] == outputs[1]
    assert outputs[0] == dumps_ledger(_golden_ledger())


def test_bundle_digest_tracks_content():
    base = _golden_ledger()
    fewer = build_ledger(discover_artifacts(GOLDEN_INPUTS[:2]))
    assert base["bundle_digest"] != fewer["bundle_digest"]
    assert base["families"] == {"drift": 1, "engine-perf": 1,
                                "sweep": 1, "tuning": 1}


def test_validate_accepts_built_ledger():
    validate_ledger(_golden_ledger())


def test_validate_rejects_wrong_schema():
    with pytest.raises(ValueError, match="not a ledger"):
        validate_ledger({"schema": "repro-sweep/1"})


def test_validate_rejects_tampered_digest():
    ledger = _golden_ledger()
    ledger["entries"][0]["digest"] = "0" * 64
    with pytest.raises(ValueError, match="bundle_digest"):
        validate_ledger(ledger)


def test_validate_rejects_unsorted_and_duplicate_paths():
    ledger = _golden_ledger()
    ledger["entries"].reverse()
    with pytest.raises(ValueError, match="not sorted"):
        validate_ledger(ledger)
    ledger = _golden_ledger()
    ledger["entries"].append(dict(ledger["entries"][-1]))
    with pytest.raises(ValueError):
        validate_ledger(ledger)


def test_validate_rejects_family_census_mismatch():
    ledger = _golden_ledger()
    ledger["families"]["sweep"] = 7
    with pytest.raises(ValueError, match="census"):
        validate_ledger(ledger)


def test_build_rejects_unknown_family():
    with pytest.raises(ValueError, match="unknown artifact family"):
        build_ledger([("x.json", "mystery", {})])


def test_discover_scans_directories_and_skips_junk(tmp_path):
    (tmp_path / "drift.json").write_text(json.dumps(
        {"schema": "repro-drift/1", "pass": True, "breaches": 0,
         "cells": [], "summary": {}, "source": {}}))
    (tmp_path / "notes.json").write_text('{"just": "notes"}')
    (tmp_path / "broken.json").write_text("{nope")
    hidden = tmp_path / ".cache"
    hidden.mkdir()
    (hidden / "sweep.json").write_text(json.dumps(
        {"schema": "repro-sweep/1", "cells": []}))
    nested = tmp_path / "runs"
    nested.mkdir()
    (nested / "sweep.json").write_text(json.dumps(
        {"schema": "repro-sweep/1", "cells": []}))
    found = discover_artifacts([tmp_path])
    assert [(path, family) for path, family, _ in found] == [
        ("drift.json", "drift"), ("runs/sweep.json", "sweep")]


def test_discover_excludes_output_directory(tmp_path):
    site = tmp_path / "site"
    site.mkdir()
    (site / "BENCH_ledger.json").write_text(json.dumps(
        {"schema": "repro-drift/1", "pass": True, "breaches": 0,
         "cells": [], "summary": {}, "source": {}}))
    assert discover_artifacts([tmp_path], exclude=[site]) == []


def test_discover_rejects_explicit_unclassifiable_file(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text('{"just": "notes"}')
    with pytest.raises(ValueError, match="not a recognised artifact"):
        discover_artifacts([path])
    with pytest.raises(ValueError, match="neither a file nor"):
        discover_artifacts([tmp_path / "missing"])


def test_write_and_load_roundtrip(tmp_path):
    ledger = _golden_ledger()
    path = write_ledger(ledger, tmp_path / "BENCH_ledger.json")
    assert load_ledger(path) == ledger
    path.write_text(json.dumps({"schema": "repro-sweep/1"}))
    with pytest.raises(ValueError, match="not a ledger"):
        load_ledger(path)
