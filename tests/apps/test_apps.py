"""Tests for the application kernels (STAP, 2-D FFT, sample sort)."""

import pytest

from repro.apps import (
    FftGrid,
    RadarCube,
    SortJob,
    simulate_fft2d,
    simulate_samplesort,
    simulate_stap,
)


# ---------------------------------------------------------------------------
# Problem descriptions
# ---------------------------------------------------------------------------

def test_radar_cube_validation():
    with pytest.raises(ValueError):
        RadarCube(channels=0)


def test_radar_cube_accounting():
    cube = RadarCube(channels=4, pulses=8, ranges=16)
    assert cube.cells == 512
    assert cube.total_bytes == 4096
    assert cube.corner_turn_bytes(4) == 4096 // 16
    # Flops split evenly over nodes.
    assert cube.doppler_flops_per_node(2) == \
        2 * cube.doppler_flops_per_node(4)


def test_fft_grid_validation():
    with pytest.raises(ValueError):
        FftGrid(n=1)


def test_fft_transpose_tile_shrinks_quadratically():
    grid = FftGrid(n=1024)
    assert grid.transpose_bytes(4) == 16 * grid.transpose_bytes(16)


def test_sort_job_validation():
    with pytest.raises(ValueError):
        SortJob(keys_per_node=0)
    with pytest.raises(ValueError):
        SortJob(oversample=0)


# ---------------------------------------------------------------------------
# End-to-end runs
# ---------------------------------------------------------------------------

SMALL_CUBE = RadarCube(channels=4, pulses=32, ranges=64)
SMALL_GRID = FftGrid(n=256)
SMALL_SORT = SortJob(keys_per_node=10_000)


@pytest.mark.parametrize("machine", ["sp2", "t3d", "paragon"])
def test_stap_runs_on_every_machine(machine):
    result = simulate_stap(machine, 8, SMALL_CUBE)
    assert result.total_us > 0
    assert result.machine == machine
    assert "comm:corner-turn" in result.phases
    assert "compute:doppler" in result.phases
    assert 0.0 < result.communication_fraction < 1.0


def test_stap_phase_sum_equals_total():
    result = simulate_stap("t3d", 8, SMALL_CUBE)
    assert sum(result.phases.values()) == pytest.approx(result.total_us)
    assert result.compute_us + result.communication_us == \
        pytest.approx(result.total_us)


def test_stap_compute_shrinks_with_nodes():
    small = simulate_stap("t3d", 4, SMALL_CUBE)
    large = simulate_stap("t3d", 16, SMALL_CUBE)
    assert large.compute_us < small.compute_us


def test_stap_communication_fraction_grows_with_nodes():
    small = simulate_stap("sp2", 4, SMALL_CUBE)
    large = simulate_stap("sp2", 32, SMALL_CUBE)
    assert large.communication_fraction > small.communication_fraction


def test_fft2d_runs_and_balances_row_col():
    result = simulate_fft2d("t3d", 8, SMALL_GRID)
    rows = result.phases["compute:row-ffts"]
    cols = result.phases["compute:col-ffts"]
    assert rows == pytest.approx(cols, rel=0.2)
    assert "comm:transpose" in result.phases


def test_fft2d_faster_on_faster_compute_machine():
    sp2 = simulate_fft2d("sp2", 8, SMALL_GRID)
    paragon = simulate_fft2d("paragon", 8, SMALL_GRID)
    # The i860's lower sustained MFLOPS dominates this compute-heavy
    # kernel.
    assert sp2.compute_us < paragon.compute_us


def test_samplesort_uses_four_collectives():
    result = simulate_samplesort("sp2", 8, SMALL_SORT)
    for phase in ("comm:sync", "comm:sample-gather",
                  "comm:splitter-bcast", "comm:redistribute"):
        assert phase in result.phases, phase


def test_samplesort_root_does_extra_work():
    # The root sorts the gathered samples; non-roots absorb that as
    # wait time, so the total is consistent across ranks anyway.
    result = simulate_samplesort("t3d", 8, SMALL_SORT)
    assert result.total_us > 0


def test_results_are_deterministic():
    a = simulate_stap("paragon", 8, SMALL_CUBE, seed=3)
    b = simulate_stap("paragon", 8, SMALL_CUBE, seed=3)
    assert a.total_us == b.total_us
    assert a.phases == b.phases


def test_format_renders_breakdown():
    text = simulate_stap("t3d", 4, SMALL_CUBE).format()
    assert "STAP pipeline on t3d, 4 nodes" in text
    assert "TOTAL" in text
