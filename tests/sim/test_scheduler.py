"""Unit tests for the calendar-queue scheduler's internal machinery.

The differential harness (:mod:`tests.sim.test_scheduler_equivalence`)
proves heap and calendar agree end-to-end; these tests pin the calendar
queue's own mechanics — wheel resizing, the fruitless-lap fallback,
width derivation — so a regression fails with a named cause instead of
a mismatched event log.
"""

import pytest

from repro.sim.scheduler import (
    CalendarQueueScheduler,
    HeapScheduler,
    default_scheduler_name,
)


def entry(time, priority=1, eid=0):
    return (time, priority, eid, None)


def drain(queue):
    out = []
    while len(queue):
        out.append(queue.pop())
    return out


def test_pops_in_time_priority_eid_order():
    queue = CalendarQueueScheduler()
    entries = [entry(5.0, 1, 3), entry(5.0, 0, 4), entry(1.0, 1, 1),
               entry(5.0, 1, 2), entry(0.5, 1, 5)]
    for item in entries:
        queue.push(item)
    assert drain(queue) == sorted(entries)


def test_exact_ties_pop_by_eid():
    queue = CalendarQueueScheduler()
    for eid in (9, 3, 7, 1, 5):
        queue.push(entry(2.0, 1, eid))
    assert [e[2] for e in drain(queue)] == [1, 3, 5, 7, 9]


def test_wheel_doubles_then_halves():
    queue = CalendarQueueScheduler(bucket_width=1.0, bucket_count=8)
    for eid in range(64):
        queue.push(entry(float(eid), 1, eid))
    assert queue._nbuckets > 8  # doubled at least once
    for _ in range(60):
        queue.pop()
    assert queue._nbuckets == 8  # shrunk back to the floor
    assert [e[2] for e in drain(queue)] == [60, 61, 62, 63]


def test_fruitless_lap_resyncs_on_far_future_event():
    # One event many laps ahead of the cursor: the first pop must walk
    # a whole fruitless lap, fall back to the direct scan, and resync.
    queue = CalendarQueueScheduler(bucket_width=1.0, bucket_count=8)
    queue.push(entry(1e9, 1, 1))
    assert queue.peek_time() == 1e9
    assert queue.pop() == entry(1e9, 1, 1)
    # After resync the cursor sits on the far-future day; near events
    # (earlier laps relative to the cursor) must still pop correctly.
    queue.push(entry(1e9 + 0.25, 1, 2))
    queue.push(entry(2e9, 1, 3))
    assert [e[2] for e in drain(queue)] == [2, 3]


def test_same_bucket_collisions_stay_ordered():
    # Width 10 puts everything in one day; the bucket's own heap must
    # keep exact order.
    queue = CalendarQueueScheduler(bucket_width=10.0, bucket_count=8)
    times = [3.7, 0.1, 9.9, 5.5, 5.5, 2.2]
    for eid, time in enumerate(times):
        queue.push(entry(time, 1, eid))
    assert drain(queue) == sorted(entry(t, 1, e)
                                  for e, t in enumerate(times))


def test_peek_time_matches_next_pop():
    queue = CalendarQueueScheduler()
    assert queue.peek_time() == float("inf")
    for eid, time in enumerate([4.0, 1.5, 8.0, 1.5]):
        queue.push(entry(time, 1, eid))
    while len(queue):
        assert queue.peek_time() == queue.pop()[0]
    assert queue.peek_time() == float("inf")


def test_zero_and_identical_times_derive_positive_width():
    queue = CalendarQueueScheduler(bucket_width=1.0, bucket_count=8)
    for eid in range(40):
        queue.push(entry(0.0, 1, eid))  # zero span during rebuilds
    assert queue._width > 0
    assert [e[2] for e in drain(queue)] == list(range(40))


def test_pop_empty_raises():
    queue = CalendarQueueScheduler()
    with pytest.raises(IndexError):
        queue.pop()


def test_constructor_validates_geometry():
    with pytest.raises(ValueError):
        CalendarQueueScheduler(bucket_width=0.0)
    with pytest.raises(ValueError):
        CalendarQueueScheduler(bucket_count=0)


def test_heap_scheduler_interface():
    queue = HeapScheduler()
    assert queue.peek_time() == float("inf")
    queue.push(entry(2.0, 1, 2))
    queue.push(entry(1.0, 1, 1))
    assert queue.peek_time() == 1.0
    assert len(queue) == 2
    assert [e[0] for e in drain(queue)] == [1.0, 2.0]


def test_default_scheduler_name_rejects_unknown(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_SCHEDULER", raising=False)
    assert default_scheduler_name() == "heap"
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", "calendar")
    assert default_scheduler_name() == "calendar"
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", "abacus")
    with pytest.raises(ValueError):
        default_scheduler_name()


def test_abstract_interface_is_abstract():
    from repro.sim.scheduler import EventScheduler

    base = EventScheduler()
    with pytest.raises(NotImplementedError):
        base.push(entry(0.0))
    with pytest.raises(NotImplementedError):
        base.pop()
    with pytest.raises(NotImplementedError):
        base.peek_time()
    with pytest.raises(NotImplementedError):
        len(base)


def test_rebuild_with_under_two_entries_keeps_width_positive():
    # Draining a large wheel forces a rebuild with an (almost) empty
    # entry list; width derivation must stay positive.
    queue = CalendarQueueScheduler(bucket_width=1.0, bucket_count=32)
    queue.push(entry(5.0, 1, 1))
    assert queue.pop() == entry(5.0, 1, 1)
    assert queue._width > 0
    queue.push(entry(1.0, 1, 2))
    assert queue.pop()[2] == 2
