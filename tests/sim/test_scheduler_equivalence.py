"""Differential equivalence of the pluggable event schedulers.

The engine speed overhaul made the pending-event queue pluggable (heap
vs calendar queue) and added an analytic short-circuit for contention-
and fault-free transfers.  Neither may ever be *observable*: this
harness runs randomized process/resource/transfer graphs (hypothesis)
and real MPI workloads under every configuration and asserts

* heap and calendar produce **byte-identical event logs** — the exact
  ``(time, priority, eid, event-type)`` pop sequence — and identical
  :class:`~repro.obs.perf.WorkMeter` snapshots;
* short-circuited (``fast_wire=True``) runs match full-simulation
  times to 1e-12 s (1e-6 of this repo's microsecond unit).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import MpiWorld
from repro.obs.perf import WorkMeter
from repro.sim import Environment, Resource, Store
from repro.sim.scheduler import (
    SCHEDULERS,
    CalendarQueueScheduler,
    EventScheduler,
    HeapScheduler,
    make_scheduler,
)

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: 1e-12 seconds in this repo's microsecond time unit.
TIME_TOLERANCE_US = 1e-6


class LoggingScheduler(EventScheduler):
    """Wrap a scheduler, recording every popped entry.

    The log is the complete observable behaviour of a queue: if two
    implementations pop the same ``(time, priority, eid, type)``
    sequence for the same workload, the simulation cannot tell them
    apart.
    """

    __slots__ = ("inner", "log", "name")

    def __init__(self, inner: EventScheduler):
        self.inner = inner
        self.name = inner.name
        self.log = []

    def push(self, entry) -> None:
        self.inner.push(entry)

    def pop(self):
        entry = self.inner.pop()
        self.log.append((entry[0], entry[1], entry[2],
                         type(entry[3]).__name__))
        return entry

    def peek_time(self) -> float:
        return self.inner.peek_time()

    def __len__(self) -> int:
        return len(self.inner)


def run_logged(scheduler_name, program_factory):
    """Run ``program_factory(env)`` to completion under a logging
    scheduler; return (event log, work snapshot, final time)."""
    queue = LoggingScheduler(SCHEDULERS[scheduler_name]())
    env = Environment(scheduler=queue)
    env.work = WorkMeter()
    program_factory(env)
    env.run()
    return queue.log, env.work.snapshot(), env.now


def assert_equivalent(program_factory):
    heap_log, heap_work, heap_now = run_logged("heap", program_factory)
    cal_log, cal_work, cal_now = run_logged("calendar", program_factory)
    assert heap_log == cal_log
    assert heap_work == cal_work
    assert heap_now == cal_now
    assert heap_log, "workload fired no events at all"


# -- randomized process/resource/transfer graphs --------------------------

@st.composite
def process_graphs(draw):
    """A random little simulation: N processes over shared resources
    and stores, with timeouts, conditions, and handoffs."""
    n_resources = draw(st.integers(1, 3))
    n_stores = draw(st.integers(1, 2))
    n_procs = draw(st.integers(2, 6))
    durations = st.sampled_from(
        [0.0, 0.25, 0.5, 1.0, 1.0, 2.5, 7.0, 1e3, 1e-3])
    programs = []
    for _ in range(n_procs):
        actions = []
        for _ in range(draw(st.integers(1, 8))):
            kind = draw(st.sampled_from(
                ["timeout", "hold", "put", "get", "anyof", "allof"]))
            if kind == "timeout":
                actions.append(("timeout", draw(durations)))
            elif kind == "hold":
                actions.append(("hold", draw(st.integers(0, n_resources - 1)),
                                draw(durations)))
            elif kind in ("put", "get"):
                actions.append((kind, draw(st.integers(0, n_stores - 1))))
            else:
                actions.append((kind, draw(durations), draw(durations)))
        programs.append(actions)
    # Every get must have a matching put somewhere or the run deadlocks
    # silently (run() just returns); balance per store.
    for store in range(n_stores):
        puts = sum(a[0] == "put" and a[1] == store
                   for p in programs for a in p)
        gets = sum(a[0] == "get" and a[1] == store
                   for p in programs for a in p)
        if gets > puts:
            programs[0] = ([("put", store)] * (gets - puts)) + programs[0]
    return n_resources, n_stores, programs


def build_graph(env, spec):
    n_resources, n_stores, programs = spec
    resources = [Resource(env, capacity=1) for _ in range(n_resources)]
    stores = [Store(env) for _ in range(n_stores)]

    def run_actions(actions):
        for action in actions:
            if action[0] == "timeout":
                yield env.timeout(action[1])
            elif action[0] == "hold":
                resource = resources[action[1]]
                request = resource.request()
                yield request
                yield env.timeout(action[2])
                resource.release(request)
            elif action[0] == "put":
                stores[action[1]].put(action[0])
            elif action[0] == "get":
                yield stores[action[1]].get()
            elif action[0] == "anyof":
                yield env.any_of([env.timeout(action[1]),
                                  env.timeout(action[2])])
            else:
                yield env.all_of([env.timeout(action[1]),
                                  env.timeout(action[2])])

    for index, actions in enumerate(programs):
        env.process(run_actions(actions), name=f"graph-{index}")


@given(process_graphs())
@settings(max_examples=60, deadline=None)
def test_random_graphs_pop_identical_event_logs(spec):
    assert_equivalent(lambda env: build_graph(env, spec))


@given(st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=1,
                max_size=64))
@settings(max_examples=60, deadline=None)
def test_random_timeout_batches_pop_in_identical_order(delays):
    """Wide spreads and exact ties — the calendar's hard cases (laps,
    resizes, shared buckets) must not leak into the pop order."""
    def factory(env):
        def proc():
            yield env.all_of([env.timeout(d) for d in delays])
        env.process(proc())

    assert_equivalent(factory)


# -- real MPI workloads ----------------------------------------------------

MPI_CASES = [
    ("sp2", "broadcast", 4096, 16),
    ("t3d", "allreduce", 2048, 32),
    ("paragon", "alltoall", 256, 8),
    ("t3d", "broadcast", 65536, 64),
]


@st.composite
def mpi_workloads(draw):
    machine = draw(st.sampled_from(["sp2", "t3d", "paragon"]))
    op = draw(st.sampled_from(
        ["broadcast", "allreduce", "alltoall", "barrier"]))
    nbytes = 0 if op == "barrier" else \
        draw(st.sampled_from([0, 64, 4096, 32768]))
    p = draw(st.sampled_from([2, 5, 16, 32]))
    return machine, op, nbytes, p


def run_collective(machine, op, nbytes, p, scheduler=None,
                   fast_wire=True):
    world = MpiWorld(machine, p, seed=0, scheduler=scheduler,
                     fast_wire=fast_wire)
    meter = WorkMeter()
    world.env.work = meter
    elapsed = world.run_collective(op, nbytes)
    return elapsed, meter.snapshot()


@given(mpi_workloads())
@settings(max_examples=25, deadline=None)
def test_random_collectives_identical_under_both_schedulers(workload):
    heap_time, heap_work = run_collective(*workload, scheduler="heap")
    cal_time, cal_work = run_collective(*workload, scheduler="calendar")
    assert heap_time == cal_time
    assert heap_work == cal_work


def test_fixed_collectives_identical_under_both_schedulers():
    for workload in MPI_CASES:
        heap_time, heap_work = run_collective(*workload, scheduler="heap")
        cal_time, cal_work = run_collective(*workload,
                                            scheduler="calendar")
        assert heap_time == cal_time, workload
        assert heap_work == cal_work, workload


# -- analytic short-circuit vs full simulation -----------------------------

@given(mpi_workloads())
@settings(max_examples=25, deadline=None)
def test_short_circuit_matches_full_simulation(workload):
    fast_time, fast_work = run_collective(*workload, fast_wire=True)
    slow_time, slow_work = run_collective(*workload, fast_wire=False)
    assert abs(fast_time - slow_time) <= TIME_TOLERANCE_US, workload
    # The fast path may never simulate *less* traffic than it books.
    assert fast_work["messages_sent"] == slow_work["messages_sent"]
    assert fast_work["messages_delivered"] == \
        slow_work["messages_delivered"]
    assert slow_work["transfers_shortcircuited"] == 0


def test_short_circuit_exact_on_fixed_cases():
    for workload in MPI_CASES:
        fast_time, fast_work = run_collective(*workload, fast_wire=True)
        slow_time, _slow_work = run_collective(*workload, fast_wire=False)
        assert abs(fast_time - slow_time) <= TIME_TOLERANCE_US, workload
        assert fast_work["transfers_shortcircuited"] > 0, \
            f"{workload} never took the analytic path"


def test_short_circuit_composes_with_calendar_scheduler():
    for workload in MPI_CASES[:2]:
        times = {
            (sched, fast): run_collective(*workload, scheduler=sched,
                                          fast_wire=fast)[0]
            for sched in ("heap", "calendar")
            for fast in (True, False)
        }
        reference = times[("heap", True)]
        for key, value in times.items():
            assert abs(value - reference) <= TIME_TOLERANCE_US, \
                (workload, key)


# -- scheduler plumbing ----------------------------------------------------

def test_environment_reports_scheduler_name():
    assert Environment().scheduler_name == "heap"
    assert Environment(scheduler="calendar").scheduler_name == "calendar"


def test_make_scheduler_rejects_unknown_and_nonempty():
    import pytest

    with pytest.raises(ValueError):
        make_scheduler("fifo")
    queue = HeapScheduler()
    queue.push((0.0, 1, 1, None))
    with pytest.raises(ValueError):
        make_scheduler(queue)
    assert isinstance(make_scheduler(CalendarQueueScheduler()),
                      CalendarQueueScheduler)


def test_env_var_selects_default_scheduler():
    env = dict(os.environ)
    try:
        os.environ["REPRO_SIM_SCHEDULER"] = "calendar"
        assert Environment().scheduler_name == "calendar"
        os.environ["REPRO_SIM_SCHEDULER"] = "bogus"
        import pytest
        with pytest.raises(ValueError):
            Environment()
    finally:
        os.environ.clear()
        os.environ.update(env)


# -- cross-process determinism (fresh interpreter per scheduler) -----------

_SUBPROCESS_SNIPPET = """
import json, sys
from repro.mpi import MpiWorld
from repro.obs import WorkMeter

meter = WorkMeter()
world = MpiWorld("sp2", 16, seed=0, scheduler=sys.argv[1])
world.env.work = meter
elapsed = world.run_collective("allreduce", 4096)
print(json.dumps({"work": meter.snapshot(), "elapsed": elapsed},
                 sort_keys=True))
"""


def test_work_dump_identical_across_processes_and_schedulers():
    """Satellite: the same perfsuite-style workload in separate worker
    processes — one per scheduler, random hash seeds — must emit
    byte-identical WorkMeter dumps and simulated times."""
    outputs = set()
    for scheduler in ("heap", "calendar"):
        proc = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SNIPPET, scheduler],
            capture_output=True, text=True, check=True,
            env={**os.environ, "PYTHONPATH": REPO_SRC,
                 "PYTHONHASHSEED": "random"})
        outputs.add(proc.stdout)
    assert len(outputs) == 1
    payload = json.loads(outputs.pop())
    assert payload["work"]["events_fired"] > 0
    assert payload["elapsed"] > 0
