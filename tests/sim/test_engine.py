"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    StopProcess,
    Timeout,
)


def test_time_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_time():
    env = Environment()

    def proc():
        yield env.timeout(5.0)
        return env.now

    p = env.process(proc())
    env.run()
    assert env.now == 5.0
    assert p.value == 5.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_carries_value():
    env = Environment()

    def proc():
        got = yield env.timeout(1.0, value="payload")
        return got

    p = env.process(proc())
    env.run()
    assert p.value == "payload"


def test_sequential_timeouts_accumulate():
    env = Environment()
    times = []

    def proc():
        for delay in (1.0, 2.0, 3.5):
            yield env.timeout(delay)
            times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [1.0, 3.0, 6.5]


def test_processes_interleave_by_time():
    env = Environment()
    order = []

    def worker(name, delay):
        yield env.timeout(delay)
        order.append(name)

    env.process(worker("b", 2.0))
    env.process(worker("a", 1.0))
    env.process(worker("c", 3.0))
    env.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_creation_order():
    env = Environment()
    order = []

    def worker(name):
        yield env.timeout(1.0)
        order.append(name)

    for name in ("first", "second", "third"):
        env.process(worker(name))
    env.run()
    assert order == ["first", "second", "third"]


def test_process_waits_on_process():
    env = Environment()

    def child():
        yield env.timeout(4.0)
        return 42

    def parent():
        value = yield env.process(child())
        return (env.now, value)

    p = env.process(parent())
    env.run()
    assert p.value == (4.0, 42)


def test_wait_on_already_finished_process():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        return "done"

    def parent(child_proc):
        yield env.timeout(10.0)
        value = yield child_proc
        return value

    c = env.process(child())
    p = env.process(parent(c))
    env.run()
    assert p.value == "done"
    assert env.now == 10.0


def test_manual_event_succeed():
    env = Environment()
    gate = env.event()
    reached = []

    def waiter():
        value = yield gate
        reached.append((env.now, value))

    def opener():
        yield env.timeout(7.0)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert reached == [(7.0, "open")]


def test_event_cannot_trigger_twice():
    env = Environment()
    gate = env.event()
    gate.succeed(1)
    with pytest.raises(SimulationError):
        gate.succeed(2)


def test_failed_event_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer():
        yield env.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    env.process(waiter())
    env.process(failer())
    env.run()
    assert caught == ["boom"]


def test_unhandled_failed_event_propagates():
    env = Environment()

    def failer():
        yield env.timeout(1.0)
        env.event().fail(RuntimeError("unheard"))

    env.process(failer())
    with pytest.raises(RuntimeError, match="unheard"):
        env.run()


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc():
        yield env.all_of([env.timeout(1.0), env.timeout(5.0),
                          env.timeout(3.0)])
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 5.0


def test_any_of_fires_on_first_event():
    env = Environment()

    def proc():
        yield env.any_of([env.timeout(9.0), env.timeout(2.0)])
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 2.0


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc():
        yield env.all_of([])
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 0.0


def test_run_until_time_stops_early():
    env = Environment()
    hits = []

    def proc():
        while True:
            yield env.timeout(1.0)
            hits.append(env.now)

    env.process(proc())
    env.run(until=3.5)
    assert hits == [1.0, 2.0, 3.0]
    assert env.now == 3.5


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(2.0)
        return "finished"

    p = env.process(proc())
    assert env.run(until=p) == "finished"


def test_run_until_past_time_rejected():
    env = Environment()
    env.process(iter_timeout(env, 5.0))
    env.run()
    with pytest.raises(ValueError):
        env.run(until=1.0)


def iter_timeout(env, delay):
    yield env.timeout(delay)


def test_interrupt_raises_in_target():
    env = Environment()
    outcomes = []

    def sleeper():
        try:
            yield env.timeout(100.0)
            outcomes.append("slept")
        except Interrupt as exc:
            outcomes.append(("interrupted", env.now, exc.cause))

    def interrupter(target):
        yield env.timeout(3.0)
        target.interrupt("wake up")

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    assert outcomes == [("interrupted", 3.0, "wake up")]


def test_interrupt_dead_process_rejected():
    env = Environment()
    p = env.process(iter_timeout(env, 1.0))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_stop_process_terminates_with_value():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        raise StopProcess("early")
        yield env.timeout(1.0)  # pragma: no cover

    p = env.process(proc())
    env.run()
    assert p.value == "early"
    assert env.now == 1.0


def test_yielding_non_event_is_an_error():
    env = Environment()
    caught = []

    def proc():
        try:
            yield 42  # type: ignore[misc]
        except TypeError as exc:
            caught.append(str(exc))

    env.process(proc())
    env.run()
    assert caught and "not an Event" in caught[0]


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        raise ValueError("child died")

    def parent():
        try:
            yield env.process(child())
        except ValueError as exc:
            return f"saw: {exc}"

    p = env.process(parent())
    env.run()
    assert p.value == "saw: child died"


def test_peek_reports_next_event_time():
    env = Environment()
    env.process(iter_timeout(env, 4.0))
    env.run(until=0.5)
    assert env.peek() == 4.0


def test_step_on_empty_queue_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_cannot_schedule_in_the_past():
    env = Environment(initial_time=10.0)
    with pytest.raises(SimulationError):
        env._schedule(env.event(), at=5.0, priority=1)


def test_large_number_of_processes():
    env = Environment()
    done = []

    def worker(i):
        yield env.timeout(float(i % 17) + 1.0)
        done.append(i)

    for i in range(1000):
        env.process(worker(i))
    env.run()
    assert len(done) == 1000
    assert sorted(done) == list(range(1000))
