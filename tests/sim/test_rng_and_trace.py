"""Tests for deterministic RNG streams and the tracer."""

import pytest

from repro.sim import RandomStreams, Tracer


def test_same_seed_same_draws():
    a = RandomStreams(7).stream("x").random(5)
    b = RandomStreams(7).stream("x").random(5)
    assert list(a) == list(b)


def test_different_names_independent():
    streams = RandomStreams(7)
    a = streams.stream("alpha").random(3)
    b = streams.stream("beta").random(3)
    assert list(a) != list(b)


def test_adding_streams_does_not_perturb_existing():
    first = RandomStreams(3)
    before = list(first.stream("node.0").random(4))
    second = RandomStreams(3)
    second.stream("something.else").random(10)  # extra consumer
    after = list(second.stream("node.0").random(4))
    assert before == after


def test_stream_is_cached():
    streams = RandomStreams(0)
    assert streams.stream("a") is streams.stream("a")


def test_jitter_centred_and_positive():
    streams = RandomStreams(11)
    draws = [streams.jitter("j", 0.05) for _ in range(500)]
    assert all(d > 0 for d in draws)
    assert 0.95 < sum(draws) / len(draws) < 1.05


def test_jitter_zero_sigma_is_exact_one():
    assert RandomStreams(1).jitter("j", 0.0) == 1.0


def test_uniform_in_range():
    streams = RandomStreams(5)
    for _ in range(100):
        value = streams.uniform("u", 10.0, 20.0)
        assert 10.0 <= value < 20.0


def test_tracer_disabled_drops_records():
    tracer = Tracer(enabled=False)
    tracer.emit(1.0, "event", node=0, detail="x")
    assert len(tracer) == 0


def test_tracer_enabled_collects_and_filters():
    tracer = Tracer(enabled=True)
    tracer.emit(1.0, "send", node=0, nbytes=64)
    tracer.emit(2.0, "recv", node=1)
    tracer.emit(3.0, "send", node=1, nbytes=32)
    assert len(tracer) == 3
    sends = tracer.records("send")
    assert [r.time for r in sends] == [1.0, 3.0]
    assert sends[0].detail["nbytes"] == 64
    assert len(list(iter(tracer))) == 3


def test_tracer_clear():
    tracer = Tracer(enabled=True)
    tracer.emit(1.0, "x")
    tracer.clear()
    assert len(tracer) == 0
