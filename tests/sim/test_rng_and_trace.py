"""Tests for deterministic RNG streams and the tracer."""

import pytest

from repro.sim import NULL_SPAN, RandomStreams, Tracer


def test_same_seed_same_draws():
    a = RandomStreams(7).stream("x").random(5)
    b = RandomStreams(7).stream("x").random(5)
    assert list(a) == list(b)


def test_different_names_independent():
    streams = RandomStreams(7)
    a = streams.stream("alpha").random(3)
    b = streams.stream("beta").random(3)
    assert list(a) != list(b)


def test_adding_streams_does_not_perturb_existing():
    first = RandomStreams(3)
    before = list(first.stream("node.0").random(4))
    second = RandomStreams(3)
    second.stream("something.else").random(10)  # extra consumer
    after = list(second.stream("node.0").random(4))
    assert before == after


def test_stream_is_cached():
    streams = RandomStreams(0)
    assert streams.stream("a") is streams.stream("a")


def test_jitter_centred_and_positive():
    streams = RandomStreams(11)
    draws = [streams.jitter("j", 0.05) for _ in range(500)]
    assert all(d > 0 for d in draws)
    assert 0.95 < sum(draws) / len(draws) < 1.05


def test_jitter_zero_sigma_is_exact_one():
    assert RandomStreams(1).jitter("j", 0.0) == 1.0


def test_uniform_in_range():
    streams = RandomStreams(5)
    for _ in range(100):
        value = streams.uniform("u", 10.0, 20.0)
        assert 10.0 <= value < 20.0


def test_tracer_disabled_drops_records():
    tracer = Tracer(enabled=False)
    tracer.emit(1.0, "event", node=0, detail="x")
    assert len(tracer) == 0


def test_tracer_enabled_collects_and_filters():
    tracer = Tracer(enabled=True)
    tracer.emit(1.0, "send", node=0, nbytes=64)
    tracer.emit(2.0, "recv", node=1)
    tracer.emit(3.0, "send", node=1, nbytes=32)
    assert len(tracer) == 3
    sends = tracer.records("send")
    assert [r.time for r in sends] == [1.0, 3.0]
    assert sends[0].detail["nbytes"] == 64
    assert len(list(iter(tracer))) == 3


def test_tracer_clear():
    tracer = Tracer(enabled=True)
    tracer.emit(1.0, "x")
    span = tracer.begin(1.0, "s", "cat")
    tracer.end(span, 2.0)
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.spans() == []


def test_tracer_category_filter_accepts_collections():
    tracer = Tracer(enabled=True)
    tracer.emit(1.0, "send")
    tracer.emit(2.0, "recv")
    tracer.emit(3.0, "link")
    assert [r.category for r in tracer.records(("send", "link"))] == \
        ["send", "link"]
    assert [r.category for r in tracer.records({"recv"})] == ["recv"]
    assert len(tracer.records("send")) == 1


def test_tracer_between_time_window():
    tracer = Tracer(enabled=True)
    for t in (0.0, 1.0, 2.0, 3.0):
        tracer.emit(t, "tick")
    window = tracer.between(1.0, 3.0)
    assert [r.time for r in window] == [1.0, 2.0]
    assert tracer.between(1.0, 3.0, category="other") == []


def test_tracer_max_records_drops_oldest_and_counts():
    tracer = Tracer(enabled=True, max_records=3)
    for t in range(5):
        tracer.emit(float(t), "tick", index=t)
    assert len(tracer) == 3
    assert [r.time for r in tracer.records()] == [2.0, 3.0, 4.0]
    assert tracer.dropped_records == 2
    assert tracer.dropped == 2


def test_tracer_max_records_rejects_nonpositive():
    with pytest.raises(ValueError):
        Tracer(max_records=0)


def test_tracer_configure_limits_resets():
    tracer = Tracer(enabled=True, max_records=2)
    tracer.emit(0.0, "a")
    tracer.emit(1.0, "b")
    tracer.emit(2.0, "c")
    tracer.configure_limits(max_records=5)
    assert len(tracer) == 0
    assert tracer.dropped == 0


def test_span_begin_end_and_parenting():
    tracer = Tracer(enabled=True)
    parent = tracer.begin(1.0, "collective", "collective", op="bcast")
    child = tracer.begin(2.0, "phase 1", "phase", parent=parent)
    tracer.end(child, 4.0)
    tracer.end(parent, 5.0, phases=1)
    assert parent.id != child.id
    assert child.parent == parent.id
    assert parent.parent == 0
    assert child.duration == 2.0
    assert parent.detail["phases"] == 1
    assert not parent.open


def test_span_extend_pushes_end_out_monotonically():
    tracer = Tracer(enabled=True)
    span = tracer.begin(1.0, "phase", "phase")
    tracer.extend(span, 3.0)
    tracer.extend(span, 2.0)  # never shrinks
    assert span.end == 3.0


def test_spans_category_filter_and_window():
    tracer = Tracer(enabled=True)
    a = tracer.begin(0.0, "a", "message")
    tracer.end(a, 1.0)
    b = tracer.begin(5.0, "b", "link")
    tracer.end(b, 6.0)
    assert tracer.spans("message") == [a]
    assert tracer.spans(("message", "link")) == [a, b]
    assert tracer.spans_between(4.0, 7.0) == [b]
    assert tracer.spans_between(0.0, 10.0, category="message") == [a]


def test_disabled_tracer_returns_null_span():
    tracer = Tracer(enabled=False)
    span = tracer.begin(1.0, "x", "y")
    assert span is NULL_SPAN
    tracer.end(span, 2.0)     # no-ops, must not mutate the sentinel
    tracer.extend(span, 9.0)
    assert NULL_SPAN.end == 0.0
    assert tracer.spans() == []


def test_span_ring_drops_oldest():
    tracer = Tracer(enabled=True, max_spans=2)
    spans = [tracer.begin(float(t), f"s{t}", "cat") for t in range(4)]
    for span in spans:
        tracer.end(span, span.start + 0.5)  # safe even if dropped
    kept = tracer.spans()
    assert [s.name for s in kept] == ["s2", "s3"]
    assert tracer.dropped_spans == 2
