"""Unit tests for Resource, Store, and FilterStore."""

import pytest

from repro.obs.perf import WorkMeter
from repro.sim import Environment, FilterStore, Resource, SimulationError, Store


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    grants = []

    def worker(i):
        req = res.request()
        yield req
        grants.append((i, env.now))
        yield env.timeout(10.0)
        res.release(req)

    for i in range(4):
        env.process(worker(i))
    env.run()
    # Two immediately, two after the first pair releases at t=10.
    assert grants == [(0, 0.0), (1, 0.0), (2, 10.0), (3, 10.0)]


def test_resource_fifo_ordering():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(i, arrival):
        yield env.timeout(arrival)
        req = res.request()
        yield req
        order.append(i)
        yield env.timeout(5.0)
        res.release(req)

    env.process(worker(0, 0.0))
    env.process(worker(1, 1.0))
    env.process(worker(2, 2.0))
    env.run()
    assert order == [0, 1, 2]


def test_resource_context_manager_releases():
    env = Environment()
    res = Resource(env, capacity=1)
    times = []

    def worker():
        with res.request() as req:
            yield req
            times.append(env.now)
            yield env.timeout(3.0)

    env.process(worker())
    env.process(worker())
    env.run()
    assert times == [0.0, 3.0]


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_release_of_unheld_request_rejected():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()

    def drain():
        yield req
        res.release(req)
        with pytest.raises(SimulationError):
            res.release(req)

    env.process(drain())
    env.run()


def test_release_of_queued_request_cancels_it():
    env = Environment()
    res = Resource(env, capacity=1)
    held = res.request()  # granted immediately
    queued = res.request()
    res.release(queued)  # cancel before grant
    assert res.queue_length == 0
    res.release(held)
    assert res.count == 0


def test_resource_counters():
    env = Environment()
    res = Resource(env, capacity=1)
    first = res.request()
    res.request()
    assert res.count == 1
    assert res.queue_length == 1
    res.release(first)
    assert res.count == 1  # queued request got the grant
    assert res.queue_length == 0


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    store.put("a")
    store.put("b")

    def getter():
        first = yield store.get()
        second = yield store.get()
        return (first, second)

    p = env.process(getter())
    env.run()
    assert p.value == ("a", "b")


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)

    def getter():
        item = yield store.get()
        return (env.now, item)

    def putter():
        yield env.timeout(6.0)
        store.put("late")

    p = env.process(getter())
    env.process(putter())
    env.run()
    assert p.value == (6.0, "late")


def test_store_getters_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def getter(i):
        item = yield store.get()
        got.append((i, item))

    for i in range(3):
        env.process(getter(i))

    def putter():
        yield env.timeout(1.0)
        for item in ("x", "y", "z"):
            store.put(item)

    env.process(putter())
    env.run()
    assert got == [(0, "x"), (1, "y"), (2, "z")]


def test_store_len_and_items():
    env = Environment()
    store = Store(env)
    assert len(store) == 0
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.items == (1, 2)


def test_filter_store_matches_predicate():
    env = Environment()
    store = FilterStore(env)
    store.put({"tag": 1, "data": "one"})
    store.put({"tag": 2, "data": "two"})

    def getter():
        item = yield store.get(lambda msg: msg["tag"] == 2)
        return item["data"]

    p = env.process(getter())
    env.run()
    assert p.value == "two"
    assert len(store) == 1  # the tag-1 item is still there


def test_filter_store_blocks_until_matching_put():
    env = Environment()
    store = FilterStore(env)

    def getter():
        item = yield store.get(lambda msg: msg == "wanted")
        return (env.now, item)

    def putter():
        yield env.timeout(1.0)
        store.put("unwanted")
        yield env.timeout(1.0)
        store.put("wanted")

    p = env.process(getter())
    env.process(putter())
    env.run()
    assert p.value == (2.0, "wanted")
    assert store.items == ("unwanted",)


def test_filter_store_oldest_match_wins():
    env = Environment()
    store = FilterStore(env)
    store.put(("a", 1))
    store.put(("a", 2))

    def getter():
        item = yield store.get(lambda msg: msg[0] == "a")
        return item

    p = env.process(getter())
    env.run()
    assert p.value == ("a", 1)


def test_filter_store_default_predicate_takes_any():
    env = Environment()
    store = FilterStore(env)
    store.put("only")

    def getter():
        item = yield store.get()
        return item

    p = env.process(getter())
    env.run()
    assert p.value == "only"


# -- timestamp bookings (the engine speed overhaul's fast path) -----------

def test_try_occupy_books_contiguously():
    env = Environment()
    resource = Resource(env, capacity=1)
    first = resource.try_occupy(5.0)
    assert first == (0.0, float("-inf"))
    assert resource.booked_until == 5.0
    # Back-to-back booking starts exactly where the previous one ends —
    # the instant a queued request would have been granted.
    second = resource.try_occupy(2.5)
    assert second == (5.0, 5.0)
    assert resource.booked_until == 7.5


def test_try_occupy_refused_on_held_or_contended_resource():
    env = Environment()
    shared = Resource(env, capacity=2)
    assert shared.try_occupy(1.0) is None  # only capacity-1 is bookable

    held = Resource(env, capacity=1)
    grant = held.request()
    assert held.try_occupy(1.0) is None  # a user holds it

    held.release(grant)
    assert held.try_occupy(1.0) is not None


def test_undo_occupy_restores_previous_booking():
    env = Environment()
    resource = Resource(env, capacity=1)
    resource.try_occupy(4.0)
    booking = resource.try_occupy(3.0)
    assert booking is not None
    resource.undo_occupy(booking[1])
    assert resource.booked_until == 4.0


def test_request_during_booking_waits_for_expiry():
    """A request arriving mid-booking is granted exactly when the
    booking expires — time-equivalent to queueing behind a real
    holder's release."""
    env = Environment()
    resource = Resource(env, capacity=1)
    grant_times = []

    def booker():
        booking = resource.try_occupy(6.0)
        assert booking is not None
        yield env.timeout(6.0)

    def requester():
        yield env.timeout(1.0)  # booking is active now
        request = resource.request()
        yield request
        grant_times.append(env.now)
        resource.release(request)

    env.process(booker())
    env.process(requester())
    env.run()
    assert grant_times == [6.0]


def test_booking_respects_fifo_among_queued_requests():
    env = Environment()
    resource = Resource(env, capacity=1)
    order = []

    def requester(name, arrive):
        yield env.timeout(arrive)
        request = resource.request()
        yield request
        order.append((name, env.now))
        yield env.timeout(1.0)
        resource.release(request)

    resource.try_occupy(5.0)
    env.process(requester("first", 1.0))
    env.process(requester("second", 2.0))
    env.run()
    assert order == [("first", 5.0), ("second", 6.0)]


def test_booking_counts_as_occupancy_not_grant():
    env = Environment()
    meter = WorkMeter()
    env.work = meter
    resource = Resource(env, capacity=1)

    def booker():
        booking = resource.try_occupy(2.0)
        assert booking is not None
        env.work.resource_occupancies += 1  # the callers' convention
        yield env.sleep_until(booking[0] + 2.0)

    env.process(booker())
    env.run()
    assert meter.resource_occupancies == 1
    assert meter.resource_requests == 0
    assert meter.resource_grants == 0
