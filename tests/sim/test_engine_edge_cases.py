"""Edge-case tests for the engine: conditions, interrupts, priorities."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_condition_fails_if_member_fails():
    env = Environment()
    good = env.timeout(1.0)
    bad = env.event()
    caught = []

    def waiter():
        try:
            yield env.all_of([good, bad])
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer():
        yield env.timeout(0.5)
        bad.fail(RuntimeError("member died"))

    env.process(waiter())
    env.process(failer())
    env.run()
    assert caught == ["member died"]


def test_any_of_with_already_fired_event():
    env = Environment()
    instant = env.event()
    instant.succeed("now")

    def waiter():
        yield env.timeout(1.0)  # let `instant` be processed first
        result = yield env.any_of([instant, env.timeout(50.0)])
        return (env.now, [value for _, value in result])

    p = env.process(waiter())
    env.run()
    assert p.value[0] == 1.0
    assert "now" in p.value[1]


def test_all_of_collects_values_in_member_order():
    env = Environment()

    def waiter():
        first = env.timeout(2.0, value="a")
        second = env.timeout(1.0, value="b")
        result = yield env.all_of([first, second])
        return [value for _, value in result]

    p = env.process(waiter())
    env.run()
    assert p.value == ["a", "b"]


def test_interrupt_then_rewait_on_same_event():
    env = Environment()
    moments = []

    def sleeper():
        target = env.timeout(10.0)
        try:
            yield target
        except Interrupt:
            moments.append(("interrupted", env.now))
            yield target  # resume waiting on the same timeout
        moments.append(("woke", env.now))

    def interrupter(proc):
        yield env.timeout(3.0)
        proc.interrupt()

    proc = env.process(sleeper())
    env.process(interrupter(proc))
    env.run()
    assert moments == [("interrupted", 3.0), ("woke", 10.0)]


def test_interrupt_without_target_rejected():
    env = Environment()

    def idle():
        yield env.timeout(5.0)

    proc = env.process(idle())
    # The process has not been stepped yet (no target): interrupting
    # before its Initialize fires is an error.
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_multiple_waiters_one_event():
    env = Environment()
    gate = env.event()
    woken = []

    def waiter(i):
        value = yield gate
        woken.append((i, value))

    for i in range(5):
        env.process(waiter(i))

    def opener():
        yield env.timeout(2.0)
        gate.succeed("go")

    env.process(opener())
    env.run()
    assert woken == [(i, "go") for i in range(5)]


def test_event_value_before_trigger_rejected():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_environment_initial_time():
    env = Environment(initial_time=100.0)
    assert env.now == 100.0

    def proc():
        yield env.timeout(5.0)
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 105.0


def test_run_until_event_from_other_process_failure():
    env = Environment()

    def doomed():
        yield env.timeout(1.0)
        raise ValueError("boom")

    proc = env.process(doomed())
    with pytest.raises(ValueError, match="boom"):
        env.run(until=proc)


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc():
        yield env.timeout(3.0)

    p = env.process(proc())
    assert p.is_alive
    env.run()
    assert not p.is_alive
    assert p.ok


# -- consistent error surfaces (engine speed overhaul satellites) ---------

def test_untriggered_access_raises_one_consistent_message():
    """``Event.ok`` and ``Event.value`` must fail with the same
    SimulationError shape, naming the accessor and the event class."""
    env = Environment()
    for accessor in ("ok", "value"):
        fresh = env.event()
        with pytest.raises(SimulationError) as excinfo:
            getattr(fresh, accessor)
        message = str(excinfo.value)
        assert f"Event.{accessor}" in message
        assert "has not been triggered" in message


def test_untriggered_process_value_names_process_class():
    env = Environment()

    def proc():
        yield env.timeout(1.0)

    p = env.process(proc())
    with pytest.raises(SimulationError, match=r"Process\.value"):
        _ = p.value
    env.run()
    assert p.value is None  # readable once finished


def test_interrupt_of_terminated_process_raises_simulation_error():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    p = env.process(quick(), name="quick")
    env.run()
    assert not p.is_alive
    with pytest.raises(SimulationError, match="quick has already "
                                              "terminated"):
        p.interrupt()


def test_stop_process_inside_condition_waiter():
    """A waiter that raises StopProcess while parked on a Condition
    must finish cleanly with the StopProcess value, and the condition
    itself must stay consistent for other waiters."""
    from repro.sim import StopProcess

    env = Environment()
    gate = env.timeout(5.0, value="opened")

    def quitter():
        try:
            yield env.any_of([gate, env.timeout(50.0)])
        finally:
            pass
        raise StopProcess("left early")

    def stayer():
        result = yield env.all_of([gate])
        return [value for _, value in result]

    q = env.process(quitter())
    s = env.process(stayer())
    env.run()
    assert q.value == "left early"
    assert s.value == ["opened"]


def test_all_of_with_already_processed_member():
    env = Environment()
    done = env.event()
    done.succeed("early")

    def waiter():
        yield env.timeout(1.0)  # `done` is processed by now
        result = yield env.all_of([done, env.timeout(2.0, value="late")])
        return [value for _, value in result]

    p = env.process(waiter())
    env.run()
    assert p.value == ["early", "late"]
    assert env.now == 3.0


def test_any_of_with_already_failed_member_fails_consistently():
    env = Environment()
    dead = env.event()
    dead.fail(RuntimeError("pre-broken"))
    dead.defused()
    caught = []

    def waiter():
        yield env.timeout(1.0)
        try:
            yield env.any_of([dead, env.timeout(9.0)])
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(waiter())
    env.run()
    assert caught == ["pre-broken"]


# -- remaining engine branches (the sim/ coverage gate is 95%) ------------

def test_step_and_empty_step():
    env = Environment()
    fired = []
    env.timeout(2.0).callbacks.append(lambda e: fired.append(env.now))
    env.step()
    assert env.now == 2.0 and fired == [2.0]
    assert env.timeout(1.0).processed is False
    env.step()
    with pytest.raises(SimulationError, match="no more events"):
        env.step()


def test_fail_after_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed("done")
    with pytest.raises(SimulationError, match="already triggered"):
        event.fail(RuntimeError("late"))


def test_process_rejects_non_generator():
    env = Environment()
    with pytest.raises(TypeError, match="not a generator"):
        env.process(lambda: None)


def test_interrupt_counter_and_double_interrupt():
    from repro.obs.perf import WorkMeter

    env = Environment()
    meter = WorkMeter()
    env.work = meter
    handled = []

    def sleeper():
        try:
            yield env.timeout(10.0)
        except Interrupt as interrupt:
            handled.append(interrupt.cause)
        # Terminate right away: the second interrupt event then finds
        # the process already finished and must be a no-op.

    proc = env.process(sleeper())

    def interrupter():
        yield env.timeout(1.0)
        proc.interrupt("one")
        proc.interrupt("two")

    env.process(interrupter())
    env.run()
    assert handled == ["one"]
    assert meter.interrupts == 2


def test_yielding_event_from_other_environment_fails():
    env_a, env_b = Environment(), Environment()
    caught = []

    def confused():
        try:
            yield env_b.timeout(1.0)
        except SimulationError as exc:
            caught.append(str(exc))

    env_a.process(confused())
    env_a.run()
    assert caught == ["yielded event belongs to another Environment"]


def test_waiting_on_processed_failed_event_rethrows():
    env = Environment()
    dead = env.event()
    dead.fail(RuntimeError("stale failure"))
    dead.defused()
    env.run()  # process the failure now
    assert dead.processed
    caught = []

    def latecomer():
        try:
            yield dead
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(latecomer())
    env.run()
    assert caught == ["stale failure"]


def test_condition_rejects_mixed_environments():
    env_a, env_b = Environment(), Environment()
    with pytest.raises(SimulationError, match="mixed environments"):
        AllOf(env_a, [env_a.timeout(1.0), env_b.timeout(1.0)])


def test_active_process_visible_inside_step():
    env = Environment()
    seen = []

    def proc():
        seen.append(env.active_process)
        yield env.timeout(1.0)

    p = env.process(proc())
    assert env.active_process is None
    env.run()
    assert seen == [p]


def test_sleep_rejects_negative_delay_warm_and_cold():
    env = Environment()
    with pytest.raises(ValueError):
        env.sleep(-1.0)  # cold: no pooled event yet

    def warm():
        yield env.sleep(1.0)

    env.process(warm())
    env.run()  # recycles one pooled event
    with pytest.raises(ValueError):
        env.sleep(-1.0)  # warm: pooled path must validate too


def test_sleep_until_rejects_past_times():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError, match="past time"):
        env.sleep_until(9.0)

    def proc():
        yield env.sleep_until(12.0)
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 12.0


def test_run_until_already_processed_event_returns_value():
    env = Environment()
    event = env.timeout(1.0, value="early")
    env.run()
    assert env.run(until=event) == "early"


def test_run_until_defused_failed_event_reraises():
    env = Environment()

    def doomed():
        yield env.timeout(1.0)
        raise ValueError("handled elsewhere")

    proc = env.process(doomed(), name="doomed")

    def watcher():
        try:
            yield proc
        except ValueError:
            pass

    env.process(watcher())
    with pytest.raises(ValueError, match="handled elsewhere"):
        env.run(until=proc)


def test_run_until_unfireable_event_rejected():
    env = Environment()
    orphan = env.event()  # never triggered, queue drains
    with pytest.raises(SimulationError, match="can no longer fire"):
        env.run(until=orphan)


def test_bounded_run_advances_clock_past_last_event():
    env = Environment()
    env.timeout(1.0)
    env.run(until=50.0)
    assert env.now == 50.0
    env.run(until=60.0)  # empty queue: pure clock advance
    assert env.now == 60.0
    with pytest.raises(ValueError, match="in the past"):
        env.run(until=5.0)


def test_profiled_run_matches_unprofiled_results():
    from repro.obs import EngineProfiler

    def workload(env):
        def proc():
            for _ in range(5):
                yield env.timeout(1.0)
            return env.now
        return env.process(proc())

    plain_env = Environment()
    plain = workload(plain_env)
    plain_env.run()

    profiled_env = Environment()
    profiled_env.profiler = EngineProfiler()
    profiled = workload(profiled_env)
    profiled_env.run()

    assert plain.value == profiled.value == 5.0
    assert profiled_env.profiler.total_fired > 0
