"""Edge-case tests for the engine: conditions, interrupts, priorities."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_condition_fails_if_member_fails():
    env = Environment()
    good = env.timeout(1.0)
    bad = env.event()
    caught = []

    def waiter():
        try:
            yield env.all_of([good, bad])
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer():
        yield env.timeout(0.5)
        bad.fail(RuntimeError("member died"))

    env.process(waiter())
    env.process(failer())
    env.run()
    assert caught == ["member died"]


def test_any_of_with_already_fired_event():
    env = Environment()
    instant = env.event()
    instant.succeed("now")

    def waiter():
        yield env.timeout(1.0)  # let `instant` be processed first
        result = yield env.any_of([instant, env.timeout(50.0)])
        return (env.now, [value for _, value in result])

    p = env.process(waiter())
    env.run()
    assert p.value[0] == 1.0
    assert "now" in p.value[1]


def test_all_of_collects_values_in_member_order():
    env = Environment()

    def waiter():
        first = env.timeout(2.0, value="a")
        second = env.timeout(1.0, value="b")
        result = yield env.all_of([first, second])
        return [value for _, value in result]

    p = env.process(waiter())
    env.run()
    assert p.value == ["a", "b"]


def test_interrupt_then_rewait_on_same_event():
    env = Environment()
    moments = []

    def sleeper():
        target = env.timeout(10.0)
        try:
            yield target
        except Interrupt:
            moments.append(("interrupted", env.now))
            yield target  # resume waiting on the same timeout
        moments.append(("woke", env.now))

    def interrupter(proc):
        yield env.timeout(3.0)
        proc.interrupt()

    proc = env.process(sleeper())
    env.process(interrupter(proc))
    env.run()
    assert moments == [("interrupted", 3.0), ("woke", 10.0)]


def test_interrupt_without_target_rejected():
    env = Environment()

    def idle():
        yield env.timeout(5.0)

    proc = env.process(idle())
    # The process has not been stepped yet (no target): interrupting
    # before its Initialize fires is an error.
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_multiple_waiters_one_event():
    env = Environment()
    gate = env.event()
    woken = []

    def waiter(i):
        value = yield gate
        woken.append((i, value))

    for i in range(5):
        env.process(waiter(i))

    def opener():
        yield env.timeout(2.0)
        gate.succeed("go")

    env.process(opener())
    env.run()
    assert woken == [(i, "go") for i in range(5)]


def test_event_value_before_trigger_rejected():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_environment_initial_time():
    env = Environment(initial_time=100.0)
    assert env.now == 100.0

    def proc():
        yield env.timeout(5.0)
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 105.0


def test_run_until_event_from_other_process_failure():
    env = Environment()

    def doomed():
        yield env.timeout(1.0)
        raise ValueError("boom")

    proc = env.process(doomed())
    with pytest.raises(ValueError, match="boom"):
        env.run(until=proc)


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc():
        yield env.timeout(3.0)

    p = env.process(proc())
    assert p.is_alive
    env.run()
    assert not p.is_alive
    assert p.ok
