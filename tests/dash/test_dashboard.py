"""Tests for the self-contained HTML dashboard (repro.dash)."""

import json
from pathlib import Path

import pytest

from repro.dash import render_dashboard_html, write_dashboard
from repro.obs.ledger import build_ledger, discover_artifacts

REPO_ROOT = Path(__file__).resolve().parents[2]

LEDGER_INPUTS = [
    REPO_ROOT / "BENCH_drift.json",
    REPO_ROOT / "BENCH_engine.json",
    REPO_ROOT / "tests/golden/BENCH_sweep_baseline.json",
    REPO_ROOT / "tests/golden/BENCH_tuning_smoke.json",
]

SECTION_MARKERS = [
    "Collective replay",
    "Drift audit trend",
    "Engine throughput",
    "Tuner decision tables",
    "Sweep curves",
]


@pytest.fixture(scope="module")
def ledger():
    return build_ledger(discover_artifacts(LEDGER_INPUTS))


def test_page_embeds_bundle_digest(ledger):
    html = render_dashboard_html(ledger)
    digest = ledger["bundle_digest"]
    assert (f'<meta name="repro-bundle-digest" content="{digest}">'
            in html)
    assert f'<span id="digest">{digest}</span>' in html


def test_page_embeds_the_full_ledger(ledger):
    html = render_dashboard_html(ledger)
    start = html.index('<script type="application/json" id="ledger">')
    end = html.index("</script>", start)
    island = html[html.index("\n", start):end]
    embedded = json.loads(island.replace("<\\/", "</"))
    assert embedded == json.loads(json.dumps(ledger))


def test_page_is_self_contained(ledger):
    html = render_dashboard_html(ledger)
    # No external fetches: works from file:// with no network.
    assert "http://" not in html.replace("http://www.w3.org", "")
    assert "https://" not in html
    assert "<link" not in html
    assert 'src="' not in html
    for marker in SECTION_MARKERS:
        assert marker in html


def test_page_is_deterministic(ledger):
    assert render_dashboard_html(ledger) \
        == render_dashboard_html(ledger)


def test_custom_title(ledger):
    html = render_dashboard_html(ledger, title="nightly run 42")
    assert "<title>nightly run 42</title>" in html


def test_script_island_escapes_closing_tags():
    # A hostile artifact embedding "</script>" must not break out of
    # the JSON island.
    doc = {"schema": "repro-drift/1", "pass": True, "breaches": 0,
           "cells": [], "summary": {}, "source": {},
           "note": "</script><script>alert(1)</script>"}
    ledger = build_ledger([("evil.json", "drift", doc)])
    html = render_dashboard_html(ledger)
    start = html.index('id="ledger"')
    end = html.index("</script>", start)
    island = html[start:end]
    # The hostile text survives (escaped) but no literal closing tag
    # can terminate the island early.
    assert "</script>" not in island
    assert "<\\/script>" in island
    embedded = json.loads(
        island[island.index("\n"):].replace("<\\/", "</"))
    assert embedded["entries"][0]["document"]["note"] \
        == "</script><script>alert(1)</script>"


def test_render_rejects_invalid_ledger():
    with pytest.raises(ValueError, match="not a ledger"):
        render_dashboard_html({"schema": "repro-sweep/1"})


def test_write_dashboard_creates_directory(ledger, tmp_path):
    out = tmp_path / "deep" / "site"
    path = write_dashboard(ledger, out)
    assert path == out / "index.html"
    assert path.read_text("utf-8") == render_dashboard_html(ledger)
    other = write_dashboard(ledger, out, name="report.html",
                            title="other")
    assert other.name == "report.html"
    assert "<title>other</title>" in other.read_text("utf-8")
