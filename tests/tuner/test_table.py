"""Decision-table semantics: lookup, validation, round-tripping."""

import pytest

from repro.tuner import (
    DecisionEntry,
    DecisionRule,
    DecisionTable,
    TUNING_SCHEMA,
    build_tuning_artifact,
    dumps_tuning,
    load_decision_table,
    load_tuning,
    write_tuning,
)


def _table():
    return DecisionTable(
        entries={
            ("sp2", "broadcast"): (
                DecisionEntry(min_p=0, rules=(
                    DecisionRule(0, "binomial_broadcast"),)),
                DecisionEntry(min_p=8, rules=(
                    DecisionRule(0, "binomial_broadcast"),
                    DecisionRule(16384, "scatter_allgather_broadcast"),
                )),
            ),
        },
        defaults={("sp2", "broadcast"): "binomial_broadcast"},
    )


def test_lookup_band_and_rule_selection():
    table = _table()
    # Small p: the min_p=0 band, always binomial.
    assert table.lookup("sp2", "broadcast", 1 << 20, 4) == \
        "binomial_broadcast"
    # Large p, short message: still binomial.
    assert table.lookup("sp2", "broadcast", 1024, 16) == \
        "binomial_broadcast"
    # Large p, long message: the tuned crossover fires.
    assert table.lookup("sp2", "broadcast", 65536, 16) == \
        "scatter_allgather_broadcast"
    # Exactly at the threshold: the >= band wins.
    assert table.lookup("sp2", "broadcast", 16384, 8) == \
        "scatter_allgather_broadcast"


def test_lookup_below_grid_extrapolates_downward():
    table = _table()
    # p below every band and m below every rule still answer (the
    # nearest band/rule), never None for a tuned (machine, op).
    assert table.lookup("sp2", "broadcast", 0, 2) == \
        "binomial_broadcast"


def test_lookup_untuned_pair_has_no_opinion():
    table = _table()
    assert table.lookup("sp2", "reduce", 1024, 16) is None
    assert table.lookup("t3d", "broadcast", 1024, 16) is None


def test_validate_accepts_registered_and_rejects_unknown():
    _table().validate()
    bad = DecisionTable(entries={
        ("sp2", "broadcast"): (
            DecisionEntry(min_p=0, rules=(
                DecisionRule(0, "warp_drive_broadcast"),)),
        ),
    })
    with pytest.raises(ValueError, match="warp_drive_broadcast"):
        bad.validate()


def test_payload_round_trip(tmp_path):
    table = _table()
    artifact = build_tuning_artifact(table, flips=[], grid_name="unit",
                                     config=None)
    assert artifact["schema"] == TUNING_SCHEMA
    path = write_tuning(artifact, tmp_path / "BENCH_tuning.json")
    loaded = load_decision_table(path)
    assert loaded.entries == table.entries
    assert loaded.defaults == table.defaults
    assert loaded.lookup("sp2", "broadcast", 65536, 16) == \
        "scatter_allgather_broadcast"


def test_dumps_is_canonical():
    artifact = build_tuning_artifact(_table(), flips=[],
                                     grid_name="unit", config=None)
    text = dumps_tuning(artifact)
    assert text.endswith("\n")
    # Key-sorted and stable under re-serialization.
    import json
    assert dumps_tuning(json.loads(text)) == text


def test_load_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bogus.json"
    path.write_text('{"schema": "repro-sweep/1"}', "utf-8")
    with pytest.raises(ValueError, match="not a tuning artifact"):
        load_tuning(path)


def test_flip_times_are_rounded_to_9_digits():
    artifact = build_tuning_artifact(
        _table(),
        flips=[{"machine": "sp2", "op": "broadcast", "nbytes": 65536,
                "p": 16, "algorithm": "scatter_allgather_broadcast",
                "time_us": 1234.5678901234567,
                "default_algorithm": "binomial_broadcast",
                "default_time_us": 2345.6789012345678,
                "speedup": 1.9000123456789012}],
        grid_name="unit", config=None)
    flip = artifact["flips"][0]
    assert flip["time_us"] == float(f"{1234.5678901234567:.9g}")
    assert flip["speedup"] == float(f"{1.9000123456789012:.9g}")


def test_spec_with_decision_table_consults_it():
    from repro.machines import get_machine_spec

    spec = get_machine_spec("sp2")
    tuned = spec.with_decision_table(_table())
    # Fields (and therefore fingerprints) unchanged...
    assert tuned == spec
    # ...but size-aware resolution now flips the long-message cell.
    assert tuned.algorithm_for("broadcast", nbytes=65536, p=16) == \
        "scatter_allgather_broadcast"
    assert tuned.algorithm_for("broadcast", nbytes=16, p=16) == \
        "binomial_broadcast"
    # Without m/p the fixed choice answers (composite sub-stages).
    assert tuned.algorithm_for("broadcast") == "binomial_broadcast"
    # The original spec is untouched.
    assert spec.algorithm_for("broadcast", nbytes=65536, p=16) == \
        "binomial_broadcast"
