"""Crossover fitting: winners, thresholds, bands, flips."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.collectives import algorithm_names
from repro.tuner import (
    DecisionEntry,
    DecisionRule,
    fit_decision_table,
)

INCUMBENT = "binomial_broadcast"
CHALLENGER = "scatter_allgather_broadcast"


def _times(rows):
    """rows: iterable of (nbytes, p, {algo: time})."""
    return {("sp2", "broadcast", nbytes, p): cell
            for nbytes, p, cell in rows}


def test_ties_never_flip_away_from_the_incumbent():
    table, flips = fit_decision_table(
        _times([(16, 4, {CHALLENGER: 10.0, INCUMBENT: 10.0})]),
        {("sp2", "broadcast"): INCUMBENT})
    assert table.lookup("sp2", "broadcast", 16, 4) == INCUMBENT
    assert flips == []


def test_tie_between_challengers_is_lexicographic():
    # Neither tied name is the incumbent: the smaller name wins, so the
    # fit does not depend on dict iteration order.
    table, _ = fit_decision_table(
        _times([(16, 4, {"ring_allgather": 5.0,
                         "recursive_doubling_allgather": 5.0,
                         INCUMBENT: 9.0})]),
        {("sp2", "broadcast"): INCUMBENT})
    assert table.lookup("sp2", "broadcast", 16, 4) == \
        "recursive_doubling_allgather"


def test_threshold_is_geometric_mean_of_adjacent_sizes():
    table, _ = fit_decision_table(
        _times([(1024, 4, {INCUMBENT: 1.0, CHALLENGER: 2.0}),
                (16384, 4, {INCUMBENT: 2.0, CHALLENGER: 1.0})]),
        {("sp2", "broadcast"): INCUMBENT})
    (band,) = table.entries[("sp2", "broadcast")]
    assert band == DecisionEntry(min_p=0, rules=(
        DecisionRule(0, INCUMBENT),
        DecisionRule(math.isqrt(1024 * 16384), CHALLENGER),
    ))
    assert band.rules[1].min_bytes == 4096


def test_identical_rules_merge_into_one_band():
    rows = []
    for p in (4, 16, 64):
        rows.append((16, p, {INCUMBENT: 1.0, CHALLENGER: 2.0}))
        rows.append((65536, p, {INCUMBENT: 2.0, CHALLENGER: 1.0}))
    table, _ = fit_decision_table(
        _times(rows), {("sp2", "broadcast"): INCUMBENT})
    bands = table.entries[("sp2", "broadcast")]
    assert len(bands) == 1
    assert bands[0].min_p == 0


def test_band_splits_at_geometric_mean_of_p():
    table, _ = fit_decision_table(
        _times([(16, 4, {INCUMBENT: 1.0, CHALLENGER: 2.0}),
                (16, 16, {INCUMBENT: 2.0, CHALLENGER: 1.0})]),
        {("sp2", "broadcast"): INCUMBENT})
    bands = table.entries[("sp2", "broadcast")]
    assert [band.min_p for band in bands] == [0, math.isqrt(4 * 16)]
    assert table.lookup("sp2", "broadcast", 16, 7) == INCUMBENT
    assert table.lookup("sp2", "broadcast", 16, 8) == CHALLENGER


def test_flips_record_both_times_and_speedup_sorted():
    table, flips = fit_decision_table(
        _times([(65536, 16, {INCUMBENT: 4.0, CHALLENGER: 2.0}),
                (16384, 16, {INCUMBENT: 3.0, CHALLENGER: 2.0})]),
        {("sp2", "broadcast"): INCUMBENT})
    assert [flip["nbytes"] for flip in flips] == [16384, 65536]
    flip = flips[1]
    assert flip == {"machine": "sp2", "op": "broadcast",
                    "nbytes": 65536, "p": 16,
                    "algorithm": CHALLENGER, "time_us": 2.0,
                    "default_algorithm": INCUMBENT,
                    "default_time_us": 4.0, "speedup": 2.0}


def test_slower_challenger_wins_nothing_and_flips_nothing():
    table, flips = fit_decision_table(
        _times([(65536, 16, {INCUMBENT: 1.0, CHALLENGER: 9.0})]),
        {("sp2", "broadcast"): INCUMBENT})
    assert flips == []
    assert table.lookup("sp2", "broadcast", 65536, 16) == INCUMBENT


# -- property: fitted tables only ever name registered algorithms -------

_REGISTERED = sorted(algorithm_names())

_cell = st.dictionaries(st.sampled_from(_REGISTERED),
                        st.floats(min_value=0.001, max_value=1e9,
                                  allow_nan=False, allow_infinity=False),
                        min_size=1, max_size=4)

_grid = st.dictionaries(
    st.tuples(st.sampled_from(["sp2", "t3d", "paragon"]),
              st.sampled_from(["broadcast", "allreduce", "gather"]),
              st.sampled_from([16, 1024, 65536]),
              st.sampled_from([2, 4, 16, 64])),
    _cell, min_size=1, max_size=24)


@settings(max_examples=50, deadline=None)
@given(times=_grid, incumbent=st.sampled_from(_REGISTERED))
def test_fitted_table_only_names_registered_algorithms(times, incumbent):
    defaults = {key[:2]: incumbent for key in times}
    table, flips = fit_decision_table(times, defaults)
    table.validate()  # raises on any unregistered name
    for (machine, op, nbytes, p) in times:
        choice = table.lookup(machine, op, nbytes, p)
        assert choice in _REGISTERED
        # The fitted choice at a measured point is exactly the raced
        # winner there (thresholds never misattribute grid points).
        cell = times[(machine, op, nbytes, p)]
        best = min(cell.values())
        assert cell[choice] == best
    for flip in flips:
        assert flip["algorithm"] in _REGISTERED
        assert flip["speedup"] > 1.0
