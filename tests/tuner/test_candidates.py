"""Candidate sets: feasibility filtering and grid lookup."""

import pytest

from repro.machines import get_machine_spec
from repro.mpi.collectives import algorithm_names
from repro.tuner import (
    CANDIDATES,
    TUNE_GRIDS,
    TUNE_OPS,
    candidate_algorithms,
    tune_cells,
    tune_grid,
)


def test_every_candidate_is_a_registered_algorithm():
    registered = set(algorithm_names())
    for op, names in CANDIDATES.items():
        assert set(names) <= registered, (op, names)


def test_candidates_include_the_incumbent():
    for machine in ("sp2", "t3d", "paragon"):
        spec = get_machine_spec(machine)
        for op in TUNE_OPS:
            names = candidate_algorithms(spec, op)
            assert spec.algorithms[op] in names
            assert names == tuple(sorted(names))


def test_infeasible_candidates_are_filtered_per_machine(monkeypatch):
    # Hardware-dependent algorithms only race on machines that have
    # the hardware: the barrier wire is T3D-only, the message
    # coprocessor Paragon-only.
    from repro.tuner import candidates as mod

    monkeypatch.setitem(mod.CANDIDATES, "barrier",
                        ("hardware_barrier",))
    monkeypatch.setitem(mod.CANDIDATES, "scan", ("offloaded_scan",))
    t3d = get_machine_spec("t3d")
    sp2 = get_machine_spec("sp2")
    paragon = get_machine_spec("paragon")
    assert "hardware_barrier" in candidate_algorithms(t3d, "barrier")
    assert "hardware_barrier" not in candidate_algorithms(sp2, "barrier")
    assert "offloaded_scan" in candidate_algorithms(paragon, "scan")
    assert "offloaded_scan" not in candidate_algorithms(sp2, "scan")


def test_undefined_op_yields_no_candidates():
    spec = get_machine_spec("sp2")
    assert candidate_algorithms(spec, "teleport") == ()


def test_tune_grid_lookup_and_unknown_name():
    assert tune_grid("smoke") is TUNE_GRIDS["smoke"]
    with pytest.raises(KeyError, match="known grids"):
        tune_grid("galaxy")


def test_tune_cells_race_every_candidate_at_every_point():
    grid = tune_grid("smoke")
    cells = tune_cells(["sp2"], grid)
    assert cells == tuple(sorted(cells))
    spec = get_machine_spec("sp2")
    for op in grid.ops:
        names = candidate_algorithms(spec, op)
        raced = {c.algorithm for c in cells if c.op == op}
        assert raced == set(names)
    # Every cell carries an explicit algorithm (the incumbent too).
    assert all(c.algorithm for c in cells)


def test_tune_cells_honour_the_t3d_allocation_cap():
    from repro.tuner import TuneGrid

    grid = TuneGrid(name="big", ops=("broadcast",),
                    message_sizes=(16,), machine_sizes=(4, 64, 256))
    cells = tune_cells(["t3d"], grid)
    assert max(c.p for c in cells) == 64
