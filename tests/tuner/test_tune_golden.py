"""Golden-snapshot regression for the tuner.

The fitted decision table for the three paper machines must be
byte-stable: across runs in one process, across separate processes,
and against the checked-in golden snapshot (regenerate with
``pytest --update-golden`` after an intentional model change).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.mpi.collectives import algorithm_names
from repro.tuner import dumps_tuning, run_tune

MACHINES = ("paragon", "sp2", "t3d")

_SUBPROCESS_SCRIPT = """\
import sys
from repro.tuner import dumps_tuning, run_tune

result = run_tune({machines!r}, grid="smoke", use_cache=False)
sys.stdout.write(dumps_tuning(result.artifact()))
"""


@pytest.fixture(scope="module")
def tune_result():
    return run_tune(MACHINES, grid="smoke", use_cache=False)


def test_tuning_artifact_matches_golden(tune_result, golden):
    golden.check("BENCH_tuning_smoke.json", tune_result.artifact())


def test_tuning_is_byte_stable_across_runs(tune_result):
    again = run_tune(MACHINES, grid="smoke", use_cache=False)
    assert dumps_tuning(again.artifact()) == \
        dumps_tuning(tune_result.artifact())


def test_tuning_is_byte_stable_across_processes(tune_result):
    src = Path(__file__).resolve().parents[2] / "src"
    script = _SUBPROCESS_SCRIPT.format(machines=MACHINES)
    proc = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": str(src),
             "PYTHONHASHSEED": "random"},
        check=True)
    assert proc.stdout == dumps_tuning(tune_result.artifact())


def test_every_table_entry_names_a_registered_algorithm(tune_result):
    tune_result.table.validate()
    registered = set(algorithm_names())
    assert set(tune_result.table.algorithms_used()) <= registered
    for (_, _), default in tune_result.table.defaults.items():
        assert default in registered
    for flip in tune_result.flips:
        assert flip["algorithm"] in registered
        assert flip["default_algorithm"] in registered


def test_tuning_flips_cells_to_faster_zoo_algorithms(tune_result):
    # Acceptance: the tuned table moves at least one cell off the
    # paper's fixed choice, and only ever to a strictly faster one.
    assert tune_result.flips
    for flip in tune_result.flips:
        assert flip["time_us"] < flip["default_time_us"]
        assert flip["speedup"] > 1.0
    assert not tune_result.quarantined
