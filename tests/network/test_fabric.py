"""Tests for the contended network fabric."""

import pytest

from repro.network import (
    LinkParameters,
    Mesh2D,
    NetworkFabric,
    OmegaNetwork,
    Torus3D,
    bandwidth_to_us_per_byte,
)
from repro.sim import Environment, Tracer

PARAMS = LinkParameters(hop_latency_us=0.1, bandwidth_mbs=100.0)


def run_transfer(fabric, env, src, dst, nbytes, start=0.0):
    done = {}

    def proc():
        yield env.timeout(start)
        begin = env.now
        yield env.process(fabric.transfer(src, dst, nbytes))
        done["elapsed"] = env.now - begin

    env.process(proc())
    return done


def test_bandwidth_conversion():
    # 100 MB/s = 104.8576 bytes/us.
    assert bandwidth_to_us_per_byte(100.0) == pytest.approx(1 / 104.8576)
    with pytest.raises(ValueError):
        bandwidth_to_us_per_byte(0.0)


def test_uncontended_transfer_time():
    env = Environment()
    mesh = Mesh2D(4, 4)
    fabric = NetworkFabric(env, mesh, PARAMS)
    result = run_transfer(fabric, env, 0, 3, 1024)
    env.run()
    expected = 3 * 0.1 + 1024 * PARAMS.us_per_byte
    assert result["elapsed"] == pytest.approx(expected)
    assert fabric.transfer_time(0, 3, 1024) == pytest.approx(expected)


def test_self_transfer_is_free():
    env = Environment()
    fabric = NetworkFabric(env, Mesh2D(2, 2), PARAMS)
    result = run_transfer(fabric, env, 1, 1, 10 ** 6)
    env.run()
    assert result["elapsed"] == 0.0


def test_negative_size_rejected():
    env = Environment()
    fabric = NetworkFabric(env, Mesh2D(2, 2), PARAMS)
    with pytest.raises(ValueError):
        # The generator raises on first step inside the process.
        env.process(fabric.transfer(0, 1, -1))
        env.run()


def test_shared_link_serializes():
    env = Environment()
    mesh = Mesh2D(4, 1)
    fabric = NetworkFabric(env, mesh, PARAMS)
    # Both transfers use link (0,0)->(1,0).
    first = run_transfer(fabric, env, 0, 1, 1048)
    second = run_transfer(fabric, env, 0, 1, 1048)
    env.run()
    single = 0.1 + 1048 * PARAMS.us_per_byte
    assert first["elapsed"] == pytest.approx(single)
    assert second["elapsed"] == pytest.approx(2 * single)


def test_disjoint_paths_parallel():
    env = Environment()
    mesh = Mesh2D(4, 2)
    fabric = NetworkFabric(env, mesh, PARAMS)
    a = run_transfer(fabric, env, mesh.node_at(0, 0), mesh.node_at(1, 0), 2048)
    b = run_transfer(fabric, env, mesh.node_at(0, 1), mesh.node_at(1, 1), 2048)
    env.run()
    single = 0.1 + 2048 * PARAMS.us_per_byte
    assert a["elapsed"] == pytest.approx(single)
    assert b["elapsed"] == pytest.approx(single)


def test_contention_disabled_ignores_sharing():
    env = Environment()
    mesh = Mesh2D(4, 1)
    fabric = NetworkFabric(env, mesh, PARAMS, contention=False)
    first = run_transfer(fabric, env, 0, 1, 1048)
    second = run_transfer(fabric, env, 0, 1, 1048)
    env.run()
    single = 0.1 + 1048 * PARAMS.us_per_byte
    assert first["elapsed"] == pytest.approx(single)
    assert second["elapsed"] == pytest.approx(single)


def test_contention_trace_emitted():
    env = Environment()
    tracer = Tracer(enabled=True)
    fabric = NetworkFabric(env, Mesh2D(4, 1), PARAMS, tracer=tracer)
    run_transfer(fabric, env, 0, 1, 1048)
    run_transfer(fabric, env, 0, 1, 1048)
    env.run()
    records = tracer.records("link-contention")
    assert len(records) == 1
    assert records[0].detail["waited_us"] > 0


def test_utilisation_accounting():
    env = Environment()
    mesh = Mesh2D(4, 1)
    fabric = NetworkFabric(env, mesh, PARAMS)
    run_transfer(fabric, env, 0, 2, 100)
    env.run()
    util = fabric.utilisation()
    assert util[("mesh", (0, 0), (1, 0))] == 100
    assert util[("mesh", (1, 0), (2, 0))] == 100
    assert len(util) == 2


def test_opposing_transfers_do_not_deadlock():
    # Two transfers crossing the same row in opposite directions must
    # both finish (ordered acquisition prevents circular wait).
    env = Environment()
    mesh = Mesh2D(8, 1)
    fabric = NetworkFabric(env, mesh, PARAMS)
    a = run_transfer(fabric, env, 0, 7, 4096)
    b = run_transfer(fabric, env, 7, 0, 4096)
    env.run()
    assert "elapsed" in a and "elapsed" in b


def test_many_crossing_transfers_complete_on_torus():
    env = Environment()
    torus = Torus3D(4, 4, 2)
    fabric = NetworkFabric(env, torus, PARAMS)
    results = [run_transfer(fabric, env, src, (src + 13) % 32, 512)
               for src in range(32)]
    env.run()
    assert all("elapsed" in r for r in results)


def test_omega_identity_permutation_conflict_free():
    env = Environment()
    net = OmegaNetwork(16, radix=2)
    fabric = NetworkFabric(env, net, PARAMS)
    results = [run_transfer(fabric, env, n, (n + 1) % 16, 0)
               for n in range(16)]
    env.run()
    # With zero payload every transfer costs stages * hop latency; some
    # may still queue if routes conflict, but all must complete.
    assert all(r["elapsed"] >= net.stages * 0.1 - 1e-9 for r in results)


def test_transfer_time_zero_bytes():
    env = Environment()
    fabric = NetworkFabric(env, Mesh2D(2, 2), PARAMS)
    assert fabric.transfer_time(0, 1, 0) == pytest.approx(0.1)
