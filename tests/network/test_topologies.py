"""Unit and property tests for the three interconnect topologies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import Mesh2D, OmegaNetwork, Torus3D


# ---------------------------------------------------------------------------
# 2-D mesh (Paragon)
# ---------------------------------------------------------------------------

def test_mesh_coordinates_roundtrip():
    mesh = Mesh2D(4, 3)
    for node in range(12):
        x, y = mesh.coordinates(node)
        assert mesh.node_at(x, y) == node


def test_mesh_distance_is_manhattan():
    mesh = Mesh2D(8, 8)
    a = mesh.node_at(1, 2)
    b = mesh.node_at(6, 7)
    assert mesh.distance(a, b) == 5 + 5


def test_mesh_route_is_x_then_y():
    mesh = Mesh2D(4, 4)
    route = mesh.route(mesh.node_at(0, 0), mesh.node_at(2, 2))
    # First two hops move in X, last two in Y.
    assert route[0] == ("mesh", (0, 0), (1, 0))
    assert route[1] == ("mesh", (1, 0), (2, 0))
    assert route[2] == ("mesh", (2, 0), (2, 1))
    assert route[3] == ("mesh", (2, 1), (2, 2))


def test_mesh_self_route_empty():
    mesh = Mesh2D(4, 4)
    assert mesh.route(5, 5) == []
    assert mesh.distance(5, 5) == 0


def test_mesh_link_count():
    mesh = Mesh2D(3, 2)
    # Directed links: horizontal 2*2*2=8, vertical 3*1*2=6.
    assert len(mesh.links()) == 14


def test_mesh_for_nodes_prefers_square():
    assert (Mesh2D.for_nodes(64).width, Mesh2D.for_nodes(64).height) == (8, 8)
    assert (Mesh2D.for_nodes(32).width, Mesh2D.for_nodes(32).height) == (4, 8)
    assert Mesh2D.for_nodes(2).num_nodes == 2


def test_mesh_rejects_bad_shape():
    with pytest.raises(ValueError):
        Mesh2D(0, 4)
    with pytest.raises(ValueError):
        Mesh2D.for_nodes(0)


def test_mesh_out_of_range_node():
    mesh = Mesh2D(2, 2)
    with pytest.raises(ValueError):
        mesh.route(0, 4)
    with pytest.raises(ValueError):
        mesh.coordinates(-1)


@given(st.integers(0, 63), st.integers(0, 63))
@settings(max_examples=60, deadline=None)
def test_mesh_route_links_exist_and_chain(src, dst):
    mesh = Mesh2D(8, 8)
    links = set(mesh.links())
    route = mesh.route(src, dst)
    assert len(route) == mesh.distance(src, dst)
    prev_end = mesh.coordinates(src)
    for link in route:
        assert link in links
        kind, a, b = link
        assert a == prev_end
        prev_end = b
    if route:
        assert prev_end == mesh.coordinates(dst)


# ---------------------------------------------------------------------------
# 3-D torus (T3D)
# ---------------------------------------------------------------------------

def test_torus_coordinates_roundtrip():
    torus = Torus3D(4, 4, 4)
    for node in range(64):
        x, y, z = torus.coordinates(node)
        assert torus.node_at(x, y, z) == node


def test_torus_wraparound_shortens_route():
    torus = Torus3D(8, 1, 1)
    # 0 -> 7 is one hop around the wrap link, not seven.
    assert torus.distance(0, 7) == 1
    assert torus.distance(0, 4) == 4  # half-way: either way is 4


def test_torus_distance_sums_dimensions():
    torus = Torus3D(4, 4, 4)
    a = torus.node_at(0, 0, 0)
    b = torus.node_at(2, 3, 1)
    # x: 2, y: min(3, 1)=1, z: 1.
    assert torus.distance(a, b) == 4


def test_torus_for_nodes_prefers_cube():
    assert Torus3D.for_nodes(64).shape == (4, 4, 4)
    assert Torus3D.for_nodes(8).shape == (2, 2, 2)
    assert sorted(Torus3D.for_nodes(32).shape) == [2, 4, 4]


def test_torus_size_two_ring_has_unique_links():
    torus = Torus3D(2, 2, 2)
    links = torus.links()
    assert len(links) == len(set(links))


def test_torus_rejects_bad_shape():
    with pytest.raises(ValueError):
        Torus3D(0, 2, 2)


@given(st.integers(0, 63), st.integers(0, 63))
@settings(max_examples=60, deadline=None)
def test_torus_route_valid_and_minimal(src, dst):
    torus = Torus3D(4, 4, 4)
    links = set(torus.links())
    route = torus.route(src, dst)
    assert len(route) == torus.distance(src, dst)
    for link in route:
        assert link in links
    # Route follows adjacency: each hop changes exactly one axis by 1 mod n.
    pos = torus.coordinates(src)
    for _, axis, a, b in route:
        assert a == pos
        diff = [(b[i] - a[i]) % torus.shape[i] for i in range(3)]
        changed = [i for i in range(3) if diff[i] != 0]
        assert changed == [axis]
        assert diff[axis] in (1, torus.shape[axis] - 1)
        pos = b
    assert pos == torus.coordinates(dst)


@given(st.integers(0, 31), st.integers(0, 31))
@settings(max_examples=40, deadline=None)
def test_torus_distance_symmetric(src, dst):
    torus = Torus3D(4, 4, 2)
    assert torus.distance(src, dst) == torus.distance(dst, src)


# ---------------------------------------------------------------------------
# Omega multistage network (SP2)
# ---------------------------------------------------------------------------

def test_omega_stage_count():
    assert OmegaNetwork(16, radix=4).stages == 2
    assert OmegaNetwork(64, radix=4).stages == 3
    assert OmegaNetwork(128, radix=4).stages == 4  # padded to 256 ports
    assert OmegaNetwork(8, radix=2).stages == 3


def test_omega_pads_to_power_of_radix():
    net = OmegaNetwork(12, radix=4)
    assert net.ports == 16
    assert net.num_nodes == 12


def test_omega_routing_lands_on_destination():
    net = OmegaNetwork(16, radix=2)
    for src in range(16):
        for dst in range(16):
            assert net.positions(src, dst)[-1] == dst


def test_omega_distance_uniform_log():
    net = OmegaNetwork(64, radix=4)
    assert net.distance(0, 63) == 3
    assert net.distance(5, 6) == 3
    assert net.distance(9, 9) == 0


def test_omega_route_links_are_stagewise():
    net = OmegaNetwork(16, radix=4)
    route = net.route(3, 12)
    assert len(route) == 2
    assert [link[1] for link in route] == [0, 1]
    links = set(net.links())
    for link in route:
        assert link in links


def test_omega_disjoint_routes_share_no_links():
    # Identity permutation is conflict-free in an Omega network.
    net = OmegaNetwork(16, radix=2)
    used = set()
    for node in range(16):
        for link in net.route(node, node):
            assert link not in used
            used.add(link)


def test_omega_blocking_exists():
    # Omega networks are blocking: some pairs of routes share a wire.
    net = OmegaNetwork(16, radix=2)
    routes = {}
    shared = False
    for src in range(16):
        for dst in range(16):
            if src == dst:
                continue
            for link in net.route(src, dst):
                if link in routes and routes[link] != (src, dst):
                    shared = True
                routes[link] = (src, dst)
    assert shared


def test_omega_rejects_bad_radix():
    with pytest.raises(ValueError):
        OmegaNetwork(16, radix=1)


@given(st.integers(0, 127), st.integers(0, 127))
@settings(max_examples=60, deadline=None)
def test_omega_routes_deterministic_and_valid(src, dst):
    net = OmegaNetwork(128, radix=4)
    route1 = net.route(src, dst)
    route2 = net.route(src, dst)
    assert route1 == route2
    if src != dst:
        assert len(route1) == net.stages
        assert route1[-1] == ("ms", net.stages - 1, dst)


# ---------------------------------------------------------------------------
# Shared topology behaviour
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("topology", [
    Mesh2D(4, 4),
    Torus3D(2, 4, 2),
    OmegaNetwork(16, radix=4),
])
def test_average_distance_positive(topology):
    avg = topology.average_distance()
    assert 0 < avg <= topology.diameter()


def test_single_node_topology_trivial():
    mesh = Mesh2D(1, 1)
    assert mesh.average_distance() == 0.0
    assert mesh.diameter() == 0
    assert mesh.links() == []
