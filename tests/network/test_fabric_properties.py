"""Property-based tests of the fabric: conservation and completion."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import LinkParameters, Mesh2D, NetworkFabric, \
    OmegaNetwork, Torus3D
from repro.sim import Environment

PARAMS = LinkParameters(hop_latency_us=0.05, bandwidth_mbs=200.0)

TOPOLOGIES = {
    "mesh": lambda: Mesh2D(4, 4),
    "torus": lambda: Torus3D(2, 4, 2),
    "omega": lambda: OmegaNetwork(16, radix=4),
}


@st.composite
def transfer_sets(draw):
    count = draw(st.integers(1, 15))
    return [(draw(st.integers(0, 15)), draw(st.integers(0, 15)),
             draw(st.sampled_from([0, 64, 4096])))
            for _ in range(count)]


@given(st.sampled_from(sorted(TOPOLOGIES)), transfer_sets())
@settings(max_examples=50, deadline=None)
def test_all_transfers_complete_and_bytes_conserved(kind, transfers):
    env = Environment()
    topology = TOPOLOGIES[kind]()
    fabric = NetworkFabric(env, topology, PARAMS)
    finished = []

    def mover(src, dst, nbytes):
        yield from fabric.transfer(src, dst, nbytes)
        finished.append((src, dst, nbytes))

    for src, dst, nbytes in transfers:
        env.process(mover(src, dst, nbytes))
    env.run()
    assert len(finished) == len(transfers)

    # Byte conservation: each link carried exactly the bytes of the
    # messages routed over it.
    expected = {}
    for src, dst, nbytes in transfers:
        for link in topology.route(src, dst):
            expected[link] = expected.get(link, 0) + nbytes
    observed = fabric.utilisation()
    for link, nbytes in expected.items():
        observed_bytes = observed.get(link, 0)
        assert observed_bytes == nbytes, (link, observed_bytes, nbytes)
    # No link carried traffic that was never routed over it.
    for link, nbytes in observed.items():
        assert expected.get(link, 0) == nbytes


@given(st.sampled_from(sorted(TOPOLOGIES)), st.integers(0, 15),
       st.integers(0, 15), st.integers(0, 1 << 16))
@settings(max_examples=50, deadline=None)
def test_uncontended_time_matches_formula(kind, src, dst, nbytes):
    env = Environment()
    topology = TOPOLOGIES[kind]()
    fabric = NetworkFabric(env, topology, PARAMS)
    elapsed = {}

    def mover():
        start = env.now
        yield from fabric.transfer(src, dst, nbytes)
        elapsed["value"] = env.now - start

    env.process(mover())
    env.run()
    if src == dst:
        assert elapsed["value"] == 0.0
    else:
        assert elapsed["value"] == \
            fabric.transfer_time(src, dst, nbytes)


@given(transfer_sets())
@settings(max_examples=30, deadline=None)
def test_contention_never_speeds_things_up(transfers):
    def total_time(contention):
        env = Environment()
        fabric = NetworkFabric(env, Mesh2D(4, 4), PARAMS,
                               contention=contention)
        for src, dst, nbytes in transfers:
            env.process(fabric.transfer(src, dst, nbytes))
        env.run()
        return env.now

    assert total_time(True) >= total_time(False) - 1e-9
