"""Tests for the interference (per-node CPU slowdown) model."""

import pytest

from repro.machines import Machine, SP2
from repro.mpi import MpiWorld
from repro.sim import Environment


def test_slowdown_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Machine(env, SP2, 4, cpu_slowdown={9: 2.0})
    with pytest.raises(ValueError):
        Machine(env, SP2, 4, cpu_slowdown={0: 0.5})


def test_slowdown_multiplies_jitter():
    env = Environment()
    dedicated = Machine(env, SP2, 4)
    loaded = Machine(Environment(), SP2, 4, cpu_slowdown={1: 3.0})
    # Same streams/seed: the slowdown is a clean multiplier.
    assert loaded.jitter(1) == pytest.approx(3.0 * dedicated.jitter(1))
    assert loaded.jitter(0) == pytest.approx(dedicated.jitter(0))


def run_gather(cpu_slowdown=None):
    world = MpiWorld("sp2", 8, seed=6, cpu_slowdown=cpu_slowdown)

    def program(ctx):
        yield from ctx.barrier()
        start = ctx.wtime()
        yield from ctx.gather(1024, root=0)
        return ctx.wtime() - start

    return world.run(program)


def test_straggler_inflates_collective_time():
    dedicated = max(run_gather())
    loaded = max(run_gather(cpu_slowdown={3: 5.0}))
    assert loaded > dedicated


def test_straggler_on_root_hurts_most():
    # The gather root's per-message cost is on the critical path; a
    # slow root hurts more than an equally slow leaf.
    slow_leaf = max(run_gather(cpu_slowdown={5: 5.0}))
    slow_root = max(run_gather(cpu_slowdown={0: 5.0}))
    assert slow_root > slow_leaf


def test_dedicated_mode_is_default():
    env = Environment()
    machine = Machine(env, SP2, 4)
    assert machine.cpu_slowdown == {}
