"""Tests for machine specifications and the runtime builder."""

import pytest

from repro.machines import (
    PARAGON,
    SP2,
    T3D,
    Machine,
    MachineSpec,
    MemoryCosts,
    NetworkSpec,
    NicCosts,
    SoftwareCosts,
    all_machine_specs,
    get_machine_spec,
    machine_names,
    register_machine_spec,
)
from repro.network import Mesh2D, OmegaNetwork, Torus3D
from repro.sim import Environment


def test_registry_has_the_three_machines():
    assert machine_names() == ["sp2", "t3d", "paragon"]
    assert get_machine_spec("SP2") is SP2
    assert get_machine_spec("t3d") is T3D
    assert get_machine_spec("Paragon") is PARAGON


def test_unknown_machine_rejected():
    with pytest.raises(KeyError, match="unknown machine"):
        get_machine_spec("cm5")


def test_register_custom_spec_no_overwrite():
    with pytest.raises(ValueError):
        register_machine_spec(SP2)


def test_topology_families_match_the_paper():
    env = Environment()
    assert isinstance(Machine(env, SP2, 16).topology, OmegaNetwork)
    assert isinstance(Machine(env, T3D, 16).topology, Torus3D)
    assert isinstance(Machine(env, PARAGON, 16).topology, Mesh2D)


def test_only_t3d_has_hardware_barrier():
    env = Environment()
    assert Machine(env, T3D, 8).hardware_barrier is not None
    assert Machine(env, SP2, 8).hardware_barrier is None
    assert Machine(env, PARAGON, 8).hardware_barrier is None


def test_only_sp2_is_half_duplex():
    assert SP2.nic.half_duplex
    assert not T3D.nic.half_duplex
    assert not PARAGON.nic.half_duplex


def test_t3d_has_blt_paragon_has_coproc():
    from repro.node import TransferMode
    assert T3D.dma is not None and T3D.dma.kind is TransferMode.BLT
    assert PARAGON.dma is not None and \
        PARAGON.dma.kind is TransferMode.COPROC
    assert SP2.dma is None


def test_raw_link_bandwidths_match_paper():
    # Section 5: 300, 175, and 40 MB/s.
    assert T3D.network.link_bandwidth_mbs == 300.0
    assert PARAGON.network.link_bandwidth_mbs == 175.0
    assert SP2.network.link_bandwidth_mbs == 40.0


def test_hop_latencies_match_paper():
    # Section 4: 20 ns, 125 ns, 40 ns per hop.
    assert T3D.network.hop_latency_us == pytest.approx(0.020)
    assert SP2.network.hop_latency_us == pytest.approx(0.125)
    assert PARAGON.network.hop_latency_us == pytest.approx(0.040)


def test_all_specs_define_all_paper_ops():
    for spec in all_machine_specs():
        for op in ("barrier", "broadcast", "gather", "scatter", "reduce",
                   "scan", "alltoall"):
            assert spec.algorithm_for(op)


def test_algorithm_for_unknown_op():
    with pytest.raises(KeyError):
        SP2.algorithm_for("alltoallw")


def test_machine_size_bounds():
    env = Environment()
    with pytest.raises(ValueError):
        Machine(env, SP2, 1)
    with pytest.raises(ValueError):
        Machine(env, SP2, SP2.max_nodes + 1)


def test_spec_requires_two_nodes():
    with pytest.raises(ValueError):
        MachineSpec(
            name="tiny", full_name="Tiny", site="lab", max_nodes=1,
            software=SP2.software, memory=MemoryCosts(0.01),
            nic=NicCosts(1.0, 10.0),
            network=NetworkSpec("mesh2d", 10.0, 0.1))


def test_node_clocks_are_skewed_but_deterministic():
    env1 = Environment()
    machine1 = Machine(env1, SP2, 4)
    env2 = Environment()
    machine2 = Machine(env2, SP2, 4)
    offsets1 = [node.clock.offset_us for node in machine1.nodes]
    offsets2 = [node.clock.offset_us for node in machine2.nodes]
    assert offsets1 == offsets2  # same seed -> same machine
    assert len(set(offsets1)) > 1  # but nodes disagree


def test_uses_dma_for_policy():
    assert T3D.uses_dma_for("scatter")
    assert not T3D.uses_dma_for("alltoall")
    assert PARAGON.uses_dma_for("broadcast")
    assert not PARAGON.uses_dma_for("alltoall")
    assert not SP2.uses_dma_for("scatter")


def test_unknown_network_kind_rejected():
    spec = NetworkSpec(kind="hypercube", link_bandwidth_mbs=10.0,
                       hop_latency_us=0.1)
    with pytest.raises(ValueError):
        spec.build_topology(8)
