"""Tests for the Machine runtime wrapper (jitter, topology sizing)."""

import math

import pytest

from repro.machines import Machine, PARAGON, SP2, T3D
from repro.sim import Environment, RandomStreams


def test_log2_nodes():
    env = Environment()
    assert Machine(env, SP2, 16).log2_nodes() == 4.0
    assert Machine(env, SP2, 3).log2_nodes() == pytest.approx(
        math.log2(3))


def test_jitter_draws_vary_but_reproduce():
    env1 = Environment()
    machine1 = Machine(env1, SP2, 4, streams=RandomStreams(9))
    draws1 = [machine1.jitter(0) for _ in range(5)]
    env2 = Environment()
    machine2 = Machine(env2, SP2, 4, streams=RandomStreams(9))
    draws2 = [machine2.jitter(0) for _ in range(5)]
    assert draws1 == draws2
    assert len(set(draws1)) > 1


def test_jitter_always_positive():
    env = Environment()
    machine = Machine(env, PARAGON, 4)
    assert all(machine.jitter(i % 4) > 0 for i in range(200))


def test_topology_sized_to_machine():
    env = Environment()
    for p in (2, 8, 24, 64):
        machine = Machine(env, PARAGON, p)
        assert machine.topology.num_nodes == p
        assert len(machine.nodes) == p


def test_nodes_have_expected_hardware():
    env = Environment()
    t3d = Machine(env, T3D, 4)
    assert all(node.dma is not None for node in t3d.nodes)
    sp2 = Machine(env, SP2, 4)
    assert all(node.dma is None for node in sp2.nodes)
    assert sp2.nodes[0].nic.half_duplex


def test_contention_flag_passes_through():
    env = Environment()
    machine = Machine(env, SP2, 4, contention=False)
    assert machine.fabric.contention is False


def test_clock_resolution_from_spec():
    env = Environment()
    machine = Machine(env, T3D, 4)
    assert machine.nodes[0].clock.resolution_us == \
        T3D.timer_resolution_us


def test_payload_mode_thresholds():
    from repro.node import TransferMode
    env = Environment()
    t3d = Machine(env, T3D, 4)
    node = t3d.nodes[0]
    # Below the BLT threshold the host path is used even when policy
    # prefers DMA.
    assert node.payload_mode(True, 100) is TransferMode.HOST
    assert node.payload_mode(True, 8192) is TransferMode.BLT
    assert node.payload_mode(False, 8192) is TransferMode.HOST
