"""Shared fixtures: the golden-file comparator and its update flag.

``pytest --update-golden`` rewrites every golden snapshot a test
touches instead of asserting against it; a normal run fails with a
unified diff on any mismatch.  Goldens live under ``tests/golden/``
as key-sorted indented JSON so their diffs are line-oriented and
reviewable.
"""

import difflib
import json
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "golden"


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite golden snapshots under tests/golden/ instead of "
             "comparing against them")


class GoldenComparator:
    """Compare payloads against (or rewrite) tests/golden/ snapshots."""

    def __init__(self, update: bool):
        self.update = update

    @staticmethod
    def render(payload) -> str:
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def check(self, name: str, payload) -> None:
        """Assert ``payload`` matches the golden file ``name``.

        Under ``--update-golden`` the file is rewritten and the check
        passes; otherwise a mismatch fails with a unified diff and a
        pointer to the update flag.
        """
        path = GOLDEN_DIR / name
        text = self.render(payload)
        if self.update:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text, "utf-8")
            return
        if not path.exists():
            pytest.fail(f"missing golden snapshot {path}; run "
                        f"`pytest --update-golden` to create it")
        expected = path.read_text("utf-8")
        if text == expected:
            return
        diff = difflib.unified_diff(
            expected.splitlines(), text.splitlines(),
            fromfile=f"golden/{name}", tofile="regenerated",
            lineterm="")
        shown = list(diff)
        if len(shown) > 60:
            shown = shown[:60] + [f"... ({len(shown) - 60} more diff "
                                  f"lines)"]
        pytest.fail(f"golden snapshot {name} differs:\n" +
                    "\n".join(shown) +
                    "\nrun `pytest --update-golden` if the change is "
                    "intended")


@pytest.fixture
def golden(request):
    return GoldenComparator(request.config.getoption("--update-golden"))
