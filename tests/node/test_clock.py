"""Tests for the skewed per-node wall clock."""

import pytest

from repro.node import NodeClock
from repro.sim import Environment


def test_clock_reads_offset():
    env = Environment()
    clock = NodeClock(env, offset_us=100.0)
    assert clock.read() == 100.0


def test_clock_advances_with_time():
    env = Environment()
    clock = NodeClock(env, offset_us=10.0)

    def proc():
        yield env.timeout(5.0)

    env.process(proc())
    env.run()
    assert clock.read() == 15.0


def test_clock_differences_cancel_offset():
    env = Environment()
    clock = NodeClock(env, offset_us=12345.0)
    start = clock.read()

    def proc():
        yield env.timeout(7.0)

    env.process(proc())
    env.run()
    assert clock.elapsed(start) == pytest.approx(7.0)


def test_clock_drift_scales_elapsed():
    env = Environment()
    clock = NodeClock(env, drift=0.01)
    start = clock.read()

    def proc():
        yield env.timeout(100.0)

    env.process(proc())
    env.run()
    assert clock.elapsed(start) == pytest.approx(101.0)


def test_clock_resolution_quantizes():
    env = Environment(initial_time=10.37)
    clock = NodeClock(env, resolution_us=0.5)
    assert clock.read() == 10.0


def test_clocks_disagree_across_nodes():
    env = Environment()
    a = NodeClock(env, offset_us=3.0)
    b = NodeClock(env, offset_us=400.0)
    assert a.read() != b.read()


def test_negative_resolution_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        NodeClock(env, resolution_us=-1.0)
