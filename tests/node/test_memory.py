"""Tests for the memory system: bus contention and warm-up."""

import pytest

from repro.node import MemorySystem
from repro.sim import Environment


def run_copy(env, memory, nbytes, result, key):
    def proc():
        start = env.now
        yield from memory.copy(nbytes)
        result[key] = env.now - start
    env.process(proc())


def test_copy_cost_linear_in_bytes():
    env = Environment()
    memory = MemorySystem(env, copy_us_per_byte=0.01)
    result = {}
    run_copy(env, memory, 1000, result, "a")
    env.run()
    assert result["a"] == pytest.approx(10.0)


def test_concurrent_copies_serialize_on_bus():
    env = Environment()
    memory = MemorySystem(env, copy_us_per_byte=0.01)
    result = {}
    run_copy(env, memory, 1000, result, "a")
    run_copy(env, memory, 1000, result, "b")
    env.run()
    assert result["a"] == pytest.approx(10.0)
    assert result["b"] == pytest.approx(20.0)  # waited for the bus


def test_zero_byte_copy_free():
    env = Environment()
    memory = MemorySystem(env, copy_us_per_byte=0.01)
    result = {}
    run_copy(env, memory, 0, result, "a")
    env.run()
    assert result["a"] == 0.0


def test_negative_copy_rejected():
    env = Environment()
    memory = MemorySystem(env, copy_us_per_byte=0.01)
    with pytest.raises(ValueError):
        list(memory.copy(-1))


def test_negative_copy_cost_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        MemorySystem(env, copy_us_per_byte=-0.01)


def test_first_touch_penalty_once():
    env = Environment()
    memory = MemorySystem(env, copy_us_per_byte=0.0, warmup_us=100.0,
                          warmup_us_per_byte=0.5)
    first = memory.first_touch_penalty(("broadcast", 64), 64)
    assert first == pytest.approx(100.0 + 32.0)
    again = memory.first_touch_penalty(("broadcast", 64), 64)
    assert again == 0.0


def test_first_touch_distinct_keys():
    env = Environment()
    memory = MemorySystem(env, copy_us_per_byte=0.0, warmup_us=50.0,
                          warmup_us_per_byte=0.0)
    assert memory.first_touch_penalty(("broadcast", 4), 4) == 50.0
    assert memory.first_touch_penalty(("broadcast", 8), 8) == 50.0
    assert memory.is_warm(("broadcast", 4))
    assert not memory.is_warm(("gather", 4))


def test_bytes_copied_accounting():
    env = Environment()
    memory = MemorySystem(env, copy_us_per_byte=0.001)
    result = {}
    run_copy(env, memory, 123, result, "a")
    run_copy(env, memory, 77, result, "b")
    env.run()
    assert memory.bytes_copied == 200
