"""Tests for DMA engines and the hardwired barrier."""

import math

import pytest

from repro.node import DmaEngine, DmaParameters, HardwareBarrier, \
    TransferMode
from repro.sim import Environment

BLT = DmaParameters(kind=TransferMode.BLT, setup_us=25.0,
                    us_per_byte=0.005, min_message_bytes=4096)


def test_dma_threshold_gates_use():
    env = Environment()
    engine = DmaEngine(env, BLT)
    assert not engine.applicable(4095)
    assert engine.applicable(4096)


def test_coproc_zero_threshold_always_applies():
    env = Environment()
    engine = DmaEngine(env, DmaParameters(
        kind=TransferMode.COPROC, setup_us=1.0, us_per_byte=0.01,
        min_message_bytes=0))
    assert engine.applicable(0)
    assert engine.applicable(1)


def test_stream_cost_setup_plus_linear():
    env = Environment()
    engine = DmaEngine(env, BLT)
    result = {}

    def proc():
        start = env.now
        yield from engine.stream(8192)
        result["elapsed"] = env.now - start

    env.process(proc())
    env.run()
    assert result["elapsed"] == pytest.approx(25.0 + 8192 * 0.005)
    assert engine.bytes_streamed == 8192


def test_streams_serialize_on_engine():
    env = Environment()
    engine = DmaEngine(env, BLT)
    done = []

    def proc(i):
        yield from engine.stream(4096)
        done.append((i, env.now))

    env.process(proc(0))
    env.process(proc(1))
    env.run()
    single = 25.0 + 4096 * 0.005
    assert done[0][1] == pytest.approx(single)
    assert done[1][1] == pytest.approx(2 * single)


def test_dma_parameter_validation():
    with pytest.raises(ValueError):
        DmaParameters(kind=TransferMode.BLT, setup_us=-1.0,
                      us_per_byte=0.0)
    with pytest.raises(ValueError):
        DmaParameters(kind=TransferMode.BLT, setup_us=0.0,
                      us_per_byte=0.0, min_message_bytes=-5)


# ---------------------------------------------------------------------------
# Hardwired barrier
# ---------------------------------------------------------------------------

def _run_barrier(participants, base_us=3.0, per_level_us=0.011,
                 staggered=False):
    env = Environment()
    barrier = HardwareBarrier(env, participants, base_us=base_us,
                              per_level_us=per_level_us)
    exits = {}

    def proc(i):
        if staggered:
            yield env.timeout(float(i))
        yield from barrier.arrive()
        exits[i] = env.now

    for i in range(participants):
        env.process(proc(i))
    env.run()
    return exits


def test_barrier_releases_all_at_same_time():
    exits = _run_barrier(8)
    assert len(set(exits.values())) == 1


def test_barrier_completion_delay():
    exits = _run_barrier(8)
    expected = 3.0 + 0.011 * math.log2(8)
    assert next(iter(exits.values())) == pytest.approx(expected)


def test_barrier_waits_for_last_arrival():
    exits = _run_barrier(4, staggered=True)
    # Last arrival at t=3; release = 3 + delay.
    expected = 3.0 + 3.0 + 0.011 * 2
    assert exits[0] == pytest.approx(expected)


def test_barrier_is_reusable():
    env = Environment()
    barrier = HardwareBarrier(env, 2)
    times = []

    def proc():
        for _ in range(3):
            yield from barrier.arrive()
            times.append(env.now)

    env.process(proc())
    env.process(proc())
    env.run()
    assert len(times) == 6
    # Three distinct release instants, each strictly later.
    instants = sorted(set(times))
    assert len(instants) == 3
    assert instants == sorted(instants)


def test_barrier_single_participant():
    exits = _run_barrier(1)
    assert exits[0] == pytest.approx(3.0)


def test_barrier_rejects_zero_participants():
    env = Environment()
    with pytest.raises(ValueError):
        HardwareBarrier(env, 0)
