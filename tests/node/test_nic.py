"""Tests for the NIC model: duplex modes and fast (DMA-fed) path."""

import pytest

from repro.node import Nic
from repro.sim import Environment


def run_leg(env, generator, result, key):
    def proc():
        start = env.now
        yield from generator
        result[key] = env.now - start
    env.process(proc())


def test_occupancy_includes_per_message_cost():
    env = Environment()
    nic = Nic(env, per_message_us=2.0, bandwidth_mbs=100.0)
    assert nic.occupancy_us(1048) == pytest.approx(2.0 + 1048 / 104.8576)


def test_fast_path_uses_fast_bandwidth():
    env = Environment()
    nic = Nic(env, per_message_us=0.0, bandwidth_mbs=100.0,
              fast_bandwidth_mbs=300.0)
    slow = nic.occupancy_us(3000, fast=False)
    fast = nic.occupancy_us(3000, fast=True)
    assert slow == pytest.approx(3 * fast)


def test_fast_defaults_to_normal_bandwidth():
    env = Environment()
    nic = Nic(env, per_message_us=0.0, bandwidth_mbs=100.0)
    assert nic.occupancy_us(512, fast=True) == nic.occupancy_us(512)


def test_full_duplex_tx_rx_parallel():
    env = Environment()
    nic = Nic(env, per_message_us=0.0, bandwidth_mbs=100.0,
              half_duplex=False)
    single = nic.occupancy_us(10486)
    result = {}
    run_leg(env, nic.transmit(10486), result, "tx")
    run_leg(env, nic.receive(10486), result, "rx")
    env.run()
    assert result["tx"] == pytest.approx(single)
    assert result["rx"] == pytest.approx(single)  # concurrent


def test_half_duplex_tx_rx_serialize():
    env = Environment()
    nic = Nic(env, per_message_us=0.0, bandwidth_mbs=100.0,
              half_duplex=True)
    single = nic.occupancy_us(10486)
    result = {}
    run_leg(env, nic.transmit(10486), result, "tx")
    run_leg(env, nic.receive(10486), result, "rx")
    env.run()
    assert result["tx"] == pytest.approx(single)
    assert result["rx"] == pytest.approx(2 * single)  # shared engine


def test_same_direction_messages_serialize():
    env = Environment()
    nic = Nic(env, per_message_us=1.0, bandwidth_mbs=100.0)
    result = {}
    run_leg(env, nic.transmit(10486), result, "first")
    run_leg(env, nic.transmit(10486), result, "second")
    env.run()
    assert result["second"] == pytest.approx(2 * result["first"])


def test_message_counters():
    env = Environment()
    nic = Nic(env, per_message_us=0.0, bandwidth_mbs=100.0)
    result = {}
    run_leg(env, nic.transmit(10), result, "tx")
    run_leg(env, nic.receive(10), result, "rx")
    env.run()
    assert nic.messages_sent == 1
    assert nic.messages_received == 1


def test_invalid_parameters_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        Nic(env, per_message_us=0.0, bandwidth_mbs=0.0)
    with pytest.raises(ValueError):
        Nic(env, per_message_us=-1.0, bandwidth_mbs=10.0)
    with pytest.raises(ValueError):
        Nic(env, per_message_us=0.0, bandwidth_mbs=10.0,
            fast_bandwidth_mbs=0.0)
    nic = Nic(env, per_message_us=0.0, bandwidth_mbs=10.0)
    with pytest.raises(ValueError):
        list(nic.transmit(-1))
