"""Property-based guarantees of the sweep runner (Hypothesis).

Two invariants the whole caching/parallelism design rests on:

* the parallel sweep is *bit-identical* to the serial one for any
  sub-grid — workers only change wall-clock time, never results;
* cache keys are stable across interpreter processes (no hash
  randomization leaks in) but change whenever any machine-spec field
  changes, so a cache hit is always a valid result.
"""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.core import MeasurementConfig
from repro.machines import get_machine_spec
from repro.runner import (
    ResultCache,
    SweepCell,
    SweepConfig,
    build_artifact,
    cell_fingerprint,
    dumps_artifact,
    run_sweep,
    spec_fingerprint,
)

FAST = MeasurementConfig(iterations=1, warmup_iterations=0, runs=1)

#: Cheap cells the parallel-equivalence property samples sub-grids from.
CELL_POOL = sorted(
    SweepCell(machine, op, nbytes, p)
    for machine in ("sp2", "t3d")
    for op in ("broadcast", "reduce")
    for nbytes in (4, 256)
    for p in (2, 4))


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.sampled_from(CELL_POOL), min_size=1, max_size=4,
                unique=True))
def test_parallel_sweep_bit_identical_to_serial(cells):
    serial = run_sweep(
        cells, SweepConfig(mode="sim", workers=1, measurement=FAST,
                           use_cache=False),
        ResultCache(enabled=False))
    parallel = run_sweep(
        cells, SweepConfig(mode="sim", workers=2, measurement=FAST,
                           use_cache=False),
        ResultCache(enabled=False))
    config = SweepConfig(mode="sim", measurement=FAST, use_cache=False)
    assert dumps_artifact(build_artifact(serial, "prop", config)) == \
        dumps_artifact(build_artifact(parallel, "prop", config))


_SUBPROCESS_SNIPPET = """\
import json
from repro.core import MeasurementConfig
from repro.machines import get_machine_spec
from repro.runner import cell_fingerprint, spec_fingerprint

config = MeasurementConfig(iterations=1, warmup_iterations=0, runs=1)
spec = get_machine_spec("t3d")
print(json.dumps([
    spec_fingerprint(spec),
    cell_fingerprint(spec, "broadcast", 1024, 8, config, "sim"),
    cell_fingerprint(spec, "alltoall", 0, 2, None, "model"),
]))
"""


def _fingerprints_in_subprocess(hash_seed: str):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    proc = subprocess.run([sys.executable, "-c", _SUBPROCESS_SNIPPET],
                          env=env, capture_output=True, text=True,
                          check=True)
    return json.loads(proc.stdout)


def test_cache_keys_stable_across_processes():
    """Keys computed under different hash seeds are identical, and
    match this process's own."""
    spec = get_machine_spec("t3d")
    local = [
        spec_fingerprint(spec),
        cell_fingerprint(spec, "broadcast", 1024, 8, FAST, "sim"),
        cell_fingerprint(spec, "alltoall", 0, 2, None, "model"),
    ]
    assert _fingerprints_in_subprocess("0") == local
    assert _fingerprints_in_subprocess("424242") == local


#: (attribute path, leaf field) pairs covering every spec subsystem.
FIELD_PATHS = [
    ("software", "call_setup_us"),
    ("software", "send_msg_us"),
    ("software", "recv_msg_us"),
    ("software", "reduce_us_per_byte"),
    ("software", "jitter_sigma"),
    ("memory", "copy_us_per_byte"),
    ("nic", "per_message_us"),
    ("nic", "bandwidth_mbs"),
    ("network", "link_bandwidth_mbs"),
    ("network", "hop_latency_us"),
    (None, "compute_mflops"),
    (None, "clock_skew_us"),
    (None, "timer_resolution_us"),
]


def _mutate_spec(spec, group, leaf, scale):
    if group is None:
        return dataclasses.replace(
            spec, **{leaf: getattr(spec, leaf) * scale})
    inner = getattr(spec, group)
    mutated = dataclasses.replace(
        inner, **{leaf: getattr(inner, leaf) * scale})
    return dataclasses.replace(spec, **{group: mutated})


@settings(max_examples=30, deadline=None)
@given(path=st.sampled_from(FIELD_PATHS),
       machine=st.sampled_from(("sp2", "t3d", "paragon")),
       scale=st.floats(min_value=1.01, max_value=7.5,
                       allow_nan=False, allow_infinity=False))
def test_any_spec_field_change_changes_cache_key(path, machine, scale):
    group, leaf = path
    spec = get_machine_spec(machine)
    mutated = _mutate_spec(spec, group, leaf, scale)
    assert spec_fingerprint(mutated) != spec_fingerprint(spec)
    assert cell_fingerprint(mutated, "broadcast", 16, 4, FAST) != \
        cell_fingerprint(spec, "broadcast", 16, 4, FAST)


def test_algorithm_choice_changes_cache_key():
    spec = get_machine_spec("sp2")
    rewired = dataclasses.replace(
        spec, algorithms={**spec.algorithms,
                          "reduce": "binary_tree_reduce"})
    assert cell_fingerprint(rewired, "reduce", 16, 4, FAST) != \
        cell_fingerprint(spec, "reduce", 16, 4, FAST)
