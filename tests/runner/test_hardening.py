"""Tests for sweep-runner fault tolerance: poison-cell quarantine,
shard requeueing, worker watchdog timeouts, and artifact handling of
failed cells."""

import pytest

from repro.core import MeasurementConfig
from repro.runner import (
    ResultCache,
    SweepCell,
    SweepConfig,
    build_artifact,
    dumps_artifact,
    run_sweep,
)

FAST = MeasurementConfig(iterations=1, warmup_iterations=0, runs=1)

GOOD = (SweepCell("t3d", "broadcast", 16, 2),
        SweepCell("t3d", "reduce", 16, 2))
#: An unknown collective: the measurement raises MpiError inside the
#: worker, which must quarantine the cell, not sink the sweep.
POISON = SweepCell("t3d", "bogus-op", 16, 2)


def test_poison_cell_is_quarantined_inline():
    config = SweepConfig(mode="sim", workers=1, measurement=FAST,
                         use_cache=False)
    result = run_sweep(GOOD + (POISON,), config,
                       ResultCache(enabled=False))
    assert set(result.quarantined) == {POISON}
    assert "bogus-op" in result.quarantined[POISON]
    assert set(result.results) == set(GOOD)
    assert result.evaluated == len(GOOD)
    assert "1 quarantined" in result.summary()


def test_failed_shard_requeues_and_isolates_the_poison_cell():
    # One worker with a timeout forces the pool path and puts all
    # three cells in one shard; the shard fails as a whole, is
    # requeued cell by cell, and only the poison cell is quarantined.
    config = SweepConfig(mode="sim", workers=1, measurement=FAST,
                         use_cache=False, cell_timeout_s=300.0)
    result = run_sweep(GOOD + (POISON,), config,
                       ResultCache(enabled=False))
    assert set(result.quarantined) == {POISON}
    assert set(result.results) == set(GOOD)
    assert result.requeued == len(GOOD) + 1


def test_watchdog_timeout_quarantines_instead_of_hanging():
    # A sub-microsecond budget expires before any worker can answer,
    # which is indistinguishable from a crashed/stuck worker.
    config = SweepConfig(mode="sim", workers=2, measurement=FAST,
                         use_cache=False, cell_timeout_s=1e-6)
    result = run_sweep(GOOD[:1], config, ResultCache(enabled=False))
    assert set(result.quarantined) == {GOOD[0]}
    assert "timed out" in result.quarantined[GOOD[0]]
    assert result.results == {}


def test_quarantined_cells_are_never_cached(tmp_path):
    config = SweepConfig(mode="sim", workers=1, measurement=FAST,
                         cache_dir=str(tmp_path))
    cache = ResultCache(tmp_path)
    run_sweep(GOOD + (POISON,), config, cache)
    assert cache.stats.writes == len(GOOD)
    # A later sweep hits the good cells and retries the poison one.
    again = run_sweep(GOOD + (POISON,), config, ResultCache(tmp_path))
    assert again.cache_hits == len(GOOD)
    assert set(again.quarantined) == {POISON}


def test_artifact_reports_quarantined_cells_separately():
    config = SweepConfig(mode="sim", workers=1, measurement=FAST,
                         use_cache=False)
    result = run_sweep(GOOD + (POISON,), config,
                       ResultCache(enabled=False))
    payload = build_artifact(result, "adhoc", config)
    assert [c["op"] for c in payload["cells"]] == \
        [cell.op for cell in GOOD]
    assert len(payload["quarantined"]) == 1
    assert payload["quarantined"][0]["op"] == "bogus-op"
    assert "reason" in payload["quarantined"][0]


def test_clean_artifacts_have_no_quarantine_section():
    # Byte-stability: a clean run's artifact must not grow a new key.
    config = SweepConfig(mode="sim", workers=1, measurement=FAST,
                         use_cache=False)
    result = run_sweep(GOOD, config, ResultCache(enabled=False))
    payload = build_artifact(result, "adhoc", config)
    assert "quarantined" not in payload
    assert "quarantined" not in dumps_artifact(payload)


def test_cell_timeout_validation():
    with pytest.raises(ValueError, match="cell_timeout_s"):
        SweepConfig(cell_timeout_s=0.0)
    with pytest.raises(ValueError, match="cell_timeout_s"):
        SweepConfig(cell_timeout_s=-1.0)
