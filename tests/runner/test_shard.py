"""Tests for sweep grids, presets, and deterministic sharding."""

import pytest

from repro.runner import (
    GRID_PRESETS,
    SweepCell,
    SweepGrid,
    preset_grid,
    shard_cells,
)


def test_cells_are_sorted_and_deduplicated():
    grid = SweepGrid(name="g", machines=("t3d", "sp2", "sp2"),
                     ops=("reduce", "broadcast"),
                     message_sizes=(1024, 4, 1024),
                     machine_sizes=(4, 2))
    cells = grid.cells()
    assert cells == tuple(sorted(set(cells)))
    assert len(cells) == 2 * 2 * 2 * 2


def test_cells_are_declaration_order_invariant():
    a = SweepGrid(name="g", machines=("sp2", "paragon"),
                  ops=("scatter", "gather"), message_sizes=(16, 64),
                  machine_sizes=(2, 8))
    b = SweepGrid(name="g", machines=("paragon", "sp2"),
                  ops=("gather", "scatter"), message_sizes=(64, 16),
                  machine_sizes=(8, 2))
    assert a.cells() == b.cells()


def test_t3d_allocation_cap_honoured():
    grid = SweepGrid(name="g", machines=("sp2", "t3d"),
                     ops=("broadcast",), message_sizes=(4,),
                     machine_sizes=(32, 64, 128))
    ps = {cell.p for cell in grid.cells() if cell.machine == "t3d"}
    assert ps == {32, 64}
    ps_sp2 = {cell.p for cell in grid.cells() if cell.machine == "sp2"}
    assert ps_sp2 == {32, 64, 128}


def test_barrier_panel_has_no_payload():
    grid = SweepGrid(name="g", machines=("sp2",), ops=("broadcast",),
                     message_sizes=(16, 1024), machine_sizes=(2,),
                     include_barrier=True)
    barrier = [c for c in grid.cells() if c.op == "barrier"]
    assert barrier == [SweepCell("sp2", "barrier", 0, 2)]


def test_presets_cover_the_paper_figures():
    assert set(GRID_PRESETS) >= {"fig1", "fig2", "fig3", "smoke",
                                 "full"}
    fig3 = preset_grid("fig3")
    sizes = {cell.nbytes for cell in fig3.cells()
             if cell.op != "barrier"}
    assert sizes == {16, 65536}
    assert any(cell.op == "barrier" for cell in fig3.cells())
    fig1 = preset_grid("fig1")
    assert {cell.nbytes for cell in fig1.cells()} == {4}


def test_unknown_preset_rejected():
    with pytest.raises(KeyError, match="known presets"):
        preset_grid("fig9")


def test_shard_cells_round_robin_partition():
    cells = preset_grid("smoke").cells()
    shards = shard_cells(cells, 3)
    merged = sorted(cell for shard in shards for cell in shard)
    assert merged == sorted(cells)
    assert shards[0] == cells[0::3]
    sizes = [len(shard) for shard in shards]
    assert max(sizes) - min(sizes) <= 1


def test_shard_cells_drops_empty_shards():
    cells = preset_grid("smoke").cells()[:2]
    shards = shard_cells(cells, 8)
    assert len(shards) == 2
    with pytest.raises(ValueError):
        shard_cells(cells, 0)


def test_cell_key_is_readable():
    assert SweepCell("sp2", "alltoall", 1024, 32).key() == \
        "sp2/alltoall/1024/32"
