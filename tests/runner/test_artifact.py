"""Tests for sweep artifacts and the baseline diff gate."""

import copy

import pytest

from repro.core import MeasurementConfig
from repro.runner import (
    ARTIFACT_SCHEMA,
    ResultCache,
    SweepConfig,
    build_artifact,
    diff_artifacts,
    dumps_artifact,
    load_artifact,
    preset_grid,
    run_sweep,
    write_artifact,
)

FAST = MeasurementConfig(iterations=1, warmup_iterations=0, runs=1)


def _artifact(mode="analytic"):
    config = SweepConfig(mode=mode, measurement=FAST, use_cache=False)
    result = run_sweep(preset_grid("smoke").cells(), config,
                       ResultCache(enabled=False))
    return build_artifact(result, "smoke", config)


def test_artifact_shape_and_roundtrip(tmp_path):
    artifact = _artifact()
    assert artifact["schema"] == ARTIFACT_SCHEMA
    assert artifact["grid"] == "smoke"
    assert artifact["mode"] == "analytic"
    assert artifact["config"] is None  # closed-form: no protocol knobs
    assert len(artifact["cells"]) == \
        len(preset_grid("smoke").cells())
    path = write_artifact(artifact, tmp_path / "BENCH_sweep.json")
    assert load_artifact(path) == artifact


def test_sim_mode_artifact_embeds_protocol():
    config = SweepConfig(mode="sim", measurement=FAST, use_cache=False)
    cells = preset_grid("smoke").cells()[:2]
    result = run_sweep(cells, config, ResultCache(enabled=False))
    artifact = build_artifact(result, "smoke", config)
    assert artifact["config"]["iterations"] == 1
    assert artifact["cells"][0]["result"]["run_times_us"]


def test_dumps_is_byte_stable():
    assert dumps_artifact(_artifact()) == dumps_artifact(_artifact())


def test_load_rejects_foreign_json(tmp_path):
    path = tmp_path / "not_sweep.json"
    path.write_text('{"schema": "something-else"}', "utf-8")
    with pytest.raises(ValueError, match="not a sweep artifact"):
        load_artifact(path)


def test_diff_identical_is_clean():
    artifact = _artifact()
    diff = diff_artifacts(artifact, copy.deepcopy(artifact))
    assert diff.clean()
    assert "identical" in diff.format()
    assert diff.compared == len(artifact["cells"])


def test_diff_reports_changed_cell_with_relative_error():
    baseline = _artifact()
    current = copy.deepcopy(baseline)
    current["cells"][0]["result"]["time_us"] *= 1.10
    diff = diff_artifacts(baseline, current)
    assert not diff.clean()
    assert len(diff.changed) == 1
    key, base, new, rel = diff.changed[0]
    assert rel == pytest.approx(0.10)
    assert "!" in diff.format()
    # A generous tolerance accepts the same drift.
    assert diff_artifacts(baseline, current, rtol=0.2).clean()


def test_diff_reports_added_and_removed_cells():
    baseline = _artifact()
    current = copy.deepcopy(baseline)
    dropped = current["cells"].pop(0)
    diff = diff_artifacts(baseline, current)
    assert len(diff.removed) == 1
    assert diff.removed[0][0] == dropped["machine"]
    assert "only in baseline" in diff.format()
    reverse = diff_artifacts(current, baseline)
    assert len(reverse.added) == 1


def test_diff_flags_metadata_changes():
    baseline = _artifact()
    current = copy.deepcopy(baseline)
    current["mode"] = "sim"
    diff = diff_artifacts(baseline, current)
    assert not diff.clean()
    assert any("mode" in item for item in diff.metadata)


def test_scrub_volatile_strips_wall_clock_fields():
    from repro.runner import VOLATILE_RESULT_FIELDS, scrub_volatile

    result = {"time_us": 42.0, "elapsed_s": 1.23, "host": "ci-runner",
              "timestamp": "2026-08-08T12:00:00", "run_times_us": [42.0]}
    scrubbed = scrub_volatile(result)
    assert scrubbed == {"time_us": 42.0, "run_times_us": [42.0]}
    assert "elapsed_s" in VOLATILE_RESULT_FIELDS


def test_build_artifact_scrubs_volatile_result_fields():
    """A cached result written by older tooling may carry wall-clock
    fields; they must never reach the byte-compared artifact."""
    config = SweepConfig(mode="analytic", measurement=FAST,
                         use_cache=False)
    result = run_sweep(preset_grid("smoke").cells(), config,
                       ResultCache(enabled=False))
    tainted_cell = result.cells[0]
    result.results[tainted_cell] = {
        **result.results[tainted_cell],
        "elapsed_s": 9.99, "hostname": "somewhere",
    }
    artifact = build_artifact(result, "smoke", config)
    for cell in artifact["cells"]:
        assert "elapsed_s" not in cell["result"]
        assert "hostname" not in cell["result"]


def test_two_sweep_runs_are_byte_identical():
    """The sweep artifact designates *no* volatile fields: two runs of
    the same grid must serialize byte for byte."""
    from repro.bench import document_diff_paths

    first, second = _artifact(), _artifact()
    assert document_diff_paths(first, second) == []
    assert dumps_artifact(first) == dumps_artifact(second)
