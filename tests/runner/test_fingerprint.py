"""Tests for content-addressed sweep fingerprints."""

import dataclasses

import pytest

from repro.core import MeasurementConfig, QUICK_CONFIG
from repro.machines import get_machine_spec
from repro.runner import (
    canonical_json,
    cell_fingerprint,
    spec_fingerprint,
    to_jsonable,
)

SP2 = get_machine_spec("sp2")
T3D = get_machine_spec("t3d")


def test_to_jsonable_reduces_machine_spec():
    payload = to_jsonable(T3D)
    assert payload["name"] == "t3d"
    assert payload["software"]["send_msg_us"] > 0
    # Enum fields collapse to their values ...
    assert payload["dma"]["kind"] == "blt"
    # ... and the algorithms mapping becomes a plain sorted dict.
    assert payload["algorithms"]["barrier"] == "hardware_barrier"


def test_to_jsonable_rejects_opaque_objects():
    with pytest.raises(TypeError):
        to_jsonable(object())


def test_canonical_json_is_key_order_invariant():
    a = canonical_json({"b": 1, "a": {"d": 2, "c": 3}})
    b = canonical_json({"a": {"c": 3, "d": 2}, "b": 1})
    assert a == b


def test_spec_fingerprint_is_hex_sha256():
    key = spec_fingerprint(SP2)
    assert len(key) == 64
    assert int(key, 16) >= 0
    assert key == spec_fingerprint(SP2)


def test_cell_fingerprint_distinguishes_every_axis():
    base = cell_fingerprint(SP2, "broadcast", 1024, 8, QUICK_CONFIG)
    variants = [
        cell_fingerprint(T3D, "broadcast", 1024, 8, QUICK_CONFIG),
        cell_fingerprint(SP2, "reduce", 1024, 8, QUICK_CONFIG),
        cell_fingerprint(SP2, "broadcast", 4096, 8, QUICK_CONFIG),
        cell_fingerprint(SP2, "broadcast", 1024, 16, QUICK_CONFIG),
        cell_fingerprint(SP2, "broadcast", 1024, 8, None),
        cell_fingerprint(SP2, "broadcast", 1024, 8, QUICK_CONFIG,
                         mode="analytic"),
        cell_fingerprint(SP2, "broadcast", 1024, 8,
                         MeasurementConfig(iterations=5)),
    ]
    assert len({base, *variants}) == len(variants) + 1


def test_cell_fingerprint_tracks_simulator_version(monkeypatch):
    import repro.runner.fingerprint as fp

    base = cell_fingerprint(SP2, "broadcast", 1024, 8, QUICK_CONFIG)
    monkeypatch.setattr(fp, "SIM_VERSION", "999-test")
    bumped = cell_fingerprint(SP2, "broadcast", 1024, 8, QUICK_CONFIG)
    assert base != bumped


def test_seed_changes_key_but_contention_flag_too():
    quiet = dataclasses.replace(QUICK_CONFIG, contention=False)
    reseeded = dataclasses.replace(QUICK_CONFIG, seed=7)
    base = cell_fingerprint(SP2, "alltoall", 64, 4, QUICK_CONFIG)
    assert cell_fingerprint(SP2, "alltoall", 64, 4, quiet) != base
    assert cell_fingerprint(SP2, "alltoall", 64, 4, reseeded) != base


def test_breakdown_flag_changes_key_only_when_set():
    base = cell_fingerprint(SP2, "broadcast", 1024, 8, QUICK_CONFIG)
    explicit = cell_fingerprint(SP2, "broadcast", 1024, 8,
                                QUICK_CONFIG, breakdown=False)
    marked = cell_fingerprint(SP2, "broadcast", 1024, 8, QUICK_CONFIG,
                              breakdown=True)
    # Default and explicit False hash identically, so every
    # pre-breakdown cache entry stays valid; True gets its own key.
    assert base == explicit
    assert marked != base
