"""Tests for the sweep engine: caching, modes, and invalidation."""

import dataclasses

import pytest

from repro.core import (
    MeasurementConfig,
    measure_collective,
    paper_expression,
    predict_time_us,
)
from repro.machines import get_machine_spec
from repro.runner import (
    ResultCache,
    SweepCell,
    SweepConfig,
    preset_grid,
    run_sweep,
)

FAST = MeasurementConfig(iterations=1, warmup_iterations=0, runs=1)


def test_warm_cache_skips_every_unchanged_cell(tmp_path):
    cells = preset_grid("smoke").cells()
    config = SweepConfig(mode="sim", measurement=FAST,
                         cache_dir=str(tmp_path))
    cold = run_sweep(cells, config, ResultCache(tmp_path))
    assert (cold.evaluated, cold.cache_hits) == (len(cells), 0)
    warm = run_sweep(cells, config, ResultCache(tmp_path))
    assert (warm.evaluated, warm.cache_hits) == (0, len(cells))
    assert warm.results == cold.results
    assert warm.fingerprints == cold.fingerprints


def test_protocol_change_invalidates_cache(tmp_path):
    cells = preset_grid("smoke").cells()[:3]
    run_sweep(cells, SweepConfig(mode="sim", measurement=FAST),
              ResultCache(tmp_path))
    longer = dataclasses.replace(FAST, iterations=2)
    again = run_sweep(cells,
                      SweepConfig(mode="sim", measurement=longer),
                      ResultCache(tmp_path))
    assert again.cache_hits == 0
    assert again.evaluated == len(cells)


def test_sim_result_matches_direct_measurement(tmp_path):
    cell = SweepCell("t3d", "broadcast", 1024, 4)
    result = run_sweep([cell], SweepConfig(mode="sim",
                                           measurement=FAST),
                       ResultCache(tmp_path))
    sample = measure_collective("t3d", "broadcast", 1024, 4, FAST)
    assert result.results[cell]["time_us"] == sample.time_us
    assert result.results[cell]["run_times_us"] == \
        list(sample.run_times_us)


def test_analytic_mode_matches_scalar_model():
    cells = preset_grid("smoke").cells()
    result = run_sweep(cells, SweepConfig(mode="analytic",
                                          use_cache=False),
                       ResultCache(enabled=False))
    for cell in cells:
        expected = predict_time_us(get_machine_spec(cell.machine),
                                   cell.op, cell.nbytes, cell.p)
        assert result.results[cell] == {"time_us": expected}


def test_model_mode_matches_paper_expressions():
    cells = preset_grid("smoke").cells()
    result = run_sweep(cells, SweepConfig(mode="model",
                                          use_cache=False),
                       ResultCache(enabled=False))
    for cell in cells:
        expected = paper_expression(cell.machine, cell.op) \
            .evaluate(cell.nbytes, cell.p)
        assert result.results[cell]["time_us"] == \
            pytest.approx(expected, rel=1e-12)


def test_input_order_and_duplicates_do_not_matter():
    cells = list(preset_grid("smoke").cells()[:4])
    config = SweepConfig(mode="analytic", use_cache=False)
    forward = run_sweep(cells, config, ResultCache(enabled=False))
    backward = run_sweep(list(reversed(cells)) + cells, config,
                         ResultCache(enabled=False))
    assert forward.cells == backward.cells
    assert forward.results == backward.results


def test_sweep_config_validation():
    with pytest.raises(ValueError, match="unknown sweep mode"):
        SweepConfig(mode="guess")
    with pytest.raises(ValueError, match="workers"):
        SweepConfig(workers=0)


def test_summary_mentions_cache_and_cell_counts(tmp_path):
    cells = preset_grid("smoke").cells()[:2]
    result = run_sweep(cells, SweepConfig(mode="analytic",
                                          cache_dir=str(tmp_path)),
                       ResultCache(tmp_path))
    assert "2 cells" in result.summary()
    assert "cache hits" in result.summary()
