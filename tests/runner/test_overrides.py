"""Per-cell algorithm overrides: fingerprints, validation, artifacts."""

import dataclasses

import pytest

from repro.core import QUICK_CONFIG, measure_collective
from repro.machines import get_machine_spec
from repro.runner import (
    ResultCache,
    SweepCell,
    SweepConfig,
    build_artifact,
    cell_fingerprint,
    run_sweep,
    validate_cell_algorithms,
)

SP2 = get_machine_spec("sp2")
FAST = dataclasses.replace(QUICK_CONFIG, iterations=1,
                           warmup_iterations=0, runs=1)


def test_override_matching_default_shares_the_cache_key():
    # A tune cell racing the incumbent hashes identically to the plain
    # sweep cell, so tunes and sweeps share cache entries.
    plain = cell_fingerprint(SP2, "broadcast", 1024, 8, QUICK_CONFIG)
    incumbent = cell_fingerprint(SP2, "broadcast", 1024, 8,
                                 QUICK_CONFIG,
                                 algorithm="binomial_broadcast")
    challenger = cell_fingerprint(SP2, "broadcast", 1024, 8,
                                  QUICK_CONFIG,
                                  algorithm="scatter_allgather_broadcast")
    assert incumbent == plain
    assert challenger != plain


def test_cell_key_mentions_algorithm_only_when_set():
    plain = SweepCell("sp2", "broadcast", 1024, 8)
    overridden = SweepCell("sp2", "broadcast", 1024, 8,
                           algorithm="scatter_allgather_broadcast")
    assert "scatter_allgather_broadcast" not in plain.key()
    assert overridden.key().endswith("/scatter_allgather_broadcast")


def test_override_simulates_the_requested_algorithm():
    cell = SweepCell("sp2", "broadcast", 65536, 8,
                     algorithm="scatter_allgather_broadcast")
    result = run_sweep([cell], SweepConfig(mode="sim", measurement=FAST,
                                           use_cache=False),
                       ResultCache(enabled=False))
    spec = dataclasses.replace(
        SP2, algorithms={**dict(SP2.algorithms),
                         "broadcast": "scatter_allgather_broadcast"})
    sample = measure_collective(spec, "broadcast", 65536, 8, FAST)
    assert result.results[cell]["time_us"] == sample.time_us
    default = measure_collective("sp2", "broadcast", 65536, 8, FAST)
    assert sample.time_us != default.time_us


def test_unknown_algorithm_rejected_up_front():
    cells = [SweepCell("sp2", "broadcast", 1024, 8,
                       algorithm="warp_drive_broadcast")]
    with pytest.raises(ValueError) as err:
        validate_cell_algorithms(cells, mode="sim")
    message = str(err.value)
    assert "warp_drive_broadcast" in message
    assert "known algorithms" in message
    # The known-name list is sorted, so the error is deterministic.
    names = message.split("known algorithms: ")[1].split(", ")
    assert names == sorted(names)


def test_overrides_require_simulation_mode():
    cells = [SweepCell("sp2", "broadcast", 1024, 8,
                       algorithm="scatter_allgather_broadcast")]
    with pytest.raises(ValueError, match="sim"):
        validate_cell_algorithms(cells, mode="analytic")
    with pytest.raises(ValueError, match="breakdown"):
        validate_cell_algorithms(cells, mode="sim", breakdown=True)
    validate_cell_algorithms(cells, mode="sim")  # fine


def test_run_sweep_validates_before_evaluating():
    cells = [SweepCell("sp2", "broadcast", 1024, 8,
                       algorithm="warp_drive_broadcast")]
    with pytest.raises(ValueError, match="warp_drive_broadcast"):
        run_sweep(cells, SweepConfig(mode="sim", measurement=FAST,
                                     use_cache=False),
                  ResultCache(enabled=False))


def test_artifact_cells_carry_algorithm_only_when_overridden():
    config = SweepConfig(mode="sim", measurement=FAST, use_cache=False)
    plain_cell = SweepCell("sp2", "broadcast", 1024, 4)
    tuned_cell = SweepCell("sp2", "broadcast", 1024, 4,
                           algorithm="scatter_allgather_broadcast")
    result = run_sweep([plain_cell, tuned_cell], config,
                       ResultCache(enabled=False))
    artifact = build_artifact(result, "overrides-test", config)
    rows = {row.get("algorithm", ""): row for row in artifact["cells"]}
    # The plain row has no "algorithm" key at all — pre-override
    # artifacts stay byte-identical.
    assert set(rows) == {"", "scatter_allgather_broadcast"}
    assert "algorithm" not in rows[""]
