"""Tests for the on-disk content-addressed result cache."""

import json

import pytest

from repro.runner import CacheStats, ResultCache, default_cache_dir

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


def test_put_get_roundtrip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    assert cache.get(KEY) is None
    cache.put(KEY, {"result": {"time_us": 1.25}})
    assert cache.get(KEY) == {"result": {"time_us": 1.25}}
    assert cache.stats == CacheStats(hits=1, misses=1, writes=1)


def test_entries_fan_out_by_key_prefix(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY, {"result": {}})
    path = cache.path_for(KEY)
    assert path.exists()
    assert path.parent.name == KEY[:2]
    assert path.name == f"{KEY}.json"


def test_corrupt_entry_degrades_to_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY, {"result": {}})
    cache.path_for(KEY).write_text("{truncated", "utf-8")
    with pytest.warns(UserWarning, match="unparseable JSON"):
        assert cache.get(KEY) is None
    assert cache.stats.misses == 1
    assert cache.stats.corrupt == 1


def test_checksum_mismatch_degrades_to_miss_with_warning(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY, {"result": {"time_us": 1.0}})
    path = cache.path_for(KEY)
    envelope = json.loads(path.read_text("utf-8"))
    envelope["payload"]["result"]["time_us"] = 99.0  # bit rot
    path.write_text(json.dumps(envelope), "utf-8")
    with pytest.warns(UserWarning, match="checksum mismatch"):
        assert cache.get(KEY) is None
    assert cache.stats.corrupt == 1
    # Recomputing and re-putting repairs the entry.
    cache.put(KEY, {"result": {"time_us": 1.0}})
    assert cache.get(KEY) == {"result": {"time_us": 1.0}}


def test_malformed_envelope_degrades_to_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY, {"result": {}})
    cache.path_for(KEY).write_text(json.dumps([1, 2, 3]), "utf-8")
    with pytest.warns(UserWarning, match="malformed envelope"):
        assert cache.get(KEY) is None
    # Legacy entries without the checksum envelope are also rejected
    # (and recomputed) rather than trusted.
    cache.path_for(KEY).write_text(json.dumps({"result": {}}), "utf-8")
    with pytest.warns(UserWarning, match="malformed envelope"):
        assert cache.get(KEY) is None
    assert cache.stats.corrupt == 2


def test_writes_are_atomic_and_leave_no_temp_files(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY, {"result": {"time_us": 2.5}})
    directory = cache.path_for(KEY).parent
    assert [p.name for p in directory.iterdir()] == [f"{KEY}.json"]
    envelope = json.loads(cache.path_for(KEY).read_text("utf-8"))
    assert set(envelope) == {"schema", "checksum", "payload"}


def test_disabled_cache_never_touches_disk(tmp_path):
    cache = ResultCache(tmp_path / "never", enabled=False)
    cache.put(KEY, {"result": {}})
    assert cache.get(KEY) is None
    assert not (tmp_path / "never").exists()
    assert cache.stats == CacheStats()


def test_clear_and_len(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY, {"result": {}})
    cache.put(OTHER, {"result": {}})
    assert len(cache) == 2
    assert cache.clear() == 2
    assert len(cache) == 0
    assert cache.get(KEY) is None


def test_default_cache_dir_honours_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "override"))
    assert default_cache_dir() == tmp_path / "override"
    monkeypatch.delenv("REPRO_SWEEP_CACHE")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == tmp_path / "xdg" / "repro" / "sweep"


def test_stats_format():
    stats = CacheStats(hits=3, misses=1, writes=1)
    assert stats.format() == "3 hits, 1 misses, 1 writes"


def test_stats_format_mentions_corruption_only_when_present():
    stats = CacheStats(hits=3, misses=2, writes=1, corrupt=2)
    assert stats.format() == "3 hits, 2 misses, 1 writes, 2 corrupt"
