"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file
exists so that ``python setup.py develop`` works in offline environments
that lack the ``wheel`` package required by PEP 660 editable installs.
"""

from setuptools import setup

setup()
