"""Build a hypothetical machine and evaluate it against the real three.

The machine specs are declarative, so "what if" studies are one
dataclass away.  Here we build the machine the paper implicitly wishes
for in its conclusions: T3D-class messaging hardware (low software
overhead, hardwired barrier) combined with Paragon-class algorithm
offloading — then see how much of each real machine's deficit it
erases.

Usage::

    python examples/custom_machine.py
"""

from dataclasses import replace

from repro import MeasurementConfig, measure_collective, \
    register_machine_spec
from repro.core.report import format_table, format_us
from repro.machines import T3D
from repro.node import DmaParameters, TransferMode

CONFIG = MeasurementConfig(iterations=2, warmup_iterations=1, runs=1)

#: A T3D upgraded with a Paragon-style message coprocessor on top of
#: its barrier wire and fast network: every one-way collective is
#: offloaded, and scan combines on the coprocessor.
DREAM = replace(
    T3D,
    name="dream",
    full_name="hypothetical T3D + message coprocessor",
    site="(thought experiment)",
    dma=DmaParameters(kind=TransferMode.COPROC, setup_us=1.0,
                      us_per_byte=0.0035, min_message_bytes=0),
    dma_collectives=("broadcast", "scatter", "gather", "reduce",
                     "scan"),
    software=replace(T3D.software, offload_round_us=8.0,
                     offload_us_per_byte=0.02),
    algorithms={**dict(T3D.algorithms), "scan": "offloaded_scan"},
)


def main() -> None:
    register_machine_spec(DREAM, overwrite=True)
    ops = ("barrier", "broadcast", "scatter", "gather", "reduce",
           "scan", "alltoall")
    rows = []
    for op in ops:
        nbytes = 0 if op == "barrier" else 16384
        line = [op]
        for machine in ("sp2", "t3d", "paragon", "dream"):
            sample = measure_collective(machine, op, nbytes, 32, CONFIG)
            line.append(format_us(sample.time_us))
        rows.append(line)
    print(format_table(
        ["collective", "sp2", "t3d", "paragon", "dream"],
        rows,
        title="16-KB collectives on 32 nodes, plus a hypothetical "
              "machine"))
    print()
    print("The hypothetical machine shows what each feature buys: the "
          "coprocessor removes the host copy from one-way collectives "
          "(beating the stock T3D) while the barrier wire and torus "
          "are inherited unchanged.")


if __name__ == "__main__":
    main()
