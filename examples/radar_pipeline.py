"""Full STAP radar pipeline across machines and partition sizes.

Uses the :mod:`repro.apps` kernels — the STAP chain the paper's
benchmark data came from — to answer the question its abstract poses:
how should a developer trade divided computation against collective
communication on each machine?

Usage::

    python examples/radar_pipeline.py
"""

from repro.apps import RadarCube, simulate_stap
from repro.core.report import format_table, format_us

CUBE = RadarCube(channels=16, pulses=128, ranges=512)
MACHINE_SIZES = (4, 8, 16, 32, 64)


def main() -> None:
    rows = []
    for machine in ("sp2", "t3d", "paragon"):
        results = {p: simulate_stap(machine, p, CUBE)
                   for p in MACHINE_SIZES}
        best = min(results, key=lambda p: results[p].total_us)
        rows.append(
            [machine]
            + [f"{format_us(results[p].total_us)} "
               f"({results[p].communication_fraction:.0%} comm)"
               for p in MACHINE_SIZES]
            + [str(best)])
    print(format_table(
        ["machine"] + [f"p={p}" for p in MACHINE_SIZES] + ["best p"],
        rows,
        title=f"STAP interval: {CUBE.channels} ch x {CUBE.pulses} "
              f"pulses x {CUBE.ranges} ranges"))
    print()
    detail = simulate_stap("t3d", 16, CUBE)
    print(detail.format())
    print()
    print("The corner turn (total exchange) is the scaling limiter: "
          "its share grows with p while the FFT/beamform phases "
          "shrink — the divided-computation vs collective-"
          "communication trade-off the paper's closed forms were "
          "derived to navigate.")


if __name__ == "__main__":
    main()
