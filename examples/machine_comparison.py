"""Machine comparison: which multicomputer wins which regime?

Reproduces the paper's central decision table in miniature: for every
collective, who is fastest with short messages and who with long ones,
at a chosen machine size.  This is the "trade-off studies" use case the
paper offers its results for.

Usage::

    python examples/machine_comparison.py [nodes]
"""

import sys

from repro import MeasurementConfig, measure_collective
from repro.core.report import format_table, format_us

CONFIG = MeasurementConfig(iterations=2, warmup_iterations=1, runs=1)

SHORT_BYTES = 16
LONG_BYTES = 65536
OPS = ("barrier", "broadcast", "scatter", "gather", "reduce", "scan",
       "alltoall")
MACHINES = ("sp2", "t3d", "paragon")


def compare(num_nodes: int) -> None:
    rows = []
    for op in OPS:
        line = [op]
        for nbytes, label in ((SHORT_BYTES, "short"),
                              (LONG_BYTES, "long")):
            if op == "barrier" and nbytes == LONG_BYTES:
                line.extend(["-", "-"])
                continue
            probe = 0 if op == "barrier" else nbytes
            times = {m: measure_collective(m, op, probe, num_nodes,
                                           CONFIG).time_us
                     for m in MACHINES}
            best = min(times, key=times.get)
            line.append(best)
            line.append(format_us(times[best]))
        rows.append(line)
    print(format_table(
        ["collective", f"winner @{SHORT_BYTES}B", "time",
         f"winner @{LONG_BYTES}B", "time"],
        rows,
        title=f"Fastest machine per collective, p={num_nodes}"))


def main() -> int:
    num_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    compare(num_nodes)
    print()
    print("Reading guide: the T3D leads almost everywhere (fast "
          "messaging, barrier wire, BLT);")
    print("the Paragon takes scan (coprocessor combining) and long "
          "gather (coprocessor-drained root);")
    print("the SP2 takes long reduce (fast POWER2 arithmetic) despite "
          "its 40 MB/s network.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
