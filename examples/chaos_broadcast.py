"""Chaos demo: a 64-node T3D broadcast surviving a link outage.

The 0->1 torus link dies at t=23 ms — while the root's 1 MB payloads
that cross it are on the wire.  The outage watchdog aborts the
in-flight transfers, the transport waits out its retransmission
timeout, and the retransmissions route around the dead link; the
broadcast completes with the recovery cost on the clock.  The second
half prints clean-vs-lossy T0(p) startup-latency curves, where the
per-probe retransmission penalty grows with machine size.

Usage::

    python examples/chaos_broadcast.py
"""

from repro.bench import chaos_report, degradation_curves
from repro.faults import FaultPlan, LinkOutage, fault_preset

MB = 1 << 20

outage = FaultPlan(
    name="mid-broadcast-outage",
    link_outages=(LinkOutage(src=0, dst=1, start_us=23000.0),))

print(chaos_report("t3d", "broadcast", outage,
                   nbytes=MB, num_nodes=64))

print()
print(degradation_curves("t3d", "broadcast",
                         fault_preset("lossy")).format())
