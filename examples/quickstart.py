"""Quickstart: simulate MPI collectives on three 1990s multicomputers.

Runs a broadcast on each machine, measures a total exchange the way the
paper does, and prints the published closed-form prediction next to the
simulated measurement.

Usage::

    python examples/quickstart.py
"""

from repro import (
    MpiWorld,
    QUICK_CONFIG,
    measure_collective,
    paper_expression,
)


def one_shot_broadcasts() -> None:
    """Run a single 1-KB broadcast on 16 nodes of each machine."""
    print("One 1-KB broadcast over 16 nodes (single shot):")
    for machine in ("sp2", "t3d", "paragon"):
        world = MpiWorld(machine, num_nodes=16, seed=42)
        elapsed_us = world.run_collective("broadcast", nbytes=1024)
        print(f"  {machine:8s} {elapsed_us:8.1f} us")
    print()


def measured_total_exchange() -> None:
    """Measure T(m, p) with the paper's procedure and compare."""
    print("Total exchange, 4-KB messages, 32 nodes "
          "(paper methodology, quick config):")
    for machine in ("sp2", "t3d", "paragon"):
        sample = measure_collective(machine, "alltoall", 4096, 32,
                                    QUICK_CONFIG)
        predicted = paper_expression(machine, "alltoall").evaluate(
            4096, 32)
        print(f"  {machine:8s} simulated {sample.time_us / 1000:7.2f} ms"
              f"   paper formula {predicted / 1000:7.2f} ms"
              f"   ratio {sample.time_us / predicted:5.2f}x")
    print()


def custom_program() -> None:
    """Write an SPMD program directly against the rank API."""
    world = MpiWorld("t3d", num_nodes=8, seed=1)

    def program(ctx):
        # Rank 0 scatters work, everyone "computes", results are
        # reduced back — a miniature SPMD step.
        yield from ctx.scatter(2048, root=0)
        yield from ctx.delay(50.0)  # pretend to compute for 50 us
        yield from ctx.reduce(2048, root=0)
        return ctx.wtime()

    world.run(program)
    print(f"Scatter + compute + reduce on 8 T3D nodes finished at "
          f"t = {world.now:.1f} us (simulated).")


if __name__ == "__main__":
    one_shot_broadcasts()
    measured_total_exchange()
    custom_program()
