"""Build a faulty-broadcast replay dashboard end to end.

Captures a 4-KB broadcast over 16 simulated T3D nodes with a mid-run
link outage, serializes the capture as a replay document, indexes it
(plus any artifacts checked in at the repo root) into the canonical
run ledger, and renders the self-contained dashboard page.  Open
``site/index.html`` in any browser — the page works from ``file://``
— and press Play: the broadcast spreads hop by hop over the torus,
the detour around the dead link rings its node in the fault palette,
and the critical-path toggle highlights the causal chain.

Usage::

    python examples/dashboard_replay.py
"""

from pathlib import Path

from repro.dash import write_dashboard
from repro.faults import fault_preset
from repro.obs.capture import capture_collective, write_replay_frames
from repro.obs.ledger import build_ledger, discover_artifacts, \
    write_ledger

OUT = Path("site")
OUT.mkdir(exist_ok=True)

# 1. Capture one traced collective under fault injection.
cap = capture_collective("t3d", "broadcast", nbytes=4096, num_nodes=16,
                         seed=7, faults=fault_preset("single-link-outage"))
print(cap.summary())

# 2. Serialize it as a deterministic replay document.
replay = cap.to_replay_frames()
print(f"\nwrote {write_replay_frames(replay, OUT / 'replay.json')}")
recovery = [f for f in replay["frames"]
            if f["category"] in ("retransmit", "backoff", "reroute")]
print(f"replay: {len(replay['frames'])} frames, "
      f"{len(recovery)} recovery span(s), "
      f"critical path {replay['critical_path']['total_us']:.1f} us")

# 3. Index it — together with any checked-in artifacts — into the
#    canonical run ledger, and render the dashboard from the bundle.
entries = discover_artifacts(["."], exclude=[OUT])
entries.append(("replay.json", "replay", replay))
ledger = build_ledger(entries)
print(f"\nledger: {len(ledger['entries'])} artifact(s), "
      f"bundle digest {ledger['bundle_digest'][:16]}")
print(f"wrote {write_ledger(ledger, OUT / 'BENCH_ledger.json')}")
print(f"wrote {write_dashboard(ledger, OUT)} (open in any browser)")
