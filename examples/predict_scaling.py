"""Early performance prediction from fitted closed forms.

The paper's Section 8 derives Table 3 so that developers can "compute
the actual execution time of the collective operation" without access
to the machine.  This example replays that workflow end to end on the
simulator:

1. measure a *small* grid (up to 16 nodes, short and medium messages);
2. curve-fit the Table-3-form expression from it;
3. use the expression to *predict* a configuration far outside the
   fitted grid (64 nodes, 64 KB);
4. validate the prediction against a direct simulation of that point.

Usage::

    python examples/predict_scaling.py
"""

from repro import MeasurementConfig, fit_timing_expression, \
    measure_collective
from repro.core.report import format_table, format_us

CONFIG = MeasurementConfig(iterations=2, warmup_iterations=1, runs=1)

FIT_SIZES = (2, 4, 8, 16)
FIT_BYTES = (4, 256, 1024, 4096)
TARGET_P = 64
TARGET_BYTES = 65536


def predict_and_validate(machine: str, op: str):
    samples = {
        p: {m: measure_collective(machine, op, m, p, CONFIG).time_us
            for m in FIT_BYTES}
        for p in FIT_SIZES
    }
    expression = fit_timing_expression(machine, op, samples)
    predicted = expression.evaluate(TARGET_BYTES, TARGET_P)
    actual = measure_collective(machine, op, TARGET_BYTES, TARGET_P,
                                CONFIG).time_us
    return expression, predicted, actual


def main() -> None:
    rows = []
    for op in ("broadcast", "alltoall", "scatter"):
        for machine in ("sp2", "t3d", "paragon"):
            expression, predicted, actual = predict_and_validate(
                machine, op)
            rows.append([
                op, machine, expression.format(),
                format_us(predicted), format_us(actual),
                f"{predicted / actual:.2f}x",
            ])
    print(format_table(
        ["op", "machine", "fitted from p<=16, m<=4K",
         f"predicted ({TARGET_P}, 64KB)", "simulated", "pred/actual"],
        rows,
        title="Extrapolating Table-3-form fits beyond the measured "
              "grid"))
    print()
    print("Extrapolation quality depends on the regime change: "
          "expressions fitted on short messages track the startup "
          "term well but can misjudge the long-message per-byte "
          "slope (e.g. DMA engines that only engage above a size "
          "threshold).")


if __name__ == "__main__":
    main()
