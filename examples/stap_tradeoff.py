"""STAP-style trade-off: divided computation vs collective communication.

The paper's data came from STAP (space-time adaptive processing) radar
benchmarks, and its stated purpose is to let developers "optimize
parallel applications by trade-offs between divided computation and
collective communication".  This example performs exactly that study
on the simulator.

Model problem: a radar data cube must be processed in two phases with a
corner turn (data transposition = total exchange) between them.

* With ``p`` nodes, per-node compute per phase is ``W / p``
  microseconds.
* The corner turn exchanges the cube: each node sends every other node
  ``CUBE_BYTES / p**2`` bytes (the classic transpose decomposition).

More nodes cut compute but shrink messages toward the latency-dominated
regime while adding O(p) startup stages — so each machine has a sweet
spot, and the sweet spot differs between machines exactly the way the
paper's latency/bandwidth trade-offs predict.

Usage::

    python examples/stap_tradeoff.py
"""

from repro import MeasurementConfig, MpiWorld
from repro.core.report import format_table, format_us

#: Total work per phase across all nodes, in CPU-microseconds.
TOTAL_WORK_US = 100_000.0
#: Radar data cube size in bytes (4 MB).
CUBE_BYTES = 4 * 2 ** 20

CONFIG = MeasurementConfig(iterations=1, warmup_iterations=1, runs=1)


def stap_step_time(machine: str, num_nodes: int) -> float:
    """Simulated wall time of compute -> corner turn -> compute."""
    world = MpiWorld(machine, num_nodes, seed=7)
    compute_us = TOTAL_WORK_US / num_nodes
    message_bytes = max(CUBE_BYTES // (num_nodes * num_nodes), 4)

    def program(ctx):
        yield from ctx.barrier()
        yield from ctx.delay(compute_us)        # phase 1 (e.g. Doppler)
        yield from ctx.alltoall(message_bytes)  # corner turn
        yield from ctx.delay(compute_us)        # phase 2 (beamforming)
        return ctx.env.now

    finish_times = world.run(program)
    return max(finish_times)


def main() -> None:
    machine_sizes = (4, 8, 16, 32, 64, 128)
    rows = []
    best = {}
    for machine in ("sp2", "t3d", "paragon"):
        times = {p: stap_step_time(machine, p) for p in machine_sizes}
        best[machine] = min(times, key=times.get)
        rows.append([machine] +
                    [format_us(times[p]) for p in machine_sizes] +
                    [str(best[machine])])
    print(format_table(
        ["machine"] + [f"p={p}" for p in machine_sizes] + ["best p"],
        rows,
        title="STAP step time: compute + corner turn + compute "
              f"(cube {CUBE_BYTES >> 20} MB, work "
              f"{TOTAL_WORK_US / 1e3:.0f} ms-cpu/phase)"))
    print()
    print("The corner turn's cost grows with p (O(p) startup stages, "
          "shrinking messages), while compute shrinks as 1/p; each "
          "machine's optimum balances the two. Machines with cheaper "
          "collective startup scale further before communication "
          "dominates.")


if __name__ == "__main__":
    main()
