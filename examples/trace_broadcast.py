"""Capture a span trace of one broadcast and summarise it.

Runs a 4-KB binomial broadcast over 16 simulated SP2 nodes with
tracing on, prints the phase timeline (ceil(log2 16) = 4 rounds), and
writes a Chrome-trace JSON you can open at https://ui.perfetto.dev.

Usage::

    python examples/trace_broadcast.py
"""

from repro.obs import write_chrome_trace
from repro.obs.capture import capture_collective

cap = capture_collective("sp2", "broadcast", nbytes=4096, num_nodes=16)
print(cap.summary())

print("\nphases (one per binomial round):")
for phase in cap.tracer.spans("phase"):
    messages = [m for m in cap.tracer.spans("message")
                if m.parent == phase.id]
    print(f"  {phase.name:10s} {phase.start:8.1f} -> {phase.end:8.1f} us"
          f"   {len(messages)} message(s)")

path = write_chrome_trace(cap.tracer, "trace_broadcast.json")
print(f"\nwrote {path} (open in ui.perfetto.dev)")
