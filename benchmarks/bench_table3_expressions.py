"""Table 3: curve-fitted timing expressions for 7 ops x 3 machines.

Runs the full (m, p) measurement grid, applies the paper's two-stage
curve fit, and prints our expressions next to the published ones.
Asserts that every operation lands in the paper's scaling class
(O(log p) vs O(p) startup) and that the fitted magnitudes are within a
small factor of the published coefficients at a reference size.
"""

from repro.bench import format_table3, table3


def test_table3_curve_fits(benchmark, single_shot, capsys):
    rows = single_shot(benchmark, table3)
    with capsys.disabled():
        print()
        print(format_table3(rows))

    for (machine, op), row in rows.items():
        # Startup scaling class matches Section 8's split.
        assert row.scaling_matches(), \
            (machine, op, row.fitted.startup.form,
             row.published.startup.form)

        # Startup magnitude within 2.5x of the published fit at p=32.
        assert 1 / 2.5 < row.startup_ratio(32) < 2.5, \
            (machine, op, row.startup_ratio(32))

        # Per-byte magnitude within 3x at p=32 (the published fits have
        # known artifacts, e.g. negative constants).
        if op != "barrier":
            assert 1 / 3.0 < row.per_byte_ratio(32) < 3.0, \
                (machine, op, row.per_byte_ratio(32))
