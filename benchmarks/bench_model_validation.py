"""Model validation: analytic predictor vs full simulation.

The paper's broader programme (its refs [31, 32]) is *predicting* MPP
performance from a few machine parameters.  This bench sweeps the
analytic model against simulated measurements over ops, sizes, and
machines and reports the error distribution; it asserts the predictor
stays within 50% everywhere on the sweep and within 15% at the median.
"""

import statistics

from repro.core import MeasurementConfig, measure_collective
from repro.core.analytic import predict_time_us
from repro.core.report import format_table
from repro.machines import get_machine_spec

CONFIG = MeasurementConfig(iterations=2, warmup_iterations=1, runs=1)

POINTS = [
    (op, nbytes, p)
    for op in ("barrier", "broadcast", "scatter", "gather", "reduce",
               "scan", "alltoall")
    for nbytes in ((0,) if op == "barrier" else (4, 4096, 65536))
    for p in (8, 32)
]


def run_validation():
    rows = []
    for machine in ("sp2", "t3d", "paragon"):
        spec = get_machine_spec(machine)
        for op, nbytes, p in POINTS:
            predicted = predict_time_us(spec, op, nbytes, p)
            simulated = measure_collective(machine, op, nbytes, p,
                                           CONFIG).time_us
            rows.append((machine, op, nbytes, p, predicted, simulated))
    return rows


def test_model_validation(benchmark, single_shot, capsys):
    rows = single_shot(benchmark, run_validation)
    ratios = [predicted / simulated
              for *_, predicted, simulated in rows]
    with capsys.disabled():
        print()
        worst = sorted(rows, key=lambda r: abs(r[4] / r[5] - 1.0))[-8:]
        print(format_table(
            ["machine", "op", "m", "p", "predicted [us]",
             "simulated [us]", "ratio"],
            [[m, op, nb, p, f"{pr:.0f}", f"{si:.0f}",
              f"{pr / si:.2f}x"] for m, op, nb, p, pr, si in worst],
            title="Analytic model: 8 worst points of the sweep"))
        print(f"sweep size: {len(rows)}; ratio median "
              f"{statistics.median(ratios):.3f}, "
              f"min {min(ratios):.3f}, max {max(ratios):.3f}")

    assert all(0.5 < r < 1.5 for r in ratios), \
        (min(ratios), max(ratios))
    assert 0.85 < statistics.median(ratios) < 1.15
