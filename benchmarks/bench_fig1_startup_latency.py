"""Figure 1: startup latencies T0(p) of six collectives on 3 machines.

Paper claims reproduced here (Section 4):
* the T3D has the lowest startup latency in all collectives except
  scan (where the Paragon wins at 16+ nodes);
* the Paragon has the longest latency in total exchange, scatter,
  gather;
* startup grows ~linearly with p for gather/scatter/total exchange and
  ~logarithmically for broadcast/scan/reduce.
"""

from repro.bench import FIGURE_OPS, figure1, monotonically_increasing, \
    winner
from repro.core import classify_scaling


def test_figure1_startup_latencies(benchmark, single_shot, capsys):
    data = single_shot(benchmark, figure1)
    with capsys.disabled():
        print()
        print(data.format())

    # Sizes >= 16 present on every machine (the T3D stops at 64, and
    # fast mode trims the grid).
    shared = sorted(set(data.get("broadcast", "t3d")) &
                    set(data.get("broadcast", "sp2")))
    probe_sizes = [p for p in shared if p >= 16]

    # T3D has the lowest startup latency everywhere but scan at p>=16
    # (Paragon wins scan) and total exchange (where Table 3's own fits
    # put SP2 at 24p+90 vs the T3D's 26p+8.6 — a near-tie; we require
    # them within 15% of each other).
    for op in FIGURE_OPS:
        for p in probe_sizes:
            at_p = {m: data.get(op, m)[p]
                    for m in ("sp2", "t3d", "paragon")}
            if op == "scan":
                # p=16 is exactly the paper's stated crossover ("on 16
                # nodes or more"), so allow a small tolerance there.
                if p == 16:
                    assert at_p["paragon"] <= 1.05 * min(at_p.values()), \
                        (op, p, at_p)
                else:
                    assert winner(at_p) == "paragon", (op, p, at_p)
            elif op == "alltoall":
                assert winner(at_p) in ("t3d", "sp2"), (op, p, at_p)
                assert abs(at_p["t3d"] - at_p["sp2"]) <= \
                    0.25 * at_p["sp2"], (op, p, at_p)
            else:
                assert winner(at_p) == "t3d", (op, p, at_p)

    # Paragon is the slowest starter for the O(p) many-to-* operations.
    for op in ("alltoall", "scatter", "gather"):
        for p in probe_sizes:
            at_p = {m: data.get(op, m)[p]
                    for m in ("sp2", "t3d", "paragon")}
            assert max(at_p, key=at_p.get) == "paragon", (op, p, at_p)

    # Latency is monotone in machine size, and the scaling class
    # matches Section 8's O(log p) / O(p) split.
    for op in FIGURE_OPS:
        for machine in ("sp2", "t3d", "paragon"):
            series = data.get(op, machine)
            assert monotonically_increasing(series, tolerance=0.1), \
                (op, machine, series)
            sizes = sorted(series)
            expected = "linear" if op in ("alltoall", "scatter",
                                          "gather") else "log2"
            assert classify_scaling(
                sizes, [series[p] for p in sizes]) == expected, \
                (op, machine)
