"""Figure 3: T(m, p) vs machine size for 16-byte and 64-KB messages.

Paper claims reproduced here (Section 6):
* short-message curves rank like the startup-latency curves (Fig. 1);
* long-message time grows near-linearly with machine size for the O(p)
  operations;
* broadcast: Paragon ~ T3D for long messages, Paragon ~ SP2 for short;
* the most dramatic ranking flip is in reduce (Fig. 3f): SP2 best for
  long messages, T3D best for short;
* total messaging time is more sensitive to message length than to
  machine size.
"""

from repro.bench import figure3, monotonically_increasing, winner


def test_figure3_machine_size(benchmark, single_shot, capsys):
    data = single_shot(benchmark, figure3)
    with capsys.disabled():
        print()
        print(data.format())

    shared = sorted(set(data.get("broadcast", "t3d", "short")) &
                    set(data.get("broadcast", "sp2", "short")))
    big_p = shared[-1]
    assert big_p >= 32

    # Every curve is monotone in machine size (within jitter).
    for key, series in data.series.items():
        assert monotonically_increasing(series, tolerance=0.15), \
            (key, series)

    # Reduce, long messages: SP2 wins (Fig. 3f's dramatic flip).
    reduce_long = {m: data.get("reduce", m, "long")[big_p]
                   for m in ("sp2", "t3d", "paragon")}
    assert winner(reduce_long) == "sp2", reduce_long
    # Reduce, short messages: T3D wins.
    reduce_short = {m: data.get("reduce", m, "short")[big_p]
                    for m in ("sp2", "t3d", "paragon")}
    assert winner(reduce_short) == "t3d", reduce_short

    # Broadcast, long messages: Paragon within 2x of the T3D, and both
    # clearly ahead of the SP2 ("the Paragon performs about the same as
    # the T3D for long messages").
    bcast_long = {m: data.get("broadcast", m, "long")[big_p]
                  for m in ("sp2", "t3d", "paragon")}
    assert bcast_long["paragon"] < 2.0 * bcast_long["t3d"], bcast_long
    assert bcast_long["sp2"] > bcast_long["paragon"], bcast_long

    # Barrier: the T3D's hardwired barrier is flat and dramatically
    # lower than the software trees.
    t3d_barrier = data.get("barrier", "t3d", "short")
    assert max(t3d_barrier.values()) < 10.0, t3d_barrier
    sp2_barrier = data.get("barrier", "sp2", "short")
    assert sp2_barrier[big_p] > 30 * t3d_barrier[big_p]

    # "The total messaging time is more sensitive to the rapid increase
    # in message length than to the slow change in machine size": going
    # 16 B -> 64 KB at fixed p moves time by more than growing p across
    # the whole measured range at fixed m.  We assert it on the
    # tree-structured collectives, where it holds unambiguously (for
    # an O(p)-startup total exchange with very costly messages — the
    # Paragon — the two sensitivities are comparable in any dataset,
    # including the paper's own Fig. 3b).
    for machine in ("sp2", "t3d", "paragon"):
        for op in ("broadcast", "reduce"):
            short_series = data.get(op, machine, "short")
            long_series = data.get(op, machine, "long")
            m_effect = long_series[big_p] / short_series[big_p]
            p_effect = short_series[big_p] / short_series[shared[0]]
            assert m_effect > p_effect, (machine, op, m_effect,
                                         p_effect)
