"""Microbenchmarks of the simulator itself (events/sec, message rate).

Unlike the figure benches (single-shot campaigns), these use
pytest-benchmark conventionally — many rounds of a small kernel — to
track the simulator's own performance so regressions in the engine or
transport hot paths are visible.
"""

from repro.mpi import MpiWorld
from repro.sim import Environment


def test_engine_event_throughput(benchmark):
    """Schedule-and-fire rate of bare timeout events."""

    def run():
        env = Environment()

        def proc():
            for _ in range(2000):
                yield env.timeout(1.0)

        env.process(proc())
        env.run()
        return env.now

    result = benchmark(run)
    assert result == 2000.0


def test_resource_handoff_throughput(benchmark):
    """Grant/release rate through a contended FIFO resource."""
    from repro.sim import Resource

    def run():
        env = Environment()
        resource = Resource(env, capacity=1)
        done = []

        def worker(i):
            for _ in range(50):
                request = resource.request()
                yield request
                yield env.timeout(0.1)
                resource.release(request)
            done.append(i)

        for i in range(10):
            env.process(worker(i))
        env.run()
        return len(done)

    assert benchmark(run) == 10


def test_ptp_message_rate(benchmark):
    """End-to-end transport pipeline rate (T3D, 2 nodes)."""

    def run():
        world = MpiWorld("t3d", 2, seed=0)

        def program(ctx):
            if ctx.rank == 0:
                for i in range(100):
                    yield from ctx.send(1, 64, tag=i)
                return None
            for i in range(100):
                yield from ctx.recv(0, tag=i)
            return None

        world.run(program)
        return world.comm.transport.messages_delivered

    assert benchmark(run) == 100


def test_collective_simulation_rate(benchmark):
    """Whole-collective simulation cost (16-node SP2 broadcast)."""

    def run():
        world = MpiWorld("sp2", 16, seed=0)
        return world.run_collective("broadcast", 1024, iterations=5)

    assert benchmark(run) > 0
