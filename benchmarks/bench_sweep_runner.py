"""Bench: the parallel sweep runner and its result cache.

Regenerates a deterministic sub-grid of the paper's Figure 3 sweep
through ``repro.runner`` and asserts the properties the regression
layer depends on: byte-stable artifacts, bit-identical parallel
results, and a warm cache that skips every unchanged cell.
"""

from repro.runner import (
    ResultCache,
    SweepConfig,
    build_artifact,
    diff_artifacts,
    dumps_artifact,
    preset_grid,
    run_sweep,
)


def _sub_fig3(sweep_subgrid):
    return sweep_subgrid(preset_grid("fig3").cells(), fraction=0.04)


def test_sweep_cold_then_warm_cache(benchmark, single_shot,
                                    sweep_subgrid, sweep_fast_config,
                                    tmp_path):
    cells = _sub_fig3(sweep_subgrid)
    config = SweepConfig(mode="sim", workers=2,
                         measurement=sweep_fast_config,
                         cache_dir=str(tmp_path))
    cold = single_shot(benchmark, run_sweep, cells, config,
                       ResultCache(tmp_path))
    warm = run_sweep(cells, config, ResultCache(tmp_path))
    print(f"cold: {cold.summary()}")
    print(f"warm: {warm.summary()}")
    assert cold.evaluated == len(cells)
    assert (warm.evaluated, warm.cache_hits) == (0, len(cells))
    cold_doc = dumps_artifact(build_artifact(cold, "fig3-sub", config))
    warm_doc = dumps_artifact(build_artifact(warm, "fig3-sub", config))
    assert cold_doc == warm_doc


def test_sweep_parallel_matches_serial(benchmark, single_shot,
                                       sweep_subgrid,
                                       sweep_fast_config):
    cells = _sub_fig3(sweep_subgrid)
    parallel_config = SweepConfig(mode="sim", workers=2,
                                  measurement=sweep_fast_config,
                                  use_cache=False)
    serial_config = SweepConfig(mode="sim", workers=1,
                                measurement=sweep_fast_config,
                                use_cache=False)
    parallel = single_shot(benchmark, run_sweep, cells,
                           parallel_config, ResultCache(enabled=False))
    serial = run_sweep(cells, serial_config, ResultCache(enabled=False))
    diff = diff_artifacts(
        build_artifact(serial, "fig3-sub", serial_config),
        build_artifact(parallel, "fig3-sub", parallel_config))
    assert diff.clean(), diff.format()


def test_sweep_analytic_mode_is_closed_form(benchmark, single_shot,
                                            sweep_subgrid):
    cells = _sub_fig3(sweep_subgrid)
    config = SweepConfig(mode="analytic", use_cache=False)
    result = single_shot(benchmark, run_sweep, cells, config,
                         ResultCache(enabled=False))
    print(f"analytic: {result.summary()}")
    assert result.evaluated == len(cells)
    assert all(r["time_us"] > 0 for r in result.results.values())
