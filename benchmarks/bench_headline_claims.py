"""Headline numeric claims from the abstract and Sections 4-8.

Prints every claim with the paper's value, the simulator's value, and
the ratio; asserts the central ones hold to within a factor of 2 and
that the orderings the abstract emphasizes are preserved.
"""

from repro.bench import format_headline, headline_checks


def test_headline_claims(benchmark, single_shot, capsys):
    checks = single_shot(benchmark, headline_checks)
    with capsys.disabled():
        print()
        print(format_headline(checks))

    by_claim = {c.claim: c for c in checks}

    # T3D barrier ~3 us and at least 30x faster than SP2/Paragon.
    assert by_claim["T3D 64-node barrier"].within(1.5)
    speedup = by_claim[
        "barrier speedup T3D vs best of SP2/Paragon (min 30x)"]
    assert speedup.simulated_value >= speedup.paper_value

    # T3D 2-node broadcast ~35 us.
    assert by_claim["T3D 2-node broadcast latency"].within(1.5)

    # T3D 64-node startup latencies within 2x.
    for op in ("broadcast", "alltoall", "scatter", "gather", "scan",
               "reduce"):
        assert by_claim[f"T3D 64-node {op} startup"].within(2.0), op

    # Aggregated alltoall bandwidths within 2x AND correctly ordered.
    rinf = {m: by_claim[f"{m} 64-node alltoall Rinf"].simulated_value
            for m in ("t3d", "paragon", "sp2")}
    for machine in rinf:
        assert by_claim[f"{machine} 64-node alltoall Rinf"].within(2.0)
    assert rinf["t3d"] > rinf["paragon"] > rinf["sp2"], rinf

    # SP2 64-node 64-KB total exchange ~317 ms.
    assert by_claim["SP2 64-node 64KB alltoall"].within(1.5)

    # The fastest/slowest 64-KB 64-node collectives bracket a range
    # comparable to the paper's (5.12 ms, 675 ms).
    assert by_claim["fastest 64-node 64KB collective"].within(2.0)
    assert by_claim["slowest 64-node 64KB collective"].within(2.5)
