"""Ablation: link-level contention modelling on vs off.

DESIGN.md decision 1: the fabric uses a channel-occupancy wormhole
approximation with FIFO link contention.  Turning contention off makes
every route conflict-free; this bench quantifies how much of the total
exchange time contention contributes on each machine (and verifies
latency-dominated operations are insensitive to it).
"""

from repro.core import MeasurementConfig, measure_collective
from repro.core.report import format_table

CONFIG_ON = MeasurementConfig(iterations=2, warmup_iterations=1, runs=1,
                              contention=True)
CONFIG_OFF = MeasurementConfig(iterations=2, warmup_iterations=1, runs=1,
                               contention=False)


def run_ablation():
    rows = []
    for machine in ("sp2", "t3d", "paragon"):
        for op, nbytes in (("alltoall", 65536), ("broadcast", 65536),
                           ("barrier", 0)):
            with_contention = measure_collective(
                machine, op, nbytes, 32, CONFIG_ON).time_us
            without = measure_collective(
                machine, op, nbytes, 32, CONFIG_OFF).time_us
            rows.append((machine, op, with_contention, without))
    return rows


def test_ablation_contention(benchmark, single_shot, capsys):
    rows = single_shot(benchmark, run_ablation)
    with capsys.disabled():
        print()
        print(format_table(
            ["machine", "op", "contention on [us]", "off [us]",
             "overhead"],
            [[m, op, f"{on:.0f}", f"{off:.0f}", f"{on / off:.3f}x"]
             for m, op, on, off in rows],
            title="Ablation: link contention (p=32, 64 KB)"))

    by_key = {(m, op): (on, off) for m, op, on, off in rows}
    for machine in ("sp2", "t3d", "paragon"):
        # Contention can only slow things down.
        for op in ("alltoall", "broadcast", "barrier"):
            on, off = by_key[(machine, op)]
            assert on >= off * 0.99, (machine, op, on, off)
        # The barrier moves (almost) no payload: insensitive.
        on, off = by_key[(machine, "barrier")]
        assert on < off * 1.2, (machine, on, off)
