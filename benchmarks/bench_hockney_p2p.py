"""Point-to-point characterization: Hockney's r_inf / n_half.

The paper's Section 9: "The aggregated bandwidth ... offers a better
metric to quantify the data transfer rate in a collective message
passing operation.  The asymptotic bandwidth by Hockney is only
effective in characterizing point-to-point communications."  This
bench fits Hockney's parameters on the simulator and demonstrates the
point: the p2p ranking (Paragon's 175 MB/s first) inverts under
short-message collectives (Paragon last).
"""

from repro.core import MeasurementConfig, fit_hockney, \
    measure_startup_latency
from repro.core.report import format_table

CONFIG = MeasurementConfig(iterations=2, warmup_iterations=1, runs=1)


def run_characterization():
    fits = {m: fit_hockney(m) for m in ("sp2", "t3d", "paragon")}
    startup = {m: measure_startup_latency(m, "alltoall", 32,
                                          CONFIG).time_us
               for m in ("sp2", "t3d", "paragon")}
    return fits, startup


def test_hockney_characterization(benchmark, single_shot, capsys):
    fits, startup = single_shot(benchmark, run_characterization)
    with capsys.disabled():
        print()
        print(format_table(
            ["machine", "t0 [us]", "r_inf [MB/s]", "n_1/2 [B]",
             "R^2", "alltoall T0(32) [us]"],
            [[m, f"{f.latency_us:.1f}", f"{f.r_inf_mbs:.1f}",
              f"{f.n_half_bytes:.0f}", f"{f.r_squared:.4f}",
              f"{startup[m]:.0f}"]
             for m, f in fits.items()],
            title="Hockney point-to-point fit vs collective startup"))

    # p2p asymptotic-bandwidth ranking: Paragon > T3D > SP2 (host
    # messaging rates 175 / 100 / 40 MB/s).
    assert fits["paragon"].r_inf_mbs > fits["t3d"].r_inf_mbs > \
        fits["sp2"].r_inf_mbs
    # p2p latency ranking: T3D lowest (fast messaging hardware).
    assert fits["t3d"].latency_us == \
        min(f.latency_us for f in fits.values())
    # ...and yet the collective ranking inverts: Paragon is the worst
    # machine for a short-message total exchange.  Hockney's p2p
    # numbers cannot predict collective performance — the paper's
    # argument for its aggregated-bandwidth metric.
    assert max(startup, key=startup.get) == "paragon"
