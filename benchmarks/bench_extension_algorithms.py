"""Extension bench: modern collective algorithms on the 1996 machines.

The paper's conclusion calls for research into improved collective
implementations.  This bench races the period algorithms against the
variants that later became standard (van de Geijn broadcast, ring
allgather, binomial gather) on the same simulated hardware, locating
the message-size crossover where each improvement starts to pay.
"""

from dataclasses import replace

from repro.bench import crossover_message_size
from repro.core import MeasurementConfig, measure_collective
from repro.core.report import format_table, format_us
from repro.machines import SP2, T3D

CONFIG = MeasurementConfig(iterations=2, warmup_iterations=1, runs=1)
SIZES = (4, 1024, 16384, 262144)


def _with_algorithm(spec, op, algorithm):
    return replace(spec, name=f"{spec.name}-ext",
                   algorithms={**dict(spec.algorithms), op: algorithm})


def run_races():
    races = {
        ("sp2 broadcast", "binomial", "van de Geijn"): (
            SP2, _with_algorithm(SP2, "broadcast",
                                 "scatter_allgather_broadcast"),
            "broadcast"),
        ("t3d broadcast", "binomial", "van de Geijn"): (
            T3D, _with_algorithm(T3D, "broadcast",
                                 "scatter_allgather_broadcast"),
            "broadcast"),
        ("sp2 allgather", "gather+bcast", "ring"): (
            SP2, _with_algorithm(SP2, "allgather", "ring_allgather"),
            "allgather"),
        ("sp2 gather", "linear", "binomial tree"): (
            SP2, _with_algorithm(SP2, "gather", "binomial_tree_gather"),
            "gather"),
    }
    results = {}
    for key, (baseline, variant, op) in races.items():
        # The binomial-gather advantage is a latency effect that only
        # overtakes the root's linear drain at larger machine sizes.
        p = 64 if op == "gather" else 32
        base_series = {m: measure_collective(baseline, op, m, p,
                                             CONFIG).time_us
                       for m in SIZES}
        variant_series = {m: measure_collective(variant, op, m, p,
                                                CONFIG).time_us
                          for m in SIZES}
        results[key] = (base_series, variant_series)
    return results


def test_extension_algorithms(benchmark, single_shot, capsys):
    results = single_shot(benchmark, run_races)
    with capsys.disabled():
        print()
        rows = []
        for (race, base_name, var_name), (base, var) in results.items():
            for m in SIZES:
                rows.append([race, m, format_us(base[m]),
                             format_us(var[m]),
                             f"{var[m] / base[m]:.2f}x"])
        print(format_table(
            ["race", "m [B]", "period algorithm", "modern variant",
             "variant/period"],
            rows, title="Period vs modern collective algorithms "
                        "(p=32)"))

    # van de Geijn broadcast: loses at 4 B, wins at 256 KB on the SP2.
    base, variant = results[("sp2 broadcast", "binomial",
                             "van de Geijn")]
    assert variant[4] > base[4]
    assert variant[262144] < base[262144]
    assert crossover_message_size(base, variant) is not None

    # Ring allgather wins for long blocks.
    base, variant = results[("sp2 allgather", "gather+bcast", "ring")]
    assert variant[262144] < base[262144]

    # Binomial gather wins the latency end.
    base, variant = results[("sp2 gather", "linear", "binomial tree")]
    assert variant[4] < base[4]
