"""Ablation: per-machine collective algorithm selection.

DESIGN.md decision 2: the Paragon's poor total exchange comes from its
naive sequential NX scheme, not from its hardware.  Giving the Paragon
model the MPICH posted algorithm should recover a large share of the
gap — evidence that the paper's "least efficient schemes" explanation
is what the model encodes.  Also contrasts the strict pairwise
exchange (kept as a variant) with the posted algorithm on the SP2.
"""

from dataclasses import replace

from repro.core import MeasurementConfig, measure_startup_latency
from repro.core.report import format_table
from repro.machines import PARAGON, SP2

CONFIG = MeasurementConfig(iterations=2, warmup_iterations=1, runs=1)


def _with_algorithm(spec, op, algorithm):
    algorithms = dict(spec.algorithms)
    algorithms[op] = algorithm
    return replace(spec, name=f"{spec.name}-ablated",
                   algorithms=algorithms)


def run_ablation():
    paragon_mpich = _with_algorithm(PARAGON, "alltoall",
                                    "posted_alltoall")
    sp2_pairwise = _with_algorithm(SP2, "alltoall",
                                   "pairwise_exchange_alltoall")
    results = {}
    results["paragon/sequential"] = measure_startup_latency(
        PARAGON, "alltoall", 32, CONFIG).time_us
    results["paragon/posted (MPICH)"] = measure_startup_latency(
        paragon_mpich, "alltoall", 32, CONFIG).time_us
    results["sp2/posted (MPICH)"] = measure_startup_latency(
        SP2, "alltoall", 32, CONFIG).time_us
    results["sp2/pairwise (strict)"] = measure_startup_latency(
        sp2_pairwise, "alltoall", 32, CONFIG).time_us
    return results


def test_ablation_algorithms(benchmark, single_shot, capsys):
    results = single_shot(benchmark, run_ablation)
    with capsys.disabled():
        print()
        print(format_table(
            ["variant", "alltoall T0(32) [us]"],
            [[k, f"{v:.0f}"] for k, v in results.items()],
            title="Ablation: total-exchange algorithm choice"))

    # Switching the Paragon to the MPICH algorithm recovers a
    # measurable share of its total exchange latency (the unexpected-
    # message handling of the sequential scheme), but most of the gap
    # is the NX per-message kernel cost, which no algorithm change
    # removes — a refinement of the paper's "least efficient schemes"
    # explanation.
    assert results["paragon/posted (MPICH)"] < \
        0.9 * results["paragon/sequential"], results

    # Even with the MPICH algorithm the Paragon stays slower than the
    # SP2 (its NX per-message kernel costs remain).
    assert results["paragon/posted (MPICH)"] > \
        results["sp2/posted (MPICH)"], results

    # Strict pairwise exchange exposes a one-way latency per round:
    # slower than the posted algorithm on the SP2.
    assert results["sp2/pairwise (strict)"] > \
        results["sp2/posted (MPICH)"], results
