"""Ablation: the paper's measurement methodology.

DESIGN.md decision 4: three methodological choices the paper makes (or
that the era's implementations force) and what each is worth:

* **collective serialization** — consecutive collectives on one
  communicator cannot overlap.  Without it, back-to-back timed
  iterations pipeline and the measured per-iteration broadcast time
  collapses toward the per-node throughput bound, destroying the
  O(log p) scaling the paper reports;
* **warm-up discard** — keeping the cold iterations inflates the mean;
* **max-reduce over processes** — the max is what reflects "all
  processes have finished"; the min under-reports the operation.
"""

from dataclasses import replace

from repro.core import MeasurementConfig, measure_collective
from repro.core.report import format_table
from repro.machines import SP2

CONFIG = MeasurementConfig(iterations=4, warmup_iterations=1, runs=1)


def run_ablation():
    pipelined = replace(SP2, name="sp2-pipelined",
                        serialize_collectives=False)
    results = {}
    for p in (8, 64):
        results[f"bcast T(4B,{p})/serialized"] = measure_collective(
            SP2, "broadcast", 4, p, CONFIG).time_us
        results[f"bcast T(4B,{p})/pipelined"] = measure_collective(
            pipelined, "broadcast", 4, p, CONFIG).time_us

    cold = MeasurementConfig(iterations=4, warmup_iterations=0, runs=1)
    results["bcast 4KB/warmup discarded"] = measure_collective(
        SP2, "broadcast", 4096, 32, CONFIG).time_us
    results["bcast 4KB/cold iterations kept"] = measure_collective(
        SP2, "broadcast", 4096, 32, cold).time_us

    sample = measure_collective(SP2, "gather", 1024, 32, CONFIG)
    results["gather/max-reduce"] = sample.process_max_us
    results["gather/min-reduce"] = sample.process_min_us
    return results


def test_ablation_methodology(benchmark, single_shot, capsys):
    results = single_shot(benchmark, run_ablation)
    with capsys.disabled():
        print()
        print(format_table(
            ["variant", "time [us]"],
            [[k, f"{v:.0f}"] for k, v in results.items()],
            title="Ablation: measurement methodology (SP2)"))

    # Without serialization the measured time stops tracking the
    # critical path: the pipelined 64-node broadcast reads much closer
    # to the 8-node one than the serialized measurement does.
    serialized_growth = results["bcast T(4B,64)/serialized"] / \
        results["bcast T(4B,8)/serialized"]
    pipelined_growth = results["bcast T(4B,64)/pipelined"] / \
        results["bcast T(4B,8)/pipelined"]
    assert serialized_growth > pipelined_growth, results
    assert results["bcast T(4B,64)/pipelined"] < \
        results["bcast T(4B,64)/serialized"], results

    # Cold iterations inflate the measurement.
    assert results["bcast 4KB/cold iterations kept"] > \
        results["bcast 4KB/warmup discarded"], results

    # The max-reduce reports more than the min-reduce on a rooted
    # operation with asymmetric per-rank work.
    assert results["gather/max-reduce"] > results["gather/min-reduce"]
