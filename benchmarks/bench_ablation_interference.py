"""Ablation: interference from other users (the paper's accuracy list).

The paper's Section 9 lists "the interference from other users in the
multicomputer environment" among the factors that could offset its
measurements, and explains the machines were used "in dedicated mode"
to avoid it.  This bench quantifies what dedicated mode buys: it loads
one node with a background-interference slowdown and measures how the
max-reduce collective time degrades — and shows the min-reduce barely
notices, which is why the paper's max-based metric is the honest one.
"""

from repro.core.report import format_table
from repro.mpi import MpiWorld

FACTORS = (1.0, 1.5, 2.0, 4.0, 8.0)


def measure(factor):
    slowdown = None if factor == 1.0 else {3: factor}
    world = MpiWorld("sp2", 16, seed=6, cpu_slowdown=slowdown)

    def program(ctx):
        yield from ctx.barrier()
        start = ctx.wtime()
        for _ in range(3):
            yield from ctx.alltoall(1024)
        return (ctx.wtime() - start) / 3

    locals_ = world.run(program)
    return min(locals_), max(locals_)


def run_ablation():
    return {factor: measure(factor) for factor in FACTORS}


def test_ablation_interference(benchmark, single_shot, capsys):
    results = single_shot(benchmark, run_ablation)
    with capsys.disabled():
        print()
        print(format_table(
            ["slowdown of node 3", "min-reduce [us]", "max-reduce [us]",
             "max vs dedicated"],
            [[f"{factor:.1f}x", f"{mn:.0f}", f"{mx:.0f}",
              f"{mx / results[1.0][1]:.2f}x"]
             for factor, (mn, mx) in results.items()],
            title="Ablation: one loaded node, 16-node SP2 alltoall "
                  "(1 KB)"))

    dedicated_max = results[1.0][1]
    # The interfered max-reduce degrades monotonically with load.
    maxima = [results[factor][1] for factor in FACTORS]
    assert all(b >= a * 0.98 for a, b in zip(maxima, maxima[1:]))
    assert results[8.0][1] > 1.5 * dedicated_max
    # A collective is a convoy: even the *fastest* process cannot
    # escape a straggler, because everyone synchronizes against it —
    # the min-reduce degrades too, staying within 2x of the max.
    assert results[8.0][0] > results[8.0][1] / 2
