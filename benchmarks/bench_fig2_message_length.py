"""Figure 2: T(m, 32) as a function of message length.

Paper claims reproduced here (Section 5):
* time grows slowly below ~1 KB and ~linearly beyond 4 KB;
* the T3D is fastest in all collectives except scan (Paragon wins);
* the Paragon is worst for short messages in total exchange, scatter,
  gather, but beats the SP2 for long messages in broadcast, total
  exchange, scatter, gather;
* the SP2/Paragon ranking crosses over as messages grow.
"""

from repro.bench import figure2, winner
from repro.bench.figures import FIGURE2_NODES


def test_figure2_message_length(benchmark, single_shot, capsys):
    data = single_shot(benchmark, figure2)
    with capsys.disabled():
        print()
        print(data.format())

    sizes = sorted(data.get("broadcast", "sp2"))
    short = sizes[0]
    long_ = sizes[-1]
    assert long_ >= 16384

    # T3D fastest for long messages in broadcast/alltoall/scatter/
    # reduce; scan goes to the Paragon (Fig. 2e).  Long gather is
    # ambiguous in the paper itself — the prose says T3D but Table 3's
    # own fits make the Paragon fastest (coprocessor-drained root) —
    # so we only require that the SP2 is worst there, which prose and
    # fits agree on.
    for op in ("broadcast", "alltoall", "scatter"):
        at_long = {m: data.get(op, m)[long_]
                   for m in ("sp2", "t3d", "paragon")}
        assert winner(at_long) == "t3d", (op, at_long)
    # The Paragon's scan advantage (Fig. 2e) is a latency effect: the
    # paper's own Table 3 fits put the crossover near 0.5 KB at p=32
    # (T3D ahead beyond), so we assert the short-message win only.
    scan_short = {m: data.get("scan", m)[short]
                  for m in ("sp2", "t3d", "paragon")}
    assert winner(scan_short) == "paragon", scan_short
    # "To reduce long messages beyond 64 KBytes, the SP2 shows the
    # lowest messaging time (Fig. 2f)."
    reduce_long = {m: data.get("reduce", m)[long_]
                   for m in ("sp2", "t3d", "paragon")}
    assert winner(reduce_long) == "sp2", reduce_long
    gather_long = {m: data.get("gather", m)[long_]
                   for m in ("sp2", "t3d", "paragon")}
    assert max(gather_long, key=gather_long.get) == "sp2", gather_long

    # Paragon worst for short messages in the O(p) operations.
    for op in ("alltoall", "scatter", "gather"):
        at_short = {m: data.get(op, m)[short]
                    for m in ("sp2", "t3d", "paragon")}
        assert max(at_short, key=at_short.get) == "paragon", \
            (op, at_short)

    # Paragon beats SP2 for long messages in these four operations...
    for op in ("broadcast", "alltoall", "scatter", "gather"):
        assert data.get(op, "paragon")[long_] < \
            data.get(op, "sp2")[long_], op
    # ...but not in reduce (Section 5: "except the reduce operation").
    assert data.get("reduce", "sp2")[long_] < \
        data.get("reduce", "paragon")[long_]

    # SP2 is faster than the Paragon for short alltoall/scatter/gather
    # messages: the ranking crossover of Section 5.
    for op in ("alltoall", "scatter", "gather"):
        assert data.get(op, "sp2")[short] < data.get(op, "paragon")[short]

    # Time grows ~linearly for long messages: quadrupling m from 16 KB
    # to 64 KB should scale time by ~4 (within a factor accounting for
    # the startup share).
    if 16384 in sizes and 65536 in sizes:
        for machine in ("sp2", "t3d", "paragon"):
            t_16k = data.get("alltoall", machine)[16384]
            t_64k = data.get("alltoall", machine)[65536]
            assert 2.5 < t_64k / t_16k < 4.5, (machine, t_16k, t_64k)
