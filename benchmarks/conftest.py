"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's artifacts (a figure, a
table, or a headline claim set), prints the regenerated rows/series the
way the paper reports them, and asserts the qualitative *shape* facts
the paper states.  ``pytest benchmarks/ --benchmark-only`` runs them
all; set ``REPRO_BENCH_FAST=1`` for a coarse, quicker grid.
"""

import pytest

from repro.core import MeasurementConfig


def _single_shot(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The functions being benchmarked are whole simulation campaigns
    (seconds to minutes); pytest-benchmark's default calibration would
    re-run them dozens of times for no statistical gain.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def single_shot():
    return _single_shot


@pytest.fixture
def quick_point_config():
    """Cheap config for benches that measure individual points."""
    return MeasurementConfig(iterations=2, warmup_iterations=1, runs=1,
                             seed=1997)
