"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's artifacts (a figure, a
table, or a headline claim set), prints the regenerated rows/series the
way the paper reports them, and asserts the qualitative *shape* facts
the paper states.  ``pytest benchmarks/ --benchmark-only`` runs them
all; set ``REPRO_BENCH_FAST=1`` for a coarse, quicker grid.

The sweep helpers here are deliberately deterministic: grid iteration
is sorted and any subsampling draws from a fixed-seed RNG, so the
artifact JSON a bench writes is byte-stable across runs (set/dict
iteration order and an unseeded sampler would silently reorder cells
and defeat the bit-identical regression gate).
"""

import random

import pytest

from repro.core import MeasurementConfig


def _single_shot(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The functions being benchmarked are whole simulation campaigns
    (seconds to minutes); pytest-benchmark's default calibration would
    re-run them dozens of times for no statistical gain.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def single_shot():
    return _single_shot


@pytest.fixture
def quick_point_config():
    """Cheap config for benches that measure individual points."""
    return MeasurementConfig(iterations=2, warmup_iterations=1, runs=1,
                             seed=1997)


def _sweep_subgrid(cells, fraction=0.5, seed=1997):
    """Deterministically subsample a sweep grid.

    Cells are sorted (canonical order) before a fixed-seed RNG draws
    the sample, and the sample is sorted again on the way out — the
    same call always yields the same sub-grid, byte for byte, in every
    process.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    ordered = sorted(set(cells))
    count = max(1, round(len(ordered) * fraction))
    rng = random.Random(seed)
    return tuple(sorted(rng.sample(ordered, count)))


@pytest.fixture
def sweep_subgrid():
    """Seeded, sorted grid subsampler for sweep benches."""
    return _sweep_subgrid


@pytest.fixture
def sweep_fast_config():
    """Measurement protocol for sweep benches: one timed iteration."""
    return MeasurementConfig(iterations=1, warmup_iterations=0, runs=1,
                             seed=1997)
