"""Figure 4: startup vs transmission breakdown (p=32, m=1 KB).

Paper claims reproduced here (Section 7):
* total exchange demands the longest time of the six collectives;
* the T3D shows the lowest startup latency in broadcast, gather, and
  reduce;
* the Paragon's total exchange and gather latencies are ~4-15x the
  SP2/T3D counterparts (its NX "least efficient schemes");
* the Paragon's scan latency is the lowest of the three machines.
"""

from repro.bench import figure4, winner
from repro.bench.figures import FIGURE4_NODES


def test_figure4_breakdown(benchmark, single_shot, capsys):
    data = single_shot(benchmark, figure4)
    with capsys.disabled():
        print()
        print(data.format())

    p = FIGURE4_NODES

    def startup(op, machine):
        return data.get(op, machine, "startup")[p]

    def total(op, machine):
        return startup(op, machine) + \
            data.get(op, machine, "transmission")[p]

    # Total exchange is the most expensive collective on every machine.
    for machine in ("sp2", "t3d", "paragon"):
        others = [total(op, machine)
                  for op in ("broadcast", "scatter", "gather", "scan",
                             "reduce")]
        assert total("alltoall", machine) > max(others), machine

    # T3D lowest startup in broadcast, gather, reduce.
    for op in ("broadcast", "gather", "reduce"):
        at_op = {m: startup(op, m) for m in ("sp2", "t3d", "paragon")}
        assert winner(at_op) == "t3d", (op, at_op)

    # Paragon scan startup is the lowest.
    scan = {m: startup("scan", m) for m in ("sp2", "t3d", "paragon")}
    assert winner(scan) == "paragon", scan

    # Paragon total exchange and gather latencies are several times the
    # SP2/T3D counterparts.  The prose quotes 4-15x, but the paper's
    # own Table 3 fits imply ~2.5-4x at p=32, so we require >= 3x for
    # total exchange and >= 1.5x for gather.
    for other in ("sp2", "t3d"):
        assert startup("alltoall", "paragon") / \
            startup("alltoall", other) >= 3.0, other
        assert startup("gather", "paragon") / \
            startup("gather", other) >= 1.5, other
