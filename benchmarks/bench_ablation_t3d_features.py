"""Ablation: the T3D's special hardware features.

DESIGN.md decision 3: the paper credits the T3D's lead to its
hardwired barrier and block transfer engine.  Disable each in the
machine model and measure what is lost:

* hardwired barrier -> software tree: the ~3 us barrier becomes
  hundreds of microseconds (the paper's ">= 30x" claim in reverse);
* BLT -> host path: long-message scatter slows down.
"""

from dataclasses import replace

from repro.core import MeasurementConfig, measure_collective
from repro.core.report import format_table
from repro.machines import T3D

CONFIG = MeasurementConfig(iterations=2, warmup_iterations=1, runs=1)


def run_ablation():
    no_barrier_wire = replace(
        T3D, name="t3d-no-hw-barrier", barrier_wire=None,
        algorithms={**dict(T3D.algorithms), "barrier": "tree_barrier"})
    no_blt = replace(T3D, name="t3d-no-blt", dma=None,
                     dma_collectives=())

    results = {}
    results["barrier/hardwired"] = measure_collective(
        T3D, "barrier", 0, 64, CONFIG).time_us
    results["barrier/software tree"] = measure_collective(
        no_barrier_wire, "barrier", 0, 64, CONFIG).time_us
    results["scatter 64KB/with BLT"] = measure_collective(
        T3D, "scatter", 65536, 64, CONFIG).time_us
    results["scatter 64KB/host path"] = measure_collective(
        no_blt, "scatter", 65536, 64, CONFIG).time_us
    return results


def test_ablation_t3d_features(benchmark, single_shot, capsys):
    results = single_shot(benchmark, run_ablation)
    with capsys.disabled():
        print()
        print(format_table(
            ["variant", "time [us]"],
            [[k, f"{v:.0f}"] for k, v in results.items()],
            title="Ablation: T3D hardware features (p=64)"))

    # Without the barrier wire the T3D barrier loses its edge by well
    # over an order of magnitude.
    assert results["barrier/software tree"] > \
        30 * results["barrier/hardwired"], results

    # Without the BLT, long-message scatter is at least 1.5x slower
    # (host-driven injection at E-register speed).
    assert results["scatter 64KB/host path"] > \
        1.5 * results["scatter 64KB/with BLT"], results
