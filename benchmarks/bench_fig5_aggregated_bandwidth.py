"""Figure 5: aggregated bandwidths Rinf(p) of the collectives.

Paper claims reproduced here (Section 8):
* aggregated bandwidth grows monotonically with machine size;
* the broadcast bandwidth ranking is T3D, Paragon, SP2 (descending);
* the reduce ranking changes to SP2 (best) — "one should not use the
  machine ranking for one collective operation to predict another";
* for total exchange at 64 nodes the ranking is T3D, Paragon, SP2.
"""

from repro.bench import figure5, monotonically_increasing, ranking


def test_figure5_aggregated_bandwidth(benchmark, single_shot, capsys):
    data = single_shot(benchmark, figure5)
    with capsys.disabled():
        print()
        print(data.format())

    shared = sorted(set(data.get("broadcast", "t3d")) &
                    set(data.get("broadcast", "sp2")))
    big_p = shared[-1]

    # Bandwidth grows with machine size (more pairs moving bytes).
    for key, series in data.series.items():
        assert monotonically_increasing(series, tolerance=0.2), \
            (key, series)

    def bandwidth_ranking(op):
        values = {m: -data.get(op, m)[big_p]
                  for m in ("sp2", "t3d", "paragon")}
        return ranking(values)  # highest bandwidth first

    # Broadcast: T3D, Paragon, SP2 in descending order.
    assert bandwidth_ranking("broadcast") == ["t3d", "paragon", "sp2"]

    # Reduce: SP2 has the highest aggregated bandwidth (fast POWER2
    # combine), demonstrating the per-op ranking flip.
    assert bandwidth_ranking("reduce")[0] == "sp2"

    # Total exchange: T3D first, then Paragon, then SP2 — the
    # abstract's 1.745 / 0.879 / 0.818 GB/s ordering.
    assert bandwidth_ranking("alltoall") == ["t3d", "paragon", "sp2"]

    # The T3D's alltoall bandwidth advantage is roughly 2x, as in the
    # paper (1.745 vs 0.879).
    t3d = data.get("alltoall", "t3d")[big_p]
    paragon = data.get("alltoall", "paragon")[big_p]
    assert 1.4 < t3d / paragon < 3.0, (t3d, paragon)
