"""Shared machinery for the application kernels.

An application kernel is an SPMD program with labelled *phases*, each
either compute (modelled as flops at the machine's sustained rate) or
communication (real simulated collectives).  :class:`PhaseTracker`
accumulates per-phase wall time on each rank; :class:`AppResult`
aggregates the slowest rank's breakdown — the paper's
divided-computation-vs-collective-communication trade-off made
measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List

from ..core.report import format_table, format_us
from ..mpi import MpiWorld, RankContext

__all__ = ["PhaseTracker", "AppResult", "run_app"]


class PhaseTracker:
    """Accumulates labelled wall-time spans on one rank."""

    def __init__(self, ctx: RankContext):
        self.ctx = ctx
        self.phase_us: Dict[str, float] = {}

    def compute(self, label: str,
                flops: float) -> Generator:
        """Model ``flops`` of computation at the machine's rate."""
        if flops < 0:
            raise ValueError(f"negative flop count {flops}")
        rate = self.ctx.comm.spec.compute_mflops  # MFLOPS == flops/us
        yield from self.timed(label, self.ctx.delay(flops / rate))

    def timed(self, label: str, operation: Generator) -> Generator:
        """Run ``operation`` and charge its wall time to ``label``.

        As in real MPI profilers, a collective's charged time includes
        any wait for peers still computing — load imbalance surfaces
        as communication time on the waiting ranks.
        """
        start = self.ctx.env.now
        yield from operation
        self.phase_us[label] = self.phase_us.get(label, 0.0) + \
            (self.ctx.env.now - start)

    def snapshot(self) -> Dict[str, float]:
        return dict(self.phase_us)


@dataclass(frozen=True)
class AppResult:
    """Aggregated outcome of one application run."""

    app: str
    machine: str
    num_nodes: int
    total_us: float
    #: Phase breakdown of the slowest (critical) rank.
    phases: Dict[str, float] = field(default_factory=dict)

    @property
    def compute_us(self) -> float:
        return sum(v for k, v in self.phases.items()
                   if k.startswith("compute"))

    @property
    def communication_us(self) -> float:
        return sum(v for k, v in self.phases.items()
                   if k.startswith("comm"))

    @property
    def communication_fraction(self) -> float:
        if self.total_us <= 0:
            return 0.0
        return self.communication_us / self.total_us

    def format(self) -> str:
        rows: List[List[str]] = [
            [label, format_us(value),
             f"{value / self.total_us:.0%}" if self.total_us else "-"]
            for label, value in sorted(self.phases.items())
        ]
        rows.append(["TOTAL", format_us(self.total_us), "100%"])
        return format_table(
            ["phase", "time", "share"], rows,
            title=f"{self.app} on {self.machine}, "
                  f"{self.num_nodes} nodes")


def run_app(app_name: str, machine: str, num_nodes: int, program_factory,
            seed: int = 0) -> AppResult:
    """Run a phase-tracked SPMD program and aggregate the result.

    ``program_factory(tracker)`` must return a generator; each rank
    gets its own :class:`PhaseTracker`.
    """
    world = MpiWorld(machine, num_nodes, seed=seed)
    trackers: List[PhaseTracker] = []

    def program(ctx: RankContext):
        tracker = PhaseTracker(ctx)
        trackers.append(tracker)
        yield from program_factory(tracker)
        return sum(tracker.phase_us.values())

    per_rank_totals = world.run(program)
    slowest = max(range(num_nodes), key=per_rank_totals.__getitem__)
    return AppResult(
        app=app_name,
        machine=world.spec.name,
        num_nodes=num_nodes,
        total_us=per_rank_totals[slowest],
        phases=trackers[slowest].snapshot(),
    )
