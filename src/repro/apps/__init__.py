"""Application kernels built on the simulated MPI runtime.

Three realistic collective-communication consumers — the STAP radar
pipeline the paper's data came from, a distributed 2-D FFT, and a
parallel sample sort — each with labelled compute/communication phase
breakdowns for trade-off studies.
"""

from .base import AppResult, PhaseTracker, run_app
from .fft2d import FftGrid, fft2d_program, simulate_fft2d
from .samplesort import SortJob, samplesort_program, simulate_samplesort
from .stap import RadarCube, simulate_stap, stap_pipeline

__all__ = [
    "AppResult",
    "FftGrid",
    "PhaseTracker",
    "RadarCube",
    "SortJob",
    "fft2d_program",
    "run_app",
    "samplesort_program",
    "simulate_fft2d",
    "simulate_samplesort",
    "simulate_stap",
    "stap_pipeline",
]
