"""Distributed 2-D FFT with transpose (the canonical corner turn).

A ``n x n`` complex grid distributed by rows: each node FFTs its rows,
the grid is transposed with a total exchange, and each node FFTs its
(new) rows — the communication pattern that dominated 1990s spectral
codes and the second classic consumer of ``MPI_Alltoall`` after STAP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .base import AppResult, PhaseTracker, run_app

__all__ = ["FftGrid", "fft2d_program", "simulate_fft2d"]

SAMPLE_BYTES = 8  # complex64


@dataclass(frozen=True)
class FftGrid:
    """A square 2-D grid of complex samples."""

    n: int = 1024

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"grid must be at least 2x2, got {self.n}")

    def row_fft_flops_per_node(self, p: int) -> float:
        rows = self.n / p
        return rows * 5.0 * self.n * math.log2(self.n)

    def transpose_bytes(self, p: int) -> int:
        """Per-pair message of the transpose: an (n/p) x (n/p) tile."""
        tile = (self.n // p) * (self.n // p) * SAMPLE_BYTES
        return max(SAMPLE_BYTES, tile)


def fft2d_program(grid: FftGrid):
    """Program factory: forward 2-D FFT (rows, transpose, rows)."""

    def program(tracker: PhaseTracker):
        ctx = tracker.ctx
        p = ctx.size
        yield from tracker.timed("comm:sync", ctx.barrier())
        yield from tracker.compute("compute:row-ffts",
                                   grid.row_fft_flops_per_node(p))
        yield from tracker.timed("comm:transpose",
                                 ctx.alltoall(grid.transpose_bytes(p)))
        yield from tracker.compute("compute:col-ffts",
                                   grid.row_fft_flops_per_node(p))

    return program


def simulate_fft2d(machine: str, num_nodes: int,
                   grid: FftGrid = FftGrid(),
                   seed: int = 0) -> AppResult:
    """Run one forward 2-D FFT on a simulated machine."""
    return run_app("2-D FFT", machine, num_nodes, fft2d_program(grid),
                   seed=seed)
