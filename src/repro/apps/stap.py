"""STAP (space-time adaptive processing) radar pipeline.

The paper's timing data "are obtained from the STAP benchmark
experiments jointly performed at the USC and HKU", and its stated use
case is trading divided computation against collective communication.
This kernel models the classic three-stage STAP chain on a radar data
cube of ``channels x pulses x ranges`` complex samples:

1. **Doppler processing** — an FFT along pulses for every
   (channel, range) cell; data distributed by range.
2. **Corner turn** — total exchange re-distributing the cube from
   range-major to pulse-major layout.
3. **Beamforming** — adaptive weight application along channels.
4. **Target report** — a reduce of per-node detection statistics.

Flop counts use the standard 5 N log2 N per complex FFT and 8 flops
per complex multiply-accumulate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .base import AppResult, PhaseTracker, run_app

__all__ = ["RadarCube", "stap_pipeline", "simulate_stap"]

#: Bytes per complex sample (two MPI_FLOATs, the paper's element type).
SAMPLE_BYTES = 8


@dataclass(frozen=True)
class RadarCube:
    """Dimensions of the STAP data cube."""

    channels: int = 16
    pulses: int = 128
    ranges: int = 512

    def __post_init__(self) -> None:
        if min(self.channels, self.pulses, self.ranges) < 1:
            raise ValueError("cube dimensions must be positive")

    @property
    def cells(self) -> int:
        return self.channels * self.pulses * self.ranges

    @property
    def total_bytes(self) -> int:
        return self.cells * SAMPLE_BYTES

    def doppler_flops_per_node(self, p: int) -> float:
        """FFT along pulses for this node's share of (channel, range)."""
        ffts = self.channels * self.ranges / p
        return ffts * 5.0 * self.pulses * math.log2(max(self.pulses, 2))

    def beamform_flops_per_node(self, p: int) -> float:
        """Adaptive weights: one complex MAC per channel per cell."""
        return 8.0 * self.cells / p

    def corner_turn_bytes(self, p: int) -> int:
        """Per-pair message of the transpose total exchange."""
        return max(SAMPLE_BYTES, self.total_bytes // (p * p))


def stap_pipeline(cube: RadarCube):
    """Program factory: one STAP coherent processing interval."""

    def program(tracker: PhaseTracker):
        ctx = tracker.ctx
        p = ctx.size
        yield from tracker.timed("comm:sync", ctx.barrier())
        yield from tracker.compute("compute:doppler",
                                   cube.doppler_flops_per_node(p))
        yield from tracker.timed(
            "comm:corner-turn",
            ctx.alltoall(cube.corner_turn_bytes(p)))
        yield from tracker.compute("compute:beamform",
                                   cube.beamform_flops_per_node(p))
        yield from tracker.timed("comm:target-report",
                                 ctx.reduce(1024, root=0))

    return program


def simulate_stap(machine: str, num_nodes: int,
                  cube: RadarCube = RadarCube(),
                  seed: int = 0) -> AppResult:
    """Run one STAP interval on a simulated machine."""
    return run_app("STAP pipeline", machine, num_nodes,
                   stap_pipeline(cube), seed=seed)
