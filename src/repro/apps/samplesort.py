"""Parallel sample sort: the collective-heavy sorting workhorse.

Sample sort exercises four different collectives in one algorithm —
gather (samples to root), broadcast (splitters), total exchange
(bucket redistribution), and barrier — making it a good end-to-end
stress of the runtime and a third realistic consumer of the paper's
operations.

Phases (keys of ``KEY_BYTES`` each, ``keys_per_node`` per node):

1. local sort — ``n log2 n`` comparisons at ~4 flops each;
2. sampling — each node sends ``oversample * p`` sampled keys to the
   root (gather), which sorts them and broadcasts ``p-1`` splitters;
3. redistribution — total exchange of bucket contents (balanced-bucket
   approximation: ``n/p`` keys per pair);
4. local merge — ``n log2 p`` comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .base import AppResult, PhaseTracker, run_app

__all__ = ["SortJob", "samplesort_program", "simulate_samplesort"]

KEY_BYTES = 8
COMPARISON_FLOPS = 4.0


@dataclass(frozen=True)
class SortJob:
    """Problem description for one parallel sort."""

    keys_per_node: int = 250_000
    oversample: int = 8

    def __post_init__(self) -> None:
        if self.keys_per_node < 1:
            raise ValueError("need at least one key per node")
        if self.oversample < 1:
            raise ValueError("oversample factor must be >= 1")

    def local_sort_flops(self) -> float:
        n = self.keys_per_node
        return COMPARISON_FLOPS * n * math.log2(max(n, 2))

    def sample_bytes(self, p: int) -> int:
        return self.oversample * p * KEY_BYTES

    def splitter_bytes(self, p: int) -> int:
        return max(KEY_BYTES, (p - 1) * KEY_BYTES)

    def bucket_bytes(self, p: int) -> int:
        return max(KEY_BYTES, self.keys_per_node * KEY_BYTES // p)

    def merge_flops(self, p: int) -> float:
        return COMPARISON_FLOPS * self.keys_per_node * \
            math.log2(max(p, 2))


def samplesort_program(job: SortJob):
    """Program factory: one parallel sample sort."""

    def program(tracker: PhaseTracker):
        ctx = tracker.ctx
        p = ctx.size
        yield from tracker.timed("comm:sync", ctx.barrier())
        yield from tracker.compute("compute:local-sort",
                                   job.local_sort_flops())
        yield from tracker.timed("comm:sample-gather",
                                 ctx.gather(job.sample_bytes(p),
                                            root=0))
        if ctx.rank == 0:
            samples = job.oversample * p * p
            yield from tracker.compute(
                "compute:sort-samples",
                COMPARISON_FLOPS * samples * math.log2(max(samples, 2)))
        yield from tracker.timed("comm:splitter-bcast",
                                 ctx.bcast(job.splitter_bytes(p),
                                           root=0))
        yield from tracker.timed("comm:redistribute",
                                 ctx.alltoall(job.bucket_bytes(p)))
        yield from tracker.compute("compute:merge", job.merge_flops(p))

    return program


def simulate_samplesort(machine: str, num_nodes: int,
                        job: SortJob = SortJob(),
                        seed: int = 0) -> AppResult:
    """Run one parallel sample sort on a simulated machine."""
    return run_app("sample sort", machine, num_nodes,
                   samplesort_program(job), seed=seed)
