"""3-D torus topology with shortest-wrap dimension-order routing.

This models the Cray T3D interconnect: a 3-D torus routed dimension
order X, Y, Z, taking the shorter direction around each ring
[Adams 1993; Koeninger et al. 1994].
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .topology import LinkId, Topology, validate_route_endpoints

__all__ = ["Torus3D"]


def _ring_steps(size: int, src: int, dst: int) -> List[Tuple[int, int]]:
    """Steps ``(from, to)`` along one ring, taking the shorter way.

    Ties (exactly half-way around an even ring) break toward the
    positive direction, keeping routing deterministic.
    """
    if size == 1 or src == dst:
        return []
    forward = (dst - src) % size
    backward = (src - dst) % size
    step = 1 if forward <= backward else -1
    steps = []
    pos = src
    while pos != dst:
        nxt = (pos + step) % size
        steps.append((pos, nxt))
        pos = nxt
    return steps


class Torus3D(Topology):
    """An ``nx`` x ``ny`` x ``nz`` torus; node ``n`` sits at
    ``(n % nx, (n // nx) % ny, n // (nx * ny))``.

    Directed link ids are ``("torus", axis, (x, y, z), (x', y', z'))``.
    """

    def __init__(self, nx: int, ny: int, nz: int):
        if min(nx, ny, nz) < 1:
            raise ValueError(f"bad torus shape {nx}x{ny}x{nz}")
        super().__init__(nx * ny * nz)
        self.shape = (nx, ny, nz)

    @classmethod
    def for_nodes(cls, num_nodes: int) -> "Torus3D":
        """Most-cubic torus holding exactly ``num_nodes`` nodes."""
        if num_nodes < 1:
            raise ValueError(f"need at least one node, got {num_nodes}")
        best = None
        for nx in range(1, num_nodes + 1):
            if num_nodes % nx:
                continue
            rest = num_nodes // nx
            for ny in range(1, rest + 1):
                if rest % ny:
                    continue
                nz = rest // ny
                spread = max(nx, ny, nz) - min(nx, ny, nz)
                key = (spread, max(nx, ny, nz))
                if best is None or key < best[0]:
                    best = (key, (nx, ny, nz))
        assert best is not None
        return cls(*best[1])

    def coordinates(self, node: int) -> Tuple[int, int, int]:
        """Torus coordinates of ``node``."""
        self.check_node(node)
        nx, ny, _ = self.shape
        return node % nx, (node // nx) % ny, node // (nx * ny)

    def node_at(self, x: int, y: int, z: int) -> int:
        """Node id at torus coordinates ``(x, y, z)``."""
        nx, ny, nz = self.shape
        if not (0 <= x < nx and 0 <= y < ny and 0 <= z < nz):
            raise ValueError(f"coordinates ({x}, {y}, {z}) outside torus")
        return (z * ny + y) * nx + x

    def layout_positions(self) -> Dict[int, Tuple[float, float]]:
        """Isometric projection of the 3-D torus into the unit square.

        The Z axis is drawn as a diagonal offset (classic cabinet
        projection), so same-(x, y) columns read as depth and the XY
        rings stay on a regular grid.
        """
        nx, ny, nz = self.shape
        span_x = nx + 0.45 * (nz - 1) if nz > 1 else float(nx)
        span_y = ny + 0.30 * (nz - 1) if nz > 1 else float(ny)
        out: Dict[int, Tuple[float, float]] = {}
        for node in range(self.num_nodes):
            x, y, z = self.coordinates(node)
            u = (x + 0.5 + 0.45 * z) / span_x
            v = (y + 0.5 + 0.30 * z) / span_y
            out[node] = (round(u, 6), round(v, 6))
        return out

    def links(self) -> Sequence[LinkId]:
        nx, ny, nz = self.shape
        out: List[LinkId] = []
        for z in range(nz):
            for y in range(ny):
                for x in range(nx):
                    here = (x, y, z)
                    for axis, size, neighbour in (
                        (0, nx, ((x + 1) % nx, y, z)),
                        (1, ny, (x, (y + 1) % ny, z)),
                        (2, nz, (x, y, (z + 1) % nz)),
                    ):
                        if size > 1 and neighbour != here:
                            out.append(("torus", axis, here, neighbour))
                            out.append(("torus", axis, neighbour, here))
        # Size-2 rings create each pair twice (wrap == direct); dedupe.
        seen = set()
        unique: List[LinkId] = []
        for link in out:
            if link not in seen:
                seen.add(link)
                unique.append(link)
        return unique

    def neighbors(self, node: int) -> List[Tuple[int, LinkId]]:
        """Adjacent nodes and the directed links toward them.

        Order is axis-major (x, y, z), positive direction first.  On a
        size-2 ring both directions reach the same neighbour over the
        same link, so the pair appears once.
        """
        here = self.coordinates(node)
        out: List[Tuple[int, LinkId]] = []
        seen = set()
        for axis in range(3):
            size = self.shape[axis]
            if size == 1:
                continue
            for step in (1, -1):
                coords = list(here)
                coords[axis] = (coords[axis] + step) % size
                neighbour = tuple(coords)
                link = ("torus", axis, here, neighbour)
                if link not in seen:
                    seen.add(link)
                    out.append((self.node_at(*neighbour), link))
        return out

    def route(self, src: int, dst: int) -> List[LinkId]:
        validate_route_endpoints(self, src, dst)
        nx, ny, nz = self.shape
        sx, sy, sz = self.coordinates(src)
        dx, dy, dz = self.coordinates(dst)
        hops: List[LinkId] = []
        for fr, to in _ring_steps(nx, sx, dx):
            hops.append(("torus", 0, (fr, sy, sz), (to, sy, sz)))
        for fr, to in _ring_steps(ny, sy, dy):
            hops.append(("torus", 1, (dx, fr, sz), (dx, to, sz)))
        for fr, to in _ring_steps(nz, sz, dz):
            hops.append(("torus", 2, (dx, dy, fr), (dx, dy, to)))
        return hops

    def distance(self, src: int, dst: int) -> int:
        validate_route_endpoints(self, src, dst)
        coords_s = self.coordinates(src)
        coords_d = self.coordinates(dst)
        total = 0
        for axis in range(3):
            size = self.shape[axis]
            forward = (coords_d[axis] - coords_s[axis]) % size
            total += min(forward, size - forward)
        return total
