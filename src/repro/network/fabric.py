"""Dynamic network fabric: routes transfers over contended links.

The fabric applies a *channel-occupancy* approximation of wormhole
routing: a message acquires every link on its route, holds them all for

    hops * hop_latency + nbytes * us_per_byte

and releases them.  The per-byte term is paid once (the worm is
pipelined across hops), while messages whose routes share a link
serialize — which is what produces the network-contention component of
collective times.

Deadlock freedom: links are always acquired in one global canonical
order (their index in ``topology.links()``), so no cyclic wait can
arise regardless of topology or traffic pattern.

Observability: every link accumulates busy/wait time (see
:class:`~repro.network.link.Link`), transfers emit ``link``-category
occupancy spans nested under the message span when tracing is on, and
the fabric feeds transfer/stall counters and wait/size histograms to
the machine's metrics registry.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry
from ..sim import Environment, Event, Interrupt, Span, Tracer
from .link import Link, LinkParameters
from .topology import LinkId, Topology

#: A rolled-back-able set of link bookings: ``(link, previous_busy_until)``
#: per link, in canonical acquisition order.
RouteBooking = List[Tuple[Link, float]]

__all__ = ["NetworkFabric", "TransferAborted"]


class TransferAborted(Exception):
    """A transfer died in the network: its route crossed a link that
    failed mid-flight, or no live route existed when it was issued.
    The resilient transport treats this exactly like a lost message and
    retransmits (possibly over a detour)."""

    def __init__(self, src: int, dst: int, reason: str):
        super().__init__(f"transfer {src}->{dst} aborted: {reason}")
        self.src = src
        self.dst = dst
        self.reason = reason


class NetworkFabric:
    """Routes byte transfers over a :class:`Topology` with contention."""

    def __init__(self, env: Environment, topology: Topology,
                 params: LinkParameters, contention: bool = True,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 injector: Optional[object] = None):
        self.env = env
        self.topology = topology
        self.params = params
        self.contention = contention
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry(enabled=False)
        #: Optional :class:`~repro.faults.FaultInjector`.  ``None`` (the
        #: default, and always the case for fault-free plans) keeps the
        #: transfer hot path identical to the no-faults build.
        self.injector = injector
        self._links: Dict[LinkId, Link] = {}
        self._order: Dict[LinkId, int] = {}
        for index, link_id in enumerate(topology.links()):
            self._links[link_id] = Link(env, link_id, params)
            self._order[link_id] = index
        # The topology's primary routes are static; computing one per
        # transfer (positions/turns math) shows up hard in alltoall.
        # Detours around dead links are computed fresh every time.
        self._route_cache: Dict[Tuple[int, int], List[LinkId]] = {}

    def _route(self, src: int, dst: int) -> List[LinkId]:
        """The (cached) fault-free route for ``src`` -> ``dst``."""
        key = (src, dst)
        route = self._route_cache.get(key)
        if route is None:
            route = self.topology.route(src, dst)
            self._route_cache[key] = route
        return route

    def link(self, link_id: LinkId) -> Link:
        """The :class:`Link` object for ``link_id``."""
        return self._links[link_id]

    def transfer_time(self, src: int, dst: int, nbytes: int) -> float:
        """Uncontended duration of a transfer (the occupancy hold time)."""
        hops = self.topology.distance(src, dst)
        return hops * self.params.hop_latency_us + \
            nbytes * self.params.us_per_byte

    def _select_route(self, src: int, dst: int
                      ) -> Tuple[List[LinkId], bool]:
        """The route a transfer issued now takes, detouring around any
        dead links, plus whether it is a detour.  Raises
        :class:`TransferAborted` when the live links no longer connect
        the pair."""
        injector = self.injector
        if injector is None:
            return self._route(src, dst), False
        dead = injector.dead_links(self.env.now)
        route = self._route(src, dst)
        if not dead or not any(link in dead for link in route):
            return route, False
        detour = self.topology.reroute(src, dst, dead)
        if detour is None:
            injector.record_unroutable()
            raise TransferAborted(src, dst, "no live route")
        injector.record_reroute()
        return detour, True

    # -- synchronous fast-path booking ------------------------------------
    def try_book_route(self, src: int, dst: int, nbytes: int
                       ) -> Optional[Tuple[float, RouteBooking]]:
        """Book every link of an *uncontended* transfer starting now.

        Synchronous counterpart of :meth:`transfer` for the analytic
        short-circuit: only callable with no fault injector attached
        (the caller checks), and only succeeds when every link on the
        route is idle at the current instant — any busy or booked link
        rolls the whole attempt back and returns ``None``, forcing the
        full simulation path (which is where contention waits, stall
        counters, and spans live).  Returns ``(hold, bookings)``; the
        caller must finish with :meth:`commit_route` (success) or
        :meth:`undo_route` (a later leg of its own booking failed).
        No counters or link statistics are touched until commit.
        """
        route = self._route(src, dst)
        if not route:
            return 0.0, []
        hold = len(route) * self.params.hop_latency_us + \
            nbytes * self.params.us_per_byte
        if not self.contention:
            return hold, []
        now = self.env._now
        bookings: RouteBooking = []
        for link_id in sorted(route, key=self._order.__getitem__):
            link = self._links[link_id]
            booking = link.resource.try_occupy(hold)
            if booking is None or booking[0] != now:
                if booking is not None:
                    link.resource.undo_occupy(booking[1])
                self.undo_route(bookings)
                return None
            bookings.append((link, booking[1]))
        return hold, bookings

    def undo_route(self, bookings: RouteBooking) -> None:
        """Roll back a :meth:`try_book_route` booking (synchronously)."""
        for link, previous in reversed(bookings):
            link.resource.undo_occupy(previous)

    def commit_route(self, bookings: RouteBooking, nbytes: int,
                     hold: float) -> None:
        """Commit a booking: link statistics and work counters."""
        for link, _ in bookings:
            link.record(nbytes, busy_us=hold)
        work = self.env.work
        if work is not None:
            if bookings:
                work.link_acquisitions += len(bookings)
                work.resource_occupancies += len(bookings)
            work.transfers_booked += 1
            work.transfers_completed += 1
            work.transfers_shortcircuited += 1

    def transfer(self, src: int, dst: int, nbytes: int,
                 parent_span: Optional[Span] = None
                 ) -> Generator[Event, None, None]:
        """Process generator performing one ``src`` -> ``dst`` transfer.

        Yields until the message's tail has left the network.  A
        self-transfer (``src == dst``) completes immediately: it never
        enters the fabric.  ``parent_span`` (the enclosing message
        span) becomes the parent of the per-link occupancy spans.

        With a fault injector attached, the route detours around dead
        links, per-byte time stretches by the worst active degradation
        on the route, and a link dying mid-flight aborts the transfer
        with :class:`TransferAborted` (the injector interrupts this
        process; held links are released first).
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        injector = self.injector
        profiler = self.env.profiler
        if profiler is None:
            route, detoured = self._select_route(src, dst)
        else:
            profiler.enter("fabric.route")
            try:
                route, detoured = self._select_route(src, dst)
            finally:
                profiler.leave()
        work = self.env.work
        if work is not None:
            work.transfers_booked += 1
            if detoured:
                work.transfers_rerouted += 1
        if not route:
            if work is not None:
                work.transfers_completed += 1
            return
        # A detour is fault-recovery work: wrap its link occupancy in a
        # dedicated span so the extra hops are attributable.
        detour_span: Optional[Span] = None
        if detoured and self.tracer.enabled:
            detour_span = self.tracer.begin(
                self.env.now, f"reroute {src}->{dst}", "reroute",
                node=src, parent=parent_span, dst=dst, nbytes=nbytes,
                hops=len(route))
            parent_span = detour_span
        factor = 1.0 if injector is None else \
            injector.route_degrade_factor(route, self.env.now)
        hold = len(route) * self.params.hop_latency_us + \
            nbytes * self.params.us_per_byte * factor
        if injector is None:
            yield from self._occupy(route, nbytes, hold, src, dst,
                                    parent_span)
            return
        process = self.env.active_process
        injector.begin_transfer(process, route)
        try:
            yield from self._occupy(route, nbytes, hold, src, dst,
                                    parent_span)
        except Interrupt as interrupt:
            injector.record_abort()
            if work is not None:
                work.transfers_aborted += 1
            raise TransferAborted(src, dst,
                                  f"interrupted: {interrupt.cause}")
        finally:
            injector.end_transfer(process)
            if detour_span is not None:
                self.tracer.end(detour_span, self.env.now)

    def _occupy(self, route: List[LinkId], nbytes: int, hold: float,
                src: int, dst: int, parent_span: Optional[Span]
                ) -> Generator[Event, None, None]:
        """Acquire the route, hold it, release it.  On an Interrupt
        every acquired (or still queued) request is released before the
        exception propagates, so a dying transfer never wedges a link."""
        work = self.env.work
        if not self.contention:
            yield self.env.sleep(hold)
            if work is not None:
                work.transfers_completed += 1
            return
        ordered = sorted(route, key=self._order.__getitem__)
        if self.injector is None and not self.tracer.enabled and \
                not self.metrics.enabled:
            # Batched booking: with every link on the route idle right
            # now (the common case) the whole multi-hop occupancy is
            # one synchronous booking plus ONE completion event,
            # instead of per-hop request/grant/release churn.  Any
            # busy link falls through to the per-hop protocol below,
            # which is where waiting and stall accounting live.  No
            # injector means no Interrupt can arrive mid-hold, so the
            # bookings never need to be torn down early.
            now = self.env._now
            bookings: RouteBooking = []
            for link_id in ordered:
                link = self._links[link_id]
                booking = link.resource.try_occupy(hold)
                if booking is None or booking[0] != now:
                    if booking is not None:
                        link.resource.undo_occupy(booking[1])
                    self.undo_route(bookings)
                    bookings = None  # type: ignore[assignment]
                    break
                bookings.append((link, booking[1]))
            if bookings is not None:
                if work is not None:
                    work.link_acquisitions += len(bookings)
                    work.resource_occupancies += len(bookings)
                yield self.env.sleep(hold)
                for link, _ in bookings:
                    link.record(nbytes, busy_us=hold)
                if work is not None:
                    work.transfers_completed += 1
                return
        requests: List[Tuple[LinkId, Event]] = []
        occupancy: List[Span] = []
        queued_at = self.env.now
        try:
            for link_id in ordered:
                arrived = self.env.now
                request = self._links[link_id].resource.request()
                requests.append((link_id, request))
                yield request
                link_wait = self.env.now - arrived
                if link_wait > 0:
                    self._links[link_id].record_wait(link_wait)
            wait = self.env.now - queued_at
            if work is not None:
                work.link_acquisitions += len(ordered)
                if wait > 0:
                    work.transfers_stalled += 1
            metrics = self.metrics
            if metrics.enabled:
                metrics.counter("fabric.transfers").inc()
                metrics.histogram("fabric.transfer_bytes").observe(nbytes)
                if wait > 0:
                    metrics.counter("fabric.contention_stalls").inc()
                    metrics.histogram("fabric.wait_us").observe(wait)
            if wait > 0:
                self.tracer.emit(self.env.now, "link-contention", src,
                                 dst=dst, waited_us=wait, nbytes=nbytes)
            if self.tracer.enabled:
                occupancy = [
                    self.tracer.begin(self.env.now, f"link {link_id}",
                                      "link", node=src, parent=parent_span,
                                      dst=dst, nbytes=nbytes)
                    for link_id, _ in requests]
            yield self.env.sleep(hold)
        except Interrupt:
            for link_id, request in requests:
                self._links[link_id].resource.release(request)
            for span in occupancy:
                self.tracer.end(span, self.env.now)
            raise
        for link_id, request in requests:
            self._links[link_id].record(nbytes, busy_us=hold)
            self._links[link_id].resource.release(request)
        for span in occupancy:
            self.tracer.end(span, self.env.now)
        if work is not None:
            work.transfers_completed += 1

    def utilisation(self) -> Dict[LinkId, int]:
        """Bytes carried per link (only meaningful with contention on)."""
        return {link_id: link.bytes_carried
                for link_id, link in self._links.items()
                if link.transfers}
