"""Multistage Omega network with destination-tag routing.

This models the IBM SP2 interconnect: the Vulcan switch fabric, a
multistage network of small crossbar switch elements with a latency of
a few hundred nanoseconds per stage [Stunkel et al. 1994].  We use the
classic Omega construction — ``n = ceil(log_k p)`` stages of ``k x k``
crossbars connected by perfect shuffles — which shares the SP2 fabric's
essential properties: O(log p) distance between every pair of nodes and
internal blocking when two routes need the same inter-stage wire.

Routing is destination-tag: before stage ``s`` the position's base-k
digits are rotated left (the perfect shuffle) and the crossbar then
replaces the low digit with digit ``n-1-s`` of the destination.  Two
messages contend exactly when they leave the same stage on the same
wire, so link ids are ``("ms", stage, position_after_stage)``.
"""

from __future__ import annotations

from typing import AbstractSet, List, Optional, Sequence

from .topology import LinkId, Topology, validate_route_endpoints

__all__ = ["OmegaNetwork"]


class OmegaNetwork(Topology):
    """Omega network on ``k^n >= num_nodes`` ports with ``k x k`` switches.

    When ``num_nodes`` is not a power of ``k`` the fabric is built for
    the next power and nodes occupy the first ports, as real frames
    were partially populated.
    """

    def __init__(self, num_nodes: int, radix: int = 4):
        if radix < 2:
            raise ValueError(f"radix must be >= 2, got {radix}")
        super().__init__(num_nodes)
        self.radix = radix
        self.stages = 1
        ports = radix
        while ports < num_nodes:
            ports *= radix
            self.stages += 1
        self.ports = ports

    def _rotate_left(self, position: int) -> int:
        """Rotate the base-``radix`` digits of ``position`` left by one."""
        high = position * self.radix // self.ports
        return (position * self.radix) % self.ports + high

    def _dst_digit(self, dst: int, stage: int) -> int:
        """Digit ``stages - 1 - stage`` of ``dst`` in base ``radix``."""
        shift = self.stages - 1 - stage
        return (dst // (self.radix ** shift)) % self.radix

    def positions(self, src: int, dst: int) -> List[int]:
        """Virtual port positions after each stage, ending at ``dst``."""
        validate_route_endpoints(self, src, dst)
        positions = []
        pos = src
        for stage in range(self.stages):
            shuffled = self._rotate_left(pos)
            pos = shuffled - (shuffled % self.radix) + \
                self._dst_digit(dst, stage)
            positions.append(pos)
        assert pos == dst, "destination-tag routing must land on dst"
        return positions

    def links(self) -> Sequence[LinkId]:
        return [("ms", stage, pos)
                for stage in range(self.stages)
                for pos in range(self.ports)]

    def route(self, src: int, dst: int) -> List[LinkId]:
        validate_route_endpoints(self, src, dst)
        if src == dst:
            return []
        return [("ms", stage, pos)
                for stage, pos in enumerate(self.positions(src, dst))]

    def distance(self, src: int, dst: int) -> int:
        validate_route_endpoints(self, src, dst)
        return 0 if src == dst else self.stages

    def reroute(self, src: int, dst: int,
                dead: AbstractSet[LinkId]) -> Optional[List[LinkId]]:
        """Alternate-path selection: misroute via an intermediate port.

        A multistage fabric has one destination-tag path per pair, but
        the SP2's switch frames offered alternates; we model them as a
        two-pass traversal ``src -> via -> dst`` through the fabric
        (double the stage latency), trying intermediate ports in
        ascending order so the selection is deterministic.
        """
        for via in range(self.num_nodes):
            if via == src or via == dst:
                continue
            candidate = self.route(src, via) + self.route(via, dst)
            if not any(link in dead for link in candidate):
                return candidate
        return None
