"""Abstract interconnect topology.

A topology is a static description of the machine's wiring: a set of
nodes, a set of directed links, and a deterministic route (sequence of
links) between any ordered pair of nodes.  The dynamic behaviour —
occupancy, queueing, transfer timing — lives in
:mod:`repro.network.fabric`; keeping the two separate lets the tests
verify routing properties (minimality, deadlock-freedom of the
acquisition order, dimension order) without running a simulation.

Links are identified by hashable ids; the conventional id is a tuple
``(kind, endpoint_a, endpoint_b)``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections import deque
from typing import (
    AbstractSet,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

__all__ = ["Topology", "LinkId", "validate_route_endpoints"]

LinkId = Hashable


class Topology(ABC):
    """Static wiring of an interconnection network."""

    def __init__(self, num_nodes: int):
        if num_nodes < 1:
            raise ValueError(f"need at least one node, got {num_nodes}")
        self._num_nodes = num_nodes

    @property
    def num_nodes(self) -> int:
        """Number of compute nodes attached to the network."""
        return self._num_nodes

    @abstractmethod
    def links(self) -> Sequence[LinkId]:
        """All directed link ids in the network (stable order)."""

    @abstractmethod
    def route(self, src: int, dst: int) -> List[LinkId]:
        """Ordered links a message from ``src`` to ``dst`` traverses.

        Must be deterministic and return ``[]`` when ``src == dst``.
        """

    def distance(self, src: int, dst: int) -> int:
        """Hop count between two nodes (length of the route)."""
        return len(self.route(src, dst))

    # -- fault-aware routing ------------------------------------------------
    def neighbors(self, node: int) -> List[Tuple[int, LinkId]]:
        """``(neighbour, link)`` pairs out of ``node``, in stable order.

        Direct topologies (mesh, torus) implement this to enable the
        generic BFS :meth:`reroute`; indirect topologies (multistage)
        have no node-to-node links and override :meth:`reroute`
        directly instead.
        """
        raise NotImplementedError

    def route_avoiding(self, src: int, dst: int,
                       dead: AbstractSet[LinkId]
                       ) -> Optional[List[LinkId]]:
        """A route from ``src`` to ``dst`` using no link in ``dead``.

        Returns the primary dimension-order route when it is clean, a
        deterministic detour otherwise, or ``None`` when ``dead``
        disconnects the pair.
        """
        route = self.route(src, dst)
        if not any(link in dead for link in route):
            return route
        return self.reroute(src, dst, dead)

    def reroute(self, src: int, dst: int,
                dead: AbstractSet[LinkId]) -> Optional[List[LinkId]]:
        """Shortest detour around ``dead``, or ``None`` if disconnected.

        The default is a breadth-first search over :meth:`neighbors`;
        expansion order is the (stable) neighbour order, so the detour
        chosen is deterministic.  Topologies that provide neither
        ``neighbors`` nor their own ``reroute`` have no alternate
        paths.
        """
        try:
            self.neighbors(src)
        except NotImplementedError:
            return None
        parents = {src: None}
        frontier = deque([src])
        while frontier:
            node = frontier.popleft()
            if node == dst:
                break
            for neighbour, link in self.neighbors(node):
                if neighbour not in parents and link not in dead:
                    parents[neighbour] = (node, link)
                    frontier.append(neighbour)
        if dst not in parents:
            return None
        hops: List[LinkId] = []
        node = dst
        while parents[node] is not None:
            node, link = parents[node]
            hops.append(link)
        hops.reverse()
        return hops

    # -- visual layout ------------------------------------------------------
    def layout_positions(self) -> Dict[int, Tuple[float, float]]:
        """Deterministic 2-D positions for every node, in the unit
        square, for visual replay (see :mod:`repro.dash`).

        The default places nodes on a circle in node-id order starting
        at twelve o'clock — the natural drawing for indirect fabrics
        like the Omega network, whose internal stages have no spatial
        node arrangement.  Direct topologies override this with their
        physical geometry.  Coordinates are rounded to 6 decimals so
        serialized layouts are byte-stable across platforms.
        """
        p = self._num_nodes
        if p == 1:
            return {0: (0.5, 0.5)}
        out: Dict[int, Tuple[float, float]] = {}
        for node in range(p):
            angle = 2.0 * math.pi * node / p - math.pi / 2.0
            out[node] = (round(0.5 + 0.44 * math.cos(angle), 6),
                         round(0.5 + 0.44 * math.sin(angle), 6))
        return out

    def check_node(self, node: int) -> None:
        """Raise ``ValueError`` for out-of-range node ids."""
        if not 0 <= node < self._num_nodes:
            raise ValueError(
                f"node {node} out of range [0, {self._num_nodes})")

    def average_distance(self) -> float:
        """Mean hop count over all ordered pairs of distinct nodes."""
        p = self._num_nodes
        if p < 2:
            return 0.0
        total = sum(self.distance(s, d)
                    for s in range(p) for d in range(p) if s != d)
        return total / (p * (p - 1))

    def diameter(self) -> int:
        """Maximum hop count over all ordered pairs."""
        p = self._num_nodes
        return max((self.distance(s, d)
                    for s in range(p) for d in range(p)), default=0)


def validate_route_endpoints(topology: Topology, src: int, dst: int) -> None:
    """Shared argument validation used by all concrete topologies."""
    topology.check_node(src)
    topology.check_node(dst)
