"""Interconnection-network models: topologies, links, and the fabric."""

from .fabric import NetworkFabric, TransferAborted
from .link import Link, LinkParameters, bandwidth_to_us_per_byte
from .mesh import Mesh2D
from .multistage import OmegaNetwork
from .topology import LinkId, Topology
from .torus import Torus3D

__all__ = [
    "Link",
    "LinkId",
    "LinkParameters",
    "Mesh2D",
    "NetworkFabric",
    "OmegaNetwork",
    "Topology",
    "Torus3D",
    "TransferAborted",
    "bandwidth_to_us_per_byte",
]
