"""2-D mesh topology with dimension-order (X-then-Y) routing.

This models the Intel Paragon interconnect: a 2-D mesh of mesh-router
chips (iMRCs) with deterministic dimension-order wormhole routing and
no wrap-around links [Dunigan 1995].
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .topology import LinkId, Topology, validate_route_endpoints

__all__ = ["Mesh2D"]


class Mesh2D(Topology):
    """A ``width`` x ``height`` mesh; node ``n`` sits at
    ``(n % width, n // width)``.

    Directed link ids are ``("mesh", (x0, y0), (x1, y1))`` between
    adjacent coordinates.
    """

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ValueError(f"bad mesh shape {width}x{height}")
        super().__init__(width * height)
        self.width = width
        self.height = height

    @classmethod
    def for_nodes(cls, num_nodes: int) -> "Mesh2D":
        """Most-square mesh holding exactly ``num_nodes`` nodes.

        Prefers the factorisation closest to square, matching how
        Paragon partitions were allocated as near-square sub-meshes.
        """
        if num_nodes < 1:
            raise ValueError(f"need at least one node, got {num_nodes}")
        best = (1, num_nodes)
        for width in range(1, int(num_nodes ** 0.5) + 1):
            if num_nodes % width == 0:
                best = (width, num_nodes // width)
        # best has width <= height; either orientation is equivalent.
        return cls(best[0], best[1])

    def coordinates(self, node: int) -> Tuple[int, int]:
        """Grid coordinates of ``node``."""
        self.check_node(node)
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        """Node id at grid coordinates ``(x, y)``."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinates ({x}, {y}) outside mesh")
        return y * self.width + x

    def layout_positions(self) -> Dict[int, Tuple[float, float]]:
        """Grid layout: node cells centred in the unit square, matching
        the physical mesh geometry (x right, y down)."""
        out: Dict[int, Tuple[float, float]] = {}
        for node in range(self.num_nodes):
            x, y = self.coordinates(node)
            out[node] = (round((x + 0.5) / self.width, 6),
                         round((y + 0.5) / self.height, 6))
        return out

    def links(self) -> Sequence[LinkId]:
        out: List[LinkId] = []
        for y in range(self.height):
            for x in range(self.width):
                if x + 1 < self.width:
                    out.append(("mesh", (x, y), (x + 1, y)))
                    out.append(("mesh", (x + 1, y), (x, y)))
                if y + 1 < self.height:
                    out.append(("mesh", (x, y), (x, y + 1)))
                    out.append(("mesh", (x, y + 1), (x, y)))
        return out

    def neighbors(self, node: int) -> List[Tuple[int, LinkId]]:
        """Adjacent nodes and the directed links toward them (+x, -x,
        +y, -y order)."""
        x, y = self.coordinates(node)
        out: List[Tuple[int, LinkId]] = []
        for nx, ny in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
            if 0 <= nx < self.width and 0 <= ny < self.height:
                out.append((self.node_at(nx, ny),
                            ("mesh", (x, y), (nx, ny))))
        return out

    def route(self, src: int, dst: int) -> List[LinkId]:
        validate_route_endpoints(self, src, dst)
        x, y = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        hops: List[LinkId] = []
        while x != dx:  # X dimension first
            nx = x + (1 if dx > x else -1)
            hops.append(("mesh", (x, y), (nx, y)))
            x = nx
        while y != dy:  # then Y
            ny = y + (1 if dy > y else -1)
            hops.append(("mesh", (x, y), (x, ny)))
            y = ny
        return hops

    def distance(self, src: int, dst: int) -> int:
        validate_route_endpoints(self, src, dst)
        x, y = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(dx - x) + abs(dy - y)
