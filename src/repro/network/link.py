"""Physical link model: a FIFO channel with latency and bandwidth."""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Environment, Resource

__all__ = ["LinkParameters", "Link"]

#: Conversion factor: 1 MByte/s equals this many bytes per microsecond.
_BYTES_PER_US_PER_MBS = 1.048576  # 2**20 bytes / 1e6 us


def bandwidth_to_us_per_byte(mbytes_per_s: float) -> float:
    """Convert a bandwidth in MByte/s to a cost in microseconds/byte."""
    if mbytes_per_s <= 0:
        raise ValueError(f"bandwidth must be positive, got {mbytes_per_s}")
    return 1.0 / (mbytes_per_s * _BYTES_PER_US_PER_MBS)


@dataclass(frozen=True)
class LinkParameters:
    """Per-link timing parameters.

    ``hop_latency_us`` is the switch/router traversal time for the
    message header; ``bandwidth_mbs`` is the raw channel bandwidth.
    """

    hop_latency_us: float
    bandwidth_mbs: float

    @property
    def us_per_byte(self) -> float:
        """Serialization cost of one byte on this link."""
        return bandwidth_to_us_per_byte(self.bandwidth_mbs)


class Link:
    """A directed channel: a capacity-1 resource plus timing parameters.

    The fabric acquires the link for the duration of a transfer; FIFO
    granting in :class:`~repro.sim.Resource` makes contention
    deterministic.
    """

    def __init__(self, env: Environment, link_id, params: LinkParameters):
        self.link_id = link_id
        self.params = params
        self.resource = Resource(env, capacity=1)
        self.bytes_carried = 0
        self.transfers = 0
        #: Simulated microseconds this link was held by transfers.
        self.busy_us = 0.0
        #: Queueing delay this link's occupancy imposed on transfers.
        self.wait_us = 0.0
        #: Transfers that had to wait for this link.
        self.contended_transfers = 0

    def record(self, nbytes: int, busy_us: float = 0.0) -> None:
        """Account a completed transfer for utilisation statistics."""
        self.bytes_carried += nbytes
        self.transfers += 1
        self.busy_us += busy_us

    def record_wait(self, wait_us: float) -> None:
        """Account the queueing delay one transfer spent on this link."""
        self.wait_us += wait_us
        self.contended_transfers += 1
