"""Fixed workload suite measuring the simulator's own performance.

The figure benches measure the *modelled machines*; this suite
measures the *simulator*.  It runs a fixed set of workloads — the
``bench_micro_simulator`` kernels plus representative collectives at
p=64/256 on all three machines — under a
:class:`~repro.obs.perf.WorkMeter` and emits the canonical
``BENCH_engine.json`` trajectory artifact with two sections:

``work``
    Deterministic integer work counters (plus simulated time) per
    workload.  Byte-stable across runs, processes, and hosts — gated
    by *identity*, exactly like the sweep baseline's cell times: any
    change means the engine is doing different work and must be
    explained by the PR that caused it.

``throughput``
    Host wall-clock figures (events/sec).  Inherently noisy, so gated
    by *ratio* with generous slack, and never byte-compared.

``repro-bench perf --check BENCH_engine.json`` exits nonzero on any
work-counter mismatch or on aggregate throughput below
``min_ratio`` x the baseline — the regression gate the engine speed
overhaul (and every PR after it) is judged against.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from ..obs.perf import WorkMeter
from ..obs.profiler import EngineProfiler
from ..sim import SIM_VERSION

__all__ = [
    "PERF_SCHEMA",
    "PerfRun",
    "PerfCheckResult",
    "perf_workload_names",
    "run_workload",
    "run_perf_suite",
    "build_perf_artifact",
    "work_section_text",
    "check_perf_artifact",
    "dumps_perf_artifact",
    "write_perf_artifact",
    "load_perf_artifact",
]

PathLike = Union[str, Path]

PERF_SCHEMA = "repro-engine-perf/1"

#: Default floor for ``current events/sec / baseline events/sec``.
#: Generous because the baseline was measured on a different host:
#: the gate exists to catch order-of-magnitude engine regressions,
#: not scheduler jitter.
DEFAULT_MIN_RATIO = 0.33


def _round9(value: float) -> float:
    """9-significant-digit rounding (the repo's golden convention)."""
    return float(f"{value:.9g}")


@dataclass(frozen=True)
class PerfRun:
    """One workload's measurement: deterministic work + noisy clock."""

    workload: str
    work: Dict[str, int]
    sim_time_us: float
    wall_s: float

    @property
    def events_per_sec(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.work.get("events_fired", 0) / self.wall_s


# -- the fixed workloads --------------------------------------------------

def _kernel_engine_timeouts(env) -> float:
    def proc():
        for _ in range(400000):
            yield env.timeout(1.0)

    env.process(proc())
    env.run()
    return env.now


def _kernel_engine_sleep_pool(env) -> float:
    """The engine-internal pooled-timeout path (``Environment.sleep``):
    the primitive every hot model path now rides on."""
    def proc():
        for _ in range(800000):
            yield env.sleep(1.0)

    env.process(proc())
    env.run()
    return env.now


def _kernel_resource_handoff(env) -> float:
    from ..sim import Resource

    resource = Resource(env, capacity=1)

    def worker():
        for _ in range(4000):
            request = resource.request()
            yield request
            yield env.timeout(0.1)
            resource.release(request)

    for index in range(10):
        env.process(worker(), name=f"worker-{index}")
    env.run()
    return env.now


def _kernel_store_pipeline(env) -> float:
    from ..sim import Store

    store = Store(env)

    def producer():
        for item in range(20000):
            store.put(item)
            yield env.timeout(0.5)

    def consumer():
        for _ in range(20000):
            yield store.get()

    env.process(producer(), name="producer")
    env.process(consumer(), name="consumer")
    env.run()
    return env.now


def _micro(kernel, scheduler: Optional[str] = None
           ) -> Callable[[WorkMeter, Optional[EngineProfiler]], float]:
    def run(meter: WorkMeter,
            profiler: Optional[EngineProfiler]) -> float:
        from ..sim import Environment

        env = Environment(scheduler=scheduler)
        env.work = meter
        env.profiler = profiler
        return kernel(env)

    return run


def _ptp(machine: str, messages: int, nbytes: int
         ) -> Callable[[WorkMeter, Optional[EngineProfiler]], float]:
    def run(meter: WorkMeter,
            profiler: Optional[EngineProfiler]) -> float:
        from ..mpi import MpiWorld

        world = MpiWorld(machine, 2, seed=0)
        world.env.work = meter
        world.env.profiler = profiler

        def program(ctx):
            if ctx.rank == 0:
                for tag in range(messages):
                    yield from ctx.send(1, nbytes, tag=tag)
                return None
            for tag in range(messages):
                yield from ctx.recv(0, tag=tag)
            return None

        world.run(program)
        return world.now

    return run


def _collective(machine: str, op: str, nbytes: int, p: int,
                iterations: int = 1
                ) -> Callable[[WorkMeter, Optional[EngineProfiler]],
                              float]:
    def run(meter: WorkMeter,
            profiler: Optional[EngineProfiler]) -> float:
        from ..mpi import MpiWorld

        world = MpiWorld(machine, p, seed=0)
        world.env.work = meter
        world.env.profiler = profiler
        return world.run_collective(op, nbytes, iterations=iterations)

    return run


def _workloads() -> "Dict[str, Tuple[Tuple[str, ...], Callable]]":
    """Name -> (suites it belongs to, runner).  Insertion order is the
    execution (and artifact) order; names are the artifact keys, so
    renaming one invalidates baselines just like changing its work."""
    table: Dict[str, Tuple[Tuple[str, ...], Callable]] = {}
    both = ("smoke", "default")
    table["micro/engine-timeouts"] = (both, _micro(_kernel_engine_timeouts))
    table["micro/engine-sleep-pool"] = \
        (both, _micro(_kernel_engine_sleep_pool))
    table["micro/engine-timeouts-calendar"] = \
        (both, _micro(_kernel_engine_timeouts, scheduler="calendar"))
    table["micro/resource-handoff"] = \
        (both, _micro(_kernel_resource_handoff))
    table["micro/store-pipeline"] = (both, _micro(_kernel_store_pipeline))
    table["micro/ptp-t3d-p2"] = (both, _ptp("t3d", 100, 64))
    full = ("default",)
    for machine in ("sp2", "t3d", "paragon"):
        table[f"collective/{machine}-broadcast-p64"] = \
            (full, _collective(machine, "broadcast", 4096, 64))
        table[f"collective/{machine}-broadcast-p256"] = \
            (full, _collective(machine, "broadcast", 4096, 256))
        table[f"collective/{machine}-allreduce-p256"] = \
            (full, _collective(machine, "allreduce", 4096, 256))
        table[f"collective/{machine}-alltoall-p64"] = \
            (full, _collective(machine, "alltoall", 256, 64))
    # Only the T3D scales to 1024 nodes (sp2 caps at 512, paragon at
    # 416), so the paper-scale collectives run there.
    table["collective/t3d-broadcast-p1024"] = \
        (full, _collective("t3d", "broadcast", 4096, 1024))
    table["collective/t3d-allreduce-p1024"] = \
        (full, _collective("t3d", "allreduce", 4096, 1024))
    return table


def perf_workload_names(suite: str = "default") -> List[str]:
    """The workloads ``suite`` runs, in execution order."""
    names = [name for name, (suites, _run) in _workloads().items()
             if suite in suites]
    if not names:
        raise ValueError(f"unknown perf suite {suite!r} "
                         f"(expected 'smoke' or 'default')")
    return names


def run_workload(name: str,
                 profiler: Optional[EngineProfiler] = None) -> PerfRun:
    """Run one named workload under a fresh :class:`WorkMeter`."""
    try:
        _suites, runner = _workloads()[name]
    except KeyError:
        raise ValueError(f"unknown perf workload {name!r}") from None
    meter = WorkMeter()
    started = perf_counter()
    sim_time_us = runner(meter, profiler)
    wall_s = perf_counter() - started
    return PerfRun(workload=name, work=meter.snapshot(),
                   sim_time_us=float(sim_time_us), wall_s=wall_s)


def run_perf_suite(suite: str = "default",
                   profiler: Optional[EngineProfiler] = None
                   ) -> List[PerfRun]:
    """Run the whole suite; pass a profiler to collect a flame profile
    across all workloads (work counters are unaffected by profiling)."""
    return [run_workload(name, profiler=profiler)
            for name in perf_workload_names(suite)]


# -- artifact -------------------------------------------------------------

def build_perf_artifact(runs: List[PerfRun],
                        suite: str = "default") -> Dict[str, Any]:
    """Assemble the canonical ``BENCH_engine.json`` document.

    The ``work`` section (counters + simulated time) is deterministic
    and byte-compared; the ``throughput`` section is wall-clock and
    must never be.  No timestamps, hostnames, or environment details.
    """
    total_fired = sum(run.work.get("events_fired", 0) for run in runs)
    total_wall = sum(run.wall_s for run in runs)
    return {
        "schema": PERF_SCHEMA,
        "sim_version": SIM_VERSION,
        "suite": suite,
        "work": {
            run.workload: {
                "counters": dict(run.work),
                "sim_time_us": _round9(run.sim_time_us),
            } for run in runs
        },
        "throughput": {
            "workloads": {
                run.workload: {
                    "wall_s": _round9(run.wall_s),
                    "events_per_sec": _round9(run.events_per_sec),
                } for run in runs
            },
            "total": {
                "events_fired": total_fired,
                "wall_s": _round9(total_wall),
                "events_per_sec": _round9(
                    total_fired / total_wall if total_wall > 0 else 0.0),
            },
        },
    }


def work_section_text(artifact: Mapping[str, Any]) -> str:
    """Canonical serialization of just the ``work`` section — the
    byte-compared payload (plus schema/suite/sim_version identity)."""
    payload = {
        "schema": artifact.get("schema"),
        "sim_version": artifact.get("sim_version"),
        "suite": artifact.get("suite"),
        "work": artifact.get("work", {}),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


@dataclass
class PerfCheckResult:
    """Outcome of gating a fresh run against a baseline artifact."""

    work_mismatches: List[str]
    baseline_events_per_sec: float
    current_events_per_sec: float
    min_ratio: float

    @property
    def throughput_ratio(self) -> float:
        if self.baseline_events_per_sec <= 0:
            return 1.0
        return self.current_events_per_sec / self.baseline_events_per_sec

    @property
    def throughput_ok(self) -> bool:
        return self.throughput_ratio >= self.min_ratio

    def passed(self) -> bool:
        return not self.work_mismatches and self.throughput_ok

    def format(self) -> str:
        lines = []
        if self.work_mismatches:
            lines.append(f"work-counter mismatches "
                         f"({len(self.work_mismatches)}):")
            lines.extend(f"  {message}"
                         for message in self.work_mismatches)
        else:
            lines.append("work counters: identical to baseline")
        lines.append(
            f"throughput: {self.current_events_per_sec:,.0f} events/s "
            f"vs baseline {self.baseline_events_per_sec:,.0f} "
            f"(ratio {self.throughput_ratio:.2f}, floor "
            f"{self.min_ratio:.2f}) -> "
            f"{'ok' if self.throughput_ok else 'REGRESSION'}")
        lines.append("perf check: "
                     + ("PASS" if self.passed() else "FAIL"))
        return "\n".join(lines)


def check_perf_artifact(current: Mapping[str, Any],
                        baseline: Mapping[str, Any],
                        min_ratio: float = DEFAULT_MIN_RATIO
                        ) -> PerfCheckResult:
    """Gate ``current`` against ``baseline``.

    Work counters are compared for exact equality per workload and per
    counter (missing/extra workloads are mismatches too).  Throughput
    compares only the suite aggregate — individual micro kernels are
    over in milliseconds and too noisy to gate.
    """
    if min_ratio <= 0:
        raise ValueError(f"min_ratio must be > 0, got {min_ratio}")
    mismatches: List[str] = []
    if current.get("sim_version") != baseline.get("sim_version"):
        mismatches.append(
            f"sim_version changed: {baseline.get('sim_version')!r} -> "
            f"{current.get('sim_version')!r}")
    current_work = current.get("work", {})
    baseline_work = baseline.get("work", {})
    for name in sorted(set(baseline_work) | set(current_work)):
        if name not in current_work:
            mismatches.append(f"{name}: missing from current run")
            continue
        if name not in baseline_work:
            mismatches.append(f"{name}: not in baseline")
            continue
        ours, theirs = current_work[name], baseline_work[name]
        our_counters = ours.get("counters", {})
        base_counters = theirs.get("counters", {})
        for counter in sorted(set(base_counters) | set(our_counters)):
            mine = our_counters.get(counter)
            base = base_counters.get(counter)
            if mine != base:
                mismatches.append(f"{name}: {counter} {base} -> {mine}")
        if ours.get("sim_time_us") != theirs.get("sim_time_us"):
            mismatches.append(
                f"{name}: sim_time_us {theirs.get('sim_time_us')} -> "
                f"{ours.get('sim_time_us')}")
    base_total = baseline.get("throughput", {}).get("total", {})
    cur_total = current.get("throughput", {}).get("total", {})
    return PerfCheckResult(
        work_mismatches=mismatches,
        baseline_events_per_sec=float(
            base_total.get("events_per_sec", 0.0)),
        current_events_per_sec=float(
            cur_total.get("events_per_sec", 0.0)),
        min_ratio=min_ratio)


def dumps_perf_artifact(payload: Mapping[str, Any]) -> str:
    """Canonical serialization (sorted keys, indent 2, final newline)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_perf_artifact(payload: Mapping[str, Any],
                        path: PathLike) -> Path:
    path = Path(path)
    path.write_text(dumps_perf_artifact(payload), "utf-8")
    return path


def load_perf_artifact(path: PathLike) -> Dict[str, Any]:
    path = Path(path)
    payload = json.loads(path.read_text("utf-8"))
    schema = payload.get("schema")
    if schema != PERF_SCHEMA:
        raise ValueError(f"{path} is not an engine-perf artifact "
                         f"(schema {schema!r}, expected "
                         f"{PERF_SCHEMA!r})")
    return payload
