"""Benchmark harness: figure/table regeneration and paper comparison."""

from .compare import (
    crossover_message_size,
    document_diff_paths,
    monotonically_increasing,
    ranking,
    values_match,
    winner,
)
from .asciiplot import ascii_plot, plot_figure, sparkline
from .degradation import ChaosRun, chaos_report, degradation_curves, \
    fault_counters, run_chaos
from .diagnostics import RunDiagnostics, collect_diagnostics
from .export import (
    figure_to_rows,
    sweep_to_rows,
    table3_to_rows,
    write_figure_csv,
    write_figure_json,
    write_sweep_csv,
    write_table3_csv,
    write_table3_json,
)
from .figures import FigureData, figure1, figure2, figure3, figure4, \
    figure5
from .headline import HeadlineCheck, format_headline, headline_checks
from .perfsuite import (
    PERF_SCHEMA,
    PerfCheckResult,
    PerfRun,
    build_perf_artifact,
    check_perf_artifact,
    dumps_perf_artifact,
    load_perf_artifact,
    perf_workload_names,
    run_perf_suite,
    run_workload,
    work_section_text,
    write_perf_artifact,
)
from .tables import Table3Row, format_table3, table3
from .workload import (
    FIGURE_OPS,
    MACHINES,
    T3D_MAX_NODES,
    bench_config,
    bench_machine_sizes,
    bench_message_sizes,
    machine_sizes_for,
)

__all__ = [
    "ChaosRun",
    "FIGURE_OPS",
    "FigureData",
    "HeadlineCheck",
    "MACHINES",
    "PERF_SCHEMA",
    "PerfCheckResult",
    "PerfRun",
    "RunDiagnostics",
    "T3D_MAX_NODES",
    "Table3Row",
    "ascii_plot",
    "plot_figure",
    "sparkline",
    "collect_diagnostics",
    "bench_config",
    "bench_machine_sizes",
    "bench_message_sizes",
    "build_perf_artifact",
    "chaos_report",
    "check_perf_artifact",
    "dumps_perf_artifact",
    "load_perf_artifact",
    "perf_workload_names",
    "run_perf_suite",
    "run_workload",
    "work_section_text",
    "write_perf_artifact",
    "crossover_message_size",
    "degradation_curves",
    "document_diff_paths",
    "fault_counters",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure_to_rows",
    "sweep_to_rows",
    "table3_to_rows",
    "write_figure_csv",
    "write_figure_json",
    "write_sweep_csv",
    "write_table3_csv",
    "write_table3_json",
    "format_headline",
    "format_table3",
    "headline_checks",
    "machine_sizes_for",
    "monotonically_increasing",
    "ranking",
    "run_chaos",
    "table3",
    "values_match",
    "winner",
]
