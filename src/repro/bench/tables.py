"""Regeneration of the paper's Table 3: fitted timing expressions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core import (
    MeasurementConfig,
    TimingExpression,
    fit_timing_expression,
    measure_collective,
    paper_expression,
)
from ..core.report import format_table
from .workload import MACHINES, bench_config, bench_machine_sizes, \
    bench_message_sizes

__all__ = ["Table3Row", "table3", "format_table3"]

#: Table 3 covers all seven collectives.
TABLE3_OPS = ("barrier", "broadcast", "scan", "gather", "scatter",
              "reduce", "alltoall")


@dataclass(frozen=True)
class Table3Row:
    """One cell of Table 3: our fit next to the paper's."""

    machine: str
    op: str
    fitted: TimingExpression
    published: TimingExpression

    def startup_ratio(self, p: int = 32) -> float:
        """Fitted / published startup latency at ``p``."""
        published = self.published.startup_latency_us(p)
        if published <= 0:
            return float("nan")
        return self.fitted.startup_latency_us(p) / published

    def per_byte_ratio(self, p: int = 32) -> float:
        """Fitted / published per-byte transmission cost at ``p``."""
        published = self.published.per_byte.evaluate(p)
        if published <= 0:
            return float("nan")
        return self.fitted.per_byte.evaluate(p) / published

    def scaling_matches(self) -> bool:
        """Whether the startup scaling class (log vs linear) agrees.

        A fitted term whose p-dependence is negligible against its
        constant (the T3D's hardwired barrier: ~3 us at every machine
        size) is accepted as matching either class — log-vs-linear is
        not identifiable from an essentially flat curve.
        """
        if self.fitted.startup.form == self.published.startup.form:
            return True
        value_small = self.fitted.startup.evaluate(2)
        value_large = self.fitted.startup.evaluate(64)
        spread = abs(value_large - value_small)
        scale = max(abs(value_small), abs(value_large), 1e-9)
        return spread < 0.25 * scale


def table3(config: Optional[MeasurementConfig] = None,
           ops: Tuple[str, ...] = TABLE3_OPS
           ) -> Dict[Tuple[str, str], Table3Row]:
    """Measure the full (m, p) grid and curve-fit every expression."""
    config = config or bench_config()
    rows: Dict[Tuple[str, str], Table3Row] = {}
    for machine in MACHINES:
        sizes = bench_machine_sizes(machine)
        for op in ops:
            message_sizes = (0,) if op == "barrier" else \
                bench_message_sizes()
            samples = {
                p: {m: measure_collective(machine, op, m, p,
                                          config).time_us
                    for m in message_sizes}
                for p in sizes
            }
            fitted = fit_timing_expression(machine, op, samples)
            rows[(machine, op)] = Table3Row(
                machine=machine, op=op, fitted=fitted,
                published=paper_expression(machine, op))
    return rows


def format_table3(rows: Dict[Tuple[str, str], Table3Row],
                  reference_p: int = 32) -> str:
    """Render the fitted-vs-published comparison as text."""
    body = []
    for (machine, op), row in sorted(rows.items()):
        body.append([
            op,
            machine,
            row.fitted.format(),
            row.published.format(),
            "yes" if row.scaling_matches() else "NO",
            f"{row.startup_ratio(reference_p):.2f}",
            f"{row.per_byte_ratio(reference_p):.2f}"
            if row.op != "barrier" else "-",
        ])
    return format_table(
        ["op", "machine", "fitted T(m,p)", "published T(m,p)",
         "scaling", f"T0 ratio@{reference_p}",
         f"B ratio@{reference_p}"],
        body,
        title="Table 3: curve-fitted timing expressions (sim vs paper)")
