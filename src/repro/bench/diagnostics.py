"""Run diagnostics: where did the time and bytes go?

Collects the hardware counters the simulator maintains (per-link bytes,
NIC message counts, memory-bus traffic, unexpected-message rate) into a
single report after a run — the simulator-world equivalent of the
hardware performance counters a measurement study would consult.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..mpi import MpiWorld
from ..core.report import format_table

__all__ = ["RunDiagnostics", "collect_diagnostics"]


@dataclass(frozen=True)
class RunDiagnostics:
    """Counters aggregated over one :class:`MpiWorld` run."""

    machine: str
    num_nodes: int
    messages_delivered: int
    unexpected_arrivals: int
    nic_messages_sent: int
    nic_messages_received: int
    memory_bytes_copied: int
    dma_bytes_streamed: int
    link_bytes: Dict[object, int]

    @property
    def unexpected_rate(self) -> float:
        """Fraction of deliveries that arrived before their receive."""
        if self.messages_delivered == 0:
            return 0.0
        return self.unexpected_arrivals / self.messages_delivered

    @property
    def busiest_links(self) -> List[Tuple[object, int]]:
        """Links by carried bytes, heaviest first."""
        return sorted(self.link_bytes.items(), key=lambda kv: -kv[1])

    @property
    def total_link_bytes(self) -> int:
        return sum(self.link_bytes.values())

    def format(self, top_links: int = 5) -> str:
        rows = [
            ["messages delivered", str(self.messages_delivered)],
            ["unexpected arrivals",
             f"{self.unexpected_arrivals} "
             f"({self.unexpected_rate:.0%})"],
            ["NIC messages sent/received",
             f"{self.nic_messages_sent}/{self.nic_messages_received}"],
            ["memory-bus bytes copied", str(self.memory_bytes_copied)],
            ["DMA bytes streamed", str(self.dma_bytes_streamed)],
            ["total link byte-hops", str(self.total_link_bytes)],
        ]
        for link, nbytes in self.busiest_links[:top_links]:
            rows.append([f"  link {link}", str(nbytes)])
        return format_table(
            ["counter", "value"], rows,
            title=f"diagnostics: {self.machine}, {self.num_nodes} nodes")


def collect_diagnostics(world: MpiWorld) -> RunDiagnostics:
    """Snapshot a world's hardware counters (call after running)."""
    machine = world.machine
    return RunDiagnostics(
        machine=world.spec.name,
        num_nodes=machine.num_nodes,
        messages_delivered=world.comm.transport.messages_delivered,
        unexpected_arrivals=world.comm.transport.unexpected_arrivals,
        nic_messages_sent=sum(n.nic.messages_sent
                              for n in machine.nodes),
        nic_messages_received=sum(n.nic.messages_received
                                  for n in machine.nodes),
        memory_bytes_copied=sum(n.memory.bytes_copied
                                for n in machine.nodes),
        dma_bytes_streamed=sum(n.dma.bytes_streamed
                               for n in machine.nodes
                               if n.dma is not None),
        link_bytes=dict(machine.fabric.utilisation()),
    )
