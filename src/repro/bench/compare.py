"""Shape comparison helpers: who wins, crossovers, scaling classes.

The reproduction's success criterion is *shape*, not absolute numbers:
the machine that wins each regime, the rough factors, and where
short/long-message crossovers fall.  These helpers extract those
qualitative facts from figure data so benches and tests can assert
them.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["ranking", "winner", "crossover_message_size",
           "monotonically_increasing", "values_match",
           "document_diff_paths"]


def values_match(a: float, b: float, rtol: float = 0.0,
                 atol: float = 0.0) -> bool:
    """Whether two measured values agree within ``atol + rtol * |a|``.

    With both tolerances zero this is exact (bitwise) float equality —
    the sweep regression gate's default, since reruns of the
    deterministic simulator must reproduce results bit for bit.
    """
    return abs(b - a) <= atol + rtol * abs(a)


def ranking(values: Dict[str, float]) -> List[str]:
    """Keys ordered fastest (smallest value) first."""
    return sorted(values, key=values.__getitem__)


def winner(values: Dict[str, float]) -> str:
    """The key with the smallest value."""
    if not values:
        raise ValueError("no values to rank")
    return ranking(values)[0]


def crossover_message_size(series_a: Dict[int, float],
                           series_b: Dict[int, float]
                           ) -> Optional[int]:
    """Smallest shared x where series a stops being faster than b.

    Returns ``None`` when no sign change occurs over the shared domain
    (one series dominates throughout).
    """
    shared = sorted(set(series_a) & set(series_b))
    if not shared:
        raise ValueError("series share no x values")
    sign = None
    for x in shared:
        diff = series_a[x] - series_b[x]
        if diff == 0:
            continue
        current = diff > 0
        if sign is None:
            sign = current
        elif current != sign:
            return x
    return None


def monotonically_increasing(series: Dict[int, float],
                             tolerance: float = 0.0) -> bool:
    """Whether values never decrease (beyond ``tolerance``) as x grows."""
    xs = sorted(series)
    return all(series[b] >= series[a] * (1.0 - tolerance)
               for a, b in zip(xs, xs[1:]))


def document_diff_paths(a, b, prefix: str = "") -> List[str]:
    """JSON paths at which two documents differ, sorted.

    Walks dicts and lists recursively; a leaf mismatch (or a
    missing/extra key, or a type change) contributes its
    slash-separated path.  The regression tests use this to assert
    that two runs of a benchmark differ *only* in designated volatile
    paths (e.g. everything under ``throughput/`` in
    ``BENCH_engine.json``) — any other divergence is nondeterminism.
    """
    if isinstance(a, dict) and isinstance(b, dict):
        paths: List[str] = []
        for key in sorted(set(a) | set(b)):
            child = f"{prefix}{key}"
            if key not in a or key not in b:
                paths.append(child)
            else:
                paths.extend(document_diff_paths(a[key], b[key],
                                                 child + "/"))
        return paths
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return [f"{prefix}length"]
        paths = []
        for index, (left, right) in enumerate(zip(a, b)):
            paths.extend(document_diff_paths(left, right,
                                             f"{prefix}{index}/"))
        return paths
    if type(a) is not type(b) and not (
            isinstance(a, (int, float)) and isinstance(b, (int, float))
            and not isinstance(a, bool) and not isinstance(b, bool)):
        return [prefix.rstrip("/") or "<root>"]
    if a != b:
        return [prefix.rstrip("/") or "<root>"]
    return []
