"""Shape comparison helpers: who wins, crossovers, scaling classes.

The reproduction's success criterion is *shape*, not absolute numbers:
the machine that wins each regime, the rough factors, and where
short/long-message crossovers fall.  These helpers extract those
qualitative facts from figure data so benches and tests can assert
them.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["ranking", "winner", "crossover_message_size",
           "monotonically_increasing", "values_match"]


def values_match(a: float, b: float, rtol: float = 0.0,
                 atol: float = 0.0) -> bool:
    """Whether two measured values agree within ``atol + rtol * |a|``.

    With both tolerances zero this is exact (bitwise) float equality —
    the sweep regression gate's default, since reruns of the
    deterministic simulator must reproduce results bit for bit.
    """
    return abs(b - a) <= atol + rtol * abs(a)


def ranking(values: Dict[str, float]) -> List[str]:
    """Keys ordered fastest (smallest value) first."""
    return sorted(values, key=values.__getitem__)


def winner(values: Dict[str, float]) -> str:
    """The key with the smallest value."""
    if not values:
        raise ValueError("no values to rank")
    return ranking(values)[0]


def crossover_message_size(series_a: Dict[int, float],
                           series_b: Dict[int, float]
                           ) -> Optional[int]:
    """Smallest shared x where series a stops being faster than b.

    Returns ``None`` when no sign change occurs over the shared domain
    (one series dominates throughout).
    """
    shared = sorted(set(series_a) & set(series_b))
    if not shared:
        raise ValueError("series share no x values")
    sign = None
    for x in shared:
        diff = series_a[x] - series_b[x]
        if diff == 0:
            continue
        current = diff > 0
        if sign is None:
            sign = current
        elif current != sign:
            return x
    return None


def monotonically_increasing(series: Dict[int, float],
                             tolerance: float = 0.0) -> bool:
    """Whether values never decrease (beyond ``tolerance``) as x grows."""
    xs = sorted(series)
    return all(series[b] >= series[a] * (1.0 - tolerance)
               for a, b in zip(xs, xs[1:]))
