"""Regeneration of the paper's Figures 1-5.

Each ``figureN`` function runs the necessary measurements on the
simulator and returns a :class:`FigureData` whose series mirror the
corresponding figure's curves; ``format()`` renders them as text the
way the benches print them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core import (
    MeasurementConfig,
    estimate_rinf_two_point,
    measure_collective,
    measure_startup_latency,
)
from ..core.report import format_series
from .workload import (
    FIGURE_OPS,
    MACHINES,
    bench_config,
    bench_machine_sizes,
    bench_message_sizes,
)

__all__ = ["FigureData", "figure1", "figure2", "figure3", "figure4",
           "figure5"]

#: Figure 2 and 4 are drawn at 32 nodes; Figure 4 at 1 KB messages.
FIGURE2_NODES = 32
FIGURE4_NODES = 32
FIGURE4_BYTES = 1024
#: Figure 3 contrasts short (16 B) and long (64 KB) messages.
FIGURE3_SHORT = 16
FIGURE3_LONG = 65536


@dataclass
class FigureData:
    """One regenerated figure: named series of (x -> value) points."""

    figure_id: str
    title: str
    unit: str
    #: series key is ``(op, machine)`` or ``(op, machine, variant)``.
    series: Dict[Tuple[str, ...], Dict[int, float]] = \
        field(default_factory=dict)

    def add(self, key: Tuple[str, ...], x: int, value: float) -> None:
        self.series.setdefault(key, {})[x] = value

    def get(self, *key: str) -> Dict[int, float]:
        """Series lookup by key components."""
        return self.series[tuple(key)]

    def format(self) -> str:
        lines = [f"{self.figure_id}: {self.title}"]
        for key in sorted(self.series):
            lines.append(format_series("/".join(map(str, key)),
                                       self.series[key], unit=self.unit))
        return "\n".join(lines)


def figure1(config: Optional[MeasurementConfig] = None,
            ops: Tuple[str, ...] = FIGURE_OPS) -> FigureData:
    """Figure 1: startup latencies T0(p) of six collectives."""
    config = config or bench_config()
    data = FigureData("Figure 1", "startup latency T0(p), 4-byte probe",
                      "us")
    for op in ops:
        for machine in MACHINES:
            for p in bench_machine_sizes(machine):
                sample = measure_startup_latency(machine, op, p, config)
                data.add((op, machine), p, sample.time_us)
    return data


def figure2(config: Optional[MeasurementConfig] = None,
            ops: Tuple[str, ...] = FIGURE_OPS) -> FigureData:
    """Figure 2: T(m, 32) as a function of message length."""
    config = config or bench_config()
    data = FigureData("Figure 2",
                      f"collective messaging time T(m, {FIGURE2_NODES})",
                      "us")
    for op in ops:
        for machine in MACHINES:
            for m in bench_message_sizes():
                sample = measure_collective(machine, op, m,
                                            FIGURE2_NODES, config)
                data.add((op, machine), m, sample.time_us)
    return data


def figure3(config: Optional[MeasurementConfig] = None) -> FigureData:
    """Figure 3: T(m, p) vs machine size for short and long messages.

    Seven panels: the six Figure-1 operations plus the barrier (short
    probe only — the barrier carries no payload).
    """
    config = config or bench_config()
    data = FigureData(
        "Figure 3",
        f"T(m, p) for short ({FIGURE3_SHORT} B) and long "
        f"({FIGURE3_LONG} B) messages", "us")
    for op in FIGURE_OPS:
        for machine in MACHINES:
            for p in bench_machine_sizes(machine):
                short = measure_collective(machine, op, FIGURE3_SHORT, p,
                                           config)
                data.add((op, machine, "short"), p, short.time_us)
                long_ = measure_collective(machine, op, FIGURE3_LONG, p,
                                           config)
                data.add((op, machine, "long"), p, long_.time_us)
    for machine in MACHINES:  # panel (g): barrier
        for p in bench_machine_sizes(machine):
            sample = measure_collective(machine, "barrier", 0, p, config)
            data.add(("barrier", machine, "short"), p, sample.time_us)
    return data


def figure4(config: Optional[MeasurementConfig] = None) -> FigureData:
    """Figure 4: startup/transmission breakdown at p=32, m=1 KB.

    Two series per (op, machine): the startup latency (4-byte probe)
    and the transmission delay (total minus startup).
    """
    config = config or bench_config()
    data = FigureData(
        "Figure 4",
        f"timing breakdown at p={FIGURE4_NODES}, m={FIGURE4_BYTES} B",
        "us")
    for op in FIGURE_OPS:
        for machine in MACHINES:
            startup = measure_startup_latency(machine, op,
                                              FIGURE4_NODES, config)
            total = measure_collective(machine, op, FIGURE4_BYTES,
                                       FIGURE4_NODES, config)
            delay = max(total.time_us - startup.time_us, 0.0)
            data.add((op, machine, "startup"), FIGURE4_NODES,
                     startup.time_us)
            data.add((op, machine, "transmission"), FIGURE4_NODES, delay)
    return data


def figure5(config: Optional[MeasurementConfig] = None,
            probe_sizes: Tuple[int, int] = (16384, 65536)) -> FigureData:
    """Figure 5: aggregated bandwidth Rinf(p) per collective.

    Estimated from the marginal per-byte cost between two long
    messages (paper Eq. 4), per machine size.
    """
    config = config or bench_config()
    data = FigureData("Figure 5", "aggregated bandwidth Rinf(p)",
                      "MB/s")
    m_small, m_large = probe_sizes
    for op in FIGURE_OPS:
        for machine in MACHINES:
            for p in bench_machine_sizes(machine):
                samples = {
                    m: measure_collective(machine, op, m, p,
                                          config).time_us
                    for m in (m_small, m_large)
                }
                data.add((op, machine), p,
                         estimate_rinf_two_point(op, p, samples))
    return data
