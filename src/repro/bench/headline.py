"""Checks of the paper's headline numeric claims against the simulator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core import (
    HEADLINE,
    MeasurementConfig,
    estimate_rinf_two_point,
    measure_collective,
    measure_startup_latency,
)
from ..core.report import format_table
from .workload import bench_config

__all__ = ["HeadlineCheck", "headline_checks", "format_headline"]


@dataclass(frozen=True)
class HeadlineCheck:
    """One headline claim: the paper's value vs the simulator's."""

    claim: str
    paper_value: float
    simulated_value: float
    unit: str

    @property
    def ratio(self) -> float:
        if self.paper_value == 0:
            return float("nan")
        return self.simulated_value / self.paper_value

    def within(self, factor: float) -> bool:
        """Whether sim and paper agree within a multiplicative factor."""
        if self.paper_value <= 0 or self.simulated_value <= 0:
            return False
        return 1.0 / factor <= self.ratio <= factor


def headline_checks(config: Optional[MeasurementConfig] = None
                    ) -> List[HeadlineCheck]:
    """Run every headline measurement and pair it with the paper value."""
    config = config or bench_config()
    checks: List[HeadlineCheck] = []

    # T3D hardwired barrier ~3 us, >= 30x faster than SP2/Paragon.
    barrier = {m: measure_collective(m, "barrier", 0, 64, config).time_us
               for m in ("t3d", "sp2", "paragon")}
    checks.append(HeadlineCheck(
        "T3D 64-node barrier", HEADLINE["t3d_barrier_us"],
        barrier["t3d"], "us"))
    checks.append(HeadlineCheck(
        "barrier speedup T3D vs best of SP2/Paragon (min 30x)",
        HEADLINE["t3d_barrier_speedup_min"],
        min(barrier["sp2"], barrier["paragon"]) / barrier["t3d"], "x"))

    # T3D broadcast to two nodes ~35 us.
    two_node = measure_startup_latency("t3d", "broadcast", 2, config)
    checks.append(HeadlineCheck(
        "T3D 2-node broadcast latency",
        HEADLINE["t3d_broadcast_2node_us"], two_node.time_us, "us"))

    # T3D 64-node startup latencies for six collectives.
    for op, value in HEADLINE["t3d_startup_64_us"].items():
        sample = measure_startup_latency("t3d", op, 64, config)
        checks.append(HeadlineCheck(
            f"T3D 64-node {op} startup", value, sample.time_us, "us"))

    # 64-node total exchange aggregated bandwidths (GB/s).
    for machine, gbs in HEADLINE["alltoall_rinf_64_gbs"].items():
        samples = {m: measure_collective(machine, "alltoall", m, 64,
                                         config).time_us
                   for m in (16384, 65536)}
        rinf = estimate_rinf_two_point("alltoall", 64, samples) / 1024.0
        checks.append(HeadlineCheck(
            f"{machine} 64-node alltoall Rinf", gbs, rinf, "GB/s"))

    # SP2 64-node 64-KB total exchange ~317 ms.
    sp2 = measure_collective("sp2", "alltoall", 65536, 64, config)
    checks.append(HeadlineCheck(
        "SP2 64-node 64KB alltoall", HEADLINE["sp2_alltoall_64x64k_ms"],
        sp2.time_us / 1000.0, "ms"))

    # All 64-KB 64-node collectives complete within (5.12 ms, 675 ms).
    lo, hi = HEADLINE["range_64x64k_ms"]
    times_ms = [
        measure_collective(m, op, 65536, 64, config).time_us / 1000.0
        for m in ("sp2", "t3d", "paragon")
        for op in ("broadcast", "alltoall", "scatter", "gather", "scan",
                   "reduce")
    ]
    checks.append(HeadlineCheck("fastest 64-node 64KB collective", lo,
                                min(times_ms), "ms"))
    checks.append(HeadlineCheck("slowest 64-node 64KB collective", hi,
                                max(times_ms), "ms"))
    return checks


def format_headline(checks: List[HeadlineCheck]) -> str:
    rows = [[c.claim, f"{c.paper_value:.4g} {c.unit}",
             f"{c.simulated_value:.4g} {c.unit}", f"{c.ratio:.2f}x"]
            for c in checks]
    return format_table(["claim", "paper", "simulated", "ratio"], rows,
                        title="Headline claims (paper vs simulator)")
