"""Export regenerated results as CSV or JSON.

Downstream users (plotting scripts, regression dashboards) want the
figure series and fitted expressions as data, not text.  These writers
keep the schema deliberately flat: one row per point.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Tuple, Union

from .figures import FigureData
from .tables import Table3Row

__all__ = ["figure_to_rows", "write_figure_csv", "write_figure_json",
           "table3_to_rows", "write_table3_csv", "write_table3_json",
           "sweep_to_rows", "write_sweep_csv"]

PathLike = Union[str, Path]


def figure_to_rows(data: FigureData) -> list:
    """Flatten a figure into ``[series..., x, value]`` rows."""
    rows = []
    for key in sorted(data.series):
        for x in sorted(data.series[key]):
            rows.append({
                "figure": data.figure_id,
                "series": "/".join(str(part) for part in key),
                "x": x,
                "value": data.series[key][x],
                "unit": data.unit,
            })
    return rows


def write_figure_csv(data: FigureData, path: PathLike) -> Path:
    """Write one figure's series to ``path`` as CSV."""
    path = Path(path)
    rows = figure_to_rows(data)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(
            handle, fieldnames=["figure", "series", "x", "value",
                                "unit"])
        writer.writeheader()
        writer.writerows(rows)
    return path


def write_figure_json(data: FigureData, path: PathLike) -> Path:
    """Write one figure's series to ``path`` as JSON."""
    path = Path(path)
    payload = {
        "figure": data.figure_id,
        "title": data.title,
        "unit": data.unit,
        "series": {
            "/".join(str(part) for part in key): {
                str(x): value for x, value in sorted(points.items())
            }
            for key, points in sorted(data.series.items())
        },
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def sweep_to_rows(artifact: Dict[str, object]) -> list:
    """Flatten a sweep artifact (see :mod:`repro.runner.artifact`)
    into one dict row per cell."""
    rows = []
    for cell in artifact.get("cells", []):
        rows.append({
            "grid": artifact.get("grid"),
            "mode": artifact.get("mode"),
            "machine": cell["machine"],
            "op": cell["op"],
            "nbytes": cell["nbytes"],
            "p": cell["p"],
            "time_us": cell["result"]["time_us"],
            "fingerprint": cell["fingerprint"],
        })
    return rows


def write_sweep_csv(artifact: Dict[str, object], path: PathLike) -> Path:
    """Write a sweep artifact's cells to ``path`` as CSV."""
    path = Path(path)
    rows = sweep_to_rows(artifact)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(
            handle, fieldnames=["grid", "mode", "machine", "op",
                                "nbytes", "p", "time_us", "fingerprint"])
        writer.writeheader()
        writer.writerows(rows)
    return path


def table3_to_rows(rows: Dict[Tuple[str, str], Table3Row]) -> list:
    """Flatten Table 3 comparisons into dict rows."""
    out = []
    for (machine, op), row in sorted(rows.items()):
        out.append({
            "machine": machine,
            "op": op,
            "fitted": row.fitted.format(),
            "published": row.published.format(),
            "startup_form": row.fitted.startup.form,
            "published_startup_form": row.published.startup.form,
            "scaling_matches": row.scaling_matches(),
            "startup_ratio_p32": row.startup_ratio(32),
            "per_byte_ratio_p32": row.per_byte_ratio(32),
        })
    return out


def write_table3_csv(rows: Dict[Tuple[str, str], Table3Row],
                     path: PathLike) -> Path:
    """Write the Table 3 comparison to ``path`` as CSV."""
    path = Path(path)
    flattened = table3_to_rows(rows)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle,
                                fieldnames=list(flattened[0].keys()))
        writer.writeheader()
        writer.writerows(flattened)
    return path


def write_table3_json(rows: Dict[Tuple[str, str], Table3Row],
                      path: PathLike) -> Path:
    """Write the Table 3 comparison to ``path`` as JSON."""
    path = Path(path)
    path.write_text(json.dumps(table3_to_rows(rows), indent=2))
    return path
