"""Workload definitions for the benchmark harness.

The paper's experimental grid (Section 2): machine sizes 2, 4, ...,
128 — but only up to 64 on the T3D ("we were allocated with at most 64
T3D nodes") — and message lengths 4 bytes to 64 KB.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Tuple

from ..core import (
    MeasurementConfig,
    PAPER_MACHINE_SIZES,
    PAPER_MESSAGE_SIZES,
    QUICK_CONFIG,
)

__all__ = [
    "MACHINES",
    "FIGURE_OPS",
    "T3D_MAX_NODES",
    "machine_sizes_for",
    "bench_config",
    "bench_machine_sizes",
    "bench_message_sizes",
]

#: The three machines, in the paper's presentation order.
MACHINES: Tuple[str, ...] = ("sp2", "t3d", "paragon")

#: The six operations shown in Figures 1, 2, 4, and 5 (the barrier is
#: added as a seventh panel in Figure 3).
FIGURE_OPS: Tuple[str, ...] = ("broadcast", "alltoall", "scatter",
                               "gather", "scan", "reduce")

#: T3D allocation cap from Section 2.
T3D_MAX_NODES = 64


def machine_sizes_for(machine: str,
                      sizes: Tuple[int, ...] = PAPER_MACHINE_SIZES
                      ) -> Tuple[int, ...]:
    """The paper's machine-size sweep, honouring the T3D's 64-node cap."""
    if machine == "t3d":
        return tuple(p for p in sizes if p <= T3D_MAX_NODES)
    return tuple(sizes)


def _fast_mode() -> bool:
    """Honour ``REPRO_BENCH_FAST=1`` to shrink bench grids further."""
    return os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def bench_config() -> MeasurementConfig:
    """Measurement configuration for the bench harness.

    The full paper protocol (k=20, 5 runs) is available through
    :data:`repro.core.PAPER_CONFIG` but would multiply simulation time
    by ~15x without changing any reported ranking, so benches default
    to the quick protocol.
    """
    if _fast_mode():
        # k=1 would leave the (deliberately modelled) staggered barrier
        # exit un-amortized and swamp small startup latencies.
        return MeasurementConfig(iterations=2, warmup_iterations=1,
                                 runs=1)
    return QUICK_CONFIG


def bench_machine_sizes(machine: str) -> Tuple[int, ...]:
    """Machine sizes a bench sweeps for ``machine``."""
    sizes = PAPER_MACHINE_SIZES
    if _fast_mode():
        sizes = (2, 8, 32)
    return machine_sizes_for(machine, sizes)


def bench_message_sizes() -> Tuple[int, ...]:
    """Message lengths a bench sweeps."""
    if _fast_mode():
        return (4, 1024, 65536)
    return PAPER_MESSAGE_SIZES
