"""Graceful-degradation benches: latency under faults vs fault-free.

``degradation_curves`` reruns the paper's ``T0(p)`` startup-latency
measurement under a :class:`~repro.faults.FaultPlan` and pairs every
faulty curve with its clean baseline, so the latency penalty of
rerouting and retransmission is visible point by point.
``chaos_report`` runs one collective under a plan and reports what the
injector actually did (reroutes, retransmits, lost messages, aborted
transfers) next to the clean/faulty elapsed times.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..core import QUICK_CONFIG, MeasurementConfig, \
    measure_startup_latency
from ..core.report import format_us
from ..faults import FaultPlan
from ..mpi import MpiWorld
from .figures import FigureData
from .workload import bench_machine_sizes

__all__ = ["degradation_curves", "chaos_report", "fault_counters"]

#: Injector counters surfaced by :func:`fault_counters`, in report
#: order.
COUNTER_NAMES = (
    "reroutes",
    "unroutable",
    "transfers_aborted",
    "retransmits",
    "spurious_retransmits",
    "messages_lost",
    "messages_corrupted",
)


def degradation_curves(machine: str, op: str, plan: FaultPlan,
                       node_counts: Optional[Sequence[int]] = None,
                       config: MeasurementConfig = QUICK_CONFIG
                       ) -> FigureData:
    """``T0(p)`` with and without ``plan``, as paired figure series.

    Series keys are ``(op, machine, "clean")`` and
    ``(op, machine, plan.name)``; both are measured with the identical
    protocol ``config`` (its ``faults`` field is overridden), so any
    difference between the curves is the plan's doing.
    """
    sizes = tuple(node_counts) if node_counts is not None \
        else bench_machine_sizes(machine)
    clean_config = dataclasses.replace(config, faults=None)
    fault_config = dataclasses.replace(config, faults=plan)
    data = FigureData(
        "Degradation", f"startup latency T0(p) on {machine} {op}, "
                       f"clean vs fault plan {plan.name!r}", "us")
    for p in sizes:
        clean = measure_startup_latency(machine, op, p, clean_config)
        data.add((op, machine, "clean"), p, clean.time_us)
        faulty = measure_startup_latency(machine, op, p, fault_config)
        data.add((op, machine, plan.name), p, faulty.time_us)
    return data


def fault_counters(world: MpiWorld) -> dict:
    """The injector's counters as a plain dict (all zero when the
    world runs without an injector)."""
    injector = world.machine.injector
    if injector is None:
        return {name: 0 for name in COUNTER_NAMES}
    return {name: getattr(injector, name) for name in COUNTER_NAMES}


def chaos_report(machine: str, op: str, plan: FaultPlan,
                 nbytes: int = 4096, num_nodes: int = 16,
                 iterations: int = 1, seed: int = 0) -> str:
    """Run ``op`` once clean and once under ``plan``; report both.

    The report shows the elapsed times, the latency penalty, and every
    nonzero injector counter — a one-screen answer to "what did this
    fault plan actually do to the collective?".
    """
    clean_world = MpiWorld(machine, num_nodes, seed=seed)
    clean_us = clean_world.run_collective(op, nbytes,
                                          iterations=iterations)
    fault_world = MpiWorld(machine, num_nodes, seed=seed, faults=plan)
    faulty_us = fault_world.run_collective(op, nbytes,
                                           iterations=iterations)
    penalty = faulty_us - clean_us
    rel = penalty / clean_us if clean_us else 0.0
    lines = [
        f"chaos {machine} {op} ({nbytes} B, {num_nodes} nodes, "
        f"plan {plan.name!r}, seed {seed})",
        f"  clean:  {format_us(clean_us)}",
        f"  faulty: {format_us(faulty_us)} "
        f"({penalty:+.1f} us, {rel:+.1%})",
    ]
    counters = fault_counters(fault_world)
    shown = {name: count for name, count in counters.items() if count}
    if shown:
        lines.append("  injector: " + ", ".join(
            f"{name}={count}" for name, count in shown.items()))
    else:
        lines.append("  injector: no faults fired")
    return "\n".join(lines)
