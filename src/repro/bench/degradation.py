"""Graceful-degradation benches: latency under faults vs fault-free.

``degradation_curves`` reruns the paper's ``T0(p)`` startup-latency
measurement under a :class:`~repro.faults.FaultPlan` and pairs every
faulty curve with its clean baseline, so the latency penalty of
rerouting and retransmission is visible point by point.
``run_chaos`` runs one collective under a plan and reports what the
injector actually did (reroutes, retransmits, lost messages, aborted
transfers) next to the clean/faulty elapsed times, optionally keeping
the faulty run's full :class:`~repro.obs.MetricsRegistry` snapshot for
JSON export; ``chaos_report`` is its one-string rendering.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..core import QUICK_CONFIG, MeasurementConfig, \
    measure_startup_latency
from ..core.report import format_us
from ..faults import FaultPlan
from ..mpi import MpiWorld
from .figures import FigureData
from .workload import bench_machine_sizes

__all__ = ["ChaosRun", "degradation_curves", "chaos_report",
           "fault_counters", "run_chaos"]

#: Injector counters surfaced by :func:`fault_counters`, in report
#: order.
COUNTER_NAMES = (
    "reroutes",
    "unroutable",
    "transfers_aborted",
    "retransmits",
    "spurious_retransmits",
    "messages_lost",
    "messages_corrupted",
)


def degradation_curves(machine: str, op: str, plan: FaultPlan,
                       node_counts: Optional[Sequence[int]] = None,
                       config: MeasurementConfig = QUICK_CONFIG
                       ) -> FigureData:
    """``T0(p)`` with and without ``plan``, as paired figure series.

    Series keys are ``(op, machine, "clean")`` and
    ``(op, machine, plan.name)``; both are measured with the identical
    protocol ``config`` (its ``faults`` field is overridden), so any
    difference between the curves is the plan's doing.
    """
    sizes = tuple(node_counts) if node_counts is not None \
        else bench_machine_sizes(machine)
    clean_config = dataclasses.replace(config, faults=None)
    fault_config = dataclasses.replace(config, faults=plan)
    data = FigureData(
        "Degradation", f"startup latency T0(p) on {machine} {op}, "
                       f"clean vs fault plan {plan.name!r}", "us")
    for p in sizes:
        clean = measure_startup_latency(machine, op, p, clean_config)
        data.add((op, machine, "clean"), p, clean.time_us)
        faulty = measure_startup_latency(machine, op, p, fault_config)
        data.add((op, machine, plan.name), p, faulty.time_us)
    return data


def fault_counters(world: MpiWorld) -> dict:
    """The injector's counters as a plain dict (all zero when the
    world runs without an injector)."""
    injector = world.machine.injector
    if injector is None:
        return {name: 0 for name in COUNTER_NAMES}
    return {name: getattr(injector, name) for name in COUNTER_NAMES}


@dataclass
class ChaosRun:
    """Clean-vs-faulty comparison of one collective under a plan."""

    machine: str
    op: str
    plan: FaultPlan
    nbytes: int
    num_nodes: int
    iterations: int
    seed: int
    clean_us: float
    faulty_us: float
    counters: Dict[str, int]
    #: Full metrics snapshot of the faulty run (``run_chaos`` with
    #: ``metrics=True``; empty otherwise).
    metrics_snapshot: Dict[str, dict] = field(default_factory=dict)

    @property
    def penalty_us(self) -> float:
        return self.faulty_us - self.clean_us

    @property
    def penalty_fraction(self) -> float:
        return self.penalty_us / self.clean_us if self.clean_us else 0.0

    def format(self) -> str:
        """The one-screen ``repro-bench chaos`` report."""
        lines = [
            f"chaos {self.machine} {self.op} ({self.nbytes} B, "
            f"{self.num_nodes} nodes, plan {self.plan.name!r}, "
            f"seed {self.seed})",
            f"  clean:  {format_us(self.clean_us)}",
            f"  faulty: {format_us(self.faulty_us)} "
            f"({self.penalty_us:+.1f} us, {self.penalty_fraction:+.1%})",
        ]
        shown = {name: count for name, count in self.counters.items()
                 if count}
        if shown:
            lines.append("  injector: " + ", ".join(
                f"{name}={count}" for name, count in shown.items()))
        else:
            lines.append("  injector: no faults fired")
        return "\n".join(lines)


def run_chaos(machine: str, op: str, plan: FaultPlan,
              nbytes: int = 4096, num_nodes: int = 16,
              iterations: int = 1, seed: int = 0,
              metrics: bool = False) -> ChaosRun:
    """Run ``op`` once clean and once under ``plan``.

    ``metrics=True`` switches the faulty run's metrics registry on and
    keeps its full snapshot in the result (the clean run stays
    unmetered: the snapshot answers "what did the faults do?", and the
    registry is off by default on the hot path).
    """
    clean_world = MpiWorld(machine, num_nodes, seed=seed)
    clean_us = clean_world.run_collective(op, nbytes,
                                          iterations=iterations)
    fault_world = MpiWorld(machine, num_nodes, seed=seed, faults=plan,
                           metrics=metrics)
    faulty_us = fault_world.run_collective(op, nbytes,
                                           iterations=iterations)
    snapshot = fault_world.machine.metrics.snapshot() if metrics else {}
    return ChaosRun(
        machine=machine, op=op, plan=plan, nbytes=nbytes,
        num_nodes=num_nodes, iterations=iterations, seed=seed,
        clean_us=clean_us, faulty_us=faulty_us,
        counters=fault_counters(fault_world),
        metrics_snapshot=snapshot)


def chaos_report(machine: str, op: str, plan: FaultPlan,
                 nbytes: int = 4096, num_nodes: int = 16,
                 iterations: int = 1, seed: int = 0) -> str:
    """One-string rendering of :func:`run_chaos` — the elapsed times,
    the latency penalty, and every nonzero injector counter."""
    return run_chaos(machine, op, plan, nbytes=nbytes,
                     num_nodes=num_nodes, iterations=iterations,
                     seed=seed).format()
