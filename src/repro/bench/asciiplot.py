"""ASCII log-log charts for figure data.

The paper's figures are log-log line charts; this renders the
regenerated series the same way, in a terminal.  It is deliberately
dependency-free (no matplotlib in the offline environment): a
character grid with logarithmic axes, one marker per series, and a
legend.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence, Tuple

__all__ = ["ascii_plot", "plot_figure", "sparkline"]

#: Series markers, assigned in sorted-key order.
_MARKERS = "ox+*#@%&abcdefgh"

#: Sparkline resolution: eight block heights, empty-to-full.
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float],
              lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """One-line block-character chart of ``values``.

    Values map linearly onto the eight block heights between ``lo``
    and ``hi`` (defaulting to the data's own range; a flat series
    renders at the lowest block).  Used by ``repro-bench audit
    --trend`` to show drift history in a terminal.
    """
    if not values:
        raise ValueError("nothing to plot")
    values = [float(v) for v in values]
    lo = min(values) if lo is None else float(lo)
    hi = max(values) if hi is None else float(hi)
    if hi < lo:
        raise ValueError(f"bad sparkline range [{lo}, {hi}]")
    span = hi - lo
    cells = []
    for value in values:
        if span == 0:
            index = 0
        else:
            fraction = (min(max(value, lo), hi) - lo) / span
            index = min(len(_SPARK_BLOCKS) - 1,
                        int(fraction * (len(_SPARK_BLOCKS) - 1) + 0.5))
        cells.append(_SPARK_BLOCKS[index])
    return "".join(cells)


def _log_or_linear(values: Sequence[float], log: bool) -> bool:
    """Fall back to linear when a log axis is impossible."""
    return log and all(v > 0 for v in values)


def _scale(value: float, lo: float, hi: float, log: bool,
           cells: int) -> int:
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi == lo:
        return 0
    fraction = (value - lo) / (hi - lo)
    return min(cells - 1, max(0, round(fraction * (cells - 1))))


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = math.floor(math.log10(abs(value)))
    if -2 <= magnitude <= 5:
        return f"{value:g}"
    return f"1e{magnitude}"


def ascii_plot(series: Mapping[str, Mapping[float, float]],
               width: int = 64, height: int = 20,
               log_x: bool = True, log_y: bool = True,
               title: Optional[str] = None,
               x_label: str = "x", y_label: str = "y") -> str:
    """Render named series as an ASCII chart.

    ``series`` maps a label to ``{x: y}`` points.  Both axes default to
    log scale (falling back to linear if any coordinate is <= 0).
    """
    if not series:
        raise ValueError("nothing to plot")
    xs = [x for points in series.values() for x in points]
    ys = [y for points in series.values() for y in points.values()]
    if not xs:
        raise ValueError("series contain no points")
    log_x = _log_or_linear(xs, log_x)
    log_y = _log_or_linear(ys, log_y)
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    legend: List[Tuple[str, str]] = []
    for index, label in enumerate(sorted(series)):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append((marker, label))
        for x, y in series[label].items():
            column = _scale(x, x_lo, x_hi, log_x, width)
            row = height - 1 - _scale(y, y_lo, y_hi, log_y, height)
            cell = grid[row][column]
            grid[row][column] = marker if cell in (" ", marker) else "?"

    lines = []
    if title:
        lines.append(title)
    top_tick = _format_tick(y_hi)
    bottom_tick = _format_tick(y_lo)
    margin = max(len(top_tick), len(bottom_tick), len(y_label)) + 1
    lines.append(f"{y_label:>{margin}}")
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = f"{top_tick:>{margin}}"
        elif row_index == height - 1:
            prefix = f"{bottom_tick:>{margin}}"
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    left_tick = _format_tick(x_lo)
    right_tick = _format_tick(x_hi)
    gap = width - len(left_tick) - len(right_tick)
    lines.append(" " * (margin + 1) + left_tick + " " * max(1, gap) +
                 right_tick)
    axis_note = []
    if log_x:
        axis_note.append("log x")
    if log_y:
        axis_note.append("log y")
    scale_text = f" [{', '.join(axis_note)}]" if axis_note else ""
    lines.append(" " * (margin + 1) + x_label + scale_text)
    lines.append("legend: " +
                 "  ".join(f"{marker}={label}"
                           for marker, label in legend))
    return "\n".join(lines)


def plot_figure(data, width: int = 64, height: int = 20) -> str:
    """Render a :class:`~repro.bench.figures.FigureData` as a chart."""
    series = {"/".join(str(part) for part in key): points
              for key, points in data.series.items()}
    return ascii_plot(series, width=width, height=height,
                      title=f"{data.figure_id}: {data.title}",
                      x_label="x", y_label=data.unit)
