"""Sweep grids: cell enumeration, presets, and deterministic sharding.

A sweep evaluates ``T(m, p)`` over the cross product of machines,
collectives, message lengths, and machine sizes — the paper's
experimental grid (Section 2).  :class:`SweepGrid` enumerates that
product in one canonical sorted order so every run (serial, parallel,
cached, or not) sees the identical cell list, and :func:`shard_cells`
deals the list round-robin across workers so the expensive large-``p``
cells spread evenly instead of landing on one shard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..bench.workload import FIGURE_OPS, MACHINES, machine_sizes_for
from ..core import (
    PAPER_MACHINE_SIZES,
    PAPER_MESSAGE_SIZES,
    STARTUP_PROBE_BYTES,
)

__all__ = ["SweepCell", "SweepGrid", "GRID_PRESETS", "preset_grid",
           "shard_cells"]


@dataclass(frozen=True, order=True)
class SweepCell:
    """One (machine, op, m, p) grid point.

    ``algorithm`` optionally overrides the machine's fixed algorithm
    choice for this cell (the tuner races candidates this way).  The
    empty string — not ``None``, which would break the ordered
    dataclass's sorting — means "the machine's default".
    """

    machine: str
    op: str
    nbytes: int
    p: int
    algorithm: str = ""

    def key(self) -> str:
        """Human-readable stable identifier, e.g. ``sp2/alltoall/1024/32``."""
        base = f"{self.machine}/{self.op}/{self.nbytes}/{self.p}"
        return f"{base}/{self.algorithm}" if self.algorithm else base


@dataclass(frozen=True)
class SweepGrid:
    """Declarative sweep grid; ``cells()`` is its canonical enumeration."""

    name: str
    machines: Tuple[str, ...] = MACHINES
    ops: Tuple[str, ...] = FIGURE_OPS
    message_sizes: Tuple[int, ...] = PAPER_MESSAGE_SIZES
    machine_sizes: Tuple[int, ...] = PAPER_MACHINE_SIZES
    #: Add the paper's seventh panel: the payload-free barrier.
    include_barrier: bool = False

    def cells(self) -> Tuple[SweepCell, ...]:
        """All grid points, deduplicated, in sorted canonical order.

        Sorting (machine, op, m, p) — not insertion order — is what
        makes artifacts byte-stable: any permutation of the declared
        tuples enumerates the identical cell sequence.  The T3D's
        64-node allocation cap is honoured per machine.
        """
        cells = set()
        for machine in self.machines:
            sizes = machine_sizes_for(machine, self.machine_sizes)
            for op in self.ops:
                for p in sizes:
                    for nbytes in self.message_sizes:
                        cells.add(SweepCell(machine, op, nbytes, p))
            if self.include_barrier:
                for p in sizes:
                    cells.add(SweepCell(machine, "barrier", 0, p))
        return tuple(sorted(cells))


#: Named grids the CLI exposes.  ``fig1`` and ``fig3`` mirror the
#: paper's Figures 1 and 3; ``smoke`` is the tiny grid CI exercises.
GRID_PRESETS: Dict[str, SweepGrid] = {
    "fig1": SweepGrid(name="fig1",
                      message_sizes=(STARTUP_PROBE_BYTES,)),
    "fig2": SweepGrid(name="fig2", machine_sizes=(32,)),
    "fig3": SweepGrid(name="fig3", message_sizes=(16, 65536),
                      include_barrier=True),
    "smoke": SweepGrid(name="smoke", machines=("sp2", "t3d"),
                       ops=("broadcast", "reduce"),
                       message_sizes=(16, 1024),
                       machine_sizes=(2, 4),
                       include_barrier=True),
    "full": SweepGrid(name="full", include_barrier=True),
}


def preset_grid(name: str) -> SweepGrid:
    """Look up a named grid preset."""
    try:
        return GRID_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(GRID_PRESETS))
        raise KeyError(f"unknown grid preset {name!r}; known presets: "
                       f"{known}") from None


def shard_cells(cells: Tuple[SweepCell, ...],
                num_shards: int) -> Tuple[Tuple[SweepCell, ...], ...]:
    """Deal ``cells`` round-robin into ``num_shards`` ordered shards.

    Deterministic: shard ``i`` gets cells ``i, i + n, i + 2n, ...`` of
    the (already sorted) input.  Round-robin interleaving balances
    cost because enumeration order groups cells by (machine, op), so
    consecutive cells — cheap small-``p`` and expensive large-``p``
    alike — scatter across shards.  Empty shards are dropped.
    """
    if num_shards < 1:
        raise ValueError(f"need at least one shard, got {num_shards}")
    shards = [list(cells[index::num_shards])
              for index in range(num_shards)]
    return tuple(tuple(shard) for shard in shards if shard)
