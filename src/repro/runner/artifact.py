"""Canonical sweep artifacts (``BENCH_sweep.json``) and their diffs.

The artifact is the sweep's single product: a key-sorted, indented
JSON document with one entry per cell.  It deliberately contains no
timestamps, hostnames, worker counts, or wall-clock numbers — only
inputs and results — so two runs of the same sweep produce *byte
identical* files regardless of parallelism or cache temperature.
That property is what makes the checked-in golden baseline and the
``repro-bench diff`` regression gate trustworthy.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..bench.compare import values_match
from ..sim import SIM_VERSION
from .fingerprint import to_jsonable
from .pool import SweepConfig, SweepResult

__all__ = ["ARTIFACT_SCHEMA", "VOLATILE_RESULT_FIELDS",
           "scrub_volatile", "build_artifact", "dumps_artifact",
           "write_artifact", "load_artifact", "ArtifactDiff",
           "diff_artifacts"]

PathLike = Union[str, Path]

ARTIFACT_SCHEMA = "repro-sweep/1"

#: Wall-clock and host-identity fields that must never reach a
#: byte-compared artifact.  In-tree evaluators produce none of them;
#: the scrub in :func:`build_artifact` is the enforcement point for
#: results that arrive via the cache from older versions or external
#: tooling (e.g. a per-cell ``elapsed_s`` — the sweep-level one on
#: :class:`SweepResult` only ever reaches the progress summary).
VOLATILE_RESULT_FIELDS = frozenset({
    "elapsed_s", "wall_s", "wall_clock_s", "host", "hostname",
    "timestamp", "started_at", "finished_at", "pid", "worker",
})

#: (machine, op, nbytes, p, algorithm) — how diffing pairs cells up.
#: Plain sweep cells carry no ``algorithm`` key (the machine default);
#: they index with the empty string so pre-override artifacts pair up
#: unchanged.
CellKey = Tuple[str, str, int, int, str]


def scrub_volatile(result: Dict[str, object]) -> Dict[str, object]:
    """A copy of a cell result with volatile fields removed."""
    return {name: value for name, value in result.items()
            if name not in VOLATILE_RESULT_FIELDS}


def build_artifact(result: SweepResult, grid_name: str,
                   config: SweepConfig) -> Dict[str, object]:
    """Assemble the canonical artifact document for one sweep."""
    cells = []
    for cell in result.cells:
        if cell in result.quarantined:
            continue
        entry = {
            "machine": cell.machine,
            "op": cell.op,
            "nbytes": cell.nbytes,
            "p": cell.p,
            "fingerprint": result.fingerprints[cell],
            "result": scrub_volatile(result.results[cell]),
        }
        if cell.algorithm:
            # Only on override cells, so plain artifacts stay
            # byte-identical to the pre-override format.
            entry["algorithm"] = cell.algorithm
        cells.append(entry)
    payload = {
        "schema": ARTIFACT_SCHEMA,
        "grid": grid_name,
        "mode": config.mode,
        "sim_version": SIM_VERSION,
        "config": to_jsonable(config.cell_config()),
        "cells": cells,
    }
    if config.breakdown:
        # Only present on breakdown sweeps, so plain artifacts stay
        # byte-identical to the pre-breakdown format.
        payload["breakdown"] = True
    if result.quarantined:
        # Only present when something failed, so clean runs stay
        # byte-identical to pre-quarantine artifacts.
        quarantined = []
        for cell, reason in sorted(result.quarantined.items()):
            entry = {
                "machine": cell.machine,
                "op": cell.op,
                "nbytes": cell.nbytes,
                "p": cell.p,
                "reason": reason,
            }
            if cell.algorithm:
                entry["algorithm"] = cell.algorithm
            quarantined.append(entry)
        payload["quarantined"] = quarantined
    return payload


def dumps_artifact(payload: Dict[str, object]) -> str:
    """Canonical serialization: sorted keys, fixed indent, one final
    newline — the byte-stable form everything compares against."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_artifact(payload: Dict[str, object], path: PathLike) -> Path:
    path = Path(path)
    path.write_text(dumps_artifact(payload), "utf-8")
    return path


def load_artifact(path: PathLike) -> Dict[str, object]:
    path = Path(path)
    payload = json.loads(path.read_text("utf-8"))
    schema = payload.get("schema")
    if schema != ARTIFACT_SCHEMA:
        raise ValueError(f"{path} is not a sweep artifact "
                         f"(schema {schema!r}, expected "
                         f"{ARTIFACT_SCHEMA!r})")
    return payload


def _index(payload: Dict[str, object]) -> Dict[CellKey, Dict[str, object]]:
    cells = payload.get("cells", [])
    return {(c["machine"], c["op"], int(c["nbytes"]), int(c["p"]),
             c.get("algorithm", "")): c
            for c in cells}


def _cell_name(key: CellKey) -> str:
    return "/".join(str(part) for part in key if part != "")


@dataclass
class ArtifactDiff:
    """Outcome of comparing a sweep artifact against a baseline."""

    rtol: float
    atol: float
    compared: int = 0
    #: Cells only in the new artifact / only in the baseline.
    added: List[CellKey] = field(default_factory=list)
    removed: List[CellKey] = field(default_factory=list)
    #: (key, baseline time, new time, relative difference).
    changed: List[Tuple[CellKey, float, float, float]] = \
        field(default_factory=list)
    #: Metadata fields (mode, grid, sim_version, config) that differ.
    metadata: List[str] = field(default_factory=list)

    def clean(self) -> bool:
        return not (self.added or self.removed or self.changed or
                    self.metadata)

    def format(self) -> str:
        """Human-readable report; one line per divergence."""
        lines = []
        if self.metadata:
            lines.append("metadata differs: " + ", ".join(self.metadata))
        for key in self.removed:
            lines.append(f"- {_cell_name(key)}: only in baseline")
        for key in self.added:
            lines.append(f"+ {_cell_name(key)}: only in new artifact")
        for key, base, new, rel in self.changed:
            lines.append(f"! {_cell_name(key)}: {base:.6g} us -> "
                         f"{new:.6g} us ({rel:+.3%})")
        verdict = "identical" if self.clean() else \
            (f"{len(self.added)} added, {len(self.removed)} removed, "
             f"{len(self.changed)} changed")
        lines.append(f"compared {self.compared} cells "
                     f"(rtol={self.rtol:g}, atol={self.atol:g}): "
                     f"{verdict}")
        return "\n".join(lines)


def diff_artifacts(baseline: Dict[str, object],
                   current: Dict[str, object],
                   rtol: float = 0.0,
                   atol: float = 0.0) -> ArtifactDiff:
    """Compare two artifacts cell by cell.

    With the default zero tolerances, any bit difference in a cell's
    ``time_us`` is reported; pass ``rtol``/``atol`` to accept float
    noise (e.g. across libm versions).
    """
    diff = ArtifactDiff(rtol=rtol, atol=atol)
    for name in ("grid", "mode", "sim_version", "config", "breakdown"):
        if baseline.get(name) != current.get(name):
            diff.metadata.append(
                f"{name} ({baseline.get(name)!r} -> "
                f"{current.get(name)!r})")
    base_cells = _index(baseline)
    new_cells = _index(current)
    diff.removed = sorted(set(base_cells) - set(new_cells))
    diff.added = sorted(set(new_cells) - set(base_cells))
    for key in sorted(set(base_cells) & set(new_cells)):
        diff.compared += 1
        base = float(base_cells[key]["result"]["time_us"])
        new = float(new_cells[key]["result"]["time_us"])
        if not values_match(base, new, rtol=rtol, atol=atol):
            rel = (new - base) / base if base else float("inf")
            diff.changed.append((key, base, new, rel))
    return diff
