"""Parallel sweep runner with content-addressed result caching.

The machinery behind ``repro-bench sweep``/``repro-bench diff``:

* :mod:`~repro.runner.shard` — grid presets, canonical cell
  enumeration, round-robin sharding;
* :mod:`~repro.runner.fingerprint` — cache keys hashed from the
  machine spec, algorithm, protocol, and simulator version;
* :mod:`~repro.runner.cache` — the on-disk content-addressed store;
* :mod:`~repro.runner.pool` — the worker-pool engine (and the
  vectorized closed-form fast paths);
* :mod:`~repro.runner.artifact` — byte-stable ``BENCH_sweep.json``
  documents and the baseline diff gate.

Quickstart::

    from repro.runner import SweepConfig, preset_grid, run_sweep

    grid = preset_grid("smoke")
    result = run_sweep(grid.cells(), SweepConfig(workers=4))
    print(result.summary())
"""

from .artifact import (
    VOLATILE_RESULT_FIELDS,
    scrub_volatile,
    ARTIFACT_SCHEMA,
    ArtifactDiff,
    build_artifact,
    diff_artifacts,
    dumps_artifact,
    load_artifact,
    write_artifact,
)
from .cache import CacheStats, ResultCache, default_cache_dir
from .fingerprint import (
    canonical_json,
    cell_fingerprint,
    spec_fingerprint,
    to_jsonable,
)
from .pool import (
    SWEEP_MODES,
    SweepConfig,
    SweepResult,
    evaluate_cell,
    run_sweep,
    validate_cell_algorithms,
)
from .shard import (
    GRID_PRESETS,
    SweepCell,
    SweepGrid,
    preset_grid,
    shard_cells,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactDiff",
    "CacheStats",
    "GRID_PRESETS",
    "ResultCache",
    "SWEEP_MODES",
    "SweepCell",
    "SweepConfig",
    "SweepGrid",
    "SweepResult",
    "VOLATILE_RESULT_FIELDS",
    "build_artifact",
    "canonical_json",
    "cell_fingerprint",
    "default_cache_dir",
    "diff_artifacts",
    "dumps_artifact",
    "evaluate_cell",
    "load_artifact",
    "preset_grid",
    "run_sweep",
    "scrub_volatile",
    "shard_cells",
    "spec_fingerprint",
    "to_jsonable",
    "validate_cell_algorithms",
    "write_artifact",
]
