"""Content-addressed fingerprints for sweep cells.

A sweep cell's result is a pure function of the machine specification,
the collective algorithm it selects, the measurement protocol, and the
simulator's timing-model version.  Hashing exactly those inputs gives a
cache key with the two properties the result cache needs:

* **stable** — the same inputs hash identically in every process and
  interpreter invocation (no ``id()``, no hash randomization, no
  dict-order dependence), so cache entries written by one worker are
  hits for every later run;
* **sensitive** — changing any field of the machine spec (a software
  overhead, a NIC rate, an algorithm choice), the measurement config,
  or :data:`repro.sim.SIM_VERSION` changes the key, so stale results
  are never served.

Keys are hex SHA-256 digests of a canonical JSON rendering.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Mapping, Optional

from ..core import MeasurementConfig
from ..machines import MachineSpec
from ..sim import SIM_VERSION

__all__ = ["to_jsonable", "canonical_json", "spec_fingerprint",
           "cell_fingerprint"]


def to_jsonable(value: Any) -> Any:
    """Recursively reduce dataclasses/mappings/tuples to JSON types.

    Mappings are key-sorted so the rendering is independent of
    insertion order; enums collapse to their values.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: to_jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, enum.Enum):
        return to_jsonable(value.value)
    if isinstance(value, Mapping):
        return {str(key): to_jsonable(value[key])
                for key in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__!r} "
                    f"for fingerprinting")


def canonical_json(value: Any) -> str:
    """Deterministic compact JSON used as the hash preimage."""
    return json.dumps(to_jsonable(value), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def spec_fingerprint(spec: MachineSpec) -> str:
    """Fingerprint of a complete machine specification."""
    return _digest("machine-spec:" + canonical_json(spec))


def cell_fingerprint(spec: MachineSpec, op: str, nbytes: int, p: int,
                     config: Optional[MeasurementConfig] = None,
                     mode: str = "sim",
                     breakdown: bool = False,
                     algorithm: Optional[str] = None) -> str:
    """Cache key for one (machine, op, m, p) sweep cell.

    ``config`` is the measurement protocol (``None`` for the analytic
    and paper-model modes, which take no protocol knobs); ``mode``
    distinguishes simulated from closed-form results for otherwise
    identical cells; ``breakdown`` marks cells that also carry a
    critical-path component breakdown (the key gains the marker only
    when set, so existing plain-cell cache entries stay valid).
    ``algorithm`` is a per-cell override of the machine's fixed
    algorithm choice (tuner candidate sweeps); when absent or equal to
    the default, the key is unchanged, so tuner runs share cache
    entries with plain sweeps of the same cells.
    """
    payload = {
        "sim_version": SIM_VERSION,
        "mode": mode,
        "machine": to_jsonable(spec),
        "algorithm": algorithm if algorithm else spec.algorithms.get(op),
        "op": op,
        "nbytes": int(nbytes),
        "p": int(p),
        "config": to_jsonable(config) if config is not None else None,
    }
    if breakdown:
        payload["breakdown"] = True
    return _digest("sweep-cell:" + canonical_json(payload))
