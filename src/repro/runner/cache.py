"""Content-addressed on-disk cache of sweep-cell results.

Layout: one JSON file per cell under a two-character fan-out
directory, named by the cell's fingerprint::

    <root>/ab/abcdef0123....json

Because the file name *is* the hash of everything the result depends
on (machine spec, algorithm, measurement protocol, simulator version —
see :mod:`repro.runner.fingerprint`), invalidation is automatic: any
input change produces a different key, and the stale entry is simply
never looked up again.  Entries are written atomically (temp file +
rename) so concurrent workers and interrupted runs can never leave a
torn file behind; unreadable or corrupt entries degrade to misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["CacheStats", "ResultCache", "default_cache_dir"]

#: Version of the on-disk entry envelope (payload + checksum).
ENTRY_SCHEMA = 2


def _payload_checksum(payload: Dict[str, Any]) -> str:
    """SHA-256 over the canonical rendering of ``payload``."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_SWEEP_CACHE`` else ``~/.cache/repro/sweep``."""
    override = os.environ.get("REPRO_SWEEP_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "sweep"


@dataclass
class CacheStats:
    """Hit/miss/write counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: Entries that existed but failed parsing or checksum validation
    #: (each also counts as a miss — the caller recomputes).
    corrupt: int = 0

    def format(self) -> str:
        text = (f"{self.hits} hits, {self.misses} misses, "
                f"{self.writes} writes")
        if self.corrupt:
            text += f", {self.corrupt} corrupt"
        return text


@dataclass
class ResultCache:
    """Content-addressed store of JSON payloads keyed by fingerprint."""

    root: Path = field(default_factory=default_cache_dir)
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def path_for(self, key: str) -> Path:
        """Where ``key``'s entry lives (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key``, or ``None`` on any miss.

        A corrupt entry — unparseable JSON, a malformed envelope, or a
        checksum mismatch (torn write, bit rot, manual edit) — counts
        as a miss *and* raises a :class:`UserWarning`; the caller
        recomputes and overwrites it.  A missing file is a plain miss.
        """
        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as fh:
                raw = fh.read()
        except OSError:
            self.stats.misses += 1
            return None
        entry = self._validate(path, raw)
        if entry is None:
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry

    def _validate(self, path: Path, raw: str) -> Optional[Dict[str, Any]]:
        """Parse and checksum one entry; warn and return None if bad."""
        try:
            envelope = json.loads(raw)
        except ValueError:
            warnings.warn(f"skipping corrupt cache entry {path}: "
                          f"unparseable JSON")
            return None
        if not isinstance(envelope, dict) or \
                not isinstance(envelope.get("payload"), dict) or \
                "checksum" not in envelope:
            warnings.warn(f"skipping corrupt cache entry {path}: "
                          f"malformed envelope")
            return None
        expected = envelope["checksum"]
        actual = _payload_checksum(envelope["payload"])
        if actual != expected:
            warnings.warn(f"skipping corrupt cache entry {path}: "
                          f"checksum mismatch")
            return None
        return envelope["payload"]

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically persist ``payload`` under ``key``.

        The entry is written to a temp file in the destination
        directory and renamed into place (``os.replace``), so a
        concurrent reader sees either the old entry or the new one,
        never a torn file; the embedded checksum catches anything that
        corrupts the bytes after the write.
        """
        if not self.enabled:
            return
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "schema": ENTRY_SCHEMA,
            "checksum": _payload_checksum(payload),
            "payload": payload,
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(envelope, sort_keys=True), "utf-8")
        os.replace(tmp, path)
        self.stats.writes += 1

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = len(self)
        if self.root.exists():
            shutil.rmtree(self.root)
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
