"""Content-addressed on-disk cache of sweep-cell results.

Layout: one JSON file per cell under a two-character fan-out
directory, named by the cell's fingerprint::

    <root>/ab/abcdef0123....json

Because the file name *is* the hash of everything the result depends
on (machine spec, algorithm, measurement protocol, simulator version —
see :mod:`repro.runner.fingerprint`), invalidation is automatic: any
input change produces a different key, and the stale entry is simply
never looked up again.  Entries are written atomically (temp file +
rename) so concurrent workers and interrupted runs can never leave a
torn file behind; unreadable or corrupt entries degrade to misses.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["CacheStats", "ResultCache", "default_cache_dir"]


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_SWEEP_CACHE`` else ``~/.cache/repro/sweep``."""
    override = os.environ.get("REPRO_SWEEP_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "sweep"


@dataclass
class CacheStats:
    """Hit/miss/write counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    def format(self) -> str:
        return (f"{self.hits} hits, {self.misses} misses, "
                f"{self.writes} writes")


@dataclass
class ResultCache:
    """Content-addressed store of JSON payloads keyed by fingerprint."""

    root: Path = field(default_factory=default_cache_dir)
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def path_for(self, key: str) -> Path:
        """Where ``key``'s entry lives (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key``, or ``None`` on any miss.

        A corrupt, truncated, or unreadable entry counts as a miss —
        the caller recomputes and overwrites it.
        """
        if not self.enabled:
            return None
        try:
            with self.path_for(key).open("r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically persist ``payload`` under ``key``."""
        if not self.enabled:
            return
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True), "utf-8")
        os.replace(tmp, path)
        self.stats.writes += 1

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = len(self)
        if self.root.exists():
            shutil.rmtree(self.root)
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
