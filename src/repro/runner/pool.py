"""The parallel sweep engine.

:func:`run_sweep` takes a cell list, consults the content-addressed
:class:`~repro.runner.cache.ResultCache`, and evaluates only the cells
the cache cannot answer:

* ``sim`` mode shards the missing cells round-robin across a
  ``multiprocessing`` pool (one full simulation per cell);
* ``analytic`` and ``model`` modes group cells by (machine, op, p) and
  evaluate each group's whole message-size vector in one call to the
  vectorized closed-form paths (:meth:`AnalyticModel.predict_batch`,
  :meth:`TimingExpression.evaluate_grid`) — no pool needed, the numpy
  pass is already orders of magnitude faster than simulation.

Determinism: a cell's result depends only on the cell and the
measurement protocol (all simulation seeds derive from them), never on
which worker computed it or in what order, so any worker count — and
any warm/cold cache state — produces bit-identical sweep results.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core import (
    QUICK_CONFIG,
    AnalyticModel,
    MeasurementConfig,
    measure_collective,
    paper_expression,
)
from ..faults import FaultPlan
from ..machines import MachineSpec, get_machine_spec
from .cache import ResultCache
from .fingerprint import cell_fingerprint
from .shard import SweepCell, shard_cells

__all__ = ["SWEEP_MODES", "SweepConfig", "SweepResult", "evaluate_cell",
           "run_sweep", "validate_cell_algorithms"]

#: ``sim`` runs the discrete-event simulator; ``analytic`` the
#: no-simulation cost model; ``model`` the paper's Table 3 expressions.
SWEEP_MODES = ("sim", "analytic", "model")


@dataclass(frozen=True)
class SweepConfig:
    """How to run a sweep: mode, parallelism, protocol, caching."""

    mode: str = "sim"
    workers: int = 1
    measurement: MeasurementConfig = QUICK_CONFIG
    cache_dir: Optional[str] = None
    use_cache: bool = True
    #: Per-cell wall-clock budget (seconds).  A shard that exceeds
    #: ``cell_timeout_s * len(shard)`` is presumed stuck or its worker
    #: crashed: its cells are requeued one at a time, and a cell that
    #: fails alone is quarantined instead of sinking the sweep.
    #: ``None`` disables the watchdog (a crashed worker then hangs the
    #: sweep, as a plain pool would).
    cell_timeout_s: Optional[float] = None
    #: Attach a per-cell critical-path component breakdown (software /
    #: wire / contention / fault-recovery) to every result.  Requires a
    #: traced run per cell, so it is ``sim``-mode only and opt-in.
    breakdown: bool = False

    def __post_init__(self) -> None:
        if self.mode not in SWEEP_MODES:
            raise ValueError(f"unknown sweep mode {self.mode!r}; "
                             f"expected one of {SWEEP_MODES}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ValueError(f"cell_timeout_s must be > 0, got "
                             f"{self.cell_timeout_s}")
        if self.breakdown and self.mode != "sim":
            raise ValueError("breakdown requires mode='sim' (closed "
                             "forms have no trace to analyse)")

    def cell_config(self) -> Optional[MeasurementConfig]:
        """The protocol that keys cache entries (``None`` off the
        simulator path — closed forms take no protocol knobs)."""
        return self.measurement if self.mode == "sim" else None


@dataclass
class SweepResult:
    """Everything one sweep produced, keyed by cell."""

    cells: Tuple[SweepCell, ...]
    results: Dict[SweepCell, Dict[str, float]]
    fingerprints: Dict[SweepCell, str]
    cache_hits: int = 0
    evaluated: int = 0
    elapsed_s: float = 0.0
    #: Cells that failed or timed out even alone, with the reason.
    #: They have no entry in ``results`` and are never cached.
    quarantined: Dict[SweepCell, str] = field(default_factory=dict)
    #: Cells resubmitted individually after their shard failed.
    requeued: int = 0

    def summary(self) -> str:
        text = (f"{len(self.cells)} cells, {self.evaluated} evaluated, "
                f"{self.cache_hits} cache hits, {self.elapsed_s:.2f} s")
        if self.quarantined:
            text += f", {len(self.quarantined)} quarantined"
        return text


def _cell_breakdown(cell: SweepCell,
                    config: MeasurementConfig) -> Dict[str, object]:
    """One traced run's critical-path components for a sweep cell."""
    from ..obs.capture import capture_collective

    capture = capture_collective(
        cell.machine, cell.op, nbytes=cell.nbytes, num_nodes=cell.p,
        iterations=1, seed=config.seed, contention=config.contention,
        metrics=False, faults=config.faults)
    path = capture.critical_path()
    return {
        "components": {name: float(f"{value:.9g}")
                       for name, value in path.components.items()},
        "total_us": float(f"{path.total_us:.9g}"),
        "steps": len(path.steps),
    }


def evaluate_cell(cell: SweepCell, config: Optional[MeasurementConfig],
                  mode: str = "sim",
                  breakdown: bool = False) -> Dict[str, float]:
    """Evaluate one cell from scratch (no cache involved)."""
    if mode == "sim":
        machine: object = cell.machine
        if cell.algorithm:
            # Per-cell override: race this algorithm instead of the
            # machine's fixed choice (the tuner's candidate sweeps).
            spec = get_machine_spec(cell.machine)
            machine = dataclasses.replace(
                spec, algorithms={**dict(spec.algorithms),
                                  cell.op: cell.algorithm})
        sample = measure_collective(machine, cell.op, cell.nbytes,
                                    cell.p, config or QUICK_CONFIG)
        result = {
            "time_us": sample.time_us,
            "run_times_us": list(sample.run_times_us),
            "process_min_us": sample.process_min_us,
            "process_mean_us": sample.process_mean_us,
            "process_max_us": sample.process_max_us,
        }
        if breakdown:
            result["breakdown"] = _cell_breakdown(
                cell, config or QUICK_CONFIG)
        return result
    if cell.algorithm:
        raise ValueError(
            f"mode {mode!r} uses closed forms keyed to the machines' "
            f"fixed algorithms and cannot honour the per-cell override "
            f"{cell.algorithm!r}; use mode='sim'")
    if mode == "analytic":
        spec = get_machine_spec(cell.machine)
        model = AnalyticModel(spec)
        return {"time_us": float(
            model.predict_batch(cell.op, (cell.nbytes,), cell.p)[0])}
    if mode == "model":
        expr = paper_expression(cell.machine, cell.op)
        return {"time_us": float(
            expr.evaluate_grid((cell.nbytes,), (cell.p,))[0, 0])}
    raise ValueError(f"unknown sweep mode {mode!r}")


def _rebuild_config(config_kwargs: Dict[str, object]
                    ) -> Optional[MeasurementConfig]:
    """Rebuild a MeasurementConfig from its pickled plain-dict form.

    ``dataclasses.asdict`` flattens a nested :class:`FaultPlan` into
    dicts; restore it so workers inject the same faults the parent
    configured.
    """
    if not config_kwargs:
        return None
    kwargs = dict(config_kwargs)
    faults = kwargs.get("faults")
    if isinstance(faults, Mapping):
        kwargs["faults"] = FaultPlan.from_dict(faults)
    return MeasurementConfig(**kwargs)


def _evaluate_shard(task: Tuple[Tuple[Tuple[str, str, int, int], ...],
                                Dict[str, object], str, bool]
                    ) -> List[Tuple[Tuple[str, str, int, int],
                                    Dict[str, float]]]:
    """Worker entry point: evaluate one shard of cells.

    Takes/returns plain tuples and dicts so the payload pickles under
    any multiprocessing start method.
    """
    cell_tuples, config_kwargs, mode, breakdown = task
    config = _rebuild_config(config_kwargs)
    out = []
    for cell_tuple in cell_tuples:
        cell = SweepCell(*cell_tuple)
        out.append((cell_tuple,
                    evaluate_cell(cell, config, mode, breakdown)))
    return out


def _shard_task(shard: Sequence[SweepCell],
                config_kwargs: Dict[str, object], mode: str,
                breakdown: bool):
    return (tuple(dataclasses.astuple(cell) for cell in shard),
            config_kwargs, mode, breakdown)


def _evaluate_parallel(cells: Sequence[SweepCell],
                       config: SweepConfig
                       ) -> Tuple[Dict[SweepCell, Dict[str, float]],
                                  Dict[SweepCell, str], int]:
    """Fan simulation cells out across a worker pool.

    Returns ``(results, quarantined, requeued)``.  A shard whose worker
    raises, crashes, or blows its time budget is split and resubmitted
    one cell at a time (crash/hang detection needs
    ``config.cell_timeout_s``; exceptions are caught either way); a
    cell that fails alone lands in ``quarantined`` with the reason
    rather than aborting the sweep.
    """
    config_kwargs = dataclasses.asdict(config.measurement)
    mode = config.mode
    results: Dict[SweepCell, Dict[str, float]] = {}
    quarantined: Dict[SweepCell, str] = {}
    requeued = 0
    shards = [tuple(shard)
              for shard in shard_cells(tuple(cells), config.workers)
              if shard]
    if config.workers == 1 and config.cell_timeout_s is None:
        # In-process fast path: no pool, but the same per-cell
        # quarantine semantics.
        cell_config = _rebuild_config(config_kwargs)
        for cell in cells:
            try:
                results[cell] = evaluate_cell(cell, cell_config, mode,
                                              config.breakdown)
            except Exception as exc:
                quarantined[cell] = repr(exc)
        return results, quarantined, requeued
    with multiprocessing.Pool(processes=config.workers) as pool:
        pending: List[Tuple[SweepCell, ...]] = shards
        while pending:
            batch, pending = pending, []
            handles = [
                (shard, pool.apply_async(
                    _evaluate_shard,
                    (_shard_task(shard, config_kwargs, mode,
                                 config.breakdown),)))
                for shard in batch
            ]
            for shard, handle in handles:
                failure = None
                output = None
                try:
                    if config.cell_timeout_s is None:
                        output = handle.get()
                    else:
                        budget = config.cell_timeout_s * len(shard)
                        output = handle.get(timeout=budget)
                except multiprocessing.TimeoutError:
                    failure = (f"timed out after "
                               f"{config.cell_timeout_s * len(shard):g} s "
                               f"(worker stuck or crashed)")
                except Exception as exc:
                    failure = repr(exc)
                if output is not None:
                    for cell_tuple, result in output:
                        results[SweepCell(*cell_tuple)] = result
                elif len(shard) > 1:
                    # Isolate the poison cell: retry one at a time.
                    requeued += len(shard)
                    pending.extend((cell,) for cell in shard)
                else:
                    quarantined[shard[0]] = failure or "unknown failure"
    return results, quarantined, requeued


def _evaluate_batched(cells: Sequence[SweepCell],
                      specs: Dict[str, MachineSpec],
                      mode: str
                      ) -> Tuple[Dict[SweepCell, Dict[str, float]],
                                 Dict[SweepCell, str]]:
    """Closed-form modes: vectorize each (machine, op, p) row's sizes.

    Returns ``(results, quarantined)`` — a row whose closed form raises
    quarantines its cells with the reason instead of sinking the sweep,
    matching the simulation path's per-cell semantics.
    """
    rows: Dict[Tuple[str, str, int], List[int]] = {}
    for cell in cells:
        rows.setdefault((cell.machine, cell.op, cell.p),
                        []).append(cell.nbytes)
    results: Dict[SweepCell, Dict[str, float]] = {}
    quarantined: Dict[SweepCell, str] = {}
    for (machine, op, p), sizes in sorted(rows.items()):
        sizes = sorted(set(sizes))
        try:
            if mode == "analytic":
                times = AnalyticModel(specs[machine]).predict_batch(
                    op, sizes, p)
            else:
                times = paper_expression(machine, op).evaluate_grid(
                    sizes, (p,))[0]
        except Exception as exc:
            for nbytes in sizes:
                quarantined[SweepCell(machine, op, nbytes, p)] = repr(exc)
            continue
        for nbytes, time_us in zip(sizes, times):
            results[SweepCell(machine, op, nbytes, p)] = \
                {"time_us": float(time_us)}
    return results, quarantined


def validate_cell_algorithms(cells: Sequence[SweepCell], mode: str = "sim",
                             breakdown: bool = False) -> None:
    """Reject bad per-cell algorithm overrides before any work starts.

    An unknown name (a hand-edited decision table, a stale file) must
    surface as a clean :class:`ValueError` naming the known algorithms
    — not as a raw ``KeyError`` traceback from ``get_algorithm`` deep
    inside a worker mid-sweep.  Overrides also require ``sim`` mode
    (the closed forms are keyed to the machines' fixed algorithms) and
    are incompatible with the breakdown capture path.
    """
    overridden = sorted({cell.algorithm for cell in cells
                         if cell.algorithm})
    if not overridden:
        return
    if mode != "sim":
        raise ValueError(
            f"per-cell algorithm overrides require mode='sim'; mode "
            f"{mode!r} uses closed forms keyed to the machines' fixed "
            f"algorithms")
    if breakdown:
        raise ValueError("per-cell algorithm overrides are incompatible "
                         "with breakdown=True (the capture path runs "
                         "the machine's fixed algorithm)")
    from ..mpi.collectives import algorithm_names

    known = sorted(algorithm_names())
    unknown = sorted(set(overridden) - set(known))
    if unknown:
        raise ValueError(
            f"unknown collective algorithm(s) {', '.join(unknown)}; "
            f"known algorithms: {', '.join(known)}")


def run_sweep(cells: Sequence[SweepCell],
              config: Optional[SweepConfig] = None,
              cache: Optional[ResultCache] = None) -> SweepResult:
    """Run a sweep over ``cells``, reusing every cached cell.

    Results are returned (and cached) per cell; the cell list is
    deduplicated and sorted first, so the output is independent of
    input order, worker count, and cache temperature.
    """
    config = config or SweepConfig()
    ordered = tuple(sorted(set(cells)))
    validate_cell_algorithms(ordered, config.mode, config.breakdown)
    if cache is None:
        root = config.cache_dir
        cache = ResultCache(root) if root else ResultCache()
        cache.enabled = config.use_cache
    specs = {name: get_machine_spec(name)
             for name in sorted({cell.machine for cell in ordered})}
    cell_config = config.cell_config()
    fingerprints = {
        cell: cell_fingerprint(specs[cell.machine], cell.op,
                               cell.nbytes, cell.p, cell_config,
                               config.mode, config.breakdown,
                               algorithm=cell.algorithm or None)
        for cell in ordered
    }

    started = time.perf_counter()
    results: Dict[SweepCell, Dict[str, float]] = {}
    missing: List[SweepCell] = []
    for cell in ordered:
        payload = cache.get(fingerprints[cell])
        if payload is not None and "result" in payload:
            results[cell] = payload["result"]
        else:
            missing.append(cell)

    quarantined: Dict[SweepCell, str] = {}
    requeued = 0
    if missing:
        if config.mode == "sim":
            computed, quarantined, requeued = \
                _evaluate_parallel(missing, config)
        else:
            computed, quarantined = _evaluate_batched(missing, specs,
                                                      config.mode)
        for cell in missing:
            if cell in quarantined:
                continue
            results[cell] = computed[cell]
            cache.put(fingerprints[cell], {
                "cell": dataclasses.asdict(cell),
                "mode": config.mode,
                "result": computed[cell],
            })

    return SweepResult(
        cells=ordered,
        results=results,
        fingerprints=fingerprints,
        cache_hits=len(ordered) - len(missing),
        evaluated=len(missing) - len(quarantined),
        elapsed_s=time.perf_counter() - started,
        quarantined=quarantined,
        requeued=requeued,
    )
