"""Candidate algorithm sets and tuning grids.

The tuner races, per operation, the machine's fixed 1996 choice against
the zoo (:mod:`repro.mpi.collectives.zoo`) and extension
(:mod:`repro.mpi.collectives.extensions`) algorithms that implement
the same semantics.  Candidates needing hardware a machine lacks — a
barrier wire, a message coprocessor — are filtered out per machine, so
every raced cell actually runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..machines import MachineSpec

__all__ = ["CANDIDATES", "TUNE_OPS", "TuneGrid", "TUNE_GRIDS",
           "tune_grid", "candidate_algorithms"]

#: op -> alternative algorithms implementing it (the machine's own
#: fixed choice is always raced too, as the incumbent).
CANDIDATES: Dict[str, Tuple[str, ...]] = {
    "broadcast": ("scatter_allgather_broadcast",
                  "segmented_binomial_broadcast"),
    "reduce": ("binary_tree_reduce", "segmented_binomial_reduce"),
    "gather": ("binomial_tree_gather",),
    "alltoall": ("pairwise_exchange_alltoall",),
    "allgather": ("ring_allgather", "recursive_doubling_allgather"),
    "allreduce": ("recursive_doubling_allreduce",
                  "rabenseifner_allreduce"),
    "reduce_scatter": ("ring_reduce_scatter",
                       "recursive_halving_reduce_scatter"),
}

#: The operations the default grids tune, in canonical order.
TUNE_OPS: Tuple[str, ...] = ("allgather", "allreduce", "alltoall",
                             "broadcast", "gather", "reduce",
                             "reduce_scatter")


def _is_feasible(spec: MachineSpec, algorithm: str) -> bool:
    """Whether ``algorithm`` can run on ``spec`` at all."""
    if algorithm == "hardware_barrier":
        return spec.barrier_wire is not None
    if algorithm == "offloaded_scan":
        software = spec.software
        return software.offload_round_us is not None and \
            software.offload_us_per_byte is not None
    return True


def candidate_algorithms(spec: MachineSpec, op: str) -> Tuple[str, ...]:
    """Sorted candidate set for (machine, op): incumbent + feasible
    alternatives.  Empty when the machine defines no algorithm for the
    operation."""
    incumbent = spec.algorithms.get(op)
    if incumbent is None:
        return ()
    names = {incumbent}
    names.update(name for name in CANDIDATES.get(op, ())
                 if _is_feasible(spec, name))
    return tuple(sorted(names))


@dataclass(frozen=True)
class TuneGrid:
    """The (op, m, p) cross product one tuning run measures.

    Machines come from the caller; per machine the ``machine_sizes``
    are clipped to its allocation cap (the T3D's 64-node partition)
    exactly as sweep grids do.
    """

    name: str
    ops: Tuple[str, ...] = TUNE_OPS
    message_sizes: Tuple[int, ...] = (16, 1024, 16384, 65536)
    machine_sizes: Tuple[int, ...] = (4, 16, 64)


#: Named tuning grids the CLI exposes.  ``paper`` spans the paper's
#: operation set at short/medium/long messages; ``smoke`` is the tiny
#: grid CI byte-diffs.
TUNE_GRIDS: Dict[str, TuneGrid] = {
    "paper": TuneGrid(name="paper"),
    "smoke": TuneGrid(name="smoke",
                      ops=("allreduce", "broadcast"),
                      message_sizes=(64, 65536),
                      machine_sizes=(4, 16)),
}


def tune_grid(name: str) -> TuneGrid:
    """Look up a named tuning grid."""
    try:
        return TUNE_GRIDS[name]
    except KeyError:
        known = ", ".join(sorted(TUNE_GRIDS))
        raise KeyError(f"unknown tuning grid {name!r}; known grids: "
                       f"{known}") from None
