"""Driving candidate races through the sweep engine.

:func:`run_tune` is the tuner's engine room: it enumerates one
:class:`~repro.runner.SweepCell` per (machine, op, m, p, candidate),
pushes them all through :func:`repro.runner.run_sweep` — reusing its
content-addressed result cache, worker pool, and quarantine semantics
wholesale — then hands the per-cell times to the crossover fitter.
Candidate cells whose algorithm matches the machine's fixed choice
share cache fingerprints with plain sweep cells, so a tune after a
sweep (or vice versa) re-simulates nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..bench.workload import machine_sizes_for
from ..core import QUICK_CONFIG, MeasurementConfig
from ..machines import get_machine_spec
from ..runner import ResultCache, SweepCell, SweepConfig, run_sweep
from .candidates import TuneGrid, candidate_algorithms, tune_grid
from .fit import fit_decision_table
from .table import DecisionTable, build_tuning_artifact

__all__ = ["TuneResult", "tune_cells", "run_tune"]

#: The sweep protocol tuning uses unless told otherwise — the same
#: quick protocol as the smoke sweeps, deterministic per cell.
DEFAULT_TUNE_CONFIG = QUICK_CONFIG


@dataclass
class TuneResult:
    """Everything one tuning run produced."""

    table: DecisionTable
    flips: List[Dict[str, object]]
    grid_name: str
    config: MeasurementConfig
    cells: int = 0
    evaluated: int = 0
    cache_hits: int = 0
    elapsed_s: float = 0.0
    quarantined: Dict[SweepCell, str] = field(default_factory=dict)

    def artifact(self) -> Dict[str, object]:
        """The canonical ``BENCH_tuning.json`` document."""
        return build_tuning_artifact(self.table, self.flips,
                                     self.grid_name, self.config,
                                     quarantined=len(self.quarantined))

    def summary(self) -> str:
        text = (f"{self.cells} cells, {self.evaluated} evaluated, "
                f"{self.cache_hits} cache hits, {len(self.flips)} "
                f"flips, {self.elapsed_s:.2f} s")
        if self.quarantined:
            text += f", {len(self.quarantined)} quarantined"
        return text


def tune_cells(machines: Sequence[str],
               grid: TuneGrid) -> Tuple[SweepCell, ...]:
    """The candidate-race cell list: every feasible candidate at every
    (machine, op, m, p) grid point, in canonical sorted order."""
    cells = set()
    for machine in machines:
        spec = get_machine_spec(machine)
        sizes = machine_sizes_for(machine, grid.machine_sizes)
        for op in grid.ops:
            names = candidate_algorithms(spec, op)
            for p in sizes:
                for nbytes in grid.message_sizes:
                    for name in names:
                        cells.add(SweepCell(machine, op, nbytes, p,
                                            algorithm=name))
    return tuple(sorted(cells))


def run_tune(machines: Sequence[str],
             grid: Union[str, TuneGrid] = "paper",
             config: MeasurementConfig = DEFAULT_TUNE_CONFIG,
             workers: int = 1,
             cache_dir: Optional[str] = None,
             use_cache: bool = True,
             cache: Optional[ResultCache] = None,
             cell_timeout_s: Optional[float] = None) -> TuneResult:
    """Race candidates over the grid and fit the decision table.

    The result is a pure function of (machines, grid, config,
    SIM_VERSION): sweep results are deterministic per cell and the fit
    is integer arithmetic over sorted iteration, so two runs — any
    worker count, any cache state, any process — produce byte-identical
    artifacts.
    """
    if isinstance(grid, str):
        grid = tune_grid(grid)
    machines = tuple(sorted(set(machines)))
    cells = tune_cells(machines, grid)
    sweep_config = SweepConfig(mode="sim", workers=workers,
                               measurement=config, cache_dir=cache_dir,
                               use_cache=use_cache,
                               cell_timeout_s=cell_timeout_s)
    result = run_sweep(cells, sweep_config, cache=cache)

    times: Dict[Tuple[str, str, int, int], Dict[str, float]] = {}
    for cell in result.cells:
        if cell in result.quarantined:
            continue
        times.setdefault((cell.machine, cell.op, cell.nbytes, cell.p),
                         {})[cell.algorithm] = \
            float(result.results[cell]["time_us"])
    defaults = {}
    for machine in machines:
        spec = get_machine_spec(machine)
        for op in grid.ops:
            incumbent = spec.algorithms.get(op)
            if incumbent is not None:
                defaults[(machine, op)] = incumbent
    table, flips = fit_decision_table(times, defaults)
    return TuneResult(
        table=table,
        flips=flips,
        grid_name=grid.name,
        config=config,
        cells=len(result.cells),
        evaluated=result.evaluated,
        cache_hits=result.cache_hits,
        elapsed_s=result.elapsed_s,
        quarantined=dict(result.quarantined),
    )
