"""Decision tables: the autotuner's product and its canonical artifact.

A :class:`DecisionTable` maps (machine, op, message size, communicator
size) to the collective algorithm the tuner measured fastest, encoded
as crossover points — per (machine, op), a list of ``min_p`` bands each
holding ``min_bytes``-thresholded rules, the quantized form of
Barchet-Estefanel & Mounié's "Fast Tuning" decision maps
(arXiv:cs/0408034).  ``BENCH_tuning.json`` is its canonical rendering:
key-sorted, 9-significant-digit times, one trailing newline — byte
stable across runs, processes, and worker counts, like every other
artifact in the repo.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..sim import SIM_VERSION

__all__ = ["TUNING_SCHEMA", "DecisionRule", "DecisionEntry",
           "DecisionTable", "build_tuning_artifact", "dumps_tuning",
           "write_tuning", "load_tuning", "load_decision_table"]

PathLike = Union[str, Path]

TUNING_SCHEMA = "repro-tuning/1"


def _round9(value: float) -> float:
    """Canonical 9-significant-digit rounding used by all artifacts."""
    return float(f"{value:.9g}")


@dataclass(frozen=True, order=True)
class DecisionRule:
    """From ``min_bytes`` up (until the next rule): use ``algorithm``."""

    min_bytes: int
    algorithm: str


@dataclass(frozen=True, order=True)
class DecisionEntry:
    """From ``min_p`` ranks up (until the next entry): these rules."""

    min_p: int
    rules: Tuple[DecisionRule, ...]

    def rule_for(self, nbytes: int) -> DecisionRule:
        """The rule covering ``nbytes``: the largest ``min_bytes`` at
        or below it, else the smallest band (sizes below the measured
        grid extrapolate downward rather than going unanswered)."""
        chosen = self.rules[0]
        for rule in self.rules:
            if rule.min_bytes <= nbytes:
                chosen = rule
        return chosen


@dataclass(frozen=True)
class DecisionTable:
    """Fitted crossover points for every tuned (machine, op) pair.

    ``entries`` maps ``(machine, op)`` to ``min_p``-sorted bands;
    ``defaults`` records the paper's fixed choice for each tuned pair
    (what an absent or non-matching lookup falls back to — the spec's
    own ``algorithms`` map answers in that case, so a table never has
    to be complete).
    """

    entries: Mapping[Tuple[str, str], Tuple[DecisionEntry, ...]] = \
        field(default_factory=dict)
    defaults: Mapping[Tuple[str, str], str] = field(default_factory=dict)

    def lookup(self, machine: str, op: str, nbytes: int,
               p: int) -> Optional[str]:
        """Algorithm for the cell, or ``None`` when the table has no
        opinion (untuned machine/op — the caller's fixed map decides).
        """
        bands = self.entries.get((machine, op))
        if not bands:
            return None
        chosen = bands[0]
        for entry in bands:
            if entry.min_p <= p:
                chosen = entry
        return chosen.rule_for(nbytes).algorithm

    def algorithms_used(self) -> Tuple[str, ...]:
        """Every algorithm any rule selects, sorted."""
        names = set()
        for bands in self.entries.values():
            for entry in bands:
                for rule in entry.rules:
                    names.add(rule.algorithm)
        return tuple(sorted(names))

    def validate(self) -> None:
        """Raise ``ValueError`` if any rule names an unregistered
        algorithm — the up-front gate that keeps a hand-edited or
        stale table from surfacing as a raw ``KeyError`` mid-sweep."""
        from ..mpi.collectives import algorithm_names

        known = set(algorithm_names())
        unknown = sorted(set(self.algorithms_used()) - known)
        if unknown:
            raise ValueError(
                f"decision table names unknown algorithm(s) "
                f"{', '.join(unknown)}; known algorithms: "
                f"{', '.join(sorted(known))}")

    # -- canonical payload form ------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """The table section of ``BENCH_tuning.json``."""
        machines: Dict[str, Dict[str, object]] = {}
        for (machine, op), bands in sorted(self.entries.items()):
            table = machines.setdefault(machine, {})
            table[op] = {
                "default": self.defaults.get((machine, op)),
                "entries": [{
                    "min_p": entry.min_p,
                    "rules": [{"min_bytes": rule.min_bytes,
                               "algorithm": rule.algorithm}
                              for rule in entry.rules],
                } for entry in bands],
            }
        return machines

    @classmethod
    def from_payload(cls, machines: Mapping[str, object]
                     ) -> "DecisionTable":
        entries: Dict[Tuple[str, str], Tuple[DecisionEntry, ...]] = {}
        defaults: Dict[Tuple[str, str], str] = {}
        for machine in sorted(machines):
            ops = machines[machine]
            for op in sorted(ops):
                section = ops[op]
                if section.get("default") is not None:
                    defaults[(machine, op)] = str(section["default"])
                bands = tuple(sorted(
                    DecisionEntry(
                        min_p=int(entry["min_p"]),
                        rules=tuple(sorted(
                            DecisionRule(min_bytes=int(rule["min_bytes"]),
                                         algorithm=str(rule["algorithm"]))
                            for rule in entry["rules"])))
                    for entry in section["entries"]))
                if bands:
                    entries[(machine, op)] = bands
        return cls(entries=entries, defaults=defaults)


def build_tuning_artifact(table: DecisionTable,
                          flips: Sequence[Mapping[str, object]],
                          grid_name: str,
                          config: object,
                          quarantined: int = 0) -> Dict[str, object]:
    """Assemble the canonical ``BENCH_tuning.json`` document."""
    from ..runner.fingerprint import to_jsonable

    flip_rows: List[Dict[str, object]] = []
    for flip in flips:
        row = dict(flip)
        for key in ("time_us", "default_time_us", "speedup"):
            if key in row:
                row[key] = _round9(float(row[key]))
        flip_rows.append(row)
    payload: Dict[str, object] = {
        "schema": TUNING_SCHEMA,
        "grid": grid_name,
        "sim_version": SIM_VERSION,
        "config": to_jsonable(config) if config is not None else None,
        "machines": table.to_payload(),
        "flips": flip_rows,
    }
    if quarantined:
        # Only present when cells failed, so clean artifacts carry no
        # empty bookkeeping keys.
        payload["quarantined"] = quarantined
    return payload


def dumps_tuning(payload: Dict[str, object]) -> str:
    """Canonical serialization: sorted keys, fixed indent, one final
    newline — the byte-stable form CI compares with ``cmp``."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_tuning(payload: Dict[str, object], path: PathLike) -> Path:
    path = Path(path)
    path.write_text(dumps_tuning(payload), "utf-8")
    return path


def load_tuning(path: PathLike) -> Dict[str, object]:
    """Load and schema-check a ``BENCH_tuning.json`` document."""
    path = Path(path)
    payload = json.loads(path.read_text("utf-8"))
    schema = payload.get("schema")
    if schema != TUNING_SCHEMA:
        raise ValueError(f"{path} is not a tuning artifact "
                         f"(schema {schema!r}, expected "
                         f"{TUNING_SCHEMA!r})")
    return payload


def load_decision_table(path: PathLike) -> DecisionTable:
    """Load, parse, and validate the decision table in an artifact."""
    payload = load_tuning(path)
    table = DecisionTable.from_payload(payload.get("machines", {}))
    table.validate()
    return table
