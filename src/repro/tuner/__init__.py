"""The crossover autotuner (``repro-bench tune``).

The paper fixes one collective algorithm per (machine, op); this
package races the machine's fixed 1996 choice against the algorithm
zoo over a (machine, op, m, p) grid, fits per-(machine, op) crossover
points in message size and communicator size, and emits the canonical
byte-stable ``BENCH_tuning.json`` decision table.  Loading that table
(``MachineSpec.with_decision_table`` / ``repro-bench sweep
--decision-table``) flips cells to whichever algorithm measured
fastest; with no table loaded nothing anywhere changes.

Quickstart::

    from repro.tuner import run_tune, write_tuning

    result = run_tune(["sp2", "t3d", "paragon"], grid="paper")
    write_tuning(result.artifact(), "BENCH_tuning.json")
    print(result.summary())
"""

from .candidates import (
    CANDIDATES,
    TUNE_GRIDS,
    TUNE_OPS,
    TuneGrid,
    candidate_algorithms,
    tune_grid,
)
from .fit import fit_decision_table
from .sweep import TuneResult, run_tune, tune_cells
from .table import (
    TUNING_SCHEMA,
    DecisionEntry,
    DecisionRule,
    DecisionTable,
    build_tuning_artifact,
    dumps_tuning,
    load_decision_table,
    load_tuning,
    write_tuning,
)

__all__ = [
    "CANDIDATES",
    "DecisionEntry",
    "DecisionRule",
    "DecisionTable",
    "TUNE_GRIDS",
    "TUNE_OPS",
    "TUNING_SCHEMA",
    "TuneGrid",
    "TuneResult",
    "build_tuning_artifact",
    "candidate_algorithms",
    "dumps_tuning",
    "fit_decision_table",
    "load_decision_table",
    "load_tuning",
    "run_tune",
    "tune_cells",
    "tune_grid",
    "write_tuning",
]
