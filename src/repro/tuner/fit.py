"""Fitting crossover points from raced candidate timings.

:func:`fit_decision_table` turns the tuner's raw grid of per-cell
candidate times into the compact crossover form of
:class:`~repro.tuner.table.DecisionTable`: per (machine, op), the
winner at each measured (m, p) point, compressed into ``min_bytes`` /
``min_p`` thresholds placed at the geometric mean of adjacent measured
points — the standard way to split a decade-spaced grid (a message
size between two measurements is attributed to whichever side it is
closer to on a log scale).  Everything is integer arithmetic and
sorted iteration, so the fit is bit-reproducible.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence, Tuple

from .table import DecisionEntry, DecisionRule, DecisionTable

__all__ = ["fit_decision_table"]

#: (machine, op, nbytes, p) -> {algorithm: time_us}.
CellTimes = Mapping[Tuple[str, str, int, int], Mapping[str, float]]


def _winner(times: Mapping[str, float], incumbent: str) -> str:
    """Fastest algorithm; ties go to the incumbent, then lexicographic
    (a tie must never flip a cell away from the paper's choice)."""
    return min(sorted(times),
               key=lambda name: (times[name],
                                 0 if name == incumbent else 1, name))


def _threshold(below: int, above: int, floor: int) -> int:
    """Crossover between two measured grid points: their geometric
    mean, kept strictly above both the lower point (so a measured cell
    is always governed by its own winner, even on adjacent grid points
    where ``isqrt`` truncates onto ``below``) and the previous
    threshold."""
    return max(math.isqrt(below * above), below + 1, floor + 1)


def _fit_rules(sizes: Sequence[int],
               winners: Mapping[int, str]) -> Tuple[DecisionRule, ...]:
    """Compress per-size winners into ``min_bytes`` rules."""
    rules: List[DecisionRule] = []
    previous_size = None
    for size in sizes:
        name = winners[size]
        if not rules:
            rules.append(DecisionRule(min_bytes=0, algorithm=name))
        elif name != rules[-1].algorithm:
            cut = _threshold(previous_size, size, rules[-1].min_bytes)
            rules.append(DecisionRule(min_bytes=cut, algorithm=name))
        previous_size = size
    return tuple(rules)


def fit_decision_table(times: CellTimes,
                       defaults: Mapping[Tuple[str, str], str]
                       ) -> Tuple[DecisionTable,
                                  List[Dict[str, object]]]:
    """Fit crossovers from raced times; report the flipped cells.

    Returns ``(table, flips)``.  ``flips`` lists every measured cell
    whose winner beats the machine's fixed choice, with both times and
    the speedup — the acceptance evidence that loading the table
    actually lowers modeled time somewhere.
    """
    grouped: Dict[Tuple[str, str],
                  Dict[int, Dict[int, Mapping[str, float]]]] = {}
    for (machine, op, nbytes, p), cell_times in times.items():
        grouped.setdefault((machine, op), {}) \
            .setdefault(p, {})[nbytes] = cell_times

    entries: Dict[Tuple[str, str], Tuple[DecisionEntry, ...]] = {}
    used_defaults: Dict[Tuple[str, str], str] = {}
    flips: List[Dict[str, object]] = []
    for (machine, op) in sorted(grouped):
        incumbent = defaults.get((machine, op), "")
        by_p = grouped[(machine, op)]
        bands: List[DecisionEntry] = []
        previous_p = None
        for p in sorted(by_p):
            by_size = by_p[p]
            sizes = sorted(by_size)
            winners = {}
            for nbytes in sizes:
                cell_times = by_size[nbytes]
                name = _winner(cell_times, incumbent)
                winners[nbytes] = name
                default_time = cell_times.get(incumbent)
                if name != incumbent and default_time is not None \
                        and cell_times[name] < default_time:
                    flips.append({
                        "machine": machine,
                        "op": op,
                        "nbytes": nbytes,
                        "p": p,
                        "algorithm": name,
                        "time_us": cell_times[name],
                        "default_algorithm": incumbent,
                        "default_time_us": default_time,
                        "speedup": default_time / cell_times[name],
                    })
            rules = _fit_rules(sizes, winners)
            if not bands:
                bands.append(DecisionEntry(min_p=0, rules=rules))
            elif rules != bands[-1].rules:
                cut = _threshold(previous_p, p, bands[-1].min_p)
                bands.append(DecisionEntry(min_p=cut, rules=rules))
            previous_p = p
        entries[(machine, op)] = tuple(bands)
        if incumbent:
            used_defaults[(machine, op)] = incumbent

    flips.sort(key=lambda f: (f["machine"], f["op"], f["nbytes"],
                              f["p"]))
    return DecisionTable(entries=entries,
                         defaults=used_defaults), flips
