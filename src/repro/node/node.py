"""The compute node: clock + memory + NIC + optional DMA engine.

A :class:`Node` bundles the hardware resources one processing element
contributes to the simulation.  The MPI runtime
(:mod:`repro.mpi`) orchestrates these resources into message
send/receive pipelines; the node itself is policy-free.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Environment
from .clock import NodeClock
from .dma import DmaEngine, TransferMode
from .memory import MemorySystem
from .nic import Nic

__all__ = ["Node"]


class Node:
    """One processing element of a simulated multicomputer."""

    def __init__(self, env: Environment, index: int, clock: NodeClock,
                 memory: MemorySystem, nic: Nic,
                 dma: Optional[DmaEngine] = None):
        self.env = env
        self.index = index
        self.clock = clock
        self.memory = memory
        self.nic = nic
        self.dma = dma

    def payload_mode(self, prefer_dma: bool, nbytes: int) -> TransferMode:
        """Pick how a payload of ``nbytes`` moves on this node.

        The DMA engine is used only when the caller's policy prefers it
        *and* the payload clears the engine's size threshold; otherwise
        the host copies through the memory bus.
        """
        if prefer_dma and self.dma is not None and \
                self.dma.applicable(nbytes):
            return self.dma.params.kind
        return TransferMode.HOST

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.index}>"
