"""Payload-movement engines and transfer modes.

Three ways a message payload can get from the user buffer to the NIC
(and back), matching the three machines' documented mechanisms:

* ``HOST`` — the host CPU copies through the memory bus (SP2 MPL/MPICH
  path; T3D CRI/EPCC MPI's default shared-memory copy path).
* ``BLT`` — the Cray T3D's block transfer engine streams large payloads
  with a fixed setup cost and minimal host involvement
  [Adams 1993; Koeninger et al. 1994].
* ``COPROC`` — the Intel Paragon's dedicated i860 message processor
  streams payloads so the host pays no copy [Dunigan 1995].

A :class:`DmaEngine` is a capacity-1 resource: back-to-back transfers
through the same engine serialize, which bounds how fast a Paragon node
can push a scatter or a T3D node can feed a gather.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Generator, Optional

from ..obs.metrics import MetricsRegistry
from ..sim import Environment, Event, Resource

__all__ = ["TransferMode", "DmaParameters", "DmaEngine"]


class TransferMode(enum.Enum):
    """How a message's payload is moved on the sending/receiving node."""

    HOST = "host"
    BLT = "blt"
    COPROC = "coproc"


@dataclass(frozen=True)
class DmaParameters:
    """Timing parameters of a block-transfer/coprocessor engine.

    ``min_message_bytes`` gates use of the engine: below the threshold
    the setup cost is not worth paying and the host path is used (zero
    threshold means always used, as for the Paragon coprocessor which
    *is* the messaging path).
    """

    kind: TransferMode
    setup_us: float
    us_per_byte: float
    min_message_bytes: int = 0

    def __post_init__(self) -> None:
        if self.setup_us < 0 or self.us_per_byte < 0:
            raise ValueError("DMA costs must be non-negative")
        if self.min_message_bytes < 0:
            raise ValueError("negative DMA threshold")


class DmaEngine:
    """A payload-streaming engine attached to one node."""

    def __init__(self, env: Environment, params: DmaParameters,
                 metrics: Optional[MetricsRegistry] = None):
        self.env = env
        self.params = params
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry(enabled=False)
        self._engine = Resource(env, capacity=1)
        self.bytes_streamed = 0

    def applicable(self, nbytes: int) -> bool:
        """Whether the engine would be used for a ``nbytes`` payload."""
        return nbytes >= self.params.min_message_bytes

    def stream(self, nbytes: int) -> Generator[Event, None, None]:
        """Process generator: move ``nbytes`` through the engine."""
        if nbytes < 0:
            raise ValueError(f"negative stream size {nbytes}")
        env = self.env
        if not self.metrics.enabled:
            # Engine idle or contiguously booked: one booking + one
            # completion event instead of request/grant/release churn.
            duration = self.params.setup_us + \
                nbytes * self.params.us_per_byte
            booking = self._engine.try_occupy(duration)
            if booking is not None:
                work = env.work
                if work is not None:
                    work.resource_occupancies += 1
                yield env.sleep_until(booking[0] + duration)
                self.bytes_streamed += nbytes
                return
        request = self._engine.request()
        metrics = self.metrics
        if metrics.enabled:
            metrics.gauge("dma.queue_depth").set(
                self._engine.queue_length)
            metrics.counter("dma.streams").inc()
            metrics.counter("dma.bytes").inc(nbytes)
        yield request
        yield env.sleep(
            self.params.setup_us + nbytes * self.params.us_per_byte)
        self.bytes_streamed += nbytes
        self._engine.release(request)


def engine_for(env: Environment,
               params: Optional[DmaParameters]) -> Optional[DmaEngine]:
    """Build an engine if the machine has one."""
    return None if params is None else DmaEngine(env, params)
