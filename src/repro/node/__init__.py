"""Node-hardware models: clock, memory system, NIC, DMA, barrier wire."""

from .barrier import HardwareBarrier
from .clock import NodeClock
from .dma import DmaEngine, DmaParameters, TransferMode
from .memory import MemorySystem
from .nic import Nic
from .node import Node

__all__ = [
    "DmaEngine",
    "DmaParameters",
    "HardwareBarrier",
    "MemorySystem",
    "Nic",
    "Node",
    "NodeClock",
    "TransferMode",
]
