"""Node memory system: shared memory bus and warm-up behaviour.

Two effects matter for the paper's methodology:

* **Copy bandwidth.**  Message payloads are copied between user buffers
  and system buffers by the host CPU; send-side copies and
  unexpected-receive copies contend for the single memory bus.  This is
  the mechanism behind the higher per-byte cost of bidirectional
  collectives (total exchange) relative to one-way forwarding
  (broadcast) on the same machine.
* **Warm-up.**  The paper discards the first two timing iterations
  because cold runs are "sometimes 10 times higher" — code and buffers
  must be faulted in.  We charge a one-time penalty the first time a
  node touches a given working set (collective x message size).
"""

from __future__ import annotations

from typing import Generator, Hashable, Optional, Set

from ..obs.metrics import MetricsRegistry
from ..sim import Environment, Event, Resource

__all__ = ["MemorySystem"]


class MemorySystem:
    """Memory bus (a capacity-1 resource) plus first-touch accounting."""

    def __init__(self, env: Environment, copy_us_per_byte: float,
                 warmup_us: float = 0.0, warmup_us_per_byte: float = 0.0,
                 metrics: Optional[MetricsRegistry] = None):
        if copy_us_per_byte < 0:
            raise ValueError(f"negative copy cost {copy_us_per_byte}")
        self.env = env
        self.copy_us_per_byte = copy_us_per_byte
        self.warmup_us = warmup_us
        self.warmup_us_per_byte = warmup_us_per_byte
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry(enabled=False)
        self.bus = Resource(env, capacity=1)
        self._touched: Set[Hashable] = set()
        self.bytes_copied = 0

    def copy(self, nbytes: int) -> Generator[Event, None, None]:
        """Process generator: copy ``nbytes`` through the memory bus."""
        if nbytes < 0:
            raise ValueError(f"negative copy size {nbytes}")
        env = self.env
        if not self.metrics.enabled:
            # Bus idle or contiguously booked: book the interval and
            # sleep to its end instead of request/grant/release.
            duration = nbytes * self.copy_us_per_byte
            booking = self.bus.try_occupy(duration)
            if booking is not None:
                work = env.work
                if work is not None:
                    work.resource_occupancies += 1
                yield env.sleep_until(booking[0] + duration)
                self.bytes_copied += nbytes
                return
        request = self.bus.request()
        metrics = self.metrics
        if metrics.enabled:
            metrics.gauge("mem.bus.queue_depth").set(
                self.bus.queue_length)
            metrics.counter("mem.copies").inc()
            metrics.counter("mem.bytes_copied").inc(nbytes)
        yield request
        yield env.sleep(nbytes * self.copy_us_per_byte)
        self.bytes_copied += nbytes
        self.bus.release(request)

    def first_touch_penalty(self, key: Hashable, nbytes: int) -> float:
        """Cold-start cost for working set ``key``; zero once warm."""
        if key in self._touched:
            return 0.0
        self._touched.add(key)
        return self.warmup_us + nbytes * self.warmup_us_per_byte

    def is_warm(self, key: Hashable) -> bool:
        """Whether ``key`` has been touched before."""
        return key in self._touched
