"""Network interface model.

A NIC has a transmit engine and a receive engine, each a capacity-1
resource with a per-message cost and a serialization bandwidth.  The
SP2's communication adapter is modelled *half duplex*: one engine is
shared between transmit and receive, which is part of why the SP2
struggles with the bidirectional traffic of a total exchange
[Stunkel et al. 1994].  The T3D and Paragon NICs are full duplex.

Engine occupancy is what creates root-side serialization in gather
(the root's receive engine handles p-1 messages one after another) and
source-side serialization in scatter.
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

from ..obs.metrics import MetricsRegistry
from ..sim import Environment, Event, Resource

__all__ = ["Nic"]


class Nic:
    """Transmit/receive engines of one node's network adapter."""

    def __init__(self, env: Environment, per_message_us: float,
                 bandwidth_mbs: float, half_duplex: bool = False,
                 fast_bandwidth_mbs: Optional[float] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 node_index: int = -1,
                 injector: Optional[object] = None):
        if bandwidth_mbs <= 0:
            raise ValueError(f"bandwidth must be positive, got "
                             f"{bandwidth_mbs}")
        if per_message_us < 0:
            raise ValueError(f"negative per-message cost {per_message_us}")
        self.env = env
        self.per_message_us = per_message_us
        self.us_per_byte = 1.0 / (bandwidth_mbs * 1.048576)
        if fast_bandwidth_mbs is None:
            self.fast_us_per_byte = self.us_per_byte
        elif fast_bandwidth_mbs <= 0:
            raise ValueError(f"fast bandwidth must be positive, got "
                             f"{fast_bandwidth_mbs}")
        else:
            self.fast_us_per_byte = 1.0 / (fast_bandwidth_mbs * 1.048576)
        self.half_duplex = half_duplex
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry(enabled=False)
        #: Which node this adapter belongs to, and the optional
        #: :class:`~repro.faults.FaultInjector` that can stall it.
        self.node_index = node_index
        self.injector = injector
        self._tx = Resource(env, capacity=1)
        self._rx = self._tx if half_duplex else Resource(env, capacity=1)
        self.messages_sent = 0
        self.messages_received = 0

    def occupancy_us(self, nbytes: int, fast: bool = False) -> float:
        """Engine busy time for one message of ``nbytes``.

        ``fast`` selects the DMA-fed rate (a block-transfer engine or
        message coprocessor feeds the port at link speed, bypassing the
        slower host-driven path).
        """
        per_byte = self.fast_us_per_byte if fast else self.us_per_byte
        return self.per_message_us + nbytes * per_byte

    # -- synchronous booking fast path ------------------------------------
    def try_book_transmit(self, nbytes: int, fast: bool = False
                          ) -> Optional[Tuple[float, Resource, float]]:
        """Timestamp-book the transmit engine for one message.

        Returns ``(end_time, engine, previous_busy_until)`` — the
        latter two so the caller can roll back with
        ``engine.undo_occupy(previous)`` — or ``None`` when the engine
        has queued/granted requests and the protocol path must be used.
        The booking may start at the end of an earlier booking (the
        engine stays contiguously busy), exactly where a queued request
        would have been granted, so the end time is unchanged from full
        simulation.  Commit with :meth:`commit_transmit`.
        """
        return self._try_book(self._tx, nbytes, fast)

    def try_book_receive(self, nbytes: int, fast: bool = False
                         ) -> Optional[Tuple[float, Resource, float]]:
        """Timestamp-book the receive engine (see :meth:`try_book_transmit`).

        On a half-duplex adapter this is the *same* engine as transmit,
        so a transmit booked first pushes the receive booking after it
        — the FIFO order the concurrent wire legs would have produced.
        """
        return self._try_book(self._rx, nbytes, fast)

    def _try_book(self, engine: Resource, nbytes: int, fast: bool
                  ) -> Optional[Tuple[float, Resource, float]]:
        if self.injector is not None or self.metrics.enabled:
            return None
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        duration = self.occupancy_us(nbytes, fast)
        booking = engine.try_occupy(duration)
        if booking is None:
            return None
        start, previous = booking
        return start + duration, engine, previous

    def commit_transmit(self) -> None:
        """Account one fast-booked transmit."""
        self.messages_sent += 1

    def commit_receive(self) -> None:
        """Account one fast-booked receive."""
        self.messages_received += 1

    def transmit(self, nbytes: int,
                 fast: bool = False) -> Generator[Event, None, None]:
        """Process generator: occupy the transmit engine for one message."""
        yield from self._occupy(self._tx, nbytes, fast, "nic.tx")
        self.messages_sent += 1

    def receive(self, nbytes: int,
                fast: bool = False) -> Generator[Event, None, None]:
        """Process generator: occupy the receive engine for one message."""
        yield from self._occupy(self._rx, nbytes, fast, "nic.rx")
        self.messages_received += 1

    def _occupy(self, engine: Resource, nbytes: int, fast: bool,
                label: str) -> Generator[Event, None, None]:
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        env = self.env
        if self.injector is None and not self.metrics.enabled:
            # Engine idle or contiguously booked: one booking + one
            # completion event instead of request/grant/release churn.
            duration = self.occupancy_us(nbytes, fast)
            booking = engine.try_occupy(duration)
            if booking is not None:
                work = env.work
                if work is not None:
                    work.resource_occupancies += 1
                yield env.sleep_until(booking[0] + duration)
                return
        request = engine.request()
        metrics = self.metrics
        if metrics.enabled:
            # Depth *before* this request is granted: how many messages
            # are serialized behind the engine right now.
            metrics.gauge(f"{label}.queue_depth").set(engine.queue_length)
            metrics.counter(f"{label}.messages").inc()
            metrics.histogram(f"{label}.busy_us").observe(
                self.occupancy_us(nbytes, fast))
        yield request
        if self.injector is not None:
            # The injector records faults.nic_stall* metrics itself.
            stall = self.injector.nic_delay(self.node_index, self.env.now)
            if stall > 0:
                yield env.sleep(stall)
        yield env.sleep(self.occupancy_us(nbytes, fast))
        engine.release(request)
