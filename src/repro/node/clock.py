"""Per-node wall clocks.

The paper's Section 2 stresses that allocated nodes "are often not time
synchronized, each having its own clock", which is why its measurement
procedure only ever differences timestamps taken on the *same* node and
combines nodes with a max-reduce.  We model that: each node's clock has
a random constant offset (so absolute times are incomparable across
nodes), a small rate drift, and a finite tick resolution.
"""

from __future__ import annotations

from ..sim import Environment

__all__ = ["NodeClock"]


class NodeClock:
    """A skewed, finite-resolution wall clock attached to one node."""

    def __init__(self, env: Environment, offset_us: float = 0.0,
                 drift: float = 0.0, resolution_us: float = 0.0):
        if resolution_us < 0:
            raise ValueError(f"negative resolution {resolution_us}")
        self.env = env
        self.offset_us = offset_us
        self.drift = drift
        self.resolution_us = resolution_us

    def read(self) -> float:
        """Current local wall-clock time in microseconds.

        Equals ``(1 + drift) * now + offset``, rounded down to the
        clock's tick.  Only differences of two reads from the *same*
        clock are physically meaningful.
        """
        raw = (1.0 + self.drift) * self.env.now + self.offset_us
        if self.resolution_us > 0:
            ticks = int(raw / self.resolution_us)
            return ticks * self.resolution_us
        return raw

    def elapsed(self, start_reading: float) -> float:
        """Local elapsed time since a previous :meth:`read` value."""
        return self.read() - start_reading
