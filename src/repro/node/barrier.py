"""Hardwired barrier network (Cray T3D).

The T3D has a dedicated barrier-wire tree, separate from the data
network; the paper measures its MPI barrier at ~3 us, "at least 30
times faster than the SP2 or Paragon", fitting ``0.011 log p + 3`` us.
We model it directly: once every participant has arrived, the barrier
completes ``base_us + per_level_us * log2(p)`` later — the wired
AND-tree's propagation delay.

The barrier is reusable: each full arrival cycle starts a new
generation, as the hardware's alternating-phase bit does.
"""

from __future__ import annotations

import math
from typing import Generator

from ..sim import Environment, Event

__all__ = ["HardwareBarrier"]


class HardwareBarrier:
    """A reusable machine-wide AND-tree barrier."""

    def __init__(self, env: Environment, participants: int,
                 base_us: float = 3.0, per_level_us: float = 0.011):
        if participants < 1:
            raise ValueError(f"need at least one participant, got "
                             f"{participants}")
        self.env = env
        self.participants = participants
        self.base_us = base_us
        self.per_level_us = per_level_us
        self._arrived = 0
        self._release = env.event()

    @property
    def completion_delay_us(self) -> float:
        """Propagation delay of the AND tree once the last node arrives."""
        levels = math.log2(self.participants) if self.participants > 1 else 0
        return self.base_us + self.per_level_us * levels

    def arrive(self) -> Generator[Event, None, None]:
        """Process generator: enter the barrier and wait for release."""
        self._arrived += 1
        release = self._release
        if self._arrived == self.participants:
            # Reset for the next generation before releasing this one.
            self._arrived = 0
            self._release = self.env.event()
            completion = self.env.timeout(self.completion_delay_us)

            def _propagate(gate: Event = release):
                yield completion
                gate.succeed()

            self.env.process(_propagate(), name="hw-barrier")
        yield release
