"""Scatter algorithms.

One-to-many: the root issues one message per destination.  Because the
transport only blocks the sender for its local issue + payload-move
costs, successive sends pipeline through the NIC and network — the root
pays the *marginal* per-message cost Table 3 shows (about 3.7 us per
destination on the SP2), not a full one-way latency per destination.
"""

from __future__ import annotations

from typing import Generator

from .base import collective_algorithm

__all__ = ["linear_scatter"]


@collective_algorithm("linear_scatter")
def linear_scatter(ctx, seq: int, nbytes: int, root: int = 0) -> Generator:
    """Direct scatter: root sends to every other rank in rank order."""
    if ctx.rank == root:
        for dst in range(ctx.size):
            if dst != root:
                yield from ctx.coll_send(seq, 0, dst, nbytes, op="scatter")
        return
    yield from ctx.coll_recv(seq, 0, root, op="scatter")
