"""Barrier algorithms.

``tree_barrier`` is the software path (SP2, Paragon): a zero-byte
binomial gather to rank 0 followed by a zero-byte binomial broadcast —
``2 * ceil(log2 p)`` message rounds, giving the O(log p) startup with
the large constants the paper measures (~123 log p on the SP2,
~147 log p on the Paragon).

``hardware_barrier`` uses the T3D's dedicated barrier wire: ~3 us
regardless of machine size (Section 4: "With hardwired barriers, the
T3D performs the barrier synchronization in 3 us, at least 30 times
faster than the SP2 or Paragon").
"""

from __future__ import annotations

from typing import Generator

from ..errors import MpiError
from .base import collective_algorithm

__all__ = ["tree_barrier", "hardware_barrier"]

#: Phase offset separating the release broadcast from the arrival
#: gather so their zero-byte messages cannot be confused.
_RELEASE_PHASE = 1 << 16


@collective_algorithm("tree_barrier")
def tree_barrier(ctx, seq: int, nbytes: int, root: int = 0) -> Generator:
    """Software combine-and-release tree barrier."""
    rank, size = ctx.rank, ctx.size
    vrank = (rank - root) % size
    # Arrival phase: binomial combine toward the root.
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = (vrank - mask + root) % size
            yield from ctx.coll_send(seq, mask.bit_length(), parent, 0,
                                     op="barrier")
            break
        child_vrank = vrank | mask
        if child_vrank < size:
            child = (child_vrank + root) % size
            yield from ctx.coll_recv(seq, mask.bit_length(), child,
                                     op="barrier")
        mask <<= 1
    # Release phase: binomial broadcast from the root.
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = (vrank - mask + root) % size
            yield from ctx.coll_recv(
                seq, _RELEASE_PHASE + mask.bit_length(), parent,
                op="barrier")
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            child = (vrank + mask + root) % size
            yield from ctx.coll_send(
                seq, _RELEASE_PHASE + mask.bit_length(), child, 0,
                op="barrier")
        mask >>= 1


@collective_algorithm("hardware_barrier")
def hardware_barrier(ctx, seq: int, nbytes: int,
                     root: int = 0) -> Generator:
    """Barrier over the dedicated barrier-wire network (T3D).

    The barrier wire is machine-wide: a sub-communicator cannot use it
    (its other nodes would never arrive), so sub-communicator barriers
    fall back to the software tree — as the T3D's MPI did for
    partition subsets.
    """
    barrier = ctx.machine.hardware_barrier
    if barrier is None:
        raise MpiError(
            f"{ctx.comm.spec.name} has no hardware barrier network")
    if not ctx.comm.is_world:
        yield from tree_barrier(ctx, seq, nbytes, root)
        return
    yield from barrier.arrive()
