"""The collective-algorithm zoo: optimised families for the autotuner.

The paper fixes one algorithm per (machine, op); its closing section
points at better collective implementations as the open direction.
This module registers the families that later MPI libraries settled on
(Rabenseifner's allreduce, recursive doubling, segmented/pipelined
trees — see Jocksch et al., arXiv:2006.13112), so ``repro.tuner`` can
race them against the period algorithms and fit crossover points
(Barchet-Estefanel & Mounié, arXiv:cs/0408034).

All algorithms run on every machine: none needs special hardware, and
all handle non-power-of-two communicator sizes by *folding* the
``size - 2**floor(log2 size)`` extra ranks onto partners below the
power-of-two core (the classic MPICH approach), so message sizes stay
exact — every byte count is computed arithmetically, never rounded up.

Registered names:

* ``recursive_doubling_allgather`` — log2(p) rounds of doubling
  exchanges; each rank's send size is its accumulated group's bytes.
* ``recursive_doubling_allreduce`` — log2(p) full-vector exchanges
  with a combine per round.
* ``recursive_halving_reduce_scatter`` — log2(p) halving exchanges;
  bandwidth-optimal reduce-scatter.
* ``rabenseifner_allreduce`` — recursive-halving reduce-scatter of
  the vector followed by a recursive-doubling allgather of the
  reduced segments; the long-message allreduce of choice.
* ``segmented_binomial_broadcast`` / ``segmented_binomial_reduce`` —
  the binomial trees, pipelined in tunable segments
  (:func:`make_segmented_broadcast` / :func:`make_segmented_reduce`
  build variants at any segment size).
"""

from __future__ import annotations

from typing import Callable, Generator, List, Tuple

from .base import absolute_rank, collective_algorithm, virtual_rank
from .extensions import block_counts

__all__ = [
    "DEFAULT_SEGMENT_BYTES",
    "make_segmented_broadcast",
    "make_segmented_reduce",
    "recursive_doubling_allgather",
    "recursive_doubling_allreduce",
    "recursive_halving_reduce_scatter",
    "rabenseifner_allreduce",
    "segmented_binomial_broadcast",
    "segmented_binomial_reduce",
]

#: Phase offsets for the fold/unfold exchanges around the
#: power-of-two core (distinct from the per-round ``mask.bit_length()``
#: phases and from the offsets other collective modules reserve).
_FOLD_PHASE = 1 << 17
_UNFOLD_PHASE = 1 << 19
#: Offset separating an algorithm's second stage (e.g. Rabenseifner's
#: allgather rounds) from its first.
_STAGE_PHASE = 1 << 21
#: Phase stride per pipeline segment of the segmented trees; round
#: phases are ``mask.bit_length() <= 63`` for any realistic size.
_SEGMENT_STRIDE = 64

#: Default pipeline segment of the segmented binomial trees.
DEFAULT_SEGMENT_BYTES = 4096


def _core_size(size: int) -> int:
    """Largest power of two <= ``size``."""
    return 1 << (size.bit_length() - 1)


def _group_bytes(vrank: int, group: int, counts: Tuple[int, ...]) -> int:
    """Bytes held by ``vrank``'s aligned group of ``group`` core slots."""
    start = (vrank // group) * group
    return sum(counts[start:start + group])


# -- recursive doubling / halving families ------------------------------


@collective_algorithm("recursive_doubling_allgather")
def recursive_doubling_allgather(ctx, seq: int, nbytes: int,
                                 root: int = 0) -> Generator:
    """Recursive-doubling allgather: log2(p) doubling exchanges.

    Round ``r`` exchanges the accumulated ``2**r``-slot group with the
    partner ``rank ^ 2**r``; folded extra ranks contribute their block
    up front and receive the full ``p * nbytes`` result at the end.
    """
    size, rank = ctx.size, ctx.rank
    core = _core_size(size)
    extra = size - core
    if rank >= core:
        yield from ctx.coll_send(seq, _FOLD_PHASE, rank - core, nbytes,
                                 op="allgather")
        yield from ctx.coll_recv(seq, _UNFOLD_PHASE, rank - core,
                                 op="allgather")
        return
    if rank < extra:
        yield from ctx.coll_recv(seq, _FOLD_PHASE, rank + core,
                                 op="allgather")
    counts = tuple(nbytes * (2 if slot < extra else 1)
                   for slot in range(core))
    mask = 1
    while mask < core:
        partner = rank ^ mask
        phase = mask.bit_length()
        posted = ctx.coll_post(seq, phase, partner)
        yield from ctx.coll_send(seq, phase, partner,
                                 _group_bytes(rank, mask, counts),
                                 op="allgather")
        yield from ctx.coll_wait(posted, op="allgather")
        mask <<= 1
    if rank < extra:
        yield from ctx.coll_send(seq, _UNFOLD_PHASE, rank + core,
                                 size * nbytes, op="allgather")


@collective_algorithm("recursive_doubling_allreduce")
def recursive_doubling_allreduce(ctx, seq: int, nbytes: int,
                                 root: int = 0) -> Generator:
    """Recursive-doubling allreduce: full-vector exchange per round.

    Latency-optimal (log2(p) rounds) but each round moves the whole
    ``nbytes`` vector — the short-message allreduce.
    """
    size, rank = ctx.size, ctx.rank
    core = _core_size(size)
    extra = size - core
    if rank >= core:
        yield from ctx.coll_send(seq, _FOLD_PHASE, rank - core, nbytes,
                                 op="allreduce")
        yield from ctx.coll_recv(seq, _UNFOLD_PHASE, rank - core,
                                 op="allreduce")
        return
    if rank < extra:
        yield from ctx.coll_recv(seq, _FOLD_PHASE, rank + core,
                                 op="allreduce")
        yield from ctx.combine(nbytes)
    mask = 1
    while mask < core:
        partner = rank ^ mask
        phase = mask.bit_length()
        posted = ctx.coll_post(seq, phase, partner)
        yield from ctx.coll_send(seq, phase, partner, nbytes,
                                 op="allreduce")
        yield from ctx.coll_wait(posted, op="allreduce")
        yield from ctx.combine(nbytes)
        mask <<= 1
    if rank < extra:
        yield from ctx.coll_send(seq, _UNFOLD_PHASE, rank + core,
                                 nbytes, op="allreduce")


def _recursive_halving(ctx, seq: int, rank: int, core: int,
                       counts: Tuple[int, ...], op: str) -> Generator:
    """Shared halving loop: ``rank`` ends owning ``counts[rank]`` bytes.

    Round granularity ``g`` (``core/2, ..., 1``): exchange with
    ``rank ^ g``, sending the partner's aligned ``g``-slot half of the
    current range and combining the received contribution to ours.
    """
    group = core >> 1
    while group:
        partner = rank ^ group
        phase = group.bit_length()
        posted = ctx.coll_post(seq, phase, partner)
        yield from ctx.coll_send(seq, phase, partner,
                                 _group_bytes(partner, group, counts),
                                 op=op)
        yield from ctx.coll_wait(posted, op=op)
        yield from ctx.combine(_group_bytes(rank, group, counts))
        group >>= 1


@collective_algorithm("recursive_halving_reduce_scatter")
def recursive_halving_reduce_scatter(ctx, seq: int, nbytes: int,
                                     root: int = 0) -> Generator:
    """Recursive-halving reduce-scatter (``nbytes`` per result block).

    Every rank contributes the full ``p * nbytes`` vector; halving
    leaves each core rank with its own reduced block (plus its folded
    twin's, which the unfold exchange hands back).
    """
    size, rank = ctx.size, ctx.rank
    core = _core_size(size)
    extra = size - core
    vector = size * nbytes
    if rank >= core:
        yield from ctx.coll_send(seq, _FOLD_PHASE, rank - core, vector,
                                 op="reduce_scatter")
        yield from ctx.coll_recv(seq, _UNFOLD_PHASE, rank - core,
                                 op="reduce_scatter")
        return
    if rank < extra:
        yield from ctx.coll_recv(seq, _FOLD_PHASE, rank + core,
                                 op="reduce_scatter")
        yield from ctx.combine(vector)
    counts = tuple(nbytes * (2 if slot < extra else 1)
                   for slot in range(core))
    yield from _recursive_halving(ctx, seq, rank, core, counts,
                                  op="reduce_scatter")
    if rank < extra:
        yield from ctx.coll_send(seq, _UNFOLD_PHASE, rank + core,
                                 nbytes, op="reduce_scatter")


@collective_algorithm("rabenseifner_allreduce")
def rabenseifner_allreduce(ctx, seq: int, nbytes: int,
                           root: int = 0) -> Generator:
    """Rabenseifner allreduce: reduce-scatter + allgather composition.

    Recursive halving scatters the reduction of the ``nbytes`` vector
    across the core (each rank combines ever-smaller segments), then
    recursive doubling gathers the reduced segments back — about half
    the bytes of reduce-then-broadcast for long vectors.
    """
    size, rank = ctx.size, ctx.rank
    core = _core_size(size)
    extra = size - core
    if rank >= core:
        yield from ctx.coll_send(seq, _FOLD_PHASE, rank - core, nbytes,
                                 op="allreduce")
        yield from ctx.coll_recv(seq, _UNFOLD_PHASE, rank - core,
                                 op="allreduce")
        return
    if rank < extra:
        yield from ctx.coll_recv(seq, _FOLD_PHASE, rank + core,
                                 op="allreduce")
        yield from ctx.combine(nbytes)
    segments = block_counts(nbytes, core)
    yield from _recursive_halving(ctx, seq, rank, core, segments,
                                  op="allreduce")
    # Allgather the reduced segments by recursive doubling.
    group = 1
    while group < core:
        partner = rank ^ group
        phase = _STAGE_PHASE + group.bit_length()
        posted = ctx.coll_post(seq, phase, partner)
        yield from ctx.coll_send(seq, phase, partner,
                                 _group_bytes(rank, group, segments),
                                 op="allreduce")
        yield from ctx.coll_wait(posted, op="allreduce")
        group <<= 1
    if rank < extra:
        yield from ctx.coll_send(seq, _UNFOLD_PHASE, rank + core,
                                 nbytes, op="allreduce")


# -- segmented/pipelined binomial trees ---------------------------------


def _segment_sizes(nbytes: int, segment_bytes: int) -> Tuple[int, ...]:
    """Split ``nbytes`` into full segments plus a remainder tail.

    Sums to exactly ``nbytes``; a payload-free operation still moves
    one zero-byte segment so the tree's synchronization happens.
    """
    if nbytes <= 0:
        return (0,)
    full, tail = divmod(nbytes, segment_bytes)
    return (segment_bytes,) * full + ((tail,) if tail else ())


def _binomial_links(vrank: int, size: int):
    """Entry mask (None for the root) and children of ``vrank``.

    Children are listed largest-subtree first, matching the forwarding
    order of the plain binomial broadcast.
    """
    mask = 1
    entry = None
    while mask < size:
        if vrank & mask:
            entry = mask
            break
        mask <<= 1
    top = entry if entry is not None else mask
    children: List[Tuple[int, int]] = []
    child_mask = top >> 1
    while child_mask:
        if vrank + child_mask < size:
            children.append((vrank + child_mask, child_mask))
        child_mask >>= 1
    return entry, children


def make_segmented_broadcast(segment_bytes: int) -> Callable:
    """Build a pipelined binomial broadcast with ``segment_bytes``
    segments (register the result under your own name to tune the
    segment size)."""
    if segment_bytes < 1:
        raise ValueError(f"segment_bytes must be >= 1, got "
                         f"{segment_bytes}")

    def segmented_broadcast(ctx, seq: int, nbytes: int,
                            root: int = 0) -> Generator:
        size = ctx.size
        vrank = virtual_rank(ctx.rank, root, size)
        entry, children = _binomial_links(vrank, size)
        parent = absolute_rank(vrank - entry, root, size) \
            if entry is not None else None
        for index, segment in enumerate(_segment_sizes(nbytes,
                                                       segment_bytes)):
            base = index * _SEGMENT_STRIDE
            if parent is not None:
                yield from ctx.coll_recv(seq, base + entry.bit_length(),
                                         parent, op="broadcast")
            for child_vrank, child_mask in children:
                child = absolute_rank(child_vrank, root, size)
                yield from ctx.coll_send(seq,
                                         base + child_mask.bit_length(),
                                         child, segment, op="broadcast")

    return segmented_broadcast


def make_segmented_reduce(segment_bytes: int) -> Callable:
    """Build a pipelined binomial reduce with ``segment_bytes``
    segments."""
    if segment_bytes < 1:
        raise ValueError(f"segment_bytes must be >= 1, got "
                         f"{segment_bytes}")

    def segmented_reduce(ctx, seq: int, nbytes: int,
                         root: int = 0) -> Generator:
        size = ctx.size
        vrank = virtual_rank(ctx.rank, root, size)
        entry, children = _binomial_links(vrank, size)
        # Combine in increasing-mask order, like the plain binomial
        # reduce (children were listed largest-first).
        children = list(reversed(children))
        for index, segment in enumerate(_segment_sizes(nbytes,
                                                       segment_bytes)):
            base = index * _SEGMENT_STRIDE
            for child_vrank, child_mask in children:
                child = absolute_rank(child_vrank, root, size)
                yield from ctx.coll_recv(seq,
                                         base + child_mask.bit_length(),
                                         child, op="reduce")
                yield from ctx.combine(segment)
            if entry is not None:
                parent = absolute_rank(vrank - entry, root, size)
                yield from ctx.coll_send(seq, base + entry.bit_length(),
                                         parent, segment, op="reduce")

    return segmented_reduce


segmented_binomial_broadcast = collective_algorithm(
    "segmented_binomial_broadcast")(
        make_segmented_broadcast(DEFAULT_SEGMENT_BYTES))
segmented_binomial_reduce = collective_algorithm(
    "segmented_binomial_reduce")(
        make_segmented_reduce(DEFAULT_SEGMENT_BYTES))
