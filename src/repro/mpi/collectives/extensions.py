"""Improved collective algorithms (the paper's further-work direction).

The paper closes by suggesting research into better collective
implementations.  These variants are the improvements that became
standard in later MPI libraries; none is selected by the default 1996
machine models, but all are registered for what-if studies and the
extension bench races them against the period algorithms:

* ``scatter_allgather_broadcast`` — van de Geijn's long-message
  broadcast: scatter ``m/p`` chunks, then ring-allgather them.  Moves
  ~2m per node instead of m per tree level, so it beats the binomial
  tree once ``m`` is large and ``p`` exceeds a few nodes.
* ``ring_allgather`` — p-1 neighbour exchanges of one block each;
  bandwidth-optimal allgather.
* ``binomial_tree_gather`` — gather over a binomial tree; fewer, larger
  messages into the root (latency-better, bandwidth-equal).
"""

from __future__ import annotations

from typing import Generator, Tuple

from .base import absolute_rank, collective_algorithm, virtual_rank

__all__ = ["block_counts", "scatter_allgather_broadcast",
           "ring_allgather", "binomial_tree_gather",
           "ring_reduce_scatter"]

#: Phase offset separating the two stages of the van de Geijn broadcast.
_RING_PHASE = 1 << 18


def block_counts(nbytes: int, size: int) -> Tuple[int, ...]:
    """Balanced split of ``nbytes`` into ``size`` blocks.

    The first ``nbytes % size`` blocks carry one extra byte, so the
    counts always sum to exactly ``nbytes`` — unlike a uniform
    ``ceil(nbytes / size)`` chunk, which over-sends whenever ``size``
    does not divide ``nbytes``.
    """
    base, remainder = divmod(nbytes, size)
    return tuple(base + (1 if index < remainder else 0)
                 for index in range(size))


@collective_algorithm("scatter_allgather_broadcast")
def scatter_allgather_broadcast(ctx, seq: int, nbytes: int,
                                root: int = 0) -> Generator:
    """van de Geijn broadcast: linear scatter + ring allgather.

    Block ``i`` (sized by :func:`block_counts`, so the blocks sum to
    exactly ``nbytes``) is owned by virtual rank ``i``; in ring step
    ``s`` virtual rank ``v`` forwards block ``(v - s) mod p`` to its
    right neighbour, so after ``p - 1`` steps every rank holds the
    whole message having moved only its fair share of the remainder.
    """
    size = ctx.size
    vrank = virtual_rank(ctx.rank, root, size)
    counts = block_counts(nbytes, size)
    # Stage 1: the root scatters one block per rank.
    if ctx.rank == root:
        for dst in range(size):
            if dst != root:
                yield from ctx.coll_send(seq, 0, dst,
                                         counts[virtual_rank(dst, root,
                                                             size)],
                                         op="broadcast")
    else:
        yield from ctx.coll_recv(seq, 0, root, op="broadcast")
    # Stage 2: ring allgather of the blocks; after p-1 steps every rank
    # holds the whole message.
    right = (ctx.rank + 1) % size
    left = (ctx.rank - 1) % size
    for step in range(size - 1):
        posted = ctx.coll_post(seq, _RING_PHASE + step, left)
        yield from ctx.coll_send(seq, _RING_PHASE + step, right,
                                 counts[(vrank - step) % size],
                                 op="broadcast")
        yield from ctx.coll_wait(posted, op="broadcast")


@collective_algorithm("ring_allgather")
def ring_allgather(ctx, seq: int, nbytes: int,
                   root: int = 0) -> Generator:
    """Ring allgather: p-1 neighbour exchanges of one block each."""
    size = ctx.size
    right = (ctx.rank + 1) % size
    left = (ctx.rank - 1) % size
    for step in range(size - 1):
        posted = ctx.coll_post(seq, step, left)
        yield from ctx.coll_send(seq, step, right, nbytes,
                                 op="allgather")
        yield from ctx.coll_wait(posted, op="allgather")


@collective_algorithm("ring_reduce_scatter")
def ring_reduce_scatter(ctx, seq: int, nbytes: int,
                        root: int = 0) -> Generator:
    """Bandwidth-optimal ring reduce-scatter.

    ``p-1`` steps: each rank passes a partially reduced block to its
    right neighbour, combining the block it receives from the left —
    every rank ends with one fully reduced block having moved only
    ``(p-1) * nbytes`` bytes.
    """
    size = ctx.size
    right = (ctx.rank + 1) % size
    left = (ctx.rank - 1) % size
    for step in range(size - 1):
        posted = ctx.coll_post(seq, step, left)
        yield from ctx.coll_send(seq, step, right, nbytes,
                                 op="reduce_scatter")
        yield from ctx.coll_wait(posted, op="reduce_scatter")
        yield from ctx.combine(nbytes)


@collective_algorithm("binomial_tree_gather")
def binomial_tree_gather(ctx, seq: int, nbytes: int,
                         root: int = 0) -> Generator:
    """Binomial-tree gather: subtrees merge, then forward upward.

    Virtual rank ``v`` receives the aggregated blocks of each subtree
    hanging off its set-bit children, then sends its whole accumulated
    segment (its subtree size times ``nbytes``) to its parent.
    """
    size = ctx.size
    vrank = virtual_rank(ctx.rank, root, size)
    accumulated = nbytes  # own block
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = absolute_rank(vrank - mask, root, size)
            yield from ctx.coll_send(seq, mask.bit_length(), parent,
                                     accumulated, op="gather")
            return
        source_vrank = vrank | mask
        if source_vrank < size:
            source = absolute_rank(source_vrank, root, size)
            subtree = min(mask, size - source_vrank)
            yield from ctx.coll_recv(seq, mask.bit_length(), source,
                                     op="gather")
            accumulated += subtree * nbytes
        mask <<= 1
