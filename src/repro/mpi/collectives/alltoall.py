"""Total exchange (alltoall) algorithms.

Every node sends a distinct message to every other node — the heaviest
collective in the paper (aggregated message length ``m * p * (p-1)``).

``pairwise_exchange_alltoall`` is the MPICH-style algorithm used for
the SP2 and T3D models: p-1 rounds; in round ``r`` each rank exchanges
with one partner, so the traffic pattern is a sequence of (near-)
permutations.  All messages go through the *buffered* transport path —
with sends and receives simultaneously outstanding, the kernel manages
system buffers for both directions.

``sequential_alltoall`` models the Paragon's behaviour, which the paper
calls "the least efficient scheme ... through the NX messaging
subsystem": push all p-1 messages first, then drain receives in rank
order, so most arrivals are unexpected and pay the NX buffering and
copy-out costs — the source of the Paragon's 4-15x higher total
exchange and gather latencies in Fig. 4.
"""

from __future__ import annotations

from typing import Generator

from .base import collective_algorithm

__all__ = ["posted_alltoall", "pairwise_exchange_alltoall",
           "sequential_alltoall"]


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


def _partners(rank: int, size: int, offset: int):
    """Round-``offset`` partners: XOR pairing when possible, else ring."""
    if _is_power_of_two(size):
        partner = rank ^ offset
        return partner, partner
    return (rank + offset) % size, (rank - offset) % size


@collective_algorithm("posted_alltoall")
def posted_alltoall(ctx, seq: int, nbytes: int,
                    root: int = 0) -> Generator:
    """MPICH-style total exchange: post everything, then drain.

    All ``p-1`` receives are posted first, then all sends issued, then
    receives completed — so sends pipeline through the NIC and nearly
    every arrival finds its receive posted.  The per-node cost is the
    sum of per-message send and receive work, the O(p) startup term of
    Table 3.
    """
    rank, size = ctx.rank, ctx.size
    rounds = range(1, size)
    posted = []
    for offset in rounds:
        _, recv_from = _partners(rank, size, offset)
        posted.append(ctx.coll_post(seq, offset, recv_from))
    for offset in rounds:
        send_to, _ = _partners(rank, size, offset)
        yield from ctx.coll_send(seq, offset, send_to, nbytes,
                                 op="alltoall", buffered=True)
    for receive in posted:
        yield from ctx.coll_wait(receive, op="alltoall", buffered=True)


@collective_algorithm("pairwise_exchange_alltoall")
def pairwise_exchange_alltoall(ctx, seq: int, nbytes: int,
                               root: int = 0) -> Generator:
    """Strict pairwise exchange: one synchronized partner per round.

    Kept as an ablation variant: each round blocks on its receive, so
    the one-way latency lands on every round's critical path.
    """
    rank, size = ctx.rank, ctx.size
    for offset in range(1, size):
        send_to, recv_from = _partners(rank, size, offset)
        posted = ctx.coll_post(seq, offset, recv_from)
        yield from ctx.coll_send(seq, offset, send_to, nbytes,
                                 op="alltoall", buffered=True)
        yield from ctx.coll_wait(posted, op="alltoall", buffered=True)


@collective_algorithm("sequential_alltoall")
def sequential_alltoall(ctx, seq: int, nbytes: int,
                        root: int = 0) -> Generator:
    """Naive total exchange: all sends first, then receives in order.

    Receives are posted only when their turn comes, so messages that
    already arrived sit in the unexpected queue and pay the
    unexpected-handling cost plus the system-buffer copy-out.
    """
    rank, size = ctx.rank, ctx.size
    for dst in range(size):
        if dst != rank:
            yield from ctx.coll_send(seq, 0, dst, nbytes,
                                     op="alltoall", buffered=True)
    for src in range(size):
        if src != rank:
            yield from ctx.coll_recv(seq, 0, src,
                                     op="alltoall", buffered=True)
