"""Collective communication algorithms.

Importing this package registers every algorithm with the registry in
:mod:`repro.mpi.collectives.base`; machines select by name through
``MachineSpec.algorithms``.
"""

from . import (  # noqa: F401 - imported for registration side effects
    alltoall,
    barrier,
    broadcast,
    composite,
    extensions,
    gather,
    reduce,
    scan,
    scatter,
    zoo,
)
from .base import (
    absolute_rank,
    algorithm_names,
    collective_algorithm,
    get_algorithm,
    virtual_rank,
)

__all__ = [
    "absolute_rank",
    "algorithm_names",
    "collective_algorithm",
    "get_algorithm",
    "virtual_rank",
]
