"""Collective-algorithm registry and shared tree helpers.

Each algorithm is a generator function with the uniform signature
``algorithm(ctx, seq, nbytes, root)`` where ``ctx`` is the calling
rank's :class:`~repro.mpi.context.RankContext`, ``seq`` the collective
sequence number (tag namespace), ``nbytes`` the per-pair message length
and ``root`` the root rank (ignored by rootless operations).

Machines select algorithms by name (``MachineSpec.algorithms``), which
is how the per-machine behaviour differences the paper reports —
e.g. the Paragon's "least efficient schemes" for total exchange — are
expressed.
"""

from __future__ import annotations

from typing import Callable, Dict, List

__all__ = [
    "collective_algorithm",
    "get_algorithm",
    "algorithm_names",
    "virtual_rank",
    "absolute_rank",
]

_ALGORITHMS: Dict[str, Callable] = {}


def collective_algorithm(name: str) -> Callable[[Callable], Callable]:
    """Decorator registering a collective algorithm under ``name``."""
    def register(function: Callable) -> Callable:
        if name in _ALGORITHMS:
            raise ValueError(f"algorithm {name!r} already registered")
        _ALGORITHMS[name] = function
        return function
    return register


def get_algorithm(name: str) -> Callable:
    """Look up a registered algorithm by name."""
    try:
        return _ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(_ALGORITHMS))
        raise KeyError(
            f"unknown collective algorithm {name!r}; "
            f"known: {known}") from None


def algorithm_names() -> List[str]:
    """All registered algorithm names, sorted."""
    return sorted(_ALGORITHMS)


def virtual_rank(rank: int, root: int, size: int) -> int:
    """Rank relative to ``root`` (root becomes virtual rank 0)."""
    return (rank - root) % size


def absolute_rank(vrank: int, root: int, size: int) -> int:
    """Inverse of :func:`virtual_rank`."""
    return (vrank + root) % size
