"""Gather algorithms.

The paper observes O(p) gather startup on all three machines: gather is
many-to-one, so "O(p) stages of data communication are required".  The
linear algorithm is what MPICH and the vendor ports used: every leaf
sends directly to the root, which posts all receives up front and then
retires them one after another — the root's per-message receive cost is
the marginal term of Table 3 (about 5.8 us on the SP2, 4.3 us on the
T3D, and 18 us through the Paragon's NX kernel).
"""

from __future__ import annotations

from typing import Generator

from .base import collective_algorithm

__all__ = ["linear_gather"]


@collective_algorithm("linear_gather")
def linear_gather(ctx, seq: int, nbytes: int, root: int = 0) -> Generator:
    """Direct gather: leaves send to the root; root drains in order."""
    if ctx.rank != root:
        yield from ctx.coll_send(seq, 0, root, nbytes, op="gather")
        return
    posted = [ctx.coll_post(seq, 0, src)
              for src in range(ctx.size) if src != root]
    for receive in posted:
        yield from ctx.coll_wait(receive, op="gather")
