"""Reduce algorithms.

Two tree shapes are implemented, matching the ports the paper names:
MPICH's binomial reduce (SP2, Paragon) and EPCC MPI's binary-tree
reduce on the T3D ("a binary tree is formed to perform [the] reduce
operation" [Cameron et al. 1995]).  Both give the O(log p) startup the
paper fits; they differ in constant factors and in how much combining
work the interior ranks do.
"""

from __future__ import annotations

from typing import Generator

from .base import absolute_rank, collective_algorithm, virtual_rank

__all__ = ["binomial_reduce", "binary_tree_reduce"]


@collective_algorithm("binomial_reduce")
def binomial_reduce(ctx, seq: int, nbytes: int,
                    root: int = 0) -> Generator:
    """MPICH binomial-tree reduce for commutative operators.

    Mirror image of the binomial broadcast: in round ``r`` ranks whose
    virtual rank has bit ``r`` set send their partial result to the
    rank ``2**r`` below them and drop out; the receiver combines.
    """
    size = ctx.size
    vrank = virtual_rank(ctx.rank, root, size)
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = absolute_rank(vrank - mask, root, size)
            yield from ctx.coll_send(seq, mask.bit_length(), parent, nbytes,
                                     op="reduce")
            break
        source_vrank = vrank | mask
        if source_vrank < size:
            source = absolute_rank(source_vrank, root, size)
            yield from ctx.coll_recv(seq, mask.bit_length(), source,
                                     op="reduce")
            yield from ctx.combine(nbytes)
        mask <<= 1


@collective_algorithm("binary_tree_reduce")
def binary_tree_reduce(ctx, seq: int, nbytes: int,
                       root: int = 0) -> Generator:
    """EPCC-style binary-tree reduce.

    Virtual rank ``v`` has children ``2v+1`` and ``2v+2``; every
    interior rank receives from both children (left first), combines,
    and forwards to its parent ``(v-1)//2``.
    """
    size = ctx.size
    vrank = virtual_rank(ctx.rank, root, size)
    posted = [ctx.coll_post(seq, 0, absolute_rank(child_vrank, root, size))
              for child_vrank in (2 * vrank + 1, 2 * vrank + 2)
              if child_vrank < size]
    for receive in posted:  # both children drain concurrently
        yield from ctx.coll_wait(receive, op="reduce")
        yield from ctx.combine(nbytes)
    if vrank > 0:
        parent = absolute_rank((vrank - 1) // 2, root, size)
        yield from ctx.coll_send(seq, 0, parent, nbytes, op="reduce")
