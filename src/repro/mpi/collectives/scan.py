"""Scan (prefix reduction) algorithms.

``recursive_doubling_scan`` is the textbook O(log p) prefix algorithm
and matches the logarithmic startup the paper fits on all machines.

``offloaded_scan`` models the Paragon anomaly the paper highlights:
its scan is *faster* than the T3D's from 16 nodes up, which the
authors attribute to "different collective algorithms used".  We model
an NX-native combining tree that runs on the message coprocessor: the
same recursive-doubling message pattern, but each message costs only
the offload engine's per-round and per-byte charges instead of the full
host send/receive path.
"""

from __future__ import annotations

from typing import Generator

from ..errors import MpiError
from .base import collective_algorithm

__all__ = ["recursive_doubling_scan", "offloaded_scan"]


def _scan_pattern(ctx, seq: int, nbytes: int,
                  send_kwargs: dict, recv_kwargs: dict,
                  combine_on_host: bool) -> Generator:
    """Shared recursive-doubling message pattern.

    In round ``r`` (mask ``2**r``), rank ``i`` sends its running
    partial to ``i + mask`` and receives from ``i - mask``, combining
    the received operand into both the partial and (since the sender is
    a lower rank) the local prefix result.
    """
    rank, size = ctx.rank, ctx.size
    mask = 1
    while mask < size:
        phase = mask.bit_length()
        posted = None
        if rank - mask >= 0:
            posted = ctx.coll_post(seq, phase, rank - mask)
        if rank + mask < size:
            yield from ctx.coll_send(seq, phase, rank + mask, nbytes,
                                     op="scan", **send_kwargs)
        if posted is not None:
            yield from ctx.coll_wait(posted, op="scan", **recv_kwargs)
            if combine_on_host:
                yield from ctx.combine(nbytes)
        mask <<= 1


@collective_algorithm("recursive_doubling_scan")
def recursive_doubling_scan(ctx, seq: int, nbytes: int,
                            root: int = 0) -> Generator:
    """Recursive-doubling scan through the host messaging path."""
    yield from _scan_pattern(ctx, seq, nbytes, send_kwargs={},
                             recv_kwargs={}, combine_on_host=True)


@collective_algorithm("offloaded_scan")
def offloaded_scan(ctx, seq: int, nbytes: int,
                   root: int = 0) -> Generator:
    """Coprocessor-offloaded scan (Paragon NX native path).

    Same message pattern, but each message's software cost is the
    machine's ``offload_round_us``/``offload_us_per_byte`` (split
    between the send and receive halves), bypassing the host kernel
    path and its buffer copies.
    """
    software = ctx.comm.spec.software
    if software.offload_round_us is None or \
            software.offload_us_per_byte is None:
        raise MpiError(
            f"{ctx.comm.spec.name} has no offloaded combining path")
    if software.offload_setup_us > 0:
        yield from ctx.delay(software.offload_setup_us)
    half_cost = (software.offload_round_us +
                 nbytes * software.offload_us_per_byte) / 2.0
    yield from _scan_pattern(ctx, seq, nbytes,
                             send_kwargs={"sw_cost_us": half_cost},
                             recv_kwargs={"sw_cost_us": half_cost},
                             combine_on_host=False)
