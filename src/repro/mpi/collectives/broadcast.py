"""Broadcast algorithms.

The paper observes O(log p) broadcast startup on all three machines:
"a treelike algorithm is usually employed to deliver the message", with
EPCC MPI forming an unbalanced tree — which is exactly the binomial
tree MPICH uses as well, so one implementation serves all three machine
models.
"""

from __future__ import annotations

from typing import Generator

from .base import absolute_rank, collective_algorithm, virtual_rank

__all__ = ["binomial_broadcast"]


@collective_algorithm("binomial_broadcast")
def binomial_broadcast(ctx, seq: int, nbytes: int,
                       root: int = 0) -> Generator:
    """Binomial-tree broadcast (the MPICH/EPCC unbalanced tree).

    ``ceil(log2 p)`` rounds; in round ``r`` every rank that already has
    the data forwards it to the rank ``2**r`` virtual positions away.
    Non-root ranks receive exactly once, then forward to their subtree.
    Message phases are tagged with the bit index of the round's mask so
    sender and receiver agree on the tag.
    """
    size = ctx.size
    vrank = virtual_rank(ctx.rank, root, size)
    mask = 1
    # Receive once from the subtree parent (the rank that differs from
    # us in our lowest set bit).
    while mask < size:
        if vrank & mask:
            parent = absolute_rank(vrank - mask, root, size)
            yield from ctx.coll_recv(seq, mask.bit_length(), parent,
                                     op="broadcast")
            break
        mask <<= 1
    # Forward to children: one per set bit below our entry mask.
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            child = absolute_rank(vrank + mask, root, size)
            yield from ctx.coll_send(seq, mask.bit_length(), child, nbytes,
                                     op="broadcast")
        mask >>= 1
