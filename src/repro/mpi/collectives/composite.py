"""Composite collectives built from the paper's primitives.

The paper's Table 1 covers seven operations; ``MPI_Allreduce`` and
``MPI_Allgather`` are provided as the natural compositions the era's
MPI implementations used (reduce-then-broadcast and
gather-then-broadcast).  They are exercised by the extension benches
and examples, not by the paper's figures.
"""

from __future__ import annotations

from typing import Generator

from .base import collective_algorithm, get_algorithm

__all__ = ["reduce_broadcast_allreduce", "gather_broadcast_allgather"]

#: Phase offset isolating the second sub-operation's tags.
_SECOND_STAGE = 1 << 20


def _with_phase_offset(ctx, offset: int):
    """A proxy context whose collective phases are shifted by ``offset``.

    Lets two sub-operations of one composite collective share a
    sequence number without tag collisions.
    """

    class _PhaseShifted:
        def __getattr__(self, name):
            return getattr(ctx, name)

        def coll_send(self, seq, phase, dst, nbytes, op, **kwargs):
            return ctx.coll_send(seq, phase + offset, dst, nbytes, op,
                                 **kwargs)

        def coll_post(self, seq, phase, src):
            return ctx.coll_post(seq, phase + offset, src)

        def coll_recv(self, seq, phase, src, op, **kwargs):
            return ctx.coll_recv(seq, phase + offset, src, op, **kwargs)

    return _PhaseShifted()


@collective_algorithm("reduce_broadcast_allreduce")
def reduce_broadcast_allreduce(ctx, seq: int, nbytes: int,
                               root: int = 0) -> Generator:
    """Allreduce as reduce-to-root followed by broadcast."""
    reduce_algorithm = get_algorithm(
        ctx.comm.spec.algorithm_for("reduce"))
    broadcast_algorithm = get_algorithm(
        ctx.comm.spec.algorithm_for("broadcast"))
    yield from reduce_algorithm(ctx, seq, nbytes, root)
    yield from broadcast_algorithm(_with_phase_offset(ctx, _SECOND_STAGE),
                                   seq, nbytes, root)


@collective_algorithm("reduce_scatter_composite")
def reduce_scatter_composite(ctx, seq: int, nbytes: int,
                             root: int = 0) -> Generator:
    """Reduce-scatter as reduce of the full vector, then scatter.

    The reduce carries all ``p`` blocks (``p * nbytes``); the scatter
    hands each rank its block — the straightforward composition the
    era's libraries used for ``MPI_Reduce_scatter``.
    """
    reduce_algorithm = get_algorithm(
        ctx.comm.spec.algorithm_for("reduce"))
    scatter_algorithm = get_algorithm(
        ctx.comm.spec.algorithm_for("scatter"))
    yield from reduce_algorithm(ctx, seq, nbytes * ctx.size, root)
    yield from scatter_algorithm(_with_phase_offset(ctx, _SECOND_STAGE),
                                 seq, nbytes, root)


@collective_algorithm("gather_broadcast_allgather")
def gather_broadcast_allgather(ctx, seq: int, nbytes: int,
                               root: int = 0) -> Generator:
    """Allgather as gather-to-root followed by broadcast of the result.

    The broadcast carries the concatenated buffer (``p * nbytes``).
    """
    gather_algorithm = get_algorithm(
        ctx.comm.spec.algorithm_for("gather"))
    broadcast_algorithm = get_algorithm(
        ctx.comm.spec.algorithm_for("broadcast"))
    yield from gather_algorithm(ctx, seq, nbytes, root)
    yield from broadcast_algorithm(_with_phase_offset(ctx, _SECOND_STAGE),
                                   seq, nbytes * ctx.size, root)
