"""Per-rank execution context: the API user programs are written against.

A :class:`RankContext` is handed to each per-rank program generator.
It exposes point-to-point operations (``send``/``recv``/``irecv``/
``wait``), the seven collectives the paper evaluates (plus the
allreduce/allgather extensions), and the local wall clock — mirroring
how an MPI program sees the world: *my* rank, *my* clock, shared
communicator.

All blocking operations are generators and must be driven with
``yield from`` inside a simulation process.
"""

from __future__ import annotations

import math
from typing import Generator, Optional, TYPE_CHECKING

from ..sim import Event
from .errors import MpiError, RankError
from .transport import PostedReceive, Transport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .communicator import Communicator

__all__ = ["RankContext", "COLLECTIVE_OPS"]

#: The collective operations the paper evaluates (Table 1) plus the
#: composed extensions suggested as further work.
COLLECTIVE_OPS = (
    "barrier",
    "broadcast",
    "gather",
    "scatter",
    "reduce",
    "scan",
    "alltoall",
    "allreduce",
    "allgather",
    "reduce_scatter",
)


class RankContext:
    """One process's view of the communicator."""

    def __init__(self, comm: "Communicator", rank: int):
        self.comm = comm
        self.rank = rank
        self._collective_seq = 0

    # -- basic properties -------------------------------------------------
    @property
    def size(self) -> int:
        """Number of processes in the communicator."""
        return self.comm.size

    @property
    def machine(self):
        """The hardware machine this communicator runs on."""
        return self.comm.machine

    @property
    def transport(self) -> Transport:
        return self.comm.transport

    @property
    def env(self):
        return self.comm.machine.env

    @property
    def world_rank(self) -> int:
        """The node index this rank runs on."""
        return self.comm.world_rank_of(self.rank)

    @property
    def node(self):
        """The hardware node this rank runs on (one process per node)."""
        return self.comm.machine.nodes[self.world_rank]

    def wtime(self) -> float:
        """``MPI_Wtime``: this node's local wall clock, microseconds."""
        return self.node.clock.read()

    def log2_size(self) -> int:
        """Number of tree levels for this communicator size."""
        return max(1, math.ceil(math.log2(self.size)))

    # -- point-to-point ----------------------------------------------------
    def send(self, dst: int, nbytes: int, tag: object = 0,
             **kwargs) -> Generator[Event, None, None]:
        """Blocking standard-mode send (locally blocking, like
        ``MPI_Send`` with an eager protocol)."""
        yield from self.transport.send(
            self.world_rank, self.comm.world_rank_of(dst), nbytes,
            ("u", self.comm.comm_id, tag), **kwargs)

    def irecv(self, src: int, tag: object = 0) -> PostedReceive:
        """Post a nonblocking receive; complete it with :meth:`wait`."""
        return self.transport.post_receive(
            self.world_rank, self.comm.world_rank_of(src),
            ("u", self.comm.comm_id, tag))

    def wait(self, receive: PostedReceive,
             **kwargs) -> Generator[Event, None, object]:
        """Complete a posted receive, paying the receive-side costs."""
        envelope = yield from self.transport.complete_receive(
            self.world_rank, receive, **kwargs)
        return envelope

    def recv(self, src: int, tag: object = 0,
             **kwargs) -> Generator[Event, None, object]:
        """Blocking receive."""
        receive = self.irecv(src, tag)
        envelope = yield from self.wait(receive, **kwargs)
        return envelope

    # -- collective plumbing (used by algorithm implementations) -----------
    def coll_send(self, seq: int, phase: int, dst: int, nbytes: int,
                  op: str, **kwargs) -> Generator[Event, None, None]:
        """Send within collective ``seq``, phase ``phase``."""
        phase_span = self.comm.obs.phase(seq, phase, self.env.now)
        yield from self.transport.send(
            self.world_rank, self.comm.world_rank_of(dst), nbytes,
            ("c", self.comm.comm_id, seq, phase), op=op,
            parent_span=phase_span, **kwargs)

    def coll_post(self, seq: int, phase: int, src: int) -> PostedReceive:
        """Post a receive within collective ``seq``, phase ``phase``."""
        self.comm.obs.phase(seq, phase, self.env.now)
        return self.transport.post_receive(
            self.world_rank, self.comm.world_rank_of(src),
            ("c", self.comm.comm_id, seq, phase))

    def coll_wait(self, receive: PostedReceive, op: str,
                  **kwargs) -> Generator[Event, None, object]:
        """Complete a collective-phase receive."""
        envelope = yield from self.transport.complete_receive(
            self.world_rank, receive, op=op, **kwargs)
        return envelope

    def coll_recv(self, seq: int, phase: int, src: int, op: str,
                  **kwargs) -> Generator[Event, None, object]:
        """Blocking receive within a collective phase."""
        receive = self.coll_post(seq, phase, src)
        envelope = yield from self.coll_wait(receive, op, **kwargs)
        return envelope

    def combine(self, nbytes: int) -> Generator[Event, None, None]:
        """Apply the reduction operator to one received operand."""
        software = self.comm.spec.software
        cost = software.reduce_round_us + \
            nbytes * software.reduce_us_per_byte
        yield self.env.timeout(cost * self.machine.jitter(self.world_rank))

    def delay(self, base_us: float) -> Generator[Event, None, None]:
        """Jittered software delay on this rank's CPU."""
        yield self.env.timeout(base_us * self.machine.jitter(self.world_rank))

    def _enter_collective(self, op: str,
                          nbytes: int) -> Generator[Event, None, int]:
        """Charge per-call entry costs and allocate a sequence number.

        All ranks must invoke collectives in the same order (an MPI
        requirement); the per-rank counter then agrees across ranks and
        serves as the tag namespace for the operation's messages.
        Entry also waits on the communicator's completion fence for the
        previous collective (see :class:`~repro.mpi.communicator.
        Communicator`).
        """
        seq = self._collective_seq
        self._collective_seq += 1
        if seq > 0 and self.comm.spec.serialize_collectives:
            yield self.comm.completion_event(seq - 1)
        software = self.comm.spec.software
        setup = software.call_setup_us
        if op == "barrier" and software.barrier_call_setup_us is not None:
            setup = software.barrier_call_setup_us
        cost = setup * self.machine.jitter(self.world_rank)
        cost += self.node.memory.first_touch_penalty((op, nbytes), nbytes)
        yield self.env.timeout(cost)
        return seq

    # -- collectives ----------------------------------------------------------
    def collective(self, op: str, nbytes: int = 0,
                   root: int = 0) -> Generator[Event, None, None]:
        """Run collective ``op`` by name (dispatch used by the bench)."""
        if op not in COLLECTIVE_OPS:
            raise MpiError(f"unknown collective {op!r}")
        if not 0 <= root < self.size:
            raise RankError(root, self.size)
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        from .collectives import get_algorithm
        algorithm = get_algorithm(
            self.comm.spec.algorithm_for(op, nbytes=nbytes, p=self.size))
        seq = yield from self._enter_collective(op, nbytes)
        self.comm.obs.enter(seq, op, nbytes, self.env.now)
        yield from algorithm(self, seq, nbytes, root)
        self.comm.report_completion(seq)

    def barrier(self) -> Generator[Event, None, None]:
        """``MPI_Barrier``: block until all ranks have entered."""
        yield from self.collective("barrier")

    def bcast(self, nbytes: int,
              root: int = 0) -> Generator[Event, None, None]:
        """``MPI_Bcast``: ``nbytes`` from ``root`` to every rank."""
        yield from self.collective("broadcast", nbytes, root)

    def gather(self, nbytes: int,
               root: int = 0) -> Generator[Event, None, None]:
        """``MPI_Gather``: ``nbytes`` from every rank to ``root``."""
        yield from self.collective("gather", nbytes, root)

    def scatter(self, nbytes: int,
                root: int = 0) -> Generator[Event, None, None]:
        """``MPI_Scatter``: distinct ``nbytes`` from ``root`` to each."""
        yield from self.collective("scatter", nbytes, root)

    def reduce(self, nbytes: int,
               root: int = 0) -> Generator[Event, None, None]:
        """``MPI_Reduce``: combine ``nbytes`` operands onto ``root``."""
        yield from self.collective("reduce", nbytes, root)

    def scan(self, nbytes: int) -> Generator[Event, None, None]:
        """``MPI_Scan``: prefix reduction over ranks."""
        yield from self.collective("scan", nbytes)

    def alltoall(self, nbytes: int) -> Generator[Event, None, None]:
        """``MPI_Alltoall``: distinct ``nbytes`` between every pair."""
        yield from self.collective("alltoall", nbytes)

    def allreduce(self, nbytes: int) -> Generator[Event, None, None]:
        """``MPI_Allreduce`` (extension beyond the paper's set)."""
        yield from self.collective("allreduce", nbytes)

    def allgather(self, nbytes: int) -> Generator[Event, None, None]:
        """``MPI_Allgather`` (extension beyond the paper's set)."""
        yield from self.collective("allgather", nbytes)

    def reduce_scatter(self, nbytes: int) -> Generator[Event, None,
                                                       None]:
        """``MPI_Reduce_scatter`` with equal ``nbytes`` blocks
        (extension beyond the paper's set)."""
        yield from self.collective("reduce_scatter", nbytes)

    # -- communicator management -------------------------------------------
    def comm_split(self, color: Optional[int], key: int = 0
                   ) -> Generator[Event, None, Optional["RankContext"]]:
        """``MPI_Comm_split``: derive a sub-communicator.

        Collective over this communicator: every rank must call it.
        Ranks passing the same ``color`` form a new communicator,
        ordered by ``(key, parent rank)``; ``color=None`` (MPI's
        ``MPI_UNDEFINED``) yields ``None``.  Returns this rank's
        context in its new communicator.
        """
        software = self.comm.spec.software
        yield from self.delay(software.call_setup_us)
        gate = self.comm.register_split(self.rank, color, key)
        assignment = yield gate
        return assignment[self.rank]
