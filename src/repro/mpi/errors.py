"""MPI-layer exceptions."""

from __future__ import annotations

__all__ = ["MpiError", "RankError", "TruncationError"]


class MpiError(Exception):
    """Base class for errors raised by the simulated MPI runtime."""


class RankError(MpiError):
    """An operation referenced a rank outside the communicator."""

    def __init__(self, rank: int, size: int):
        super().__init__(f"rank {rank} out of range [0, {size})")
        self.rank = rank
        self.size = size


class TruncationError(MpiError):
    """A receive completed with an unexpected message size."""
