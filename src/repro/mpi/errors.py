"""MPI-layer exceptions."""

from __future__ import annotations

__all__ = ["MpiError", "RankError", "TruncationError", "DeliveryError"]


class MpiError(Exception):
    """Base class for errors raised by the simulated MPI runtime."""


class RankError(MpiError):
    """An operation referenced a rank outside the communicator."""

    def __init__(self, rank: int, size: int):
        super().__init__(f"rank {rank} out of range [0, {size})")
        self.rank = rank
        self.size = size


class TruncationError(MpiError):
    """A receive completed with a message larger than its buffer
    (``MPI_ERR_TRUNCATE``)."""

    def __init__(self, expected_nbytes: int, actual_nbytes: int,
                 src: int, dst: int):
        super().__init__(
            f"receive at rank {dst} from {src} truncated: buffer holds "
            f"{expected_nbytes} bytes, message carries {actual_nbytes}")
        self.expected_nbytes = expected_nbytes
        self.actual_nbytes = actual_nbytes
        self.src = src
        self.dst = dst


class DeliveryError(MpiError):
    """The resilient transport gave up on a message: every transmission
    attempt was lost, corrupted, or aborted by a link failure, and the
    retry budget (:class:`~repro.faults.RetryConfig.max_retries`) is
    exhausted."""

    def __init__(self, src: int, dst: int, tag: object, attempts: int):
        super().__init__(
            f"message {src}->{dst} (tag {tag!r}) undeliverable after "
            f"{attempts} attempts")
        self.src = src
        self.dst = dst
        self.tag = tag
        self.attempts = attempts
