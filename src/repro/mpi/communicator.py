"""The communicator: one context per rank over a shared transport.

Besides rank bookkeeping, the communicator enforces the era's
*collective serialization*: implementations of the time (MPICH's
collective context, EPCC MPI's shmem buffers) reused fixed internal
buffers and tags per communicator, so consecutive collective calls on
one communicator could not overlap in the network.  We model this as a
zero-cost completion fence — collective ``seq`` may not start
transmitting on any rank before every rank has finished collective
``seq - 1``.  Without the fence, back-to-back timed iterations would
pipeline and the measured per-iteration time would collapse to the
per-node throughput bound instead of the critical-path latency the
paper reports.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence

from ..machines import Machine
from ..obs.spans import CollectiveObserver
from ..sim import Event
from .context import RankContext
from .errors import MpiError, RankError
from .transport import Transport

__all__ = ["Communicator"]

#: Process-wide source of unique communicator ids (they only need to be
#: unique within one machine's transport, but global uniqueness is
#: simplest and harmless).
_COMM_IDS = itertools.count()


class Communicator:
    """A communicator: an ordered group of processes over one machine.

    The world communicator spans every node (one process per node);
    :meth:`split` derives sub-communicators the way ``MPI_Comm_split``
    does.  Each communicator has its own collective sequence space and
    serialization fence, so collectives on *disjoint* communicators
    proceed concurrently while collectives on the same one serialize.
    """

    def __init__(self, machine: Machine,
                 world_ranks: Optional[Sequence[int]] = None,
                 transport: Optional[Transport] = None):
        self.machine = machine
        self.comm_id = next(_COMM_IDS)
        self.world_ranks: List[int] = list(
            range(machine.num_nodes) if world_ranks is None
            else world_ranks)
        if len(set(self.world_ranks)) != len(self.world_ranks):
            raise MpiError("duplicate node in communicator group")
        self.transport = transport if transport is not None \
            else Transport(machine)
        self.obs = CollectiveObserver(machine.tracer, machine.metrics,
                                      self.comm_id)
        self.contexts: List[RankContext] = [
            RankContext(self, rank)
            for rank in range(len(self.world_ranks))]
        self._completions: Dict[int, Event] = {}
        self._completion_counts: Dict[int, int] = {}
        self._split_calls: Dict[int, list] = {}
        self._split_events: Dict[int, Event] = {}
        self._split_seq = 0

    # -- collective serialization fence ------------------------------------
    def completion_event(self, seq: int) -> Event:
        """Event that fires when all ranks finished collective ``seq``."""
        if seq not in self._completions:
            self._completions[seq] = self.machine.env.event()
            self._completion_counts[seq] = 0
        return self._completions[seq]

    def report_completion(self, seq: int) -> None:
        """Record one rank's completion of collective ``seq``."""
        event = self.completion_event(seq)
        self._completion_counts[seq] += 1
        if self._completion_counts[seq] == self.size:
            self.obs.complete(seq, self.machine.env.now)
            event.succeed()
            # The fence is only ever awaited for seq-1; drop older state.
            stale = [s for s in self._completions if s < seq]
            for s in stale:
                del self._completions[s]
                del self._completion_counts[s]

    @property
    def size(self) -> int:
        """Number of processes in this communicator."""
        return len(self.world_ranks)

    @property
    def spec(self):
        """The machine specification this communicator runs on."""
        return self.machine.spec

    @property
    def is_world(self) -> bool:
        """Whether this communicator spans every node of the machine."""
        return self.size == self.machine.num_nodes

    def context(self, rank: int) -> RankContext:
        """The :class:`RankContext` for local ``rank``."""
        if not 0 <= rank < self.size:
            raise RankError(rank, self.size)
        return self.contexts[rank]

    def world_rank_of(self, rank: int) -> int:
        """Translate a communicator-local rank to a node index."""
        if not 0 <= rank < self.size:
            raise RankError(rank, self.size)
        return self.world_ranks[rank]

    # -- MPI_Comm_split -----------------------------------------------------
    def register_split(self, rank: int, color: Optional[int],
                       key: int) -> Event:
        """Record one rank's split call; fires for all when complete.

        The returned event's value maps each parent rank to its child
        :class:`RankContext` (or ``None`` for ``color=None``, MPI's
        ``MPI_UNDEFINED``).  All ranks of the communicator must call
        split the same number of times (it is a collective).
        """
        seq = self._split_seq
        calls = self._split_calls.setdefault(seq, [])
        if any(existing_rank == rank for existing_rank, _, _ in calls):
            raise MpiError(f"rank {rank} called split twice in one "
                           f"collective round")
        calls.append((rank, color, key))
        event = self._split_events.setdefault(seq,
                                              self.machine.env.event())
        if len(calls) == self.size:
            self._split_seq += 1
            event.succeed(self._build_children(calls))
            del self._split_calls[seq]
            del self._split_events[seq]
        return event

    def _build_children(self, calls: list) -> Dict[int, Optional[
            RankContext]]:
        by_color: Dict[int, list] = {}
        for rank, color, key in calls:
            if color is not None:
                by_color.setdefault(color, []).append((key, rank))
        assignment: Dict[int, Optional[RankContext]] = {
            rank: None for rank, _, _ in calls}
        for color in sorted(by_color):
            members = sorted(by_color[color])  # by (key, parent rank)
            group = [self.world_ranks[rank] for _, rank in members]
            child = Communicator(self.machine, world_ranks=group,
                                 transport=self.transport)
            for local_rank, (_, parent_rank) in enumerate(members):
                assignment[parent_rank] = child.contexts[local_rank]
        return assignment
