"""Point-to-point message transport over the simulated hardware.

The transport turns an abstract ``send(src, dst, nbytes, tag)`` into the
machine's hardware pipeline:

1. **Issue** — the sending CPU pays the kernel's per-send cost (plus
   buffer-management cost for bidirectional/buffered traffic).
2. **Payload move** — the payload is copied through the host memory bus
   (``HOST`` mode) or streamed by a DMA engine (``BLT``/``COPROC``),
   depending on machine policy for the enclosing collective.
3. **Wire** — asynchronously, the NIC transmit engine and the network
   fabric carry the message (concurrently — the adapter streams into
   the fabric), then the destination NIC's receive engine ejects it,
   and after the kernel's dispatch latency the message becomes
   matchable at the destination.
4. **Match** — a posted receive matching ``(src, tag)`` completes;
   otherwise the message joins the unexpected queue and its receiver
   will later pay the unexpected-handling cost plus a copy out of the
   system buffer.

The sender is only blocked for steps 1-2, which is what lets a scatter
root pipeline successive sends at its marginal per-message cost — the
effect behind the O(p) startup terms of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from ..machines import Machine
from ..network import TransferAborted
from ..node import TransferMode
from ..sim import Event, Span
from ..sim.engine import NORMAL
from .errors import DeliveryError, RankError, TruncationError

__all__ = ["Envelope", "PostedReceive", "Transport"]


@dataclass
class Envelope:
    """Metadata of one in-flight or delivered message."""

    src: int
    dst: int
    tag: object
    nbytes: int
    sent_at: float
    delivered_at: Optional[float] = None
    span: Optional[Span] = None


@dataclass
class PostedReceive:
    """Handle for a posted (possibly not yet matched) receive."""

    event: Event
    src: int
    tag: object
    was_unexpected: bool = False


class Transport:
    """Message matching and hardware pipelines for one machine."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.env = machine.env
        self.spec = machine.spec
        self._posted: List[List[PostedReceive]] = \
            [[] for _ in range(machine.num_nodes)]
        self._unexpected: List[List[Envelope]] = \
            [[] for _ in range(machine.num_nodes)]
        self.messages_delivered = 0
        self.unexpected_arrivals = 0

    # -- validation -------------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.machine.num_nodes:
            raise RankError(rank, self.machine.num_nodes)

    # -- send side ----------------------------------------------------------
    def send(self, src: int, dst: int, nbytes: int, tag: object,
             op: str = "ptp", buffered: bool = False,
             sw_cost_us: Optional[float] = None,
             parent_span: Optional[Span] = None
             ) -> Generator[Event, None, None]:
        """Process generator: issue one message from ``src`` to ``dst``.

        Blocks the caller for the local (CPU + payload move) costs only;
        the wire part proceeds asynchronously.  ``sw_cost_us`` overrides
        the kernel software cost for offloaded paths (the payload move
        is then skipped too — the offload engine's cost is included in
        the override).  ``parent_span`` (normally the collective phase
        span) becomes the parent of this message's trace span.
        """
        self._check_rank(src)
        self._check_rank(dst)
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        work = self.env.work
        if work is not None:
            work.messages_sent += 1
        tracer = self.machine.tracer
        span = None
        if tracer.enabled:
            span = tracer.begin(self.env.now, f"msg {src}->{dst}",
                                "message", node=src, parent=parent_span,
                                dst=dst, nbytes=nbytes, op=op)
        metrics = self.machine.metrics
        if metrics.enabled:
            metrics.counter("mpi.messages_sent").inc()
            metrics.histogram("mpi.message_bytes").observe(nbytes)
        software = self.spec.software
        node = self.machine.nodes[src]
        mode = node.payload_mode(self.spec.uses_dma_for(op), nbytes)
        if sw_cost_us is not None:
            yield self.env.sleep(sw_cost_us * self.machine.jitter(src))
        else:
            cost = software.send_msg_us
            if buffered:
                cost += software.buffered_msg_us
            yield self.env.sleep(cost * self.machine.jitter(src))
            if nbytes > 0:
                if mode is TransferMode.HOST:
                    # An unbuffered send streams straight from the user
                    # buffer (eager/rendezvous direct path); a buffered
                    # (bidirectional-traffic) send stages through system
                    # buffers — in and back out — on the memory bus.
                    if buffered:
                        yield from node.memory.copy(2 * nbytes)
                else:
                    assert node.dma is not None
                    yield from node.dma.stream(nbytes)
        fast = mode is not TransferMode.HOST
        if not self._wire_fast(src, dst, nbytes, tag, op, fast):
            self.env.process(self._wire(src, dst, nbytes, tag, op,
                                        fast=fast, span=span,
                                        phase_span=parent_span),
                             name=f"wire-{src}-{dst}")

    # -- analytic short-circuit -------------------------------------------
    def _wire_fast(self, src: int, dst: int, nbytes: int, tag: object,
                   op: str, fast: bool) -> bool:
        """Try to carry one message analytically, without wire processes.

        Eligibility is checked explicitly: no fault injector (a
        :class:`~repro.faults.FaultPlan` must see every hop simulated),
        the machine's ``fast_wire`` switch on, and tracing/metrics off
        (observability wants the real spans and gauges).  Even then the
        message only takes this path when the transmit engine, every
        route link *at this instant*, and the receive engine can all be
        timestamp-booked — any contention rolls the bookings back and
        returns ``False``, and the caller runs the full wire pipeline.

        When it succeeds, the wire end is the max of the three booked
        leg ends — exactly when ``all_of`` over the three concurrent
        leg processes would have fired — and two plain events replace
        the four processes and their resource protocol: a *landing*
        event at the wire end (where the delivery jitter is drawn, at
        the same simulated time as the full path draws it) and a
        *deliver* event after the kernel dispatch latency.
        """
        machine = self.machine
        if machine.injector is not None or not machine.fast_wire or \
                machine.tracer.enabled or machine.metrics.enabled:
            return False
        env = self.env
        src_node = machine.nodes[src]
        dst_node = machine.nodes[dst]
        # The transmit and receive engines are booked first: the leg
        # processes of the full path occupy them from this instant
        # independently of the fabric, and — on the SP2, whose
        # half-duplex adapter shares one engine — transmit before
        # receive, the full path's leg spawn order.  The engines and
        # the route links are disjoint resources, so booking both
        # engines before trying the route preserves every per-resource
        # FIFO order.
        tx = src_node.nic.try_book_transmit(nbytes, fast=fast)
        if tx is None:
            return False
        fast_rx = dst_node.payload_mode(self.spec.uses_dma_for(op),
                                        nbytes) is not TransferMode.HOST
        rx = dst_node.nic.try_book_receive(nbytes, fast=fast_rx)
        if rx is None:
            tx[1].undo_occupy(tx[2])
            return False
        src_node.nic.commit_transmit()
        dst_node.nic.commit_receive()
        work = env.work
        if work is not None:
            work.resource_occupancies += 2  # the two engine bookings
        routed = machine.fabric.try_book_route(src, dst, nbytes)
        if routed is None:
            # Route contended: the engine bookings stand (the full
            # path's engine legs run concurrently with the fabric leg
            # anyway) and only the fabric part is simulated, by a lean
            # process that queues in the link FIFOs like any other.
            env.process(self._wire_contended(src, dst, nbytes, tag,
                                             tx[0], rx[0]))
            return True
        hold, bookings = routed
        machine.fabric.commit_route(bookings, nbytes, hold)
        now = env._now
        wire_end = tx[0]
        if now + hold > wire_end:
            wire_end = now + hold
        if rx[0] > wire_end:
            wire_end = rx[0]
        envelope = Envelope(src=src, dst=dst, tag=tag, nbytes=nbytes,
                            sent_at=now)
        landing = Event(env)
        landing._ok = True
        landing._value = envelope
        landing.callbacks.append(self._wire_fast_landed)
        env._schedule(landing, wire_end, NORMAL)
        return True

    def _wire_contended(self, src: int, dst: int, nbytes: int,
                        tag: object, tx_end: float, rx_end: float
                        ) -> Generator[Event, None, None]:
        """Wire pipeline for a short-circuit-eligible message whose
        route was busy: the engine ends are already booked/known, the
        fabric transfer is simulated (waiting in link queues), and the
        wire ends when the slowest of the three is done — exactly when
        the full path's ``all_of`` over the legs would have fired."""
        env = self.env
        envelope = Envelope(src=src, dst=dst, tag=tag, nbytes=nbytes,
                            sent_at=env._now)
        yield from self.machine.fabric.transfer(src, dst, nbytes)
        wire_end = tx_end if tx_end > rx_end else rx_end
        if wire_end > env._now:
            yield env.sleep_until(wire_end)
        yield env.sleep(self.spec.software.deliver_us *
                        self.machine.jitter(dst))
        envelope.delivered_at = env._now
        self._deliver(envelope)

    def _wire_fast_landed(self, event: Event) -> None:
        """The message's tail has left the network: draw the delivery
        jitter (at the same simulated time the full path draws it) and
        schedule the actual delivery."""
        envelope = event._value
        env = self.env
        deliver = Event(env)
        deliver._ok = True
        deliver._value = envelope
        deliver.callbacks.append(self._deliver_fast)
        delay = self.spec.software.deliver_us * \
            self.machine.jitter(envelope.dst)
        env._schedule(deliver, env._now + delay, NORMAL)

    def _deliver_fast(self, event: Event) -> None:
        envelope = event._value
        envelope.delivered_at = self.env._now
        self._deliver(envelope)

    def _wire(self, src: int, dst: int, nbytes: int, tag: object,
              op: str, fast: bool, span: Optional[Span] = None,
              phase_span: Optional[Span] = None
              ) -> Generator[Event, None, None]:
        envelope = Envelope(src=src, dst=dst, tag=tag, nbytes=nbytes,
                            sent_at=self.env.now, span=span)
        injector = self.machine.injector
        if injector is None:
            yield from self._wire_once(src, dst, nbytes, op, fast, span)
        else:
            yield from self._wire_reliably(injector, src, dst, nbytes,
                                           tag, op, fast, span)
        yield self.env.sleep(
            self.spec.software.deliver_us * self.machine.jitter(dst))
        envelope.delivered_at = self.env.now
        tracer = self.machine.tracer
        if span is not None:
            tracer.end(span, self.env.now)
        if phase_span is not None:
            # The phase lasts until its last member message lands.
            tracer.extend(phase_span, self.env.now)
        self._deliver(envelope)

    def _wire_once(self, src: int, dst: int, nbytes: int, op: str,
                   fast: bool, span: Optional[Span]
                   ) -> Generator[Event, None, None]:
        src_node = self.machine.nodes[src]
        dst_node = self.machine.nodes[dst]
        # The destination drains at DMA speed when its policy offloads
        # this collective's payloads (e.g. the Paragon coprocessor).
        fast_rx = dst_node.payload_mode(self.spec.uses_dma_for(op),
                                        nbytes) is not TransferMode.HOST
        # Transmit engine, wormhole transfer, and receive engine all
        # stream the same bytes cut-through: they overlap in time, and
        # the message is in the destination's buffer once the slowest
        # leg finishes.  Each engine is still a FIFO resource, so
        # back-to-back messages through one NIC or link serialize.
        legs = [
            self.env.process(src_node.nic.transmit(nbytes, fast=fast)),
            self.env.process(self.machine.fabric.transfer(
                src, dst, nbytes, parent_span=span)),
            self.env.process(dst_node.nic.receive(nbytes, fast=fast_rx)),
        ]
        yield self.env.all_of(legs)

    def _wire_reliably(self, injector, src: int, dst: int, nbytes: int,
                       tag: object, op: str, fast: bool,
                       span: Optional[Span]
                       ) -> Generator[Event, None, None]:
        """Ack/timeout/retransmit protocol around the wire legs.

        Each attempt pays the full wire pipeline, then draws a fate
        from the plan's seeded stream.  A lost, corrupted, or aborted
        attempt delivers nothing: the sender learns of the failure only
        when the attempt's retransmission timeout (exponential backoff,
        bounded) expires, then retransmits — possibly over a detour if
        a link died meanwhile.  After ``max_retries`` retransmissions
        the message fails with :class:`DeliveryError`.
        """
        retry = injector.plan.retry
        src_node = self.machine.nodes[src]
        dst_node = self.machine.nodes[dst]
        fast_rx = dst_node.payload_mode(self.spec.uses_dma_for(op),
                                        nbytes) is not TransferMode.HOST
        attempts = retry.max_retries + 1
        for attempt in range(attempts):
            started = self.env.now
            fate = injector.message_fate(src, dst)
            aborted: List[TransferAborted] = []

            def carry() -> Generator[Event, None, None]:
                try:
                    yield from self.machine.fabric.transfer(
                        src, dst, nbytes, parent_span=span)
                except TransferAborted as failure:
                    aborted.append(failure)

            legs = [
                self.env.process(src_node.nic.transmit(nbytes, fast=fast)),
                self.env.process(carry(), name=f"carry-{src}-{dst}"),
                self.env.process(dst_node.nic.receive(nbytes,
                                                      fast=fast_rx)),
            ]
            yield self.env.all_of(legs)
            wire_us = self.env.now - started
            rto = retry.timeout_for_attempt(attempt)
            if not aborted and fate == "ok":
                # Delivered.  If wire + ack return exceeded the RTO the
                # real protocol would have retransmitted needlessly;
                # count it, but don't re-run the delivery.
                ack_us = self.machine.fabric.transfer_time(
                    dst, src, retry.ack_bytes)
                if wire_us + ack_us > rto:
                    injector.record_spurious_retransmit()
                return
            # Failed attempt: the fate is only known now, so the
            # recovery span is opened retroactively over the wasted
            # wire time (the tracer accepts past start times).
            tracer = self.machine.tracer
            if tracer.enabled:
                reason = "aborted" if aborted else fate
                doomed = tracer.begin(started, f"retransmit {src}->{dst}",
                                      "retransmit", node=src, parent=span,
                                      dst=dst, attempt=attempt,
                                      reason=reason)
                tracer.end(doomed, self.env.now)
            # No ack will come, so the sender sits out the rest of the
            # RTO before trying again.
            if rto > wire_us:
                if tracer.enabled:
                    sitout = tracer.begin(self.env.now,
                                          f"backoff {src}->{dst}",
                                          "backoff", node=src, parent=span,
                                          dst=dst, attempt=attempt,
                                          rto_us=rto)
                    yield self.env.sleep(rto - wire_us)
                    tracer.end(sitout, self.env.now)
                else:
                    yield self.env.sleep(rto - wire_us)
            if attempt + 1 < attempts:
                injector.record_retransmit()
                work = self.env.work
                if work is not None:
                    work.retransmissions += 1
        raise DeliveryError(src, dst, tag, attempts)

    def _deliver(self, envelope: Envelope) -> None:
        profiler = self.env.profiler
        if profiler is None:
            self._deliver_now(envelope)
            return
        profiler.enter("transport.deliver")
        try:
            self._deliver_now(envelope)
        finally:
            profiler.leave()

    def _deliver_now(self, envelope: Envelope) -> None:
        work = self.env.work
        if work is not None:
            work.messages_delivered += 1
        metrics = self.machine.metrics
        if metrics.enabled:
            metrics.counter("mpi.messages_delivered").inc()
            metrics.histogram("mpi.delivery_latency_us").observe(
                self.env.now - envelope.sent_at)
        posted = self._posted[envelope.dst]
        for index, receive in enumerate(posted):
            if receive.src == envelope.src and receive.tag == envelope.tag:
                del posted[index]
                receive.was_unexpected = False
                receive.event.succeed(envelope)
                self.messages_delivered += 1
                return
        self._unexpected[envelope.dst].append(envelope)
        self.unexpected_arrivals += 1
        if metrics.enabled:
            metrics.counter("mpi.unexpected_arrivals").inc()
        self.machine.tracer.emit(self.env.now, "unexpected-message",
                                 envelope.dst, src=envelope.src,
                                 tag=envelope.tag)

    # -- receive side ---------------------------------------------------------
    def post_receive(self, rank: int, src: int,
                     tag: object) -> PostedReceive:
        """Post a receive for ``(src, tag)``; returns a waitable handle."""
        self._check_rank(rank)
        self._check_rank(src)
        unexpected = self._unexpected[rank]
        for index, envelope in enumerate(unexpected):
            if envelope.src == src and envelope.tag == tag:
                del unexpected[index]
                receive = PostedReceive(self.env.event(), src, tag,
                                        was_unexpected=True)
                receive.event.succeed(envelope)
                self.messages_delivered += 1
                return receive
        receive = PostedReceive(self.env.event(), src, tag)
        self._posted[rank].append(receive)
        return receive

    def complete_receive(self, rank: int, receive: PostedReceive,
                         op: str = "ptp", buffered: bool = False,
                         sw_cost_us: Optional[float] = None,
                         expected_nbytes: Optional[int] = None
                         ) -> Generator[Event, None, Envelope]:
        """Process generator: wait for and retire a posted receive.

        ``expected_nbytes`` is the receive buffer size: a matched
        message larger than it raises :class:`TruncationError`, MPI's
        ``MPI_ERR_TRUNCATE`` (``None`` skips the check — the buffer is
        assumed to fit, as inside collectives).
        """
        envelope = yield receive.event
        if expected_nbytes is not None and \
                envelope.nbytes > expected_nbytes:
            raise TruncationError(expected_nbytes, envelope.nbytes,
                                  envelope.src, rank)
        software = self.spec.software
        node = self.machine.nodes[rank]
        if sw_cost_us is not None:
            yield self.env.sleep(sw_cost_us * self.machine.jitter(rank))
            return envelope
        cost = software.recv_msg_us
        if buffered:
            cost += software.buffered_msg_us
        if receive.was_unexpected:
            cost += software.unexpected_us
        yield self.env.sleep(cost * self.machine.jitter(rank))
        if envelope.nbytes > 0:
            # Eager protocol: a message that found its receive posted
            # was deposited straight into the user buffer; an
            # unexpected one landed in a system buffer and the host
            # copies it out.  Buffered (bidirectional) traffic always
            # stages through system buffers, in and out.  DMA-offloaded
            # collectives place data directly in every case.
            mode = node.payload_mode(self.spec.uses_dma_for(op),
                                     envelope.nbytes)
            if mode is TransferMode.HOST:
                copies = 0
                if buffered:
                    copies = 2
                elif receive.was_unexpected:
                    copies = 1
                if copies:
                    yield from node.memory.copy(copies * envelope.nbytes)
        return envelope

    # -- introspection ---------------------------------------------------------
    def pending_unexpected(self, rank: int) -> int:
        """Messages waiting unmatched at ``rank`` (test/diagnostic aid)."""
        return len(self._unexpected[rank])

    def pending_posted(self, rank: int) -> int:
        """Receives posted but unmatched at ``rank``."""
        return len(self._posted[rank])
