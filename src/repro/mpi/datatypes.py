"""MPI datatypes.

The paper's experiments use ``MPI_FLOAT`` (single-precision, 4 bytes)
throughout; message lengths are reported in bytes.  Datatypes here are
pure size descriptors: the simulator moves byte counts, not values.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Datatype",
    "MPI_BYTE",
    "MPI_CHAR",
    "MPI_INT",
    "MPI_FLOAT",
    "MPI_DOUBLE",
    "message_bytes",
]


@dataclass(frozen=True)
class Datatype:
    """An MPI elementary datatype: a name and an extent in bytes."""

    name: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes < 1:
            raise ValueError(f"datatype size must be >= 1, got "
                             f"{self.size_bytes}")


MPI_BYTE = Datatype("MPI_BYTE", 1)
MPI_CHAR = Datatype("MPI_CHAR", 1)
MPI_INT = Datatype("MPI_INT", 4)
MPI_FLOAT = Datatype("MPI_FLOAT", 4)
MPI_DOUBLE = Datatype("MPI_DOUBLE", 8)


def message_bytes(count: int, datatype: Datatype = MPI_FLOAT) -> int:
    """Message length in bytes for ``count`` elements of ``datatype``."""
    if count < 0:
        raise ValueError(f"negative element count {count}")
    return count * datatype.size_bytes
