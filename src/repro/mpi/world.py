"""MpiWorld: the package's top-level entry point.

An :class:`MpiWorld` bundles a simulation environment, a machine built
from a spec, and a communicator, and runs SPMD programs on it.  A
program is a function taking a :class:`~repro.mpi.context.RankContext`
and returning a generator — the per-rank process body::

    def program(ctx):
        yield from ctx.barrier()
        start = ctx.wtime()
        yield from ctx.bcast(1024)
        return ctx.wtime() - start

    world = MpiWorld("t3d", num_nodes=8)
    per_rank_times = world.run(program)
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Union

from ..faults import FaultPlan
from ..machines import Machine, MachineSpec, get_machine_spec
from ..obs.metrics import MetricsRegistry
from ..sim import Environment, RandomStreams, Tracer
from .communicator import Communicator
from .context import RankContext
from .errors import MpiError

__all__ = ["MpiWorld", "Program"]

Program = Callable[[RankContext], Generator]


class MpiWorld:
    """A simulated machine plus a world communicator, ready to run."""

    def __init__(self, machine: Union[str, MachineSpec], num_nodes: int,
                 seed: int = 0, contention: bool = True,
                 trace: bool = False, metrics: bool = False,
                 cpu_slowdown: Optional[dict] = None,
                 faults: Optional[FaultPlan] = None,
                 scheduler: Optional[str] = None,
                 fast_wire: bool = True,
                 decision_table: Optional[Any] = None):
        spec = get_machine_spec(machine) if isinstance(machine, str) \
            else machine
        if decision_table is not None:
            spec = spec.with_decision_table(decision_table)
        self.env = Environment(scheduler=scheduler)
        self.streams = RandomStreams(seed)
        self.tracer = Tracer(enabled=trace)
        self.metrics = MetricsRegistry(enabled=metrics)
        self.machine = Machine(self.env, spec, num_nodes,
                               streams=self.streams, tracer=self.tracer,
                               contention=contention,
                               cpu_slowdown=cpu_slowdown,
                               metrics=self.metrics, faults=faults,
                               fast_wire=fast_wire)
        self.comm = Communicator(self.machine)

    @property
    def spec(self) -> MachineSpec:
        return self.machine.spec

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def now(self) -> float:
        """Global simulated time in microseconds (omniscient view)."""
        return self.env.now

    def run(self, program: Program,
            until: Optional[float] = None) -> List[Any]:
        """Run ``program`` on every rank; return per-rank results.

        Raises :class:`MpiError` if any rank's process failed or (when
        ``until`` is given) did not finish in time.
        """
        processes = [
            self.env.process(program(ctx), name=f"rank-{ctx.rank}")
            for ctx in self.comm.contexts
        ]
        for process in processes:
            # A rank failure must be reported as MpiError after the
            # run, not abort the event loop mid-flight.
            process.defused()
        self.env.run(until=until)
        for rank, process in enumerate(processes):
            if process.triggered and not process.ok:
                raise MpiError(
                    f"rank {rank} failed: {process.value!r}") from \
                    process.value
        for rank, process in enumerate(processes):
            if not process.triggered:
                raise MpiError(
                    f"rank {rank} did not finish (deadlock or until= too "
                    f"small at t={self.env.now:.1f} us)")
        return [process.value for process in processes]

    def run_collective(self, op: str, nbytes: int = 0, root: int = 0,
                       iterations: int = 1) -> float:
        """Convenience: run ``op`` ``iterations`` times, return the
        elapsed simulated wall time in microseconds (global clock)."""
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        start = self.env.now

        def body(ctx: RankContext):
            for _ in range(iterations):
                yield from ctx.collective(op, nbytes, root)
            return self.env.now

        finished = self.run(body)
        if self.machine.injector is not None:
            # Draining the queue also fires fault watchdog timers that
            # may sit far past the last rank's completion; measure to
            # the last rank, not to the drained clock.
            return max(finished) - start
        return self.env.now - start
