"""Simulated MPI runtime: transport, communicator, collectives."""

from . import collectives  # noqa: F401 - registers algorithms
from .communicator import Communicator
from .context import COLLECTIVE_OPS, RankContext
from .datatypes import (
    MPI_BYTE,
    MPI_CHAR,
    MPI_DOUBLE,
    MPI_FLOAT,
    MPI_INT,
    Datatype,
    message_bytes,
)
from .errors import DeliveryError, MpiError, RankError, TruncationError
from .transport import Envelope, PostedReceive, Transport
from .world import MpiWorld, Program

__all__ = [
    "COLLECTIVE_OPS",
    "Communicator",
    "Datatype",
    "DeliveryError",
    "Envelope",
    "MPI_BYTE",
    "MPI_CHAR",
    "MPI_DOUBLE",
    "MPI_FLOAT",
    "MPI_INT",
    "MpiError",
    "MpiWorld",
    "PostedReceive",
    "Program",
    "RankContext",
    "RankError",
    "Transport",
    "TruncationError",
    "collectives",
    "message_bytes",
]
