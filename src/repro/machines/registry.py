"""Registry of known machine specifications."""

from __future__ import annotations

from typing import Dict, List

from .base import MachineSpec
from .paragon import PARAGON
from .sp2 import SP2
from .t3d import T3D

__all__ = ["get_machine_spec", "machine_names", "all_machine_specs",
           "register_machine_spec"]

_REGISTRY: Dict[str, MachineSpec] = {
    SP2.name: SP2,
    T3D.name: T3D,
    PARAGON.name: PARAGON,
}


def get_machine_spec(name: str) -> MachineSpec:
    """Look up a machine spec by name (case-insensitive)."""
    key = name.lower()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown machine {name!r}; known machines: {known}")
    return _REGISTRY[key]


def machine_names() -> List[str]:
    """Names of all registered machines, in registration order."""
    return list(_REGISTRY)


def all_machine_specs() -> List[MachineSpec]:
    """All registered machine specs, in registration order."""
    return list(_REGISTRY.values())


def register_machine_spec(spec: MachineSpec,
                          overwrite: bool = False) -> None:
    """Register a custom machine spec (e.g. an ablated variant)."""
    key = spec.name.lower()
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"machine {spec.name!r} already registered")
    _REGISTRY[key] = spec
