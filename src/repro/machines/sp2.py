"""IBM SP2 machine model (MHPCC configuration).

Calibration sources: the paper's Section 4 (one-way MPI latency around
50 us, 125 ns per switch hop, 40 MB/s network), Table 3's per-node
marginal costs (scatter ~3.7 us per extra destination, gather ~5.8 us
per extra source), and Stunkel et al.'s description of the Vulcan
switch fabric and the communication adapter, whose single
microprocessor-driven DMA engine we model as a half-duplex NIC.

The SP2 at MHPCC ran MPICH, so its collective algorithms are the MPICH
1994-era choices: binomial trees for broadcast/reduce/barrier,
recursive doubling for scan, linear (root-sequential) gather/scatter,
and a pairwise exchange for total exchange.
"""

from __future__ import annotations

from .base import (
    MachineSpec,
    MemoryCosts,
    NetworkSpec,
    NicCosts,
    SoftwareCosts,
)

__all__ = ["SP2"]

SP2 = MachineSpec(
    name="sp2",
    full_name="IBM SP2",
    site="Maui High-Performance Computing Center",
    # The MHPCC installation's full size; the paper measured up to 64
    # nodes, but the engine perf suite simulates p=256 configurations.
    max_nodes=512,
    software=SoftwareCosts(
        call_setup_us=30.0,
        send_msg_us=3.7,
        recv_msg_us=4.5,
        deliver_us=40.0,
        unexpected_us=10.0,
        buffered_msg_us=6.0,
        reduce_round_us=10.0,
        reduce_us_per_byte=0.010,  # POWER2 FPU combines fast
    ),
    memory=MemoryCosts(copy_us_per_byte=0.019),
    nic=NicCosts(per_message_us=1.0, bandwidth_mbs=40.0, half_duplex=True),
    network=NetworkSpec(kind="omega", link_bandwidth_mbs=40.0,
                        hop_latency_us=0.125, radix=4),
    algorithms={
        "barrier": "tree_barrier",
        "broadcast": "binomial_broadcast",
        "reduce": "binomial_reduce",
        "scan": "recursive_doubling_scan",
        "gather": "linear_gather",
        "scatter": "linear_scatter",
        "alltoall": "posted_alltoall",
        "allreduce": "reduce_broadcast_allreduce",
        "allgather": "gather_broadcast_allgather",
        "reduce_scatter": "reduce_scatter_composite",
    },
    compute_mflops=200.0,  # POWER2 sustained
    clock_skew_us=500.0,
    timer_resolution_us=0.1,
)
