"""Machine specifications and the runtime machine builder.

A :class:`MachineSpec` is a frozen, declarative description of one
multicomputer: software overheads of its message-passing kernel, node
hardware parameters, interconnect, special hardware (barrier wire, DMA
engines), and which collective algorithm its MPI port uses for each
operation.  :class:`Machine` instantiates a spec at a given node count
inside a simulation environment.

All times are microseconds, bandwidths MByte/s, sizes bytes — the
paper's units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..faults import FaultInjector, FaultPlan
from ..network import (
    LinkParameters,
    Mesh2D,
    NetworkFabric,
    OmegaNetwork,
    Topology,
    Torus3D,
)
from ..node import (
    DmaEngine,
    DmaParameters,
    HardwareBarrier,
    MemorySystem,
    Nic,
    Node,
    NodeClock,
)
from ..obs.metrics import MetricsRegistry
from ..sim import Environment, RandomStreams, Tracer

__all__ = [
    "SoftwareCosts",
    "MemoryCosts",
    "NicCosts",
    "NetworkSpec",
    "BarrierWire",
    "MachineSpec",
    "Machine",
]


@dataclass(frozen=True)
class SoftwareCosts:
    """Per-call and per-message software overheads of the MPI kernel.

    ``call_setup_us``
        Paid once per process per collective invocation (argument
        checking, communicator lookup, buffer registration).
    ``send_msg_us`` / ``recv_msg_us``
        Host CPU time to issue one send / complete one matched receive.
    ``deliver_us``
        Latency (not occupancy) from NIC ejection to the message being
        matchable — interrupt/dispatch cost of the messaging kernel.
    ``unexpected_us``
        Extra receive cost when the message arrived before the receive
        was posted (unexpected-queue handling plus the extra copy cost
        charged separately through the memory system).
    ``buffered_msg_us``
        Extra per-message cost when the transport must manage system
        buffers for simultaneously outstanding sends and receives, as
        in a total exchange (NX/MPL buffer management).
    ``reduce_round_us`` / ``reduce_us_per_byte``
        Fixed and per-byte cost of combining two operands on the host
        CPU (used by reduce/scan).
    ``offload_round_us`` / ``offload_us_per_byte``
        Per-round costs of collectives whose combining runs on the
        message coprocessor instead of through the host send/receive
        path (the Paragon's NX native scan).  ``None`` means the
        machine has no such offloaded path.
    ``jitter_sigma``
        Relative standard deviation applied to software overheads so
        repeated runs differ, as on real (non-real-time) node kernels.
    """

    call_setup_us: float
    send_msg_us: float
    recv_msg_us: float
    deliver_us: float
    unexpected_us: float
    buffered_msg_us: float
    reduce_round_us: float
    reduce_us_per_byte: float
    offload_round_us: Optional[float] = None
    offload_us_per_byte: Optional[float] = None
    #: One-time cost of engaging the coprocessor for an offloaded
    #: collective (doorbell + descriptor setup).
    offload_setup_us: float = 0.0
    #: Barrier entry cost override; a hardwired barrier instruction
    #: needs almost no software wrapping (T3D).  None -> call_setup_us.
    barrier_call_setup_us: Optional[float] = None
    jitter_sigma: float = 0.03


@dataclass(frozen=True)
class MemoryCosts:
    """Host memory-bus parameters (see :class:`repro.node.MemorySystem`)."""

    copy_us_per_byte: float
    warmup_us: float = 250.0
    warmup_us_per_byte: float = 0.02


@dataclass(frozen=True)
class NicCosts:
    """Network-adapter parameters (see :class:`repro.node.Nic`).

    ``bandwidth_mbs`` is the host-driven injection/ejection rate (on
    the T3D this is the E-register copy pipeline, well below link
    speed); ``fast_bandwidth_mbs`` is the rate when a DMA engine feeds
    the port directly (defaults to ``bandwidth_mbs``).
    """

    per_message_us: float
    bandwidth_mbs: float
    half_duplex: bool = False
    fast_bandwidth_mbs: Optional[float] = None


@dataclass(frozen=True)
class NetworkSpec:
    """Interconnect family and link parameters."""

    kind: str  # "mesh2d" | "torus3d" | "omega"
    link_bandwidth_mbs: float
    hop_latency_us: float
    radix: int = 4  # omega only

    def build_topology(self, num_nodes: int) -> Topology:
        """Instantiate the topology for ``num_nodes`` nodes."""
        if self.kind == "mesh2d":
            return Mesh2D.for_nodes(num_nodes)
        if self.kind == "torus3d":
            return Torus3D.for_nodes(num_nodes)
        if self.kind == "omega":
            return OmegaNetwork(num_nodes, radix=self.radix)
        raise ValueError(f"unknown network kind {self.kind!r}")

    @property
    def link_parameters(self) -> LinkParameters:
        return LinkParameters(hop_latency_us=self.hop_latency_us,
                              bandwidth_mbs=self.link_bandwidth_mbs)


@dataclass(frozen=True)
class BarrierWire:
    """Parameters of a hardwired barrier network (T3D)."""

    base_us: float
    per_level_us: float


@dataclass(frozen=True)
class MachineSpec:
    """Complete declarative description of one multicomputer."""

    name: str
    full_name: str
    site: str
    max_nodes: int
    software: SoftwareCosts
    memory: MemoryCosts
    nic: NicCosts
    network: NetworkSpec
    dma: Optional[DmaParameters] = None
    #: Collectives whose bulk payload moves may use the DMA engine.
    dma_collectives: Tuple[str, ...] = ()
    barrier_wire: Optional[BarrierWire] = None
    #: op name -> algorithm name registered in repro.mpi.collectives.
    algorithms: Mapping[str, str] = field(default_factory=dict)
    #: Sustained node compute rate in MFLOPS, used by the application
    #: kernels in repro.apps to convert flop counts into compute time.
    compute_mflops: float = 100.0
    clock_skew_us: float = 500.0
    clock_drift_sigma: float = 1e-6
    timer_resolution_us: float = 0.1
    #: Whether consecutive collectives on one communicator serialize
    #: (the era's implementations reused internal buffers/tags, so they
    #: could not overlap).  Ablation knob — turning this off lets
    #: back-to-back timed iterations pipeline, collapsing measured
    #: times toward the per-node throughput bound.
    serialize_collectives: bool = True

    def __post_init__(self) -> None:
        if self.max_nodes < 2:
            raise ValueError("a multicomputer needs at least 2 nodes")
        object.__setattr__(self, "algorithms",
                           MappingProxyType(dict(self.algorithms)))

    def algorithm_for(self, op: str, nbytes: Optional[int] = None,
                      p: Optional[int] = None) -> str:
        """Algorithm name this machine's MPI port uses for ``op``.

        Resolution order: a loaded decision table (see
        :meth:`with_decision_table`) consulted with the message size
        and communicator size when both are known, then the spec's
        fixed ``algorithms`` map.  With no table attached — the
        default — the answer is exactly the paper's fixed 1996 choice,
        so simulated times, fingerprints, and goldens are unchanged.
        """
        table = getattr(self, "_decision_table", None)
        if table is not None and nbytes is not None and p is not None:
            choice = table.lookup(self.name, op, nbytes, p)
            if choice is not None:
                return choice
        try:
            return self.algorithms[op]
        except KeyError:
            raise KeyError(
                f"{self.name} defines no algorithm for {op!r}") from None

    def with_decision_table(self, table: Optional[Any]) -> "MachineSpec":
        """Copy of this spec consulting ``table`` (any object with a
        ``lookup(machine, op, nbytes, p) -> Optional[str]`` method,
        e.g. :class:`repro.tuner.DecisionTable`) before the fixed
        algorithm map.

        The table is deliberately *not* a dataclass field: spec
        fingerprints hash only the declarative 1996 description, and a
        tuned run must re-simulate rather than reuse cached
        fixed-algorithm results keyed by the same spec.
        """
        clone = replace(self)
        object.__setattr__(clone, "_decision_table", table)
        return clone

    def uses_dma_for(self, op: str) -> bool:
        """Whether payload moves of ``op`` may use the DMA engine."""
        return self.dma is not None and op in self.dma_collectives


class Machine:
    """A spec instantiated at ``num_nodes`` inside an environment."""

    def __init__(self, env: Environment, spec: MachineSpec, num_nodes: int,
                 streams: Optional[RandomStreams] = None,
                 tracer: Optional[Tracer] = None, contention: bool = True,
                 cpu_slowdown: Optional[Mapping[int, float]] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 faults: Optional[FaultPlan] = None,
                 fast_wire: bool = True):
        if not 2 <= num_nodes <= spec.max_nodes:
            raise ValueError(
                f"{spec.name} supports 2..{spec.max_nodes} nodes, "
                f"got {num_nodes}")
        self.env = env
        self.spec = spec
        self.num_nodes = num_nodes
        self.streams = streams if streams is not None else RandomStreams(0)
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry(enabled=False)
        # Interference model (the paper's accuracy factor: "the
        # interference from other users in the multicomputer
        # environment"): per-node software-cost multipliers.  The paper
        # ran in dedicated mode, i.e. all factors 1.0 — the default.
        self.cpu_slowdown: Dict[int, float] = dict(cpu_slowdown or {})
        for node, factor in self.cpu_slowdown.items():
            if not 0 <= node < num_nodes:
                raise ValueError(f"slowdown for unknown node {node}")
            if factor < 1.0:
                raise ValueError(
                    f"slowdown factor must be >= 1.0, got {factor}")
        #: Allow the transport's analytic short-circuit (see
        #: :meth:`repro.mpi.transport.Transport._wire_fast`).  The
        #: short-circuit additionally requires no fault injector and
        #: tracing/metrics off; ``False`` forces full simulation of
        #: every message regardless (the equivalence suite runs both
        #: ways and asserts identical times).
        self.fast_wire = fast_wire
        self.topology = spec.network.build_topology(num_nodes)
        # A fault-free plan builds no injector at all, which keeps the
        # fabric/NIC/jitter hot paths — and therefore every simulated
        # time — identical to a run with no plan.
        self.faults = faults
        self.injector: Optional[FaultInjector] = None
        if faults is not None and not faults.is_fault_free():
            self.injector = FaultInjector(env, faults, self.streams,
                                          self.topology,
                                          metrics=self.metrics,
                                          tracer=self.tracer)
        self.fabric = NetworkFabric(env, self.topology,
                                    spec.network.link_parameters,
                                    contention=contention,
                                    tracer=self.tracer,
                                    metrics=self.metrics,
                                    injector=self.injector)
        self.nodes = [self._build_node(i) for i in range(num_nodes)]
        # Lazily cached ``generator.normal`` bound methods, one per
        # node: jitter() runs several times per message, and the
        # f-string + stream-dict lookup dwarf the draw itself.
        self._jitter_normals: List[Optional[Any]] = [None] * num_nodes
        self.hardware_barrier: Optional[HardwareBarrier] = None
        if spec.barrier_wire is not None:
            self.hardware_barrier = HardwareBarrier(
                env, num_nodes,
                base_us=spec.barrier_wire.base_us,
                per_level_us=spec.barrier_wire.per_level_us)

    def _build_node(self, index: int) -> Node:
        spec = self.spec
        clock_stream = f"clock.{index}"
        offset = self.streams.uniform(clock_stream, 0.0, spec.clock_skew_us)
        drift = self.streams.stream(clock_stream).normal(
            0.0, spec.clock_drift_sigma)
        clock = NodeClock(self.env, offset_us=offset, drift=float(drift),
                          resolution_us=spec.timer_resolution_us)
        memory = MemorySystem(self.env, spec.memory.copy_us_per_byte,
                              warmup_us=spec.memory.warmup_us,
                              warmup_us_per_byte=spec.memory.warmup_us_per_byte,
                              metrics=self.metrics)
        nic = Nic(self.env, spec.nic.per_message_us, spec.nic.bandwidth_mbs,
                  half_duplex=spec.nic.half_duplex,
                  fast_bandwidth_mbs=spec.nic.fast_bandwidth_mbs,
                  metrics=self.metrics, node_index=index,
                  injector=self.injector)
        dma = DmaEngine(self.env, spec.dma, metrics=self.metrics) \
            if spec.dma is not None else None
        return Node(self.env, index, clock, memory, nic, dma)

    def jitter(self, node_index: int) -> float:
        """One software-cost multiplier for ``node_index``.

        Combines the random run-to-run jitter with the node's
        interference slowdown (1.0 in dedicated mode).  Draws the same
        value from the same ``sw.<node>`` stream as
        :meth:`RandomStreams.jitter`, via a cached bound method.
        """
        sigma = self.spec.software.jitter_sigma
        if sigma <= 0.0:
            factor = 1.0
        else:
            normal = self._jitter_normals[node_index]
            if normal is None:
                normal = self.streams.stream(f"sw.{node_index}").normal
                self._jitter_normals[node_index] = normal
            draw = normal(1.0, sigma)
            factor = draw if draw > 1e-3 else 1e-3
        if self.cpu_slowdown:
            factor = factor * self.cpu_slowdown.get(node_index, 1.0)
        if self.injector is not None:
            factor *= self.injector.cpu_factor(node_index, self.env.now)
        return factor

    def log2_nodes(self) -> float:
        """log2 of the machine size (0 for a single node)."""
        return math.log2(self.num_nodes)
