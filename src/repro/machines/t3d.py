"""Cray T3D machine model (Cray Eagan Center configuration).

Calibration sources: the paper's Section 4 (lowest startup latencies of
the three machines, 20 ns per hop, 300 MB/s links, hardwired barrier of
about 3 us fitting ``0.011 log p + 3``), Table 3's marginal costs
(scatter ~5.3 us per destination, gather ~4.3 us per source, broadcast
round ~23 us), and the T3D system documentation: prefetch queues and
remote processor stores for fast small messages, and the block transfer
engine (BLT) for streaming large payloads with little host involvement
[Adams 1993; Koeninger et al. 1994].

The T3D ran the CRI/EPCC MPI port, which the paper reports used
unbalanced (binomial) trees for barrier-equivalent software paths and
broadcast, and a binary tree for reduce [Cameron et al. 1995] — but its
barrier maps straight onto the hardwired barrier network.
"""

from __future__ import annotations

from ..node import DmaParameters, TransferMode
from .base import (
    BarrierWire,
    MachineSpec,
    MemoryCosts,
    NetworkSpec,
    NicCosts,
    SoftwareCosts,
)

__all__ = ["T3D"]

T3D = MachineSpec(
    name="t3d",
    full_name="Cray T3D",
    site="Cray Research Eagan Center",
    # The largest T3D ever shipped; the paper's allocation capped at 64
    # nodes (see bench.workload.T3D_MAX_NODES), but the engine perf
    # suite simulates p=256 configurations.
    max_nodes=2048,
    software=SoftwareCosts(
        call_setup_us=12.0,
        send_msg_us=5.3,
        recv_msg_us=4.3,
        deliver_us=11.0,
        unexpected_us=8.0,
        buffered_msg_us=8.0,
        barrier_call_setup_us=0.3,
        reduce_round_us=12.0,
        reduce_us_per_byte=0.028,  # 150 MHz Alpha EV4 combine loop
    ),
    memory=MemoryCosts(copy_us_per_byte=0.009),
    # The host-driven send/receive path moves data through E-register
    # shared-memory copies at ~100 MB/s; only the BLT reaches the raw
    # 300 MB/s channel rate.
    nic=NicCosts(per_message_us=0.5, bandwidth_mbs=100.0,
                 half_duplex=False, fast_bandwidth_mbs=300.0),
    network=NetworkSpec(kind="torus3d", link_bandwidth_mbs=300.0,
                        hop_latency_us=0.02),
    dma=DmaParameters(kind=TransferMode.BLT, setup_us=25.0,
                      us_per_byte=0.0047, min_message_bytes=4096),
    # The BLT pays off where one node streams many large blocks from a
    # contiguous buffer (scatter root).  Gather stays on the host path:
    # the root must place each arriving block, and the measured gather
    # per-byte cost matches host-copy speed, not BLT speed.
    dma_collectives=("scatter",),
    barrier_wire=BarrierWire(base_us=3.0, per_level_us=0.011),
    algorithms={
        "barrier": "hardware_barrier",
        "broadcast": "binomial_broadcast",
        "reduce": "binary_tree_reduce",
        "scan": "recursive_doubling_scan",
        "gather": "linear_gather",
        "scatter": "linear_scatter",
        "alltoall": "posted_alltoall",
        "allreduce": "reduce_broadcast_allreduce",
        "allgather": "gather_broadcast_allgather",
        "reduce_scatter": "reduce_scatter_composite",
    },
    compute_mflops=110.0,  # 150 MHz Alpha EV4 sustained
    clock_skew_us=200.0,
    timer_resolution_us=0.02,
)
