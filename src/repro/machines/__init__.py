"""Machine models: specifications for the SP2, T3D, and Paragon."""

from .base import (
    BarrierWire,
    Machine,
    MachineSpec,
    MemoryCosts,
    NetworkSpec,
    NicCosts,
    SoftwareCosts,
)
from .paragon import PARAGON
from .registry import (
    all_machine_specs,
    get_machine_spec,
    machine_names,
    register_machine_spec,
)
from .sp2 import SP2
from .t3d import T3D

__all__ = [
    "BarrierWire",
    "Machine",
    "MachineSpec",
    "MemoryCosts",
    "NetworkSpec",
    "NicCosts",
    "PARAGON",
    "SP2",
    "SoftwareCosts",
    "T3D",
    "all_machine_specs",
    "get_machine_spec",
    "machine_names",
    "register_machine_spec",
]
