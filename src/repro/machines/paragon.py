"""Intel Paragon machine model (SDSC configuration).

Calibration sources: the paper's Section 4 (longest startup latencies,
blamed on "the longer NX messaging overhead and the routing delays in
the 2-D mesh network", 40 ns per hop, 175 MB/s links), Table 3's
marginal costs (scatter ~48 us per destination — the NX per-message
kernel cost — and gather ~18 us per source), and Dunigan's Paragon
measurements: each node carries a dedicated i860 message coprocessor
that streams payloads so the host pays no copy for one-way traffic,
while bidirectional traffic (total exchange) goes through NX system
buffers on the host.

The paper singles out two Paragon quirks we reproduce through algorithm
selection: the "least efficient schemes" used for total exchange and
gather through the NX messaging subsystem (we give it a naive
sequential total exchange), and a *scan* that is faster than everyone
else's, which the paper attributes to "different collective algorithms
used" — modelled as an offloaded combining tree on the coprocessor.
"""

from __future__ import annotations

from ..node import DmaParameters, TransferMode
from .base import (
    MachineSpec,
    MemoryCosts,
    NetworkSpec,
    NicCosts,
    SoftwareCosts,
)

__all__ = ["PARAGON"]

PARAGON = MachineSpec(
    name="paragon",
    full_name="Intel Paragon",
    site="San Diego Supercomputer Center",
    # The SDSC installation had 416 nodes (ORNL's XP/S-150 had 3072);
    # the engine perf suite simulates p=256 configurations.
    max_nodes=416,
    software=SoftwareCosts(
        call_setup_us=15.0,
        send_msg_us=40.0,
        recv_msg_us=16.0,
        deliver_us=4.0,
        unexpected_us=20.0,
        buffered_msg_us=20.0,
        reduce_round_us=20.0,
        reduce_us_per_byte=0.12,  # i860 combine loop is slow
        offload_round_us=12.0,
        offload_us_per_byte=0.075,
        offload_setup_us=40.0,
    ),
    memory=MemoryCosts(copy_us_per_byte=0.012),
    nic=NicCosts(per_message_us=1.0, bandwidth_mbs=175.0,
                 half_duplex=False),
    network=NetworkSpec(kind="mesh2d", link_bandwidth_mbs=175.0,
                        hop_latency_us=0.04),
    dma=DmaParameters(kind=TransferMode.COPROC, setup_us=2.0,
                      us_per_byte=0.012, min_message_bytes=0),
    dma_collectives=("broadcast", "scatter", "gather", "reduce", "scan"),
    algorithms={
        "barrier": "tree_barrier",
        "broadcast": "binomial_broadcast",
        "reduce": "binomial_reduce",
        "scan": "offloaded_scan",
        "gather": "linear_gather",
        "scatter": "linear_scatter",
        "alltoall": "sequential_alltoall",
        "allreduce": "reduce_broadcast_allreduce",
        "allgather": "gather_broadcast_allgather",
        "reduce_scatter": "reduce_scatter_composite",
    },
    compute_mflops=60.0,  # i860 XP sustained
    clock_skew_us=500.0,
    timer_resolution_us=0.1,
)
