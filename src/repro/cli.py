"""Command-line interface: regenerate any of the paper's artifacts.

Examples::

    repro-bench figure 1                # startup latencies
    repro-bench figure 3 --fast         # coarse grid
    repro-bench table3
    repro-bench headline
    repro-bench measure sp2 alltoall --bytes 65536 --nodes 64
    repro-bench trace sp2 broadcast --bytes 4096 --nodes 16 \\
        --out trace.json
    repro-bench profile t3d alltoall --bytes 4096 --nodes 32
    repro-bench perf --out BENCH_engine.json
    repro-bench perf --check BENCH_engine.json --flame engine.folded
    repro-bench sweep --grid fig3 --workers 8 --out BENCH_sweep.json
    repro-bench sweep --grid smoke --faults lossy --cell-timeout 120
    repro-bench chaos t3d broadcast --nodes 64
    repro-bench critpath t3d broadcast --nodes 64 --bytes 1048576 \\
        --faults midflight-outage
    repro-bench audit tests/golden/BENCH_sweep_baseline.json \\
        --out BENCH_drift.json
    repro-bench audit BENCH_sweep.json --trend \\
        --history BENCH_drift.json
    repro-bench diff tests/golden/BENCH_sweep_baseline.json \\
        BENCH_sweep.json
    repro-bench dash --artifacts . --capture t3d:broadcast \\
        --faults single-link-outage --out site
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Tuple

from .bench import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    format_headline,
    format_table3,
    headline_checks,
    table3,
)
from .core import QUICK_CONFIG, MeasurementConfig, measure_collective
from .core.report import format_us

__all__ = ["main"]

_FIGURES = {1: figure1, 2: figure2, 3: figure3, 4: figure4, 5: figure5}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate figures/tables from 'Evaluating MPI "
                    "Collective Communication on the SP2, T3D, and "
                    "Paragon Multicomputers' (HPCA 1997) on the "
                    "simulator.")
    parser.add_argument("--fast", action="store_true",
                        help="coarse grids and single runs "
                             "(sets REPRO_BENCH_FAST=1)")
    sub = parser.add_subparsers(dest="command", required=True)

    figure = sub.add_parser("figure", help="regenerate Figure 1-5")
    figure.add_argument("number", type=int, choices=sorted(_FIGURES))
    figure.add_argument("--csv", metavar="PATH",
                        help="also write the series to a CSV file")
    figure.add_argument("--json", metavar="PATH",
                        help="also write the series to a JSON file")
    figure.add_argument("--plot", action="store_true",
                        help="render the series as an ASCII log-log "
                             "chart")

    sub.add_parser("table3", help="regenerate Table 3 (curve fits)")
    sub.add_parser("headline", help="check the headline claims")

    measure = sub.add_parser("measure",
                             help="measure one (machine, op, m, p) point")
    measure.add_argument("machine", choices=["sp2", "t3d", "paragon"])
    measure.add_argument("op")
    measure.add_argument("--bytes", type=int, default=1024)
    measure.add_argument("--nodes", type=int, default=32)
    measure.add_argument("--iterations", type=int,
                         default=QUICK_CONFIG.iterations)
    measure.add_argument("--runs", type=int, default=QUICK_CONFIG.runs)
    measure.add_argument("--seed", type=int, default=QUICK_CONFIG.seed)

    sensitivity = sub.add_parser(
        "sensitivity",
        help="which machine parameter dominates one (op, m, p) point")
    sensitivity.add_argument("machine",
                             choices=["sp2", "t3d", "paragon"])
    sensitivity.add_argument("op")
    sensitivity.add_argument("--bytes", type=int, default=1024)
    sensitivity.add_argument("--nodes", type=int, default=32)
    sensitivity.add_argument("--top", type=int, default=8)

    apps = sub.add_parser(
        "app", help="run an application kernel with phase breakdown")
    apps.add_argument("name", choices=["stap", "fft2d", "samplesort"])
    apps.add_argument("machine", choices=["sp2", "t3d", "paragon"])
    apps.add_argument("--nodes", type=int, default=16)

    trace = sub.add_parser(
        "trace",
        help="capture a span trace of one collective "
             "(Chrome-trace/Perfetto JSON, CSV)")
    trace.add_argument("machine", choices=["sp2", "t3d", "paragon"])
    trace.add_argument("op")
    trace.add_argument("--bytes", type=int, default=4096)
    trace.add_argument("--nodes", type=int, default=16)
    trace.add_argument("--iterations", type=int, default=1)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--max-spans", type=_positive_int, default=None,
                       help="bounded-memory ring: keep only the newest "
                            "N spans")
    trace.add_argument("--out", metavar="PATH",
                       help="write Chrome-trace JSON (open in "
                            "ui.perfetto.dev or chrome://tracing)")
    trace.add_argument("--csv", metavar="PATH",
                       help="also write the spans as CSV")

    profile = sub.add_parser(
        "profile",
        help="utilization + engine hot-path report for one collective")
    profile.add_argument("machine", choices=["sp2", "t3d", "paragon"])
    profile.add_argument("op")
    profile.add_argument("--bytes", type=int, default=4096)
    profile.add_argument("--nodes", type=int, default=16)
    profile.add_argument("--iterations", type=int, default=1)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--top", type=int, default=8,
                         help="links/process types to list")
    profile.add_argument("--csv", metavar="PATH",
                         help="also write the site rankings as CSV")
    profile.add_argument("--folded", metavar="PATH",
                         help="also write collapsed stacks (feed to "
                              "flamegraph.pl or speedscope)")
    profile.add_argument("--work", action="store_true",
                         help="also print the deterministic work "
                              "counters")

    perf = sub.add_parser(
        "perf",
        help="run the fixed engine perf suite; emit or gate the "
             "BENCH_engine.json trajectory artifact")
    perf.add_argument("--suite", default="default",
                      choices=["smoke", "default"],
                      help="workload set: smoke = micro kernels only, "
                           "default = micro kernels + p=64/256 "
                           "collectives on all three machines")
    perf.add_argument("--out", metavar="PATH",
                      help="write the artifact "
                           "(e.g. BENCH_engine.json)")
    perf.add_argument("--check", metavar="BASELINE",
                      help="gate against a baseline artifact: exits "
                           "non-zero on any work-counter change or on "
                           "throughput below --min-ratio x baseline")
    perf.add_argument("--min-ratio", type=_positive_float,
                      default=None,
                      help="events/sec floor as a fraction of the "
                           "baseline (default 0.33; wall-clock only — "
                           "work counters always compare exactly)")
    perf.add_argument("--scheduler", default=None,
                      choices=["heap", "calendar"],
                      help="pending-event scheduler for every workload "
                           "(default: REPRO_SIM_SCHEDULER or heap); the "
                           "work section must be identical either way")
    perf.add_argument("--flame", metavar="PATH",
                      help="profile the suite and write collapsed "
                           "stacks (flamegraph.pl / speedscope input)")
    perf.add_argument("--top", type=_positive_int, default=10,
                      help="hot sites to list with --flame")

    sweep = sub.add_parser(
        "sweep",
        help="run a (machine, op, m, p) grid through the parallel "
             "sweep runner, reusing cached cells")
    sweep.add_argument("--grid", default="fig3",
                       help="grid preset (fig1, fig2, fig3, smoke, "
                            "full)")
    sweep.add_argument("--mode", default="sim",
                       choices=["sim", "analytic", "model"],
                       help="sim = discrete-event simulator, analytic "
                            "= closed-form cost model, model = the "
                            "paper's Table 3 expressions")
    sweep.add_argument("--workers", type=_positive_int, default=1,
                       help="worker processes for simulated cells")
    sweep.add_argument("--out", metavar="PATH",
                       default="BENCH_sweep.json",
                       help="artifact path (default BENCH_sweep.json)")
    sweep.add_argument("--csv", metavar="PATH",
                       help="also write the cells as CSV")
    sweep.add_argument("--cache-dir", metavar="PATH",
                       help="cache root (default $REPRO_SWEEP_CACHE or "
                            "~/.cache/repro/sweep)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="neither read nor write the result cache")
    sweep.add_argument("--clear-cache", action="store_true",
                       help="drop every cached cell before running")
    sweep.add_argument("--iterations", type=_positive_int,
                       default=QUICK_CONFIG.iterations)
    sweep.add_argument("--runs", type=_positive_int,
                       default=QUICK_CONFIG.runs)
    sweep.add_argument("--seed", type=int, default=QUICK_CONFIG.seed)
    sweep.add_argument("--machines", metavar="NAMES",
                       help="restrict the grid to these machines "
                            "(comma-separated, e.g. sp2,t3d)")
    sweep.add_argument("--ops", metavar="NAMES",
                       help="restrict the grid to these collectives "
                            "(comma-separated)")
    sweep.add_argument("--faults", metavar="PRESET",
                       help="inject a fault-plan preset into every "
                            "cell (single-link-outage, "
                            "midflight-outage, flaky-link, lossy, "
                            "slow-node, chaos); changes every cache "
                            "fingerprint")
    sweep.add_argument("--cell-timeout", type=_positive_float,
                       metavar="SECONDS",
                       help="per-cell wall-clock budget; shards that "
                            "blow it are requeued cell by cell and a "
                            "cell that fails alone is quarantined")
    sweep.add_argument("--breakdown", action="store_true",
                       help="attach a critical-path component "
                            "breakdown (software/wire/contention/"
                            "fault-recovery) to every cell; sim mode "
                            "only, changes every cache fingerprint")
    sweep.add_argument("--decision-table", metavar="PATH",
                       help="BENCH_tuning.json decision table; cells "
                            "it covers run the tuned algorithm instead "
                            "of the machine's fixed choice (sim mode "
                            "only)")

    tune = sub.add_parser(
        "tune",
        help="race candidate collective algorithms per (machine, op, "
             "m, p), fit crossover points, and emit the "
             "BENCH_tuning.json decision table")
    tune.add_argument("--machines", metavar="NAMES",
                      default="sp2,t3d,paragon",
                      help="machines to tune (comma-separated, "
                           "default sp2,t3d,paragon)")
    tune.add_argument("--ops", metavar="NAMES",
                      help="restrict tuning to these collectives "
                           "(comma-separated)")
    tune.add_argument("--grid", default="paper",
                      help="tuning grid preset (paper, smoke)")
    tune.add_argument("--workers", type=_positive_int, default=1,
                      help="worker processes for simulated cells")
    tune.add_argument("--out", metavar="PATH",
                      default="BENCH_tuning.json",
                      help="artifact path (default BENCH_tuning.json)")
    tune.add_argument("--cache-dir", metavar="PATH",
                      help="cache root (default $REPRO_SWEEP_CACHE or "
                           "~/.cache/repro/sweep)")
    tune.add_argument("--no-cache", action="store_true",
                      help="neither read nor write the result cache")
    tune.add_argument("--iterations", type=_positive_int,
                      default=QUICK_CONFIG.iterations)
    tune.add_argument("--runs", type=_positive_int,
                      default=QUICK_CONFIG.runs)
    tune.add_argument("--seed", type=int, default=QUICK_CONFIG.seed)
    tune.add_argument("--top", type=_positive_int, default=10,
                      help="flipped cells to list (default 10)")

    chaos = sub.add_parser(
        "chaos",
        help="run one collective clean and under a fault-plan preset; "
             "report the latency penalty and injector counters")
    chaos.add_argument("machine", choices=["sp2", "t3d", "paragon"])
    chaos.add_argument("op")
    chaos.add_argument("--faults", default="single-link-outage",
                       metavar="PRESET",
                       help="fault-plan preset (default "
                            "single-link-outage)")
    chaos.add_argument("--bytes", type=int, default=4096)
    chaos.add_argument("--nodes", type=int, default=16)
    chaos.add_argument("--iterations", type=_positive_int, default=1)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--curves", action="store_true",
                       help="also print clean vs faulty T0(p) curves "
                            "over the bench node counts")
    chaos.add_argument("--out", metavar="PATH",
                       help="also dump the injector counters and the "
                            "faulty run's full metrics snapshot as "
                            "JSON")

    critpath = sub.add_parser(
        "critpath",
        help="trace one collective and print its causal critical "
             "path with per-component time attribution")
    critpath.add_argument("machine", choices=["sp2", "t3d", "paragon"])
    critpath.add_argument("op")
    critpath.add_argument("--bytes", type=int, default=4096)
    critpath.add_argument("--nodes", type=int, default=16)
    critpath.add_argument("--iterations", type=_positive_int, default=1)
    critpath.add_argument("--seed", type=int, default=0)
    critpath.add_argument("--faults", metavar="PRESET",
                          help="run under a fault-plan preset so "
                               "recovery work (retransmits, backoff, "
                               "detours) appears in the attribution")
    critpath.add_argument("--steps", type=_positive_int, default=None,
                          metavar="N",
                          help="print only the first N chain steps")
    critpath.add_argument("--csv", metavar="PATH",
                          help="also write the chain (plus totals) "
                               "as CSV")

    audit = sub.add_parser(
        "audit",
        help="compare a sweep artifact's cells against the paper's "
             "Table 3 closed forms; exits non-zero on tolerance "
             "breach")
    audit.add_argument("artifact", nargs="?",
                       default="BENCH_sweep.json",
                       help="sweep artifact to audit (default "
                            "BENCH_sweep.json)")
    audit.add_argument("--rtol", type=_positive_float, default=0.25,
                       help="max |relative error| per cell "
                            "(default 0.25)")
    audit.add_argument("--out", metavar="PATH",
                       help="also write the byte-stable drift trend "
                            "artifact (BENCH_drift.json)")
    audit.add_argument("--top", type=_positive_int, default=5,
                       help="worst cells / breaches to list")
    audit.add_argument("--trend", action="store_true",
                       help="also render drift history as terminal "
                            "sparklines (this audit is the newest "
                            "generation)")
    audit.add_argument("--history", action="append", metavar="PATH",
                       help="prior drift artifact for --trend, oldest "
                            "first (repeatable; default: the --out "
                            "path, or BENCH_drift.json, if it already "
                            "exists)")

    dash = sub.add_parser(
        "dash",
        help="index every artifact into the canonical BENCH_ledger."
             "json bundle and render the self-contained HTML "
             "dashboard (replay, drift/perf trends, tuner heatmaps)")
    dash.add_argument("--artifacts", action="append", metavar="PATH",
                      help="artifact file or directory to index "
                           "(repeatable; default: the current "
                           "directory, scanned recursively)")
    dash.add_argument("--capture", metavar="MACHINE:OP",
                      help="also run one traced collective and embed "
                           "its hop-by-hop replay (e.g. t3d:broadcast)")
    dash.add_argument("--bytes", type=int, default=4096,
                      help="message size for --capture")
    dash.add_argument("--nodes", type=int, default=16,
                      help="node count for --capture")
    dash.add_argument("--seed", type=int, default=0,
                      help="seed for --capture")
    dash.add_argument("--faults", metavar="PRESET",
                      help="run the --capture collective under a "
                           "fault-plan preset so the replay shows "
                           "recovery work")
    dash.add_argument("--out", metavar="DIR", default="site",
                      help="output directory (default site/); never "
                           "scanned for inputs")
    dash.add_argument("--open", action="store_true",
                      help="open the generated page in a browser")

    diff = sub.add_parser(
        "diff",
        help="compare a sweep artifact against a baseline; exits "
             "non-zero when they differ")
    diff.add_argument("baseline",
                      help="baseline artifact (e.g. the checked-in "
                           "tests/golden/BENCH_sweep_baseline.json)")
    diff.add_argument("current", nargs="?", default="BENCH_sweep.json",
                      help="artifact to check (default "
                           "BENCH_sweep.json)")
    diff.add_argument("--rtol", type=float, default=0.0,
                      help="relative tolerance (default 0: bitwise)")
    diff.add_argument("--atol", type=float, default=0.0,
                      help="absolute tolerance in us (default 0)")
    return parser


def _csv_names(text: Optional[str]) -> Optional[Tuple[str, ...]]:
    """Parse a ``--machines``/``--ops`` comma list (None = no filter)."""
    if text is None:
        return None
    names = tuple(name.strip() for name in text.split(",")
                  if name.strip())
    return names


def _filter_grid(grid, machines: Optional[Tuple[str, ...]],
                 ops: Optional[Tuple[str, ...]]):
    """Restrict a grid preset to the requested machines/collectives.

    Raises ``ValueError`` when a filter names nothing in the grid or
    empties it — an empty sweep is always a spelling mistake, not a
    request.
    """
    import dataclasses as _dataclasses
    if machines is not None:
        kept = tuple(m for m in grid.machines if m in machines)
        unknown = sorted(set(machines) - set(grid.machines))
        if unknown:
            raise ValueError(
                f"--machines {','.join(unknown)} not in grid "
                f"{grid.name!r} (has {', '.join(grid.machines)})")
        grid = _dataclasses.replace(grid, machines=kept)
    if ops is not None:
        known = grid.ops + (("barrier",) if grid.include_barrier
                            else ())
        unknown = sorted(set(ops) - set(known))
        if unknown:
            raise ValueError(
                f"--ops {','.join(unknown)} not in grid "
                f"{grid.name!r} (has {', '.join(known)})")
        grid = _dataclasses.replace(
            grid, ops=tuple(op for op in grid.ops if op in ops),
            include_barrier=grid.include_barrier and "barrier" in ops)
    if not grid.cells():
        raise ValueError(f"grid {grid.name!r} is empty after "
                         f"filtering; nothing to sweep")
    return grid


def _apply_decision_table(cells, path):
    """Materialize a decision table into per-cell algorithm overrides.

    Overrides are placed on the cells themselves — not smuggled in via
    modified machine specs — so cache fingerprints see exactly which
    algorithm ran and tuned cells never collide with fixed-choice
    results.  Cells the table resolves to the machine's own default
    stay untouched (and keep their existing cache entries).
    """
    import dataclasses as _dataclasses

    from .machines import get_machine_spec
    from .tuner import load_decision_table

    table = load_decision_table(path)
    specs = {}
    out = []
    for cell in cells:
        spec = specs.get(cell.machine)
        if spec is None:
            spec = specs[cell.machine] = get_machine_spec(cell.machine)
        choice = table.lookup(cell.machine, cell.op, cell.nbytes,
                              cell.p)
        if choice and choice != spec.algorithms.get(cell.op):
            cell = _dataclasses.replace(cell, algorithm=choice)
        out.append(cell)
    return tuple(out)


def _run_tune_command(args) -> int:
    from .core import MeasurementConfig
    from .tuner import run_tune, tune_grid, write_tuning
    try:
        grid = tune_grid(args.grid)
        ops = _csv_names(args.ops)
        if ops is not None:
            import dataclasses as _dataclasses
            unknown = sorted(set(ops) - set(grid.ops))
            if unknown:
                raise ValueError(
                    f"--ops {','.join(unknown)} not in tuning grid "
                    f"{grid.name!r} (has {', '.join(grid.ops)})")
            grid = _dataclasses.replace(
                grid, ops=tuple(op for op in grid.ops if op in ops))
        machines = _csv_names(args.machines) or ()
        if not machines:
            raise ValueError("--machines names no machines")
    except (KeyError, ValueError) as error:
        print(error.args[0], file=sys.stderr)
        return 2
    measurement = MeasurementConfig(
        iterations=args.iterations,
        warmup_iterations=QUICK_CONFIG.warmup_iterations,
        runs=args.runs, seed=args.seed)
    try:
        result = run_tune(machines, grid, config=measurement,
                          workers=args.workers,
                          cache_dir=args.cache_dir,
                          use_cache=not args.no_cache)
    except (KeyError, ValueError) as error:
        print(error.args[0], file=sys.stderr)
        return 2
    print(f"tune {grid.name} (machines={','.join(sorted(set(machines)))}, "
          f"workers={args.workers}): {result.summary()}")
    for cell, reason in sorted(result.quarantined.items()):
        print(f"quarantined {cell.key()}: {reason}", file=sys.stderr)
    for flip in result.flips[:args.top]:
        print(f"  {flip['machine']}/{flip['op']}/{flip['nbytes']}/"
              f"{flip['p']}: {flip['default_algorithm']} -> "
              f"{flip['algorithm']} ({flip['speedup']:.2f}x)")
    if len(result.flips) > args.top:
        print(f"  ... {len(result.flips) - args.top} more flips")
    print(f"wrote {write_tuning(result.artifact(), args.out)}")
    return 1 if result.quarantined else 0


def _run_sweep_command(args) -> int:
    from .bench import write_sweep_csv
    from .core import MeasurementConfig
    from .faults import fault_preset
    from .runner import (
        ResultCache,
        SweepConfig,
        build_artifact,
        preset_grid,
        run_sweep,
        write_artifact,
    )
    try:
        grid = preset_grid(args.grid)
        grid = _filter_grid(grid, _csv_names(args.machines),
                            _csv_names(args.ops))
        faults = None
        if args.faults and args.faults != "none":
            faults = fault_preset(args.faults)
    except (KeyError, ValueError) as error:
        print(error.args[0], file=sys.stderr)
        return 2
    measurement = MeasurementConfig(
        iterations=args.iterations,
        warmup_iterations=QUICK_CONFIG.warmup_iterations,
        runs=args.runs, seed=args.seed, faults=faults)
    if args.breakdown and args.mode != "sim":
        print("--breakdown requires --mode sim (closed forms have no "
              "trace to analyse)", file=sys.stderr)
        return 2
    cells = grid.cells()
    if args.decision_table:
        if args.mode != "sim":
            print("--decision-table requires --mode sim (closed forms "
                  "are keyed to the machines' fixed algorithms)",
                  file=sys.stderr)
            return 2
        try:
            cells = _apply_decision_table(cells, args.decision_table)
        except (OSError, ValueError) as error:
            print(error.args[0], file=sys.stderr)
            return 2
    config = SweepConfig(mode=args.mode, workers=args.workers,
                         measurement=measurement,
                         cache_dir=args.cache_dir,
                         use_cache=not args.no_cache,
                         cell_timeout_s=args.cell_timeout,
                         breakdown=args.breakdown)
    cache = ResultCache(args.cache_dir) if args.cache_dir \
        else ResultCache()
    cache.enabled = config.use_cache
    if args.clear_cache:
        print(f"cleared {cache.clear()} cached cells")
    try:
        result = run_sweep(cells, config, cache)
    except ValueError as error:
        # An invalid per-cell algorithm override (e.g. a stale or
        # hand-edited decision table) is a usage error, not a crash.
        print(error.args[0], file=sys.stderr)
        return 2
    print(f"sweep {grid.name} (mode={config.mode}, "
          f"workers={config.workers}): {result.summary()}")
    for cell, reason in sorted(result.quarantined.items()):
        print(f"quarantined {cell.key()}: {reason}", file=sys.stderr)
    artifact = build_artifact(result, grid.name, config)
    print(f"wrote {write_artifact(artifact, args.out)}")
    if args.csv:
        print(f"wrote {write_sweep_csv(artifact, args.csv)}")
    return 1 if result.quarantined else 0


def _run_chaos_command(args) -> int:
    import json

    from .bench import degradation_curves, run_chaos
    from .faults import fault_preset
    try:
        plan = fault_preset(args.faults)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    run = run_chaos(args.machine, args.op, plan,
                    nbytes=args.bytes, num_nodes=args.nodes,
                    iterations=args.iterations, seed=args.seed,
                    metrics=args.out is not None)
    print(run.format())
    if args.out:
        document = {
            "machine": run.machine,
            "op": run.op,
            "plan": plan.name,
            "nbytes": run.nbytes,
            "nodes": run.num_nodes,
            "iterations": run.iterations,
            "seed": run.seed,
            "clean_us": run.clean_us,
            "faulty_us": run.faulty_us,
            "penalty_us": run.penalty_us,
            "counters": run.counters,
            "metrics": run.metrics_snapshot,
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    if args.curves:
        print()
        print(degradation_curves(args.machine, args.op, plan).format())
    return 0


def _run_critpath_command(args) -> int:
    from .obs.capture import capture_collective
    from .obs.critpath import write_critpath_csv
    faults = None
    if args.faults and args.faults != "none":
        from .faults import fault_preset
        try:
            faults = fault_preset(args.faults)
        except KeyError as error:
            print(error.args[0], file=sys.stderr)
            return 2
    capture = capture_collective(
        args.machine, args.op, nbytes=args.bytes,
        num_nodes=args.nodes, iterations=args.iterations,
        seed=args.seed, metrics=False, faults=faults)
    path = capture.critical_path()
    print(path.format(top=args.steps))
    if args.csv:
        print(f"wrote {write_critpath_csv(path, args.csv)}")
    return 0


def _run_perf_command(args) -> int:
    from .bench.perfsuite import (
        DEFAULT_MIN_RATIO,
        build_perf_artifact,
        check_perf_artifact,
        load_perf_artifact,
        run_perf_suite,
        write_perf_artifact,
    )
    profiler = None
    if args.flame:
        from .obs import EngineProfiler
        profiler = EngineProfiler()
    # --scheduler flips the process default; workloads that pin their
    # own scheduler (micro/engine-timeouts-calendar) are unaffected.
    previous = os.environ.get("REPRO_SIM_SCHEDULER")
    if args.scheduler:
        os.environ["REPRO_SIM_SCHEDULER"] = args.scheduler
    try:
        runs = run_perf_suite(args.suite, profiler=profiler)
    finally:
        if args.scheduler:
            if previous is None:
                os.environ.pop("REPRO_SIM_SCHEDULER", None)
            else:
                os.environ["REPRO_SIM_SCHEDULER"] = previous
    artifact = build_perf_artifact(runs, suite=args.suite)
    total = artifact["throughput"]["total"]
    print(f"engine perf suite '{args.suite}': {len(runs)} workloads, "
          f"{total['events_fired']} events in {total['wall_s']:.2f} s "
          f"({total['events_per_sec']:,.0f} events/s)")
    for run in runs:
        print(f"  {run.workload:<36s} "
              f"events={run.work['events_fired']:<9d} "
              f"wall={run.wall_s * 1e3:9.1f} ms")
    if profiler is not None:
        from .obs import write_folded_stacks
        print()
        print(profiler.format_report(top=args.top))
        print(f"wrote {write_folded_stacks(profiler, args.flame)}")
    if args.out:
        print(f"wrote {write_perf_artifact(artifact, args.out)}")
    if args.check:
        try:
            baseline = load_perf_artifact(args.check)
        except (OSError, ValueError) as error:
            print(error, file=sys.stderr)
            return 2
        min_ratio = args.min_ratio if args.min_ratio is not None \
            else DEFAULT_MIN_RATIO
        result = check_perf_artifact(artifact, baseline,
                                     min_ratio=min_ratio)
        print()
        print(result.format())
        return 0 if result.passed() else 1
    return 0


def _run_audit_command(args) -> int:
    from pathlib import Path

    from .obs.drift import (
        DriftTolerance,
        audit_artifact,
        build_drift_artifact,
        format_drift_trend,
        load_drift_artifact,
        write_drift_artifact,
    )
    from .runner import load_artifact
    try:
        artifact = load_artifact(args.artifact)
    except (OSError, ValueError) as error:
        print(error, file=sys.stderr)
        return 2
    report = audit_artifact(artifact,
                            DriftTolerance(max_rel_error=args.rtol))
    print(report.format(top=args.top))
    payload = build_drift_artifact(report, worst=args.top)
    if args.trend:
        # Prior generations load before --out overwrites its file.
        history = args.history
        if history is None:
            default = Path(args.out or "BENCH_drift.json")
            history = [str(default)] if default.is_file() else []
        try:
            generations = [load_drift_artifact(path)
                           for path in history]
        except (OSError, ValueError) as error:
            print(error, file=sys.stderr)
            return 2
        generations.append(payload)
        print()
        print(format_drift_trend(generations))
    if args.out:
        print(f"wrote {write_drift_artifact(payload, args.out)}")
    return 0 if report.passed() else 1


def _run_dash_command(args) -> int:
    from pathlib import Path

    from .dash import write_dashboard
    from .obs.ledger import (
        build_ledger,
        discover_artifacts,
        write_ledger,
    )
    out_dir = Path(args.out)
    try:
        entries = discover_artifacts(args.artifacts or ["."],
                                     exclude=[out_dir])
    except ValueError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    out_dir.mkdir(parents=True, exist_ok=True)
    if args.capture:
        machine, _, op = args.capture.partition(":")
        if machine not in ("sp2", "t3d", "paragon") or not op:
            print(f"--capture wants MACHINE:OP with machine one of "
                  f"sp2/t3d/paragon, got {args.capture!r}",
                  file=sys.stderr)
            return 2
        faults = None
        if args.faults and args.faults != "none":
            from .faults import fault_preset
            try:
                faults = fault_preset(args.faults)
            except KeyError as error:
                print(error.args[0], file=sys.stderr)
                return 2
        from .obs.capture import capture_collective, \
            write_replay_frames
        capture = capture_collective(
            machine, op, nbytes=args.bytes, num_nodes=args.nodes,
            seed=args.seed, faults=faults)
        print(capture.summary())
        replay = capture.to_replay_frames()
        name = f"replay_{machine}_{op}.json"
        print(f"wrote {write_replay_frames(replay, out_dir / name)}")
        entries.append((name, "replay", replay))
    ledger = build_ledger(entries)
    census = ", ".join(f"{family} x{count}" for family, count
                       in sorted(ledger["families"].items()))
    print(f"ledger: {len(ledger['entries'])} artifact(s) "
          f"({census or 'none'}), bundle digest "
          f"{ledger['bundle_digest'][:16]}")
    print(f"wrote {write_ledger(ledger, out_dir / 'BENCH_ledger.json')}")
    page = write_dashboard(ledger, out_dir)
    print(f"wrote {page}")
    if args.open:
        import webbrowser
        webbrowser.open(page.resolve().as_uri())
    return 0


def _run_diff_command(args) -> int:
    from .runner import diff_artifacts, load_artifact
    diff = diff_artifacts(load_artifact(args.baseline),
                          load_artifact(args.current),
                          rtol=args.rtol, atol=args.atol)
    print(diff.format())
    return 0 if diff.clean() else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.fast:
        os.environ["REPRO_BENCH_FAST"] = "1"
    try:
        return _dispatch(args)
    except KeyboardInterrupt:
        # The sweep pool's context manager has already terminated its
        # workers by the time the interrupt propagates here.
        print("interrupted", file=sys.stderr)
        return 130


def _dispatch(args) -> int:
    if args.command == "figure":
        data = _FIGURES[args.number]()
        print(data.format())
        if args.plot:
            from .bench import plot_figure
            print()
            print(plot_figure(data))
        if args.csv:
            from .bench import write_figure_csv
            print(f"wrote {write_figure_csv(data, args.csv)}")
        if args.json:
            from .bench import write_figure_json
            print(f"wrote {write_figure_json(data, args.json)}")
    elif args.command == "table3":
        print(format_table3(table3()))
    elif args.command == "headline":
        print(format_headline(headline_checks()))
    elif args.command == "measure":
        config = MeasurementConfig(iterations=args.iterations,
                                   warmup_iterations=1, runs=args.runs,
                                   seed=args.seed)
        sample = measure_collective(args.machine, args.op, args.bytes,
                                    args.nodes, config)
        print(f"T({args.bytes} B, {args.nodes} nodes) on "
              f"{args.machine} {args.op}: {format_us(sample.time_us)}")
        print(f"  per-process min/mean/max: "
              f"{format_us(sample.process_min_us)} / "
              f"{format_us(sample.process_mean_us)} / "
              f"{format_us(sample.process_max_us)}")
        print(f"  runs: {[round(t, 1) for t in sample.run_times_us]}")
    elif args.command == "sensitivity":
        from .core import format_sensitivities, scan_sensitivities
        from .machines import get_machine_spec
        results = scan_sensitivities(get_machine_spec(args.machine),
                                     args.op, args.bytes, args.nodes)
        print(format_sensitivities(results, top=args.top))
    elif args.command == "app":
        from .apps import simulate_fft2d, simulate_samplesort, \
            simulate_stap
        runner = {"stap": simulate_stap, "fft2d": simulate_fft2d,
                  "samplesort": simulate_samplesort}[args.name]
        print(runner(args.machine, args.nodes).format())
    elif args.command == "trace":
        from .obs import write_chrome_trace, write_spans_csv
        from .obs.capture import capture_collective
        capture = capture_collective(
            args.machine, args.op, nbytes=args.bytes,
            num_nodes=args.nodes, iterations=args.iterations,
            seed=args.seed, max_spans=args.max_spans)
        print(capture.summary())
        if args.out:
            print(f"wrote {write_chrome_trace(capture.tracer, args.out)}"
                  f" (open in ui.perfetto.dev)")
        if args.csv:
            print(f"wrote {write_spans_csv(capture.tracer, args.csv)}")
    elif args.command == "profile":
        from .obs import format_utilization_report
        from .obs.capture import capture_collective
        capture = capture_collective(
            args.machine, args.op, nbytes=args.bytes,
            num_nodes=args.nodes, iterations=args.iterations,
            seed=args.seed, trace=False, profile=True,
            work=args.work)
        print(capture.summary())
        print()
        print(format_utilization_report(capture.world.machine,
                                        capture.elapsed_us,
                                        top=args.top))
        print()
        print(capture.profiler.format_report(top=args.top))
        if args.work:
            print()
            print(capture.work.format_report())
        print()
        print(capture.metrics.format_report())
        if args.csv:
            from .obs import write_profile_csv
            print(f"wrote {write_profile_csv(capture.profiler, args.csv)}")
        if args.folded:
            from .obs import write_folded_stacks
            print(f"wrote {write_folded_stacks(capture.profiler, args.folded)}")
    elif args.command == "perf":
        return _run_perf_command(args)
    elif args.command == "sweep":
        return _run_sweep_command(args)
    elif args.command == "tune":
        return _run_tune_command(args)
    elif args.command == "chaos":
        return _run_chaos_command(args)
    elif args.command == "critpath":
        return _run_critpath_command(args)
    elif args.command == "audit":
        return _run_audit_command(args)
    elif args.command == "dash":
        return _run_dash_command(args)
    elif args.command == "diff":
        return _run_diff_command(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
