"""Structured event tracing for the simulator.

Two complementary record kinds:

* **Flat records** (:class:`TraceRecord`) — point-in-time occurrences
  (time, category, node, detail), emitted via :meth:`Tracer.emit`.
* **Spans** (:class:`Span`) — intervals with explicit begin/end times
  and parent ids, forming the nesting the observability layer exports:
  collective -> phase -> message -> link-occupancy.  Spans are opened
  with :meth:`Tracer.begin` and closed with :meth:`Tracer.end`.

Tracing is off by default and costs one predicate check per record when
disabled.  A disabled tracer's :meth:`Tracer.begin` returns the shared
:data:`NULL_SPAN` sentinel so instrumented code never branches on the
enabled flag itself.

Memory is bounded when ``max_records`` / ``max_spans`` are given: the
tracer keeps the newest entries (drop-oldest ring) and counts what it
discarded in ``dropped_records`` / ``dropped_spans``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (Any, Collection, Deque, Dict, Iterator, List, Optional,
                    Union)

__all__ = ["TraceRecord", "Span", "Tracer", "NULL_SPAN"]

#: Category filters accept one category or a collection of them.
CategoryFilter = Optional[Union[str, Collection[str]]]


@dataclass(frozen=True)
class TraceRecord:
    """One traced point-in-time occurrence inside the simulator."""

    time: float
    category: str
    node: Optional[int]
    detail: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Span:
    """One traced interval.  ``end`` is ``None`` while the span is open.

    ``parent`` is the id of the enclosing span (0 for roots), which is
    what lets exporters reconstruct the collective -> phase -> message
    -> link nesting.
    """

    id: int
    name: str
    category: str
    start: float
    end: Optional[float] = None
    node: Optional[int] = None
    parent: int = 0
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in simulated microseconds (0 while open)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def open(self) -> bool:
        return self.end is None


#: Sentinel returned by a disabled tracer; ending/extending it is a
#: no-op, so instrumentation never needs to branch on ``enabled``.
NULL_SPAN = Span(id=0, name="", category="", start=0.0, end=0.0)


def _matches(category: str, wanted: CategoryFilter) -> bool:
    if wanted is None:
        return True
    if isinstance(wanted, str):
        return category == wanted
    return category in wanted


class Tracer:
    """Collects trace records and spans; disabled tracers are ~free."""

    def __init__(self, enabled: bool = False,
                 max_records: Optional[int] = None,
                 max_spans: Optional[int] = None):
        if max_records is not None and max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        if max_spans is not None and max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.enabled = enabled
        self.max_records = max_records
        self.max_spans = max_spans
        self._records: Deque[TraceRecord] = deque(maxlen=max_records)
        self._spans: Deque[Span] = deque(maxlen=max_spans)
        self.dropped_records = 0
        self.dropped_spans = 0
        self._next_span_id = 1

    # -- flat records -------------------------------------------------------
    def emit(self, time: float, category: str, node: Optional[int] = None,
             **detail: Any) -> None:
        """Record an occurrence if tracing is enabled."""
        if self.enabled:
            records = self._records
            if records.maxlen is not None and \
                    len(records) == records.maxlen:
                self.dropped_records += 1
            records.append(TraceRecord(time, category, node, detail))

    def records(self, category: CategoryFilter = None) -> List[TraceRecord]:
        """All records, optionally filtered by one or more categories."""
        if category is None:
            return list(self._records)
        return [r for r in self._records if _matches(r.category, category)]

    def between(self, t0: float, t1: float,
                category: CategoryFilter = None) -> List[TraceRecord]:
        """Records with ``t0 <= time < t1``, optionally by category."""
        return [r for r in self._records
                if t0 <= r.time < t1 and _matches(r.category, category)]

    # -- spans --------------------------------------------------------------
    def begin(self, time: float, name: str, category: str,
              node: Optional[int] = None, parent: Optional[Span] = None,
              **detail: Any) -> Span:
        """Open a span; returns :data:`NULL_SPAN` when disabled."""
        if not self.enabled:
            return NULL_SPAN
        span = Span(id=self._next_span_id, name=name, category=category,
                    start=time, node=node,
                    parent=parent.id if parent is not None else 0,
                    detail=detail)
        self._next_span_id += 1
        spans = self._spans
        if spans.maxlen is not None and len(spans) == spans.maxlen:
            self.dropped_spans += 1
        spans.append(span)
        return span

    def end(self, span: Span, time: float, **detail: Any) -> None:
        """Close ``span`` at ``time`` (no-op for the null span)."""
        if span.id == 0:
            return
        span.end = time
        if detail:
            span.detail.update(detail)

    def extend(self, span: Span, time: float) -> None:
        """Push ``span``'s end out to at least ``time``.

        Used for aggregate spans (collective phases) whose extent is
        the envelope of many member events.
        """
        if span.id == 0:
            return
        if span.end is None or span.end < time:
            span.end = time

    def spans(self, category: CategoryFilter = None) -> List[Span]:
        """All spans (open and closed), optionally filtered by category."""
        if category is None:
            return list(self._spans)
        return [s for s in self._spans if _matches(s.category, category)]

    def spans_between(self, t0: float, t1: float,
                      category: CategoryFilter = None) -> List[Span]:
        """Spans overlapping the window ``[t0, t1)``."""
        return [s for s in self._spans
                if s.start < t1 and (s.end is None or s.end >= t0)
                and _matches(s.category, category)]

    # -- bookkeeping --------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Total entries discarded by the bounded-memory rings."""
        return self.dropped_records + self.dropped_spans

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        """Drop all collected records and spans, reset drop counters."""
        self._records.clear()
        self._spans.clear()
        self.dropped_records = 0
        self.dropped_spans = 0

    def configure_limits(self, max_records: Optional[int] = None,
                         max_spans: Optional[int] = None) -> None:
        """Re-bound the rings; existing content and drop counts reset."""
        if max_records is not None and max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        if max_spans is not None and max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.max_records = max_records
        self.max_spans = max_spans
        self._records = deque(maxlen=max_records)
        self._spans = deque(maxlen=max_spans)
        self.dropped_records = 0
        self.dropped_spans = 0
