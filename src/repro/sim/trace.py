"""Lightweight event tracing for the simulator.

A :class:`Tracer` collects ``TraceRecord`` entries (time, category,
node, detail).  Tracing is off by default and costs one predicate check
per record when disabled; the node and network layers emit records for
message injection, link occupancy, and collective phases, which the
tests use to assert on *mechanism* (e.g. "the binomial broadcast really
performed ceil(log2 p) rounds") rather than only on end-to-end times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence inside the simulator."""

    time: float
    category: str
    node: Optional[int]
    detail: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects trace records; disabled tracers drop records cheaply."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._records: List[TraceRecord] = []

    def emit(self, time: float, category: str, node: Optional[int] = None,
             **detail: Any) -> None:
        """Record an occurrence if tracing is enabled."""
        if self.enabled:
            self._records.append(TraceRecord(time, category, node, detail))

    def records(self, category: Optional[str] = None) -> List[TraceRecord]:
        """All records, optionally filtered by category."""
        if category is None:
            return list(self._records)
        return [r for r in self._records if r.category == category]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        """Drop all collected records."""
        self._records.clear()
