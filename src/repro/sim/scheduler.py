"""Pluggable pending-event schedulers for the simulation engine.

The engine keeps every scheduled event in one priority queue ordered by
the tuple ``(time, priority, eid)`` — time first, then an explicit
integer priority (:data:`~repro.sim.engine.URGENT` before
:data:`~repro.sim.engine.NORMAL`), then the monotonically increasing
event id that makes ties deterministic.  That *ordering contract* is
the whole determinism story of the simulator, so it is owned by the
queue implementation and nothing else.

Two implementations are provided:

* :class:`HeapScheduler` — a binary heap (:mod:`heapq`), the default.
  O(log n) push/pop with very low constants (heapq is C).
* :class:`CalendarQueueScheduler` — a classic calendar queue
  [R. Brown, CACM 1988]: a wheel of time buckets, each a small binary
  heap, resized and re-widthed as the population changes.  O(1)
  amortized push/pop when event times are roughly uniform, which is
  the common case for the staggered message traffic the MPI layer
  generates.

Both order strictly by the same ``(time, priority, eid)`` tuple, so a
run produces **byte-identical event orderings under either scheduler**
— the property ``tests/sim/test_scheduler_equivalence.py`` asserts on
randomized process/resource/transfer graphs.

Selection is per-:class:`~repro.sim.engine.Environment` (the
``scheduler=`` argument) with the process-wide default taken from the
``REPRO_SIM_SCHEDULER`` environment variable (``heap`` when unset).
"""

from __future__ import annotations

import os
from functools import partial
from heapq import heappop, heappush
from typing import Any, List, Tuple

__all__ = [
    "SCHEDULERS",
    "EventScheduler",
    "HeapScheduler",
    "CalendarQueueScheduler",
    "default_scheduler_name",
    "make_scheduler",
]

#: One queue entry: ``(time, priority, eid, event)``.  Plain tuples so
#: ordering is native tuple comparison (fast, and identical everywhere).
Entry = Tuple[float, int, int, Any]


class EventScheduler:
    """Ordering contract shared by every scheduler implementation.

    ``push`` accepts an entry, ``pop`` returns the globally smallest
    entry by ``(time, priority, eid)``, ``peek_time`` reports the next
    entry's time without removing it.  Implementations must be fully
    deterministic: no randomness, no iteration-order dependence.
    """

    __slots__ = ()

    name: str = "abstract"

    def push(self, entry: Entry) -> None:
        raise NotImplementedError

    def pop(self) -> Entry:
        raise NotImplementedError

    def peek_time(self) -> float:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class HeapScheduler(EventScheduler):
    """The single binary heap the engine has always used.

    ``push`` and ``pop`` are instance attributes bound to
    :func:`functools.partial` over the raw heap: the engine calls them
    once per event, and a C-level partial skips the Python method frame
    a ``def push`` would cost.
    """

    __slots__ = ("_heap", "push", "pop")

    name = "heap"

    def __init__(self) -> None:
        self._heap: List[Entry] = []
        self.push = partial(heappush, self._heap)
        self.pop = partial(heappop, self._heap)

    def peek_time(self) -> float:
        heap = self._heap
        return heap[0][0] if heap else float("inf")

    def __len__(self) -> int:
        return len(self._heap)


class CalendarQueueScheduler(EventScheduler):
    """A calendar queue: a wheel of day buckets, one year per lap.

    Entries land in ``bucket = floor(time / width) % nbuckets``; a
    bucket is a small heap, so entries that share a bucket still pop in
    exact ``(time, priority, eid)`` order.  ``pop`` walks the wheel
    from the current day, taking the head entry only if it belongs to
    the current year (otherwise it is a future lap and the walk
    continues); a full fruitless lap falls back to a direct scan for
    the global minimum and re-synchronizes the calendar there.

    The wheel doubles/halves and re-derives its bucket width from the
    observed spread of pending event times whenever the population
    crosses the classic 2x / 0.5x thresholds.  All resizing decisions
    are deterministic functions of the queue contents.
    """

    __slots__ = ("_buckets", "_nbuckets", "_width", "_size",
                 "_cursor", "_cursor_top", "_last_time")

    name = "calendar"

    #: Wheel size bounds: small enough to rebuild cheaply, large enough
    #: that a p=1024 collective's event population stays ~O(1) a bucket.
    _MIN_BUCKETS = 8
    _MAX_BUCKETS = 1 << 16

    def __init__(self, bucket_width: float = 1.0,
                 bucket_count: int = 8) -> None:
        if bucket_width <= 0:
            raise ValueError(f"bucket width must be > 0, got "
                             f"{bucket_width}")
        if bucket_count < 1:
            raise ValueError(f"bucket count must be >= 1, got "
                             f"{bucket_count}")
        self._size = 0
        self._last_time = 0.0
        self._init_wheel(bucket_count, bucket_width)

    # -- wheel plumbing ---------------------------------------------------
    def _init_wheel(self, nbuckets: int, width: float) -> None:
        self._nbuckets = nbuckets
        self._width = width
        self._buckets: List[List[Entry]] = [[] for _ in range(nbuckets)]
        self._resync(self._last_time)

    def _resync(self, time: float) -> None:
        """Point the cursor at the day containing ``time``."""
        width = self._width
        day = int(time / width)
        self._cursor = day % self._nbuckets
        self._cursor_top = (day + 1) * width

    def _rebuild(self, nbuckets: int) -> None:
        nbuckets = max(self._MIN_BUCKETS, min(self._MAX_BUCKETS, nbuckets))
        entries = [entry for bucket in self._buckets for entry in bucket]
        self._init_wheel(nbuckets, self._derive_width(entries))
        buckets = self._buckets
        width = self._width
        for entry in entries:
            heappush(buckets[int(entry[0] / width) % nbuckets], entry)

    def _derive_width(self, entries: List[Entry]) -> float:
        """Deterministic bucket width: the mean gap between the sorted
        times of (a sample of) the pending entries, clamped positive."""
        if len(entries) < 2:
            return max(self._width, 1e-9)
        times = sorted(entry[0] for entry in entries)
        sample = times[:64]
        span = sample[-1] - sample[0]
        if span <= 0.0:
            return max(self._width, 1e-9)
        # Three events per day on average — Brown's classic target.
        return 3.0 * span / len(sample)

    # -- EventScheduler interface ----------------------------------------
    def push(self, entry: Entry) -> None:
        heappush(
            self._buckets[int(entry[0] / self._width) % self._nbuckets],
            entry)
        self._size += 1
        if self._size > 2 * self._nbuckets and \
                self._nbuckets < self._MAX_BUCKETS:
            self._rebuild(2 * self._nbuckets)

    def pop(self) -> Entry:
        if not self._size:
            raise IndexError("pop from an empty calendar queue")
        entry = self._take()
        self._size -= 1
        self._last_time = entry[0]
        if self._size < self._nbuckets // 2 and \
                self._nbuckets > self._MIN_BUCKETS:
            self._rebuild(self._nbuckets // 2)
        return entry

    def _take(self) -> Entry:
        buckets = self._buckets
        nbuckets = self._nbuckets
        width = self._width
        cursor = self._cursor
        top = self._cursor_top
        for _ in range(nbuckets):
            bucket = buckets[cursor]
            if bucket and bucket[0][0] < top:
                self._cursor = cursor
                self._cursor_top = top
                return heappop(bucket)
            cursor = (cursor + 1) % nbuckets
            top += width
        # A whole fruitless lap: events live laps ahead (or the wheel
        # just resized).  Find the true minimum head directly and
        # re-synchronize the calendar on its day.
        best = None
        best_index = -1
        for index, bucket in enumerate(buckets):
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
                best_index = index
        assert best is not None  # _size > 0 guarantees an entry exists
        self._resync(best[0])
        return heappop(buckets[best_index])

    def peek_time(self) -> float:
        if not self._size:
            return float("inf")
        buckets = self._buckets
        nbuckets = self._nbuckets
        cursor = self._cursor
        top = self._cursor_top
        width = self._width
        for _ in range(nbuckets):
            bucket = buckets[cursor]
            if bucket and bucket[0][0] < top:
                return bucket[0][0]
            cursor = (cursor + 1) % nbuckets
            top += width
        return min(bucket[0][0] for bucket in buckets if bucket)

    def __len__(self) -> int:
        return self._size


#: Registry of selectable schedulers.
SCHEDULERS = {
    HeapScheduler.name: HeapScheduler,
    CalendarQueueScheduler.name: CalendarQueueScheduler,
}


def default_scheduler_name() -> str:
    """Process-wide default: ``REPRO_SIM_SCHEDULER`` or ``heap``.

    Read per call (not cached at import) so test harnesses and the CI
    matrix can flip the default between runs in one process.
    """
    name = os.environ.get("REPRO_SIM_SCHEDULER", HeapScheduler.name)
    if name not in SCHEDULERS:
        raise ValueError(
            f"REPRO_SIM_SCHEDULER={name!r} is not a known scheduler "
            f"(expected one of {sorted(SCHEDULERS)})")
    return name


def make_scheduler(which: Any = None) -> EventScheduler:
    """Build a scheduler from a name, an instance, or ``None``.

    ``None`` selects the process default; a string looks up
    :data:`SCHEDULERS`; an :class:`EventScheduler` instance passes
    through (it must be empty — reusing a populated queue would smuggle
    events between environments).
    """
    if which is None:
        which = default_scheduler_name()
    if isinstance(which, EventScheduler):
        if len(which):
            raise ValueError("cannot share a non-empty scheduler "
                             "between environments")
        return which
    try:
        factory = SCHEDULERS[which]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown scheduler {which!r} (expected one of "
            f"{sorted(SCHEDULERS)} or an EventScheduler)") from None
    return factory()
