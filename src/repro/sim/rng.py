"""Deterministic, named random-number streams.

Every source of randomness in the simulator (overhead jitter, node clock
offsets, warm-up penalties) draws from a stream keyed by a name, so that
adding a new consumer of randomness never perturbs the draws seen by
existing consumers.  Streams are derived from a single experiment seed,
making whole runs reproducible from one integer.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


def _derive_seed(master_seed: int, name: str) -> int:
    """Stable 64-bit sub-seed for ``name`` under ``master_seed``."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RandomStreams:
    """Factory of independent named ``numpy.random.Generator`` streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        try:
            return self._streams[name]
        except KeyError:
            # Generator(PCG64(seed)) builds the same stream as
            # default_rng(seed) (verified bit-for-bit) without the
            # extra seed-spawning bookkeeping — machine construction
            # creates thousands of streams for large node counts.
            generator = np.random.Generator(np.random.PCG64(
                _derive_seed(self.master_seed, name)))
            self._streams[name] = generator
            return generator

    def jitter(self, name: str, relative_sigma: float) -> float:
        """One multiplicative jitter factor centred on 1.0, clipped > 0.

        ``relative_sigma`` is the standard deviation as a fraction of the
        mean.  Used to perturb software overheads so that repeated timing
        runs differ, as on real machines.
        """
        if relative_sigma <= 0.0:
            return 1.0
        draw = self.stream(name).normal(1.0, relative_sigma)
        return max(draw, 1e-3)

    def uniform(self, name: str, low: float, high: float) -> float:
        """One uniform draw from ``[low, high)`` on stream ``name``."""
        return float(self.stream(name).uniform(low, high))
