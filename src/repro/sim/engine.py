"""Discrete-event simulation kernel.

This module implements a small, deterministic discrete-event engine in
the style of SimPy: an :class:`Environment` owns a priority queue of
timestamped events, and :class:`Process` objects are Python generators
that ``yield`` events to suspend until those events fire.

The engine is the substrate every other layer of this package runs on:
network links, NICs, DMA engines, and the MPI runtime are all expressed
as processes and resources scheduled here.

Determinism
-----------
Two runs with the same inputs produce identical event orderings: ties in
time are broken first by an explicit integer priority and then by a
monotonically increasing event id.  All randomness in higher layers goes
through the seeded streams in :mod:`repro.sim.rng`.

Performance
-----------
Every class on the hot path uses ``__slots__``; the pending-event queue
is pluggable (:mod:`repro.sim.scheduler` — binary heap or calendar
queue, identical ``(time, priority, eid)`` ordering); and
:meth:`Environment.sleep` hands out pooled one-shot timeouts so the
dominant fire-and-forget delay pattern does not allocate.  The
differential-equivalence suite (``tests/sim/test_scheduler_equivalence``)
is what licenses these shortcuts: it asserts both schedulers produce
byte-identical event logs and work counters.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from .scheduler import EventScheduler, make_scheduler

__all__ = [
    "SIM_VERSION",
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "StopProcess",
    "NORMAL",
    "URGENT",
]

#: Version of the timing model implemented by the simulation substrate.
#: Bump whenever an engine/resource change can alter simulated times —
#: sweep caches (:mod:`repro.runner`) key their fingerprints on it, so a
#: bump invalidates every previously cached cell.
SIM_VERSION = "2"

#: Default scheduling priority for events.
NORMAL = 1
#: Priority for events that must fire before same-time NORMAL events.
URGENT = 0

#: Maximum number of recycled :meth:`Environment.sleep` timeouts kept.
_SLEEP_POOL_LIMIT = 256


class SimulationError(Exception):
    """Raised for violations of engine invariants (e.g. double trigger)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class StopProcess(Exception):
    """Raised by a process to terminate itself early with a value."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


#: Single source of truth for the premature-access error so both
#: ``Event.ok`` and ``Event.value`` fail with one consistent message.
_UNTRIGGERED = "event has not been triggered yet"


def _untriggered_error(event: "Event", accessor: str) -> SimulationError:
    return SimulationError(
        f"{type(event).__name__}.{accessor} is unreadable: {_UNTRIGGERED}")


class Event:
    """A one-shot occurrence other processes can wait on.

    An event moves through three states: *pending* (created), *triggered*
    (a time has been assigned and it sits in the event queue), and
    *processed* (its callbacks have run).  Waiting processes resume with
    the event's ``value`` — or have the stored exception re-raised inside
    them if the event failed.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run and the value is readable."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise _untriggered_error(self, "ok")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with (or its exception)."""
        if self._ok is None:
            raise _untriggered_error(self, "value")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Schedule this event to fire successfully at the current time."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, self.env._now, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Schedule this event to fire with an exception.

        Any process waiting on the event will have ``exception`` raised
        at its ``yield``.  If nothing ever waits, the environment raises
        the exception at the end of the step to avoid silent failures.
        """
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, self.env._now, priority)
        return self

    def defused(self) -> "Event":
        """Mark a failed event as handled so it is not re-raised globally."""
        self._defused = True
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None,
                 priority: int = NORMAL):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self._ok = True
        self._value = value
        self.delay = delay
        env._schedule(self, env._now + delay, priority)


class _SleepTimeout(Timeout):
    """A pooled :class:`Timeout` recycled by the run loop.

    Handed out by :meth:`Environment.sleep` for the engine-internal
    fire-and-forget pattern (``yield env.sleep(delay)`` with the event
    never stored, composed, or re-waited).  Because no reference can
    survive its firing, the dispatch loop returns it to the pool —
    turning the dominant allocation of every simulation into a pop.
    """

    __slots__ = ()


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self, env._now, URGENT)


class Process(Event):
    """Wrap a generator as a schedulable process.

    The process is itself an :class:`Event` that fires when the
    generator returns (with the return value / :class:`StopProcess`
    value), so processes can wait on each other by yielding a process.
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, env: "Environment", generator: Generator,
                 name: Optional[str] = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at the current time.

        The event the process was waiting on stays pending; the process
        may re-wait on it after handling the interrupt.
        """
        if self._ok is not None:
            raise SimulationError(f"{self.name} has already terminated")
        if self._target is None:
            raise SimulationError(f"{self.name} is not waiting on anything")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        work = self.env.work
        if work is not None:
            work.interrupts += 1
        self.env._schedule(interrupt_event, self.env._now, URGENT)

    # -- generator stepping -------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event's outcome."""
        if self._ok is not None:
            return
        # Detach from the event we were waiting on (if any).
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        throwing = not event._ok
        if throwing:
            event._defused = True
        self._step(event._value, throwing)

    def _step(self, payload: Any, throwing: bool) -> None:
        """Run one generator step, re-stepping while yields are invalid."""
        env = self.env
        generator = self._generator
        while True:
            env._active_process = self
            try:
                if throwing:
                    target = generator.throw(payload)
                else:
                    target = generator.send(payload)
            except StopIteration as exc:
                self._finish(True, exc.value)
                return
            except StopProcess as exc:
                generator.close()
                self._finish(True, exc.value)
                return
            except BaseException as exc:
                self._finish(False, exc)
                return
            finally:
                env._active_process = None
            if isinstance(target, Event):
                if target.env is env:
                    self._wait_on(target)
                    return
                throwing = True
                payload = SimulationError(
                    "yielded event belongs to another Environment")
            else:
                throwing = True
                payload = TypeError(
                    f"process {self.name} yielded {target!r}, "
                    "which is not an Event")

    def _wait_on(self, target: Event) -> None:
        if target.callbacks is None:
            # Already processed: resume immediately at the current time.
            passthrough = Event(self.env)
            passthrough._ok = target._ok
            passthrough._value = target._value
            if not target._ok:
                target._defused = True
                passthrough._defused = True
            passthrough.callbacks.append(self._resume)
            self.env._schedule(passthrough, self.env._now, URGENT)
            self._target = passthrough
        else:
            target.callbacks.append(self._resume)
            self._target = target

    def _finish(self, ok: bool, value: Any) -> None:
        self._ok = ok
        self._value = value
        self.env._schedule(self, self.env._now, NORMAL)


class Condition(Event):
    """Fires when ``predicate(triggered_count, total)`` becomes true.

    The value of a fired condition is an ordered dict-like list of
    ``(event, value)`` pairs for events that had triggered by then.
    """

    __slots__ = ("_events", "_predicate", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event],
                 predicate: Callable[[int, int], bool]):
        super().__init__(env)
        self._events = list(events)
        self._predicate = predicate
        self._count = 0
        for event in self._events:
            if event.env is not self.env:
                raise SimulationError("events from mixed environments")
        if self._predicate(0, len(self._events)) or not self._events:
            self.succeed(self._collect())
            return
        for event in self._events:
            if event.callbacks is None:
                self._observe(event)
                if self.triggered:
                    return
            else:
                event.callbacks.append(self._observe)

    def _observe(self, event: Event) -> None:
        if self._ok is not None:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._predicate(self._count, len(self._events)):
            self.succeed(self._collect())

    def _collect(self) -> List[Tuple[Event, Any]]:
        return [(event, event._value)
                for event in self._events
                if event._ok is not None and event._ok]


class AllOf(Condition):
    """Condition that fires when *all* events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, lambda done, total: done >= total)


class AnyOf(Condition):
    """Condition that fires as soon as *any* event fires."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, lambda done, total: done >= 1)


class Environment:
    """Owner of simulated time and the pending-event queue.

    Time is a float; this package uses **microseconds** throughout, the
    unit the paper reports latencies in.

    ``scheduler`` selects the pending-event queue implementation: a
    name from :data:`repro.sim.scheduler.SCHEDULERS` (``"heap"`` or
    ``"calendar"``), an :class:`~repro.sim.scheduler.EventScheduler`
    instance, or ``None`` for the process default (the
    ``REPRO_SIM_SCHEDULER`` environment variable, else the heap).  Both
    implementations honor the same ``(time, priority, eid)`` ordering
    contract, so the choice never changes simulation results.
    """

    __slots__ = ("_now", "_eid", "_scheduler", "_push", "_pop",
                 "_active_process", "_sleep_pool", "profiler", "work")

    def __init__(self, initial_time: float = 0.0,
                 scheduler: Any = None):
        self._now = float(initial_time)
        self._eid = 0
        self._scheduler: EventScheduler = make_scheduler(scheduler)
        self._push = self._scheduler.push
        self._pop = self._scheduler.pop
        self._active_process: Optional[Process] = None
        self._sleep_pool: List[_SleepTimeout] = []
        #: Optional observer (see :class:`repro.obs.EngineProfiler`)
        #: notified of scheduling, firing, and callback wall-clock.
        #: ``None`` (the default) keeps the hot path to one check.
        self.profiler: Optional[Any] = None
        #: Optional deterministic work counters (see
        #: :class:`repro.obs.perf.WorkMeter`).  Same convention as the
        #: profiler: ``None`` by default, one check per site.
        self.work: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    @property
    def scheduler_name(self) -> str:
        """Name of the pending-event queue implementation in use."""
        return self._scheduler.name

    # -- event creation helpers ---------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` microseconds."""
        return Timeout(self, delay, value)

    def sleep(self, delay: float) -> Timeout:
        """A pooled fire-and-forget timeout (engine-internal fast path).

        Semantically identical to ``timeout(delay)`` — same scheduling,
        same event-id consumption, same ordering — but the event object
        is recycled by the dispatch loop after it fires.  The caller
        MUST yield it immediately and never store it, add callbacks
        after the yield, pass it to ``all_of``/``any_of``, or re-yield
        it after an :class:`Interrupt`; its identity and value are only
        valid until it fires.  User-facing code should keep using
        :meth:`timeout`.
        """
        pool = self._sleep_pool
        if not pool:
            return _SleepTimeout(self, delay)
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        event = pool.pop()
        event.callbacks = []
        event._value = None
        event._ok = True
        event._defused = False
        event.delay = delay
        self._schedule(event, self._now + delay, NORMAL)
        return event

    def sleep_until(self, at: float) -> Timeout:
        """A pooled fire-and-forget timeout at *absolute* time ``at``.

        Same contract and pooling as :meth:`sleep`, but the event fires
        at exactly ``at`` (which must not be in the past) rather than at
        ``now + delay`` — the distinction matters to booking fast paths
        that must land on a pre-computed end time bit-for-bit.
        """
        now = self._now
        if at < now:
            raise ValueError(f"sleep_until past time {at!r} < {now!r}")
        pool = self._sleep_pool
        if pool:
            event = pool.pop()
        else:
            event = _SleepTimeout.__new__(_SleepTimeout)
            event.env = self
        event.callbacks = []
        event._value = None
        event._ok = True
        event._defused = False
        event.delay = at - now
        self._schedule(event, at, NORMAL)
        return event

    def process(self, generator: Generator,
                name: Optional[str] = None) -> Process:
        """Register ``generator`` as a new process starting now."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires once every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires once any event in ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling and stepping ----------------------------------------------
    def _schedule(self, event: Event, at: float, priority: int) -> None:
        if at < self._now:
            raise SimulationError(
                f"cannot schedule event in the past ({at} < {self._now})")
        self._eid = eid = self._eid + 1
        self._push((at, priority, eid, event))
        work = self.work
        if work is not None:
            work.events_scheduled += 1
            work.heap_pushes += 1
            # Metered depth: pushes minus pops IS the queue size while
            # the meter is attached (attach-at-start, the suite's
            # convention), without a len() call on the hot path.
            depth = work.heap_pushes - work.heap_pops
            if depth > work.heap_peak:
                work.heap_peak = depth
        if self.profiler is not None:
            self.profiler.event_scheduled(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._scheduler.peek_time()

    def _dispatch(self, event: Event) -> None:
        """Fire one popped event: run callbacks, recycle, re-raise."""
        callbacks = event.callbacks
        event.callbacks = None
        work = self.work
        if work is not None:
            work.events_fired += 1
            work.heap_pops += 1
            work.callbacks_dispatched += len(callbacks)
        profiler = self.profiler
        if profiler is None:
            for callback in callbacks:
                callback(event)
        else:
            profiler.event_fired(event)
            # Hold the local reference so enter/leave stay balanced
            # even if a callback detaches the profiler mid-step.
            for callback in callbacks:
                profiler.enter_callback(callback)
                try:
                    callback(event)
                finally:
                    profiler.leave()
        if event.__class__ is _SleepTimeout:
            pool = self._sleep_pool
            if len(pool) < _SLEEP_POOL_LIMIT:
                event._value = None
                pool.append(event)
        elif not event._ok and not event._defused:
            raise event._value

    def step(self) -> None:
        """Process the single next event."""
        try:
            at, _, _, event = self._pop()
        except IndexError:
            raise SimulationError("no more events") from None
        self._now = at
        self._dispatch(event)

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires.

        ``until`` may be ``None`` (drain the queue), a number (stop when
        simulated time reaches it), or an :class:`Event` (stop when it
        fires, returning its value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                return stop_event._value
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until ({stop_time}) is in the past (now={self._now})")

        scheduler = self._scheduler
        pop = self._pop
        bounded = stop_time != float("inf")
        while True:
            if bounded and scheduler.peek_time() > stop_time:
                self._now = stop_time
                return None
            try:
                at, _, _, event = pop()
            except IndexError:
                break
            self._now = at
            self._dispatch(event)
            if stop_event is not None and stop_event.callbacks is None:
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value
        if stop_event is not None:
            raise SimulationError(
                "run() until an event that can no longer fire")
        if bounded:
            self._now = stop_time
        return None
