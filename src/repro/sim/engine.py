"""Discrete-event simulation kernel.

This module implements a small, deterministic discrete-event engine in
the style of SimPy: an :class:`Environment` owns a priority queue of
timestamped events, and :class:`Process` objects are Python generators
that ``yield`` events to suspend until those events fire.

The engine is the substrate every other layer of this package runs on:
network links, NICs, DMA engines, and the MPI runtime are all expressed
as processes and resources scheduled here.

Determinism
-----------
Two runs with the same inputs produce identical event orderings: ties in
time are broken first by an explicit integer priority and then by a
monotonically increasing event id.  All randomness in higher layers goes
through the seeded streams in :mod:`repro.sim.rng`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "SIM_VERSION",
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "StopProcess",
    "NORMAL",
    "URGENT",
]

#: Version of the timing model implemented by the simulation substrate.
#: Bump whenever an engine/resource change can alter simulated times —
#: sweep caches (:mod:`repro.runner`) key their fingerprints on it, so a
#: bump invalidates every previously cached cell.
SIM_VERSION = "2"

#: Default scheduling priority for events.
NORMAL = 1
#: Priority for events that must fire before same-time NORMAL events.
URGENT = 0


class SimulationError(Exception):
    """Raised for violations of engine invariants (e.g. double trigger)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class StopProcess(Exception):
    """Raised by a process to terminate itself early with a value."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Event:
    """A one-shot occurrence other processes can wait on.

    An event moves through three states: *pending* (created), *triggered*
    (a time has been assigned and it sits in the event queue), and
    *processed* (its callbacks have run).  Waiting processes resume with
    the event's ``value`` — or have the stored exception re-raised inside
    them if the event failed.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run and the value is readable."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with (or its exception)."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Schedule this event to fire successfully at the current time."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, self.env.now, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Schedule this event to fire with an exception.

        Any process waiting on the event will have ``exception`` raised
        at its ``yield``.  If nothing ever waits, the environment raises
        the exception at the end of the step to avoid silent failures.
        """
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, self.env.now, priority)
        return self

    def defused(self) -> "Event":
        """Mark a failed event as handled so it is not re-raised globally."""
        self._defused = True
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None,
                 priority: int = NORMAL):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self._ok = True
        self._value = value
        self.delay = delay
        env._schedule(self, env.now + delay, priority)


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self, env.now, URGENT)


class Process(Event):
    """Wrap a generator as a schedulable process.

    The process is itself an :class:`Event` that fires when the
    generator returns (with the return value / :class:`StopProcess`
    value), so processes can wait on each other by yielding a process.
    """

    def __init__(self, env: "Environment", generator: Generator,
                 name: Optional[str] = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at the current time.

        The event the process was waiting on stays pending; the process
        may re-wait on it after handling the interrupt.
        """
        if not self.is_alive:
            raise SimulationError(f"{self.name} has already terminated")
        if self._target is None:
            raise SimulationError(f"{self.name} is not waiting on anything")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        work = self.env.work
        if work is not None:
            work.interrupts += 1
        self.env._schedule(interrupt_event, self.env.now, URGENT)

    # -- generator stepping -------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event's outcome."""
        if not self.is_alive:
            return
        # Detach from the event we were waiting on (if any).
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        if event._ok:
            self._step(lambda: self._generator.send(event._value))
        else:
            event._defused = True
            self._step(lambda: self._generator.throw(event._value))

    def _step(self, advance: Callable[[], Any]) -> None:
        """Run one generator step, re-stepping while yields are invalid."""
        while True:
            self.env._active_process = self
            try:
                target = advance()
            except StopIteration as exc:
                self._finish(True, exc.value)
                return
            except StopProcess as exc:
                self._generator.close()
                self._finish(True, exc.value)
                return
            except BaseException as exc:
                self._finish(False, exc)
                return
            finally:
                self.env._active_process = None
            problem = self._validate_target(target)
            if problem is None:
                self._wait_on(target)
                return
            advance = lambda exc=problem: self._generator.throw(exc)  # noqa: E731

    def _validate_target(self, target: Any) -> Optional[BaseException]:
        if not isinstance(target, Event):
            return TypeError(f"process {self.name} yielded {target!r}, "
                             "which is not an Event")
        if target.env is not self.env:
            return SimulationError(
                "yielded event belongs to another Environment")
        return None

    def _wait_on(self, target: Event) -> None:
        if target.callbacks is None:
            # Already processed: resume immediately at the current time.
            passthrough = Event(self.env)
            passthrough._ok = target._ok
            passthrough._value = target._value
            if not target._ok:
                target._defused = True
                passthrough._defused = True
            passthrough.callbacks.append(self._resume)
            self.env._schedule(passthrough, self.env.now, URGENT)
            self._target = passthrough
        else:
            target.callbacks.append(self._resume)
            self._target = target

    def _finish(self, ok: bool, value: Any) -> None:
        self._ok = ok
        self._value = value
        self.env._schedule(self, self.env.now, NORMAL)


class Condition(Event):
    """Fires when ``predicate(triggered_count, total)`` becomes true.

    The value of a fired condition is an ordered dict-like list of
    ``(event, value)`` pairs for events that had triggered by then.
    """

    def __init__(self, env: "Environment", events: Iterable[Event],
                 predicate: Callable[[int, int], bool]):
        super().__init__(env)
        self._events = list(events)
        self._predicate = predicate
        self._count = 0
        for event in self._events:
            if event.env is not self.env:
                raise SimulationError("events from mixed environments")
        if self._predicate(0, len(self._events)) or not self._events:
            self.succeed(self._collect())
            return
        for event in self._events:
            if event.callbacks is None:
                self._observe(event)
                if self.triggered:
                    return
            else:
                event.callbacks.append(self._observe)

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._predicate(self._count, len(self._events)):
            self.succeed(self._collect())

    def _collect(self) -> List[Tuple[Event, Any]]:
        return [(event, event._value)
                for event in self._events
                if event.triggered and event._ok]


class AllOf(Condition):
    """Condition that fires when *all* events have fired."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, lambda done, total: done >= total)


class AnyOf(Condition):
    """Condition that fires as soon as *any* event fires."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, lambda done, total: done >= 1)


class Environment:
    """Owner of simulated time and the pending-event queue.

    Time is a float; this package uses **microseconds** throughout, the
    unit the paper reports latencies in.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Optional observer (see :class:`repro.obs.EngineProfiler`)
        #: notified of scheduling, firing, and callback wall-clock.
        #: ``None`` (the default) keeps the hot path to one check.
        self.profiler: Optional[Any] = None
        #: Optional deterministic work counters (see
        #: :class:`repro.obs.perf.WorkMeter`).  Same convention as the
        #: profiler: ``None`` by default, one check per site.
        self.work: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # -- event creation helpers ---------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` microseconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator,
                name: Optional[str] = None) -> Process:
        """Register ``generator`` as a new process starting now."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires once every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires once any event in ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling and stepping ----------------------------------------------
    def _schedule(self, event: Event, at: float, priority: int) -> None:
        if at < self._now:
            raise SimulationError(
                f"cannot schedule event in the past ({at} < {self._now})")
        self._eid += 1
        heapq.heappush(self._queue, (at, priority, self._eid, event))
        work = self.work
        if work is not None:
            work.events_scheduled += 1
            work.heap_pushes += 1
            if len(self._queue) > work.heap_peak:
                work.heap_peak = len(self._queue)
        if self.profiler is not None:
            self.profiler.event_scheduled(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no more events")
        at, _, _, event = heapq.heappop(self._queue)
        self._now = at
        callbacks, event.callbacks = event.callbacks, None
        work = self.work
        if work is not None:
            work.events_fired += 1
            work.heap_pops += 1
            work.callbacks_dispatched += len(callbacks)
        profiler = self.profiler
        if profiler is None:
            for callback in callbacks:
                callback(event)
        else:
            profiler.event_fired(event)
            # Hold the local reference so enter/leave stay balanced
            # even if a callback detaches the profiler mid-step.
            for callback in callbacks:
                profiler.enter_callback(callback)
                try:
                    callback(event)
                finally:
                    profiler.leave()
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires.

        ``until`` may be ``None`` (drain the queue), a number (stop when
        simulated time reaches it), or an :class:`Event` (stop when it
        fires, returning its value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event._value
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until ({stop_time}) is in the past (now={self._now})")

        while self._queue:
            if self.peek() > stop_time:
                self._now = stop_time
                return None
            self.step()
            if stop_event is not None and stop_event.processed:
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value
        if stop_event is not None:
            raise SimulationError(
                "run() until an event that can no longer fire")
        if stop_time != float("inf"):
            self._now = stop_time
        return None
