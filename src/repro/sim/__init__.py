"""Discrete-event simulation substrate.

Exports the engine (:class:`Environment`, :class:`Process`, events),
shared resources (:class:`Resource`, :class:`Store`), deterministic
random streams, and tracing.
"""

from .engine import (
    SIM_VERSION,
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    StopProcess,
    Timeout,
)
from .resources import FilterStore, Request, Resource, Store
from .rng import RandomStreams
from .trace import NULL_SPAN, Span, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Environment",
    "Event",
    "FilterStore",
    "Interrupt",
    "NULL_SPAN",
    "Process",
    "RandomStreams",
    "Request",
    "Resource",
    "SIM_VERSION",
    "SimulationError",
    "Span",
    "Store",
    "StopProcess",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
