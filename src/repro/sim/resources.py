"""Shared resources for simulated processes.

Two primitives cover everything the network and node models need:

* :class:`Resource` — a counted resource with FIFO request queueing.
  Network links, NIC injection ports, and DMA engines are capacity-1
  resources; a holder models occupancy by holding the grant for the
  transfer duration.
* :class:`Store` — an unbounded FIFO of items with blocking ``get``.
  Message queues between NICs and the MPI matching layer are stores.

Occupancy fast path
-------------------
The request/grant/release protocol costs three events per occupancy.
For the overwhelmingly common case — a capacity-1 resource that is
*idle*, held for a known duration, and released untouched — callers can
instead **timestamp-book** the resource with :meth:`Resource.try_occupy`:
no events, no :class:`Request` object, just ``_busy_until`` advanced by
the hold time.  Bookings are only handed out while no requests are
queued or granted, and always extend contiguously from ``now`` (or from
the previous booking's end), so a booked resource is busy over exactly
the interval a request-holding process would have kept it.  A classic
``request()`` arriving during a booked interval queues exactly as if a
process held the resource, and a wakeup event grants the FIFO head when
the booking expires — at the same simulated time a real release would
have.  The differential-equivalence suite asserts this produces
identical times to the pure request/release protocol.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from .engine import NORMAL, Environment, Event, SimulationError

__all__ = ["Resource", "Request", "Store", "FilterStore"]

_NEVER = float("-inf")


class Request(Event):
    """A pending claim on a :class:`Resource`.

    Fires (succeeds) when the resource grants it.  Must be returned via
    :meth:`Resource.release` when the holder is done.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)


class Resource:
    """A counted resource with strict FIFO granting.

    FIFO ordering is what makes link contention deterministic: requests
    are granted in arrival order, with ties already resolved by the
    engine's deterministic event ordering.
    """

    __slots__ = ("env", "capacity", "_waiting", "_users", "_busy_until")

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._waiting: Deque[Request] = deque()
        self._users: set = set()
        #: End of the current timestamp booking (see :meth:`try_occupy`);
        #: the resource behaves as busy while ``_busy_until > now``.
        self._busy_until = _NEVER

    @property
    def count(self) -> int:
        """Number of grants currently outstanding."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a grant."""
        return len(self._waiting)

    @property
    def booked_until(self) -> float:
        """End of the current timestamp booking (``-inf`` when none)."""
        return self._busy_until

    # -- timestamp-booking fast path --------------------------------------
    def try_occupy(self, duration: float) -> Optional[Tuple[float, float]]:
        """Book this resource for ``duration`` without events.

        Only possible on an idle capacity-1 resource (no users, no
        waiters).  The booking starts at ``now`` — or, back-to-back
        with an earlier booking, at that booking's end, which is
        exactly when a queued request would have been granted.  Returns
        ``(start, previous_busy_until)`` so the caller can compute the
        end time and roll the booking back with :meth:`undo_occupy`
        (restoring ``previous_busy_until``) if a multi-resource booking
        fails partway.  Returns ``None`` when the protocol path must be
        used instead.
        """
        if self.capacity != 1 or self._users or self._waiting:
            return None
        now = self.env._now
        prev = self._busy_until
        start = prev if prev > now else now
        self._busy_until = start + duration
        return start, prev

    def undo_occupy(self, previous_busy_until: float) -> None:
        """Roll back the most recent :meth:`try_occupy` booking.

        Only valid immediately after the booking, within the same
        synchronous block (no simulated time may have passed and no
        further bookings or requests may have been made).
        """
        self._busy_until = previous_busy_until

    def _schedule_wakeup(self) -> None:
        """Grant the FIFO head when the active booking expires."""
        event = Event(self.env)
        event._ok = True
        event._value = None
        event.callbacks.append(self._wake)
        self.env._schedule(event, self._busy_until, NORMAL)

    def _wake(self, _event: Event) -> None:
        if self._waiting and len(self._users) < self.capacity and \
                self._busy_until <= self.env._now:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            work = self.env.work
            if work is not None:
                work.resource_grants += 1
            nxt.succeed(nxt)

    # -- request/grant/release protocol -----------------------------------
    def request(self) -> Request:
        """Claim one unit; the returned event fires when granted."""
        profiler = self.env.profiler
        if profiler is None:
            return self._request()
        profiler.enter("resource.request")
        try:
            return self._request()
        finally:
            profiler.leave()

    def _request(self) -> Request:
        req = Request(self)
        work = self.env.work
        if work is not None:
            work.resource_requests += 1
        if len(self._users) < self.capacity:
            if self._busy_until > self.env._now:
                # A timestamp booking holds the resource: queue exactly
                # as behind a granted request, and let the booking-end
                # wakeup play the role of the holder's release.
                if not self._waiting:
                    self._schedule_wakeup()
                self._waiting.append(req)
            else:
                if work is not None:
                    work.resource_grants += 1
                self._users.add(req)
                req.succeed(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, req: Request) -> None:
        """Return a previously granted unit and wake the next waiter."""
        profiler = self.env.profiler
        if profiler is None:
            self._release(req)
            return
        profiler.enter("resource.release")
        try:
            self._release(req)
        finally:
            profiler.leave()

    def _release(self, req: Request) -> None:
        work = self.env.work
        if req in self._users:
            self._users.remove(req)
            if work is not None:
                work.resource_releases += 1
        elif req in self._waiting:
            # Cancelled before being granted.
            self._waiting.remove(req)
            if work is not None:
                work.resource_cancellations += 1
            return
        else:
            raise SimulationError("release of a request not held")
        if self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            if work is not None:
                work.resource_grants += 1
            nxt.succeed(nxt)


class Store:
    """Unbounded FIFO of items with blocking retrieval.

    ``put`` never blocks (the simulated hardware queues we model are
    large relative to the workloads); ``get`` returns an event that
    fires with the oldest item once one is available.
    """

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env: Environment):
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Optional[Deque[Event]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items, oldest first."""
        return tuple(self._items)

    def put(self, item: Any) -> None:
        """Append ``item``, waking the oldest blocked getter if any."""
        work = self.env.work
        if work is not None:
            work.store_puts += 1
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (FIFO)."""
        work = self.env.work
        if work is not None:
            work.store_gets += 1
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


class FilterStore(Store):
    """A :class:`Store` whose getters can select items by predicate.

    Used by the MPI matching layer: a receive posted for a particular
    (source, tag) envelope must take the oldest *matching* message, not
    the oldest message outright.
    """

    __slots__ = ("_filter_getters",)

    def __init__(self, env: Environment):
        super().__init__(env)
        self._filter_getters: Deque[tuple] = deque()
        self._getters = None  # unused here

    def put(self, item: Any) -> None:
        work = self.env.work
        if work is not None:
            work.store_puts += 1
        for idx, (event, predicate) in enumerate(self._filter_getters):
            if predicate(item):
                del self._filter_getters[idx]
                event.succeed(item)
                return
        self._items.append(item)

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:
        if predicate is None:
            predicate = lambda item: True  # noqa: E731 - trivial default
        work = self.env.work
        if work is not None:
            work.store_gets += 1
        event = Event(self.env)
        for idx, item in enumerate(self._items):
            if predicate(item):
                del self._items[idx]
                event.succeed(item)
                return event
        self._filter_getters.append((event, predicate))
        return event
