"""Shared resources for simulated processes.

Two primitives cover everything the network and node models need:

* :class:`Resource` — a counted resource with FIFO request queueing.
  Network links, NIC injection ports, and DMA engines are capacity-1
  resources; a holder models occupancy by holding the grant for the
  transfer duration.
* :class:`Store` — an unbounded FIFO of items with blocking ``get``.
  Message queues between NICs and the MPI matching layer are stores.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from .engine import Environment, Event, SimulationError

__all__ = ["Resource", "Request", "Store", "FilterStore"]


class Request(Event):
    """A pending claim on a :class:`Resource`.

    Fires (succeeds) when the resource grants it.  Must be returned via
    :meth:`Resource.release` when the holder is done.
    """

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)


class Resource:
    """A counted resource with strict FIFO granting.

    FIFO ordering is what makes link contention deterministic: requests
    are granted in arrival order, with ties already resolved by the
    engine's deterministic event ordering.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._waiting: Deque[Request] = deque()
        self._users: set = set()

    @property
    def count(self) -> int:
        """Number of grants currently outstanding."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a grant."""
        return len(self._waiting)

    def request(self) -> Request:
        """Claim one unit; the returned event fires when granted."""
        profiler = self.env.profiler
        if profiler is None:
            return self._request()
        profiler.enter("resource.request")
        try:
            return self._request()
        finally:
            profiler.leave()

    def _request(self) -> Request:
        req = Request(self)
        work = self.env.work
        if work is not None:
            work.resource_requests += 1
        if len(self._users) < self.capacity:
            if work is not None:
                work.resource_grants += 1
            self._users.add(req)
            req.succeed(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, req: Request) -> None:
        """Return a previously granted unit and wake the next waiter."""
        profiler = self.env.profiler
        if profiler is None:
            self._release(req)
            return
        profiler.enter("resource.release")
        try:
            self._release(req)
        finally:
            profiler.leave()

    def _release(self, req: Request) -> None:
        work = self.env.work
        if req in self._users:
            self._users.remove(req)
            if work is not None:
                work.resource_releases += 1
        elif req in self._waiting:
            # Cancelled before being granted.
            self._waiting.remove(req)
            if work is not None:
                work.resource_cancellations += 1
            return
        else:
            raise SimulationError("release of a request not held")
        if self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            if work is not None:
                work.resource_grants += 1
            nxt.succeed(nxt)


class Store:
    """Unbounded FIFO of items with blocking retrieval.

    ``put`` never blocks (the simulated hardware queues we model are
    large relative to the workloads); ``get`` returns an event that
    fires with the oldest item once one is available.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items, oldest first."""
        return tuple(self._items)

    def put(self, item: Any) -> None:
        """Append ``item``, waking the oldest blocked getter if any."""
        work = self.env.work
        if work is not None:
            work.store_puts += 1
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (FIFO)."""
        work = self.env.work
        if work is not None:
            work.store_gets += 1
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


class FilterStore(Store):
    """A :class:`Store` whose getters can select items by predicate.

    Used by the MPI matching layer: a receive posted for a particular
    (source, tag) envelope must take the oldest *matching* message, not
    the oldest message outright.
    """

    def __init__(self, env: Environment):
        super().__init__(env)
        self._filter_getters: Deque[tuple] = deque()
        self._getters = None  # type: ignore[assignment]  # unused here

    def put(self, item: Any) -> None:
        work = self.env.work
        if work is not None:
            work.store_puts += 1
        for idx, (event, predicate) in enumerate(self._filter_getters):
            if predicate(item):
                del self._filter_getters[idx]
                event.succeed(item)
                return
        self._items.append(item)

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:
        if predicate is None:
            predicate = lambda item: True  # noqa: E731 - trivial default
        work = self.env.work
        if work is not None:
            work.store_gets += 1
        event = Event(self.env)
        for idx, item in enumerate(self._items):
            if predicate(item):
                del self._items[idx]
                event.succeed(item)
                return event
        self._filter_getters.append((event, predicate))
        return event
