"""Text reports: link utilization and engine hot paths.

The utilization report is the simulator-side view of the paper's
aggregated-bandwidth story: ``Rinf(p)`` saturates when the busiest
links approach busy fraction 1.0, and the top-contended list names the
links whose serialization produced the network-contention component of
``D(m, p)``.

The engine report renders an :class:`~repro.obs.EngineProfiler` into
the hot-path table the speed overhaul works from.  Every section is
deterministically ordered (counts descending, names breaking ties) so
two profiles of the same workload differ only in the wall-clock
figures, never in row order.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["link_stats", "format_utilization_report",
           "format_engine_report"]


def link_stats(fabric) -> List[Dict[str, Any]]:
    """Per-link occupancy statistics, one dict per fabric link."""
    stats = []
    for link_id, link in fabric._links.items():
        stats.append({
            "link": link_id,
            "transfers": link.transfers,
            "bytes": link.bytes_carried,
            "busy_us": link.busy_us,
            "wait_us": link.wait_us,
            "contended_transfers": link.contended_transfers,
        })
    return stats


def format_utilization_report(machine, elapsed_us: float,
                              top: int = 8) -> str:
    """Per-link busy fractions and top-k contended links.

    ``elapsed_us`` is the window the fractions are computed over
    (normally the simulated time spent in the traced operation).
    """
    stats = link_stats(machine.fabric)
    used = [s for s in stats if s["transfers"]]
    lines = [f"link utilization over {elapsed_us:.1f} us "
             f"({len(used)}/{len(stats)} links carried traffic):"]
    if not used or elapsed_us <= 0:
        lines.append("  (no link traffic recorded)")
        return "\n".join(lines)
    for s in stats:
        s["busy_frac"] = s["busy_us"] / elapsed_us if elapsed_us else 0.0
    total_bytes = sum(s["bytes"] for s in used)
    total_busy = sum(s["busy_us"] for s in used)
    mean_frac = total_busy / (elapsed_us * len(stats))
    aggregate_mbs = (total_bytes / elapsed_us) / 1.048576
    lines.append(f"  bytes on wire: {total_bytes}   achieved aggregate "
                 f"bandwidth: {aggregate_mbs:.1f} MB/s")
    lines.append(f"  mean busy fraction (all links): {mean_frac:.3f}")
    busiest = sorted(used, key=lambda s: s["busy_us"],
                     reverse=True)[:top]
    lines.append(f"  top {len(busiest)} busiest links:")
    for s in busiest:
        lines.append(
            f"    {str(s['link']):<22s} busy={s['busy_frac']:6.1%} "
            f"transfers={s['transfers']:<5d} bytes={s['bytes']}")
    contended = [s for s in used if s["wait_us"] > 0]
    contended.sort(key=lambda s: s["wait_us"], reverse=True)
    if contended:
        lines.append(f"  top {min(top, len(contended))} contended links "
                     f"(by queueing delay imposed):")
        for s in contended[:top]:
            lines.append(
                f"    {str(s['link']):<22s} waited={s['wait_us']:.1f} us "
                f"over {s['contended_transfers']} stalled transfers")
    else:
        lines.append("  no link contention observed")
    return "\n".join(lines)


def format_engine_report(profiler, top: int = 10) -> str:
    """Hot-path report for an :class:`~repro.obs.EngineProfiler`.

    Event classes are listed by scheduled count descending (name
    breaks ties); sites come from ``profiler.rankings()``, which is
    already deterministically tie-broken.  Shares are of total *self*
    time, so the column sums to 100% even with nested regions.
    """
    lines = ["engine profile:",
             f"  events scheduled: {profiler.total_scheduled}   "
             f"fired: {profiler.total_fired}"]
    by_class = sorted(profiler.events_scheduled.items(),
                      key=lambda item: (-item[1], item[0]))
    for name, count in by_class:
        fired = profiler.events_fired.get(name, 0)
        lines.append(f"    {name:<14s} scheduled={count:<8d} "
                     f"fired={fired}")
    total_s = profiler.total_callback_seconds
    lines.append(f"  callback wall-clock: {total_s * 1e3:.2f} ms "
                 f"across {len(profiler.sites)} sites")
    for site, calls, cum_s, self_s in profiler.rankings()[:top]:
        share = self_s / total_s if total_s else 0.0
        lines.append(f"    {site:<18s} calls={calls:<8d} "
                     f"cum={cum_s * 1e3:9.2f} ms  "
                     f"self={self_s * 1e3:9.2f} ms  {share:6.1%}")
    return "\n".join(lines)
