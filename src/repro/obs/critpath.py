"""Causal critical-path analysis over captured span traces.

The paper explains *where* each machine loses time by decomposing
measured collective latency into startup and transmission components
(Eq. 1-2, Fig. 4).  This module produces the same kind of answer for
*any* traced run, clean or faulty: it walks the span DAG a
:class:`~repro.sim.Tracer` captured (collective -> phase -> message ->
link, plus the ``retransmit``/``backoff``/``reroute`` fault-recovery
spans) and extracts

* the **causal chain** — the longest dependency path of messages, where
  each message's sender received the data it forwards from the previous
  message on the chain;
* a **per-component attribution** that partitions the collective's full
  extent into ``software`` (rank-local overhead and idle), ``wire``
  (link occupancy), ``contention`` (queueing for busy links), and
  ``fault_recovery`` (wasted transmissions, retransmission backoff,
  detours) — the partition is exact, so the components always sum to
  the collective's total simulated time;
* **per-rank slack** — how long each rank sat idle relative to the
  whole operation.

Only :mod:`repro.sim` is imported here, so the module is safe to
re-export from ``repro.obs`` (the runtime layers it analyses import
that package's leaf modules).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..sim import Span, Tracer

__all__ = [
    "COMPONENTS",
    "FAULT_SPAN_CATEGORIES",
    "PathStep",
    "CriticalPath",
    "critical_path",
    "critpath_rows",
    "write_critpath_csv",
]

#: Attribution components, in report order.
COMPONENTS = ("software", "wire", "contention", "fault_recovery")

#: Span categories whose time is fault-recovery work (wasted
#: transmission attempts, retransmission backoff, detour transfers).
FAULT_SPAN_CATEGORIES = frozenset({"retransmit", "backoff", "reroute"})

#: Causality tolerance: a predecessor must deliver no later than this
#: after its successor starts (float-noise guard, microseconds).
_EPS = 1e-9

#: Overlap resolution: the most specific explanation wins.
_PRIORITY = {"fault_recovery": 3, "contention": 2, "wire": 1}


@dataclass(frozen=True)
class PathStep:
    """One message hop on the critical chain."""

    span_id: int
    name: str
    #: Sending rank (the span's node).
    src: Optional[int]
    #: Receiving rank (from the span detail, when recorded).
    dst: Optional[int]
    start_us: float
    end_us: float
    #: Gap between the previous step's delivery and this send's entry
    #: (rank-local processing; attributed to ``software``).
    gap_us: float
    #: Exact partition of ``[start_us, end_us]`` by component.
    components: Dict[str, float] = field(default_factory=dict)

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    def dominant(self) -> Tuple[str, float]:
        """``(component, fraction)`` of the step's largest component."""
        if self.duration_us <= 0:
            return "software", 0.0
        name = max(COMPONENTS, key=lambda c: self.components.get(c, 0.0))
        return name, self.components.get(name, 0.0) / self.duration_us


@dataclass
class CriticalPath:
    """The longest causal dependency chain of one collective run."""

    op: str
    seq: Optional[int]
    start_us: float
    end_us: float
    steps: List[PathStep]
    #: Exact partition of the collective's extent; sums to
    #: :attr:`total_us` (up to float addition noise far below 1e-9 s).
    components: Dict[str, float]
    #: rank -> idle time (total minus the rank's message activity).
    slack_us: Dict[int, float]
    #: Messages the collective traced in total (chain + off-chain).
    messages: int

    @property
    def total_us(self) -> float:
        return self.end_us - self.start_us

    def component_fraction(self, name: str) -> float:
        if self.total_us <= 0:
            return 0.0
        return self.components.get(name, 0.0) / self.total_us

    def slack_extremes(self) -> Optional[Tuple[Tuple[int, float],
                                               Tuple[int, float]]]:
        """``((rank, min slack), (rank, max slack))`` or ``None``."""
        if not self.slack_us:
            return None
        ranks = sorted(self.slack_us)
        lo = min(ranks, key=lambda r: (self.slack_us[r], r))
        hi = max(ranks, key=lambda r: (self.slack_us[r], -r))
        return (lo, self.slack_us[lo]), (hi, self.slack_us[hi])

    def format(self, top: Optional[int] = None) -> str:
        """ASCII rendering: totals, the chain, and the slack range."""
        lines = [
            f"critical path: {self.op}"
            + (f" seq {self.seq}" if self.seq is not None else "")
            + f" ({self.messages} messages traced, "
              f"{len(self.steps)} on the chain)",
            "total %.1f us = " % self.total_us + " + ".join(
                f"{name.replace('_', '-')} "
                f"{self.components.get(name, 0.0):.1f} "
                f"({self.component_fraction(name):.1%})"
                for name in COMPONENTS),
        ]
        shown = self.steps if top is None else self.steps[:top]
        if shown:
            lines.append(f"{'step':>4}  {'span':<18} "
                         f"{'start us':>12} {'end us':>12} "
                         f"{'dur us':>10} {'gap us':>8}  dominant")
        for index, step in enumerate(shown, start=1):
            name, fraction = step.dominant()
            lines.append(
                f"{index:>4}  {step.name:<18} "
                f"{step.start_us:>12.1f} {step.end_us:>12.1f} "
                f"{step.duration_us:>10.1f} {step.gap_us:>8.1f}  "
                f"{name.replace('_', '-')} {fraction:.0%}")
        if top is not None and len(self.steps) > top:
            lines.append(f"  ... ({len(self.steps) - top} more steps)")
        extremes = self.slack_extremes()
        if extremes is not None:
            (lo_rank, lo), (hi_rank, hi) = extremes
            lines.append(f"per-rank slack: min {lo:.1f} us "
                         f"(rank {lo_rank}), max {hi:.1f} us "
                         f"(rank {hi_rank})")
        return "\n".join(lines)


def _partition(start: float, end: float,
               intervals: List[Tuple[float, float, str]]
               ) -> Dict[str, float]:
    """Partition ``[start, end]`` by component.

    ``intervals`` are candidate ``(s, e, component)`` explanations;
    where several overlap, the highest-priority one wins, and time no
    interval explains is ``software``.  The segments cover the window
    exactly once, which is what makes the attribution sum exact.
    """
    out = {name: 0.0 for name in COMPONENTS}
    if end <= start:
        return out
    clipped = [(max(s, start), min(e, end), component)
               for s, e, component in intervals
               if min(e, end) > max(s, start)]
    bounds = sorted({start, end,
                     *(b for s, e, _ in clipped for b in (s, e))})
    for a, b in zip(bounds, bounds[1:]):
        covering = [component for s, e, component in clipped
                    if s <= a and e >= b]
        if covering:
            component = max(covering, key=_PRIORITY.__getitem__)
        else:
            component = "software"
        out[component] += b - a
    return out


def _message_intervals(message: Span, by_parent: Dict[int, List[Span]],
                       contention: List[Tuple[float, float, int, Any]]
                       ) -> List[Tuple[float, float, str]]:
    """Candidate component intervals inside one message span."""
    close = message.end if message.end is not None else message.start
    intervals: List[Tuple[float, float, str]] = []

    def descend(span: Span) -> None:
        for child in by_parent.get(span.id, ()):
            end = child.end if child.end is not None else close
            if child.category in FAULT_SPAN_CATEGORIES:
                intervals.append((child.start, end, "fault_recovery"))
            elif child.category == "link":
                intervals.append((child.start, end, "wire"))
            descend(child)

    descend(message)
    dst = message.detail.get("dst")
    for time, waited, node, record_dst in contention:
        if node == message.node and record_dst == dst and \
                message.start - _EPS <= time <= close + _EPS:
            intervals.append((time - waited, time, "contention"))
    return intervals


def critical_path(tracer: Tracer,
                  collective: Optional[Span] = None) -> CriticalPath:
    """Extract the causal critical path of one traced collective.

    With several collective spans in the trace (``iterations > 1``),
    the longest one is analysed unless ``collective`` selects another.
    Raises :class:`ValueError` when the trace holds no closed
    collective span (tracing was off, or the ring dropped it).
    """
    spans = tracer.spans()
    if collective is None:
        candidates = [s for s in spans
                      if s.category == "collective" and s.end is not None]
        if not candidates:
            raise ValueError(
                "no closed collective span in the trace; capture with "
                "trace=True and an unbounded (or large enough) span ring")
        collective = max(candidates, key=lambda s: (s.duration, -s.id))
    elif collective.end is None:
        raise ValueError("cannot analyse an open collective span")

    by_parent: Dict[int, List[Span]] = {}
    for span in spans:
        by_parent.setdefault(span.parent, []).append(span)
    phase_ids = {s.id for s in by_parent.get(collective.id, ())
                 if s.category == "phase"}
    messages = [s for s in spans
                if s.category == "message" and s.parent in phase_ids
                and s.end is not None]
    contention = [(r.time, float(r.detail.get("waited_us", 0.0)),
                   r.node, r.detail.get("dst"))
                  for r in tracer.records("link-contention")
                  if r.detail.get("waited_us", 0.0) > 0]

    # -- chain extraction: walk causality backwards from the last
    #    delivery.  A message's predecessor is the latest message that
    #    delivered to its sender before it was issued.
    chain: List[Span] = []
    if messages:
        current = max(messages, key=lambda m: (m.end, m.id))
        chain.append(current)
        while True:
            predecessors = [m for m in messages
                            if m.detail.get("dst") == current.node
                            and m.end <= current.start + _EPS]
            if not predecessors:
                break
            current = max(predecessors, key=lambda m: (m.end, m.id))
            chain.append(current)
        chain.reverse()

    # -- attribution: partition the collective's whole extent along
    #    the chain; gaps between hops are rank-local software time.
    components = {name: 0.0 for name in COMPONENTS}
    steps: List[PathStep] = []
    cursor = collective.start
    for message in chain:
        step_start = max(message.start, cursor)
        step_end = max(message.end, step_start)
        gap = step_start - cursor
        components["software"] += gap
        parts = _partition(step_start, step_end,
                           _message_intervals(message, by_parent,
                                              contention))
        for name, value in parts.items():
            components[name] += value
        dst = message.detail.get("dst")
        steps.append(PathStep(
            span_id=message.id, name=message.name, src=message.node,
            dst=None if dst is None else int(dst),
            start_us=step_start, end_us=step_end, gap_us=gap,
            components=parts))
        cursor = step_end
    if collective.end > cursor:
        components["software"] += collective.end - cursor

    # -- per-rank slack: idle time relative to the whole operation,
    #    where a rank is busy while a message it sends or receives is
    #    in flight.
    busy_intervals: Dict[int, List[Tuple[float, float]]] = {}
    for message in messages:
        ranks = {message.node, message.detail.get("dst")}
        for rank in ranks:
            if rank is None:
                continue
            busy_intervals.setdefault(int(rank), []).append(
                (message.start, message.end))
    slack: Dict[int, float] = {}
    total = collective.end - collective.start
    for rank, intervals in busy_intervals.items():
        busy = 0.0
        edge = None
        for start, end in sorted(intervals):
            if edge is None or start > edge:
                busy += end - start
                edge = end
            elif end > edge:
                busy += end - edge
                edge = end
        slack[rank] = max(total - busy, 0.0)

    return CriticalPath(
        op=str(collective.detail.get("op", collective.name)),
        seq=collective.detail.get("seq"),
        start_us=collective.start, end_us=collective.end,
        steps=steps, components=components, slack_us=slack,
        messages=len(messages))


def critpath_rows(path: CriticalPath) -> List[Dict[str, Any]]:
    """The chain flattened to CSV-friendly dict rows."""
    rows = []
    for index, step in enumerate(path.steps, start=1):
        row: Dict[str, Any] = {
            "step": index,
            "span_id": step.span_id,
            "name": step.name,
            "src": "" if step.src is None else step.src,
            "dst": "" if step.dst is None else step.dst,
            "start_us": step.start_us,
            "end_us": step.end_us,
            "duration_us": step.duration_us,
            "gap_us": step.gap_us,
        }
        for name in COMPONENTS:
            row[f"{name}_us"] = step.components.get(name, 0.0)
        rows.append(row)
    return rows


def write_critpath_csv(path: CriticalPath, filename: str) -> str:
    """Write the chain (plus a totals row) as CSV; returns the path."""
    rows = critpath_rows(path)
    totals: Dict[str, Any] = {
        "step": "total", "span_id": "", "name": path.op, "src": "",
        "dst": "", "start_us": path.start_us, "end_us": path.end_us,
        "duration_us": path.total_us, "gap_us": "",
    }
    for name in COMPONENTS:
        totals[f"{name}_us"] = path.components.get(name, 0.0)
    fields = ["step", "span_id", "name", "src", "dst", "start_us",
              "end_us", "duration_us", "gap_us"] + \
        [f"{name}_us" for name in COMPONENTS]
    with open(filename, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fields)
        writer.writeheader()
        writer.writerows(rows)
        writer.writerow(totals)
    return filename
