"""Deterministic work metering for the simulator's own hot paths.

Wall-clock profiles (:class:`~repro.obs.EngineProfiler`) answer *where
the host's time goes*, but their numbers change every run.  The
:class:`WorkMeter` counts the *work itself* — events scheduled and
fired, heap traffic, resource grants, transfers booked,
retransmissions — as plain integers that depend only on the simulated
workload, never on the host.  Two runs of the same workload produce
identical counters on any machine, which is what lets the
``BENCH_engine.json`` trajectory byte-compare its ``work`` section the
way the sweep baseline byte-compares cell times (see
:mod:`repro.bench.perfsuite`).

Attachment follows the engine-profiler convention: ``env.work`` is
``None`` by default and every instrumented site guards its update with
that single check, so an unmetered run pays one branch per site::

    from repro.obs.perf import WorkMeter

    meter = WorkMeter()
    env.work = meter          # attach (detach with env.work = None)
    ...run...
    print(meter.format_report())
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

__all__ = ["WORK_COUNTERS", "WorkMeter"]

#: Every counter a :class:`WorkMeter` maintains, grouped by the
#: subsystem that increments it.  The tuple is the schema of the
#: ``work`` section of ``BENCH_engine.json``: adding a counter extends
#: every future artifact, so keep names stable.
WORK_COUNTERS: Tuple[str, ...] = (
    # -- engine (repro.sim.engine) -------------------------------------
    "events_scheduled",      # Environment._schedule calls
    "events_fired",          # events popped and processed by step()
    "callbacks_dispatched",  # callback invocations across all events
    "heap_pushes",           # pushes into the pending-event heap
    "heap_pops",             # pops off the pending-event heap
    "heap_peak",             # high-water mark of metered queue depth
                             # (pushes minus pops while attached)
    "interrupts",            # Process.interrupt deliveries
    # -- resources (repro.sim.resources) -------------------------------
    "resource_requests",       # Resource.request calls
    "resource_grants",         # requests granted (immediately or later)
    "resource_releases",       # grants returned
    "resource_cancellations",  # requests released before being granted
    "resource_occupancies",    # synchronous try_occupy bookings taken
    "store_puts",              # Store/FilterStore items deposited
    "store_gets",              # Store/FilterStore get events created
    # -- fabric (repro.network.fabric) ----------------------------------
    "transfers_booked",      # transfers entering the fabric
    "transfers_completed",   # transfers whose tail left the network
    "transfers_aborted",     # transfers killed by a mid-flight fault
    "transfers_stalled",     # transfers that queued behind a busy link
    "transfers_rerouted",    # transfers detoured around dead links
    "transfers_shortcircuited",  # transfers booked on the analytic fast path
    "link_acquisitions",     # individual link grants across all routes
    # -- transport (repro.mpi.transport) --------------------------------
    "messages_sent",         # Transport.send calls issued
    "messages_delivered",    # envelopes handed to the matching layer
    "retransmissions",       # wire attempts re-sent after a failure
)


class WorkMeter:
    """Deterministic integer counters of the engine's work.

    Counters are plain attributes incremented inline by the
    instrumented layers (no dict lookups on the hot path); the class
    itself holds no wall-clock state, so its snapshot is byte-stable
    across runs, processes, and hosts.
    """

    __slots__ = WORK_COUNTERS

    def __init__(self) -> None:
        for name in WORK_COUNTERS:
            setattr(self, name, 0)

    def reset(self) -> None:
        """Zero every counter (reuse one meter across workloads)."""
        for name in WORK_COUNTERS:
            setattr(self, name, 0)

    def snapshot(self) -> Dict[str, int]:
        """All counters as a name-sorted plain dict (JSON-ready)."""
        return {name: int(getattr(self, name))
                for name in sorted(WORK_COUNTERS)}

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(self.snapshot().items())

    def total(self) -> int:
        """Sum of all counters (a crude single work number)."""
        return sum(getattr(self, name) for name in WORK_COUNTERS)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorkMeter):
            return NotImplemented
        return self.snapshot() == other.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<WorkMeter events={self.events_fired} "
                f"total={self.total()}>")

    def format_report(self) -> str:
        """Human-readable dump of the non-zero counters."""
        lines = ["work counters:"]
        populated = [(name, getattr(self, name))
                     for name in sorted(WORK_COUNTERS)
                     if getattr(self, name)]
        if not populated:
            lines.append("  (no work recorded)")
        for name, value in populated:
            lines.append(f"  {name:<24s} {value}")
        return "\n".join(lines)
