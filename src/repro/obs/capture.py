"""One-call capture of a fully observed collective run.

``capture_collective`` builds a world with tracing/metrics/profiling
switched on, runs one collective, and hands back everything the
exporters and reports consume.  This is what the ``repro-bench trace``
and ``repro-bench profile`` subcommands (and the examples) drive.

Imports of the runtime layers happen lazily so ``repro.obs`` stays
importable from the lower layers it instruments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import Tracer
from .metrics import MetricsRegistry
from .perf import WorkMeter
from .profiler import EngineProfiler

__all__ = ["CollectiveCapture", "capture_collective"]


@dataclass
class CollectiveCapture:
    """Everything observed about one collective run."""

    machine: str
    op: str
    nbytes: int
    num_nodes: int
    iterations: int
    elapsed_us: float
    world: object
    tracer: Tracer
    metrics: MetricsRegistry
    profiler: Optional[EngineProfiler]
    work: Optional[WorkMeter] = None

    def critical_path(self):
        """Causal critical path of the captured run (the longest
        collective span when ``iterations > 1``)."""
        from .critpath import critical_path

        return critical_path(self.tracer)

    def summary(self) -> str:
        """One-paragraph text summary of what was captured."""
        spans = self.tracer.spans()
        by_category: dict = {}
        for span in spans:
            by_category[span.category] = \
                by_category.get(span.category, 0) + 1
        parts = [f"{self.op} on {self.machine}, "
                 f"p={self.num_nodes}, m={self.nbytes} B, "
                 f"{self.iterations} iteration(s): "
                 f"{self.elapsed_us:.1f} us simulated"]
        if spans or self.tracer.records():
            categories = ", ".join(
                f"{count} {category}"
                for category, count in sorted(by_category.items()))
            parts.append(f"spans: {len(spans)} ({categories}); "
                         f"flat records: {len(self.tracer.records())}; "
                         f"dropped: {self.tracer.dropped}")
        return "\n".join(parts)


def capture_collective(machine: str, op: str, nbytes: int = 1024,
                       num_nodes: int = 16, root: int = 0,
                       iterations: int = 1, seed: int = 0,
                       contention: bool = True, trace: bool = True,
                       metrics: bool = True, profile: bool = False,
                       work: bool = False,
                       max_records: Optional[int] = None,
                       max_spans: Optional[int] = None,
                       faults=None) -> CollectiveCapture:
    """Run ``iterations`` of one collective with full observability.

    ``faults`` (a :class:`~repro.faults.FaultPlan`) runs the capture
    under fault injection, so the trace carries the
    ``retransmit``/``backoff``/``reroute`` recovery spans.  ``work``
    attaches a :class:`WorkMeter`, so the capture also carries the
    deterministic work counters of :mod:`repro.obs.perf`.
    """
    from ..mpi import MpiWorld

    world = MpiWorld(machine, num_nodes, seed=seed,
                     contention=contention, trace=trace,
                     metrics=metrics, faults=faults)
    if max_records is not None or max_spans is not None:
        world.tracer.configure_limits(max_records=max_records,
                                      max_spans=max_spans)
    profiler = None
    if profile:
        profiler = EngineProfiler()
        world.env.profiler = profiler
    meter = None
    if work:
        meter = WorkMeter()
        world.env.work = meter
    elapsed = world.run_collective(op, nbytes, root=root,
                                   iterations=iterations)
    return CollectiveCapture(
        machine=world.spec.name, op=op, nbytes=nbytes,
        num_nodes=num_nodes, iterations=iterations, elapsed_us=elapsed,
        world=world, tracer=world.tracer, metrics=world.machine.metrics,
        profiler=profiler, work=meter)
