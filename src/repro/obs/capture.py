"""One-call capture of a fully observed collective run.

``capture_collective`` builds a world with tracing/metrics/profiling
switched on, runs one collective, and hands back everything the
exporters and reports consume.  This is what the ``repro-bench trace``
and ``repro-bench profile`` subcommands (and the examples) drive.

Imports of the runtime layers happen lazily so ``repro.obs`` stays
importable from the lower layers it instruments.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..sim import Tracer
from .metrics import MetricsRegistry
from .perf import WorkMeter
from .profiler import EngineProfiler

__all__ = ["REPLAY_SCHEMA", "CollectiveCapture", "capture_collective",
           "dumps_replay_frames", "write_replay_frames",
           "load_replay_frames"]

PathLike = Union[str, Path]

#: Schema tag of the serialized replay-frame document.
REPLAY_SCHEMA = "repro-replay/1"

#: Span categories serialized into replay frames, and their painting
#: order in the dashboard (recovery categories overlay plain traffic).
REPLAY_CATEGORIES = ("collective", "phase", "message", "link",
                     "retransmit", "backoff", "reroute")


def _round9(value: float) -> float:
    """9-significant-digit rounding (the repo's golden convention)."""
    return float(f"{value:.9g}")


def _link_points(name: str, topology) -> Optional[List[List[float]]]:
    """Endpoint positions of one link span, from its ``link <id>`` name.

    Mesh and torus link ids carry the endpoint grid coordinates; those
    are mapped through the topology's visual layout so the dashboard
    can draw the individual hop.  Indirect-fabric ids (``("ms", stage,
    port)``) have no node geometry — the replay falls back to the
    message's src->dst line.
    """
    if not name.startswith("link "):
        return None
    try:
        link_id = ast.literal_eval(name[5:])
    except (SyntaxError, ValueError):
        return None
    if not isinstance(link_id, tuple):
        return None
    if link_id and link_id[0] == "mesh" and len(link_id) == 3:
        coords = link_id[1:]
    elif link_id and link_id[0] == "torus" and len(link_id) == 4:
        coords = link_id[2:]
    else:
        return None
    layout = topology.layout_positions()
    points = []
    for coord in coords:
        try:
            node = topology.node_at(*coord)
        except (TypeError, ValueError):
            return None
        x, y = layout[node]
        points.append([x, y])
    return points


@dataclass
class CollectiveCapture:
    """Everything observed about one collective run."""

    machine: str
    op: str
    nbytes: int
    num_nodes: int
    iterations: int
    elapsed_us: float
    world: object
    tracer: Tracer
    metrics: MetricsRegistry
    profiler: Optional[EngineProfiler]
    work: Optional[WorkMeter] = None
    seed: int = 0
    #: Name of the fault-plan preset the capture ran under, if any.
    faults_name: Optional[str] = None

    def critical_path(self):
        """Causal critical path of the captured run (the longest
        collective span when ``iterations > 1``)."""
        from .critpath import critical_path

        return critical_path(self.tracer)

    def summary(self) -> str:
        """One-paragraph text summary of what was captured."""
        spans = self.tracer.spans()
        by_category: dict = {}
        for span in spans:
            by_category[span.category] = \
                by_category.get(span.category, 0) + 1
        parts = [f"{self.op} on {self.machine}, "
                 f"p={self.num_nodes}, m={self.nbytes} B, "
                 f"{self.iterations} iteration(s): "
                 f"{self.elapsed_us:.1f} us simulated"]
        if spans or self.tracer.records():
            categories = ", ".join(
                f"{count} {category}"
                for category, count in sorted(by_category.items()))
            parts.append(f"spans: {len(spans)} ({categories}); "
                         f"flat records: {len(self.tracer.records())}; "
                         f"dropped: {self.tracer.dropped}")
        return "\n".join(parts)

    def to_replay_frames(self) -> Dict[str, Any]:
        """Serialize the capture as a deterministic replay document.

        The document (schema :data:`REPLAY_SCHEMA`) carries everything
        the dashboard's hop-by-hop replay needs and nothing volatile:
        the topology's visual layout, every traced span flattened to a
        frame (collective/phase envelopes, messages, per-hop link
        occupancies with endpoint geometry where the fabric has any,
        and the ``retransmit``/``backoff``/``reroute`` recovery spans),
        and the causal critical path for the overlay.  All times are
        simulated microseconds rounded to 9 significant digits, so the
        same seeded capture serializes byte-identically across runs
        and processes.
        """
        topology = self.world.machine.topology
        layout = topology.layout_positions()
        frames: List[Dict[str, Any]] = []
        for span in self.tracer.spans():
            if span.category not in REPLAY_CATEGORIES:
                continue
            end = span.start if span.end is None else span.end
            frame: Dict[str, Any] = {
                "id": span.id,
                "parent": span.parent,
                "category": span.category,
                "name": span.name,
                "node": span.node,
                "start_us": _round9(span.start),
                "end_us": _round9(end),
            }
            dst = span.detail.get("dst")
            if dst is not None:
                frame["dst"] = int(dst)
            nbytes = span.detail.get("nbytes")
            if nbytes is not None:
                frame["nbytes"] = int(nbytes)
            if span.category == "link":
                points = _link_points(span.name, topology)
                if points is not None:
                    frame["points"] = points
            frames.append(frame)
        frames.sort(key=lambda f: (f["start_us"], f["id"]))
        critical: Optional[Dict[str, Any]] = None
        try:
            path = self.critical_path()
        except ValueError:
            path = None
        if path is not None:
            critical = {
                "span_ids": [step.span_id for step in path.steps],
                "start_us": _round9(path.start_us),
                "end_us": _round9(path.end_us),
                "total_us": _round9(path.total_us),
                "components": {name: _round9(value) for name, value
                               in sorted(path.components.items())},
            }
        document: Dict[str, Any] = {
            "schema": REPLAY_SCHEMA,
            "machine": self.machine,
            "op": self.op,
            "nbytes": self.nbytes,
            "num_nodes": self.num_nodes,
            "iterations": self.iterations,
            "seed": self.seed,
            "elapsed_us": _round9(self.elapsed_us),
            "topology": {
                "kind": self.world.spec.network.kind,
                "positions": [list(layout[node])
                              for node in range(self.num_nodes)],
            },
            "frames": frames,
            "critical_path": critical,
            "dropped": self.tracer.dropped,
        }
        if self.faults_name:
            document["faults"] = self.faults_name
        return document


def capture_collective(machine: str, op: str, nbytes: int = 1024,
                       num_nodes: int = 16, root: int = 0,
                       iterations: int = 1, seed: int = 0,
                       contention: bool = True, trace: bool = True,
                       metrics: bool = True, profile: bool = False,
                       work: bool = False,
                       max_records: Optional[int] = None,
                       max_spans: Optional[int] = None,
                       faults=None) -> CollectiveCapture:
    """Run ``iterations`` of one collective with full observability.

    ``faults`` (a :class:`~repro.faults.FaultPlan`) runs the capture
    under fault injection, so the trace carries the
    ``retransmit``/``backoff``/``reroute`` recovery spans.  ``work``
    attaches a :class:`WorkMeter`, so the capture also carries the
    deterministic work counters of :mod:`repro.obs.perf`.
    """
    from ..mpi import MpiWorld

    world = MpiWorld(machine, num_nodes, seed=seed,
                     contention=contention, trace=trace,
                     metrics=metrics, faults=faults)
    if max_records is not None or max_spans is not None:
        world.tracer.configure_limits(max_records=max_records,
                                      max_spans=max_spans)
    profiler = None
    if profile:
        profiler = EngineProfiler()
        world.env.profiler = profiler
    meter = None
    if work:
        meter = WorkMeter()
        world.env.work = meter
    elapsed = world.run_collective(op, nbytes, root=root,
                                   iterations=iterations)
    return CollectiveCapture(
        machine=world.spec.name, op=op, nbytes=nbytes,
        num_nodes=num_nodes, iterations=iterations, elapsed_us=elapsed,
        world=world, tracer=world.tracer, metrics=world.machine.metrics,
        profiler=profiler, work=meter, seed=seed,
        faults_name=getattr(faults, "name", None))


def dumps_replay_frames(document: Dict[str, Any]) -> str:
    """Canonical serialization (sorted keys, indent 2, final newline)."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_replay_frames(document: Dict[str, Any],
                        path: PathLike) -> Path:
    """Write a replay document canonically; returns the path."""
    path = Path(path)
    path.write_text(dumps_replay_frames(document), "utf-8")
    return path


def load_replay_frames(path: PathLike) -> Dict[str, Any]:
    """Load and schema-check a replay document."""
    path = Path(path)
    payload = json.loads(path.read_text("utf-8"))
    schema = payload.get("schema")
    if schema != REPLAY_SCHEMA:
        raise ValueError(f"{path} is not a replay document "
                         f"(schema {schema!r}, expected "
                         f"{REPLAY_SCHEMA!r})")
    return payload
