"""Canonical run ledger: one bundle indexing every artifact family.

Every observability product the simulator emits — sweep artifacts,
tuner decision tables, drift-trend files, engine-perf trajectories,
chaos dumps, Chrome traces, and captured replay documents — is a
standalone JSON file today.  The ledger closes the loop: it
*discovers* those files, *classifies* them by schema (or by shape for
the schema-less chaos/trace documents), *validates* the classification
it made, and *indexes* them into one ``BENCH_ledger.json`` bundle:

* entries are sorted by path and keyed by a content digest of the
  volatile-scrubbed document, so building the ledger twice — in the
  same process or across processes — produces byte-identical bundles;
* every entry embeds the (scrubbed) source document, so the bundle is
  self-contained: the :mod:`repro.dash` dashboard renders from the
  ledger alone and the resulting page works from ``file://`` with no
  other inputs;
* wall-clock and host-identity fields are removed with the sweep
  runner's :func:`~repro.runner.scrub_volatile` machinery (applied at
  every nesting depth), so the bundle can be golden-tested and diffed
  like every other artifact.

Like :mod:`repro.obs.drift`, this module imports upper layers
(:mod:`repro.runner`), so it is deliberately *not* re-exported from
``repro.obs``; import it explicitly::

    from repro.obs.ledger import build_ledger, discover_artifacts
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import (Any, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple, Union)

from ..runner.artifact import scrub_volatile

__all__ = [
    "LEDGER_SCHEMA",
    "ARTIFACT_FAMILIES",
    "classify_document",
    "scrub_volatile_deep",
    "document_digest",
    "summarize_document",
    "discover_artifacts",
    "build_ledger",
    "validate_ledger",
    "dumps_ledger",
    "write_ledger",
    "load_ledger",
]

PathLike = Union[str, Path]

LEDGER_SCHEMA = "repro-ledger/1"

#: Family name -> the ``schema`` tag its documents carry (``None`` for
#: the schema-less families recognised by shape).
ARTIFACT_FAMILIES: Mapping[str, Optional[str]] = {
    "sweep": "repro-sweep/1",
    "tuning": "repro-tuning/1",
    "drift": "repro-drift/1",
    "engine-perf": "repro-engine-perf/1",
    "replay": "repro-replay/1",
    "chaos": None,
    "trace": None,
}

_SCHEMA_TO_FAMILY = {schema: family
                     for family, schema in ARTIFACT_FAMILIES.items()
                     if schema is not None}

#: Keys whose joint presence identifies a ``repro-bench chaos --out``
#: dump (the one artifact family that predates schema tags).
_CHAOS_KEYS = frozenset({"machine", "op", "plan", "clean_us",
                         "faulty_us", "counters"})

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__", "node_modules"})


def classify_document(payload: Any) -> Optional[str]:
    """Family name of one loaded JSON document, or ``None``.

    Schema-tagged families match on their ``schema`` field; a ledger's
    own schema deliberately classifies as ``None`` so a bundle is
    never indexed into another bundle.  Chrome traces are recognised
    by their ``traceEvents`` list and chaos dumps by their key set.
    """
    if not isinstance(payload, Mapping):
        return None
    schema = payload.get("schema")
    if isinstance(schema, str):
        return _SCHEMA_TO_FAMILY.get(schema)
    if isinstance(payload.get("traceEvents"), list):
        return "trace"
    if _CHAOS_KEYS <= set(payload):
        return "chaos"
    return None


def scrub_volatile_deep(value: Any) -> Any:
    """Volatile-field scrub applied at every nesting depth.

    Extends the sweep runner's top-level
    :func:`~repro.runner.scrub_volatile` to whole documents: every
    mapping at any depth loses its wall-clock/host-identity keys
    (``wall_s``, ``hostname``, ``timestamp``, ...), so regenerating an
    artifact on a different host changes the ledger only where the
    deterministic payload changed.
    """
    if isinstance(value, Mapping):
        return {key: scrub_volatile_deep(item)
                for key, item in scrub_volatile(dict(value)).items()}
    if isinstance(value, list):
        return [scrub_volatile_deep(item) for item in value]
    return value


def _canonical(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=str)


def document_digest(payload: Any) -> str:
    """sha256 hex digest of the scrubbed, canonicalized document."""
    text = _canonical(scrub_volatile_deep(payload))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- per-family summaries -------------------------------------------------

def _summary_sweep(doc: Mapping[str, Any]) -> Dict[str, Any]:
    cells = doc.get("cells", [])
    return {
        "grid": doc.get("grid"),
        "mode": doc.get("mode"),
        "sim_version": doc.get("sim_version"),
        "cells": len(cells),
        "machines": sorted({c.get("machine") for c in cells}),
        "ops": sorted({c.get("op") for c in cells}),
        "quarantined": len(doc.get("quarantined", [])),
    }


def _summary_tuning(doc: Mapping[str, Any]) -> Dict[str, Any]:
    machines = doc.get("machines", {})
    return {
        "grid": doc.get("grid"),
        "sim_version": doc.get("sim_version"),
        "machines": sorted(machines),
        "ops": sorted({op for ops in machines.values() for op in ops}),
        "flips": len(doc.get("flips", [])),
    }


def _summary_drift(doc: Mapping[str, Any]) -> Dict[str, Any]:
    return {
        "source": dict(doc.get("source", {})),
        "pass": doc.get("pass"),
        "breaches": doc.get("breaches"),
        "cells": len(doc.get("cells", [])),
    }


def _summary_engine(doc: Mapping[str, Any]) -> Dict[str, Any]:
    work = doc.get("work", {})
    total = doc.get("throughput", {}).get("total", {})
    return {
        "suite": doc.get("suite"),
        "sim_version": doc.get("sim_version"),
        "workloads": len(work),
        "events_fired": total.get("events_fired"),
    }


def _summary_chaos(doc: Mapping[str, Any]) -> Dict[str, Any]:
    return {
        "machine": doc.get("machine"),
        "op": doc.get("op"),
        "plan": doc.get("plan"),
        "nbytes": doc.get("nbytes"),
        "nodes": doc.get("nodes"),
        "clean_us": doc.get("clean_us"),
        "faulty_us": doc.get("faulty_us"),
        "penalty_us": doc.get("penalty_us"),
    }


def _summary_trace(doc: Mapping[str, Any]) -> Dict[str, Any]:
    events = doc.get("traceEvents", [])
    other = doc.get("otherData", {})
    return {
        "events": len(events),
        "spans": other.get("spans"),
        "records": other.get("records"),
        "dropped": other.get("dropped"),
        "categories": sorted({e.get("cat") for e in events
                              if isinstance(e, Mapping) and "cat" in e}),
    }


def _summary_replay(doc: Mapping[str, Any]) -> Dict[str, Any]:
    return {
        "machine": doc.get("machine"),
        "op": doc.get("op"),
        "nbytes": doc.get("nbytes"),
        "num_nodes": doc.get("num_nodes"),
        "frames": len(doc.get("frames", [])),
        "faults": doc.get("faults"),
        "has_critical_path": doc.get("critical_path") is not None,
    }


_SUMMARIZERS = {
    "sweep": _summary_sweep,
    "tuning": _summary_tuning,
    "drift": _summary_drift,
    "engine-perf": _summary_engine,
    "chaos": _summary_chaos,
    "trace": _summary_trace,
    "replay": _summary_replay,
}


def summarize_document(family: str,
                       payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Small deterministic digest of one document, per family."""
    try:
        summarize = _SUMMARIZERS[family]
    except KeyError:
        raise ValueError(f"unknown artifact family {family!r}; known: "
                         f"{', '.join(sorted(_SUMMARIZERS))}") from None
    return summarize(payload)


# -- discovery ------------------------------------------------------------

def discover_artifacts(roots: Iterable[PathLike],
                       exclude: Iterable[PathLike] = ()
                       ) -> List[Tuple[str, str, Dict[str, Any]]]:
    """Find and classify artifact files under ``roots``.

    Each root may be a JSON file or a directory (scanned recursively,
    skipping hidden directories and ``exclude`` subtrees — pass the
    dashboard output directory here so a bundle never indexes its own
    previous products).  Returns ``(relative posix path, family,
    document)`` triples sorted by path; unparseable and unclassifiable
    files are silently skipped, while an explicitly named file that
    cannot be classified raises ``ValueError``.
    """
    excluded = [Path(p).resolve() for p in exclude]
    found: Dict[str, Tuple[str, Dict[str, Any]]] = {}
    for root in roots:
        root = Path(root)
        if root.is_file():
            payload = _load_json(root)
            family = classify_document(payload)
            if family is None:
                raise ValueError(
                    f"{root} is not a recognised artifact (families: "
                    f"{', '.join(sorted(ARTIFACT_FAMILIES))})")
            found.setdefault(root.name, (family, payload))
            continue
        if not root.is_dir():
            raise ValueError(f"{root} is neither a file nor a directory")
        for path in sorted(root.rglob("*.json")):
            if _is_excluded(path, excluded):
                continue
            if any(part.startswith(".") or part in _SKIP_DIRS
                   for part in path.relative_to(root).parts[:-1]):
                continue
            try:
                payload = _load_json(path)
            except ValueError:
                continue
            family = classify_document(payload)
            if family is None:
                continue
            rel = path.relative_to(root).as_posix()
            found.setdefault(rel, (family, payload))
    return [(rel, family, payload)
            for rel, (family, payload) in sorted(found.items())]


def _is_excluded(path: Path, excluded: Sequence[Path]) -> bool:
    resolved = path.resolve()
    for root in excluded:
        if resolved == root or root in resolved.parents:
            return True
    return False


def _load_json(path: Path) -> Any:
    try:
        return json.loads(path.read_text("utf-8"))
    except (OSError, UnicodeDecodeError,
            json.JSONDecodeError) as error:
        raise ValueError(f"cannot read {path}: {error}") from None


# -- the bundle -----------------------------------------------------------

def build_ledger(entries: Iterable[Tuple[str, str, Mapping[str, Any]]]
                 ) -> Dict[str, Any]:
    """Assemble the canonical ledger bundle from classified documents.

    ``entries`` are ``(path, family, document)`` triples, normally from
    :func:`discover_artifacts`.  The bundle is deterministic: entries
    sort by path, every embedded document is volatile-scrubbed, and
    ``bundle_digest`` hashes the sorted ``(path, digest)`` index — the
    identity the dashboard page embeds and CI byte-compares.
    """
    indexed: List[Dict[str, Any]] = []
    families: Dict[str, int] = {}
    for path, family, payload in sorted(entries, key=lambda e: e[0]):
        if family not in _SUMMARIZERS:
            raise ValueError(
                f"unknown artifact family {family!r} for {path}")
        scrubbed = scrub_volatile_deep(payload)
        indexed.append({
            "path": path,
            "family": family,
            "schema": ARTIFACT_FAMILIES[family],
            "digest": document_digest(payload),
            "summary": summarize_document(family, scrubbed),
            "document": scrubbed,
        })
        families[family] = families.get(family, 0) + 1
    bundle_digest = hashlib.sha256(_canonical(
        [[entry["path"], entry["digest"]] for entry in indexed]
    ).encode("utf-8")).hexdigest()
    return {
        "schema": LEDGER_SCHEMA,
        "entries": indexed,
        "families": families,
        "bundle_digest": bundle_digest,
    }


def validate_ledger(payload: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless ``payload`` is a coherent bundle.

    Checks the schema tag, per-entry structure, path ordering, the
    family census, and that ``bundle_digest`` matches the entries it
    claims to index (the digest the dashboard page embeds).
    """
    if payload.get("schema") != LEDGER_SCHEMA:
        raise ValueError(f"not a ledger bundle (schema "
                         f"{payload.get('schema')!r}, expected "
                         f"{LEDGER_SCHEMA!r})")
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise ValueError("ledger has no entries list")
    families: Dict[str, int] = {}
    paths: List[str] = []
    for entry in entries:
        for key in ("path", "family", "digest", "summary", "document"):
            if key not in entry:
                raise ValueError(f"ledger entry missing {key!r}: "
                                 f"{entry.get('path', '?')}")
        if entry["family"] not in ARTIFACT_FAMILIES:
            raise ValueError(f"{entry['path']}: unknown family "
                             f"{entry['family']!r}")
        paths.append(entry["path"])
        families[entry["family"]] = families.get(entry["family"], 0) + 1
    if paths != sorted(paths):
        raise ValueError("ledger entries are not sorted by path")
    if len(set(paths)) != len(paths):
        raise ValueError("ledger indexes the same path twice")
    if families != payload.get("families"):
        raise ValueError("ledger family census does not match entries")
    expected = hashlib.sha256(_canonical(
        [[entry["path"], entry["digest"]] for entry in entries]
    ).encode("utf-8")).hexdigest()
    if payload.get("bundle_digest") != expected:
        raise ValueError("bundle_digest does not match the indexed "
                         "entries")


def dumps_ledger(payload: Mapping[str, Any]) -> str:
    """Canonical serialization (sorted keys, indent 2, final newline)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_ledger(payload: Mapping[str, Any], path: PathLike) -> Path:
    path = Path(path)
    path.write_text(dumps_ledger(payload), "utf-8")
    return path


def load_ledger(path: PathLike) -> Dict[str, Any]:
    """Load and validate a ledger bundle."""
    path = Path(path)
    payload = json.loads(path.read_text("utf-8"))
    validate_ledger(payload)
    return payload
