"""Observability layer: metrics, spans, profiling, and exporters.

This package is the cross-cutting measurement substrate the paper's
methodology calls for at simulator scale: span-based tracing nests
collective -> phase -> message -> link occupancy
(:mod:`repro.sim.trace` holds the span primitives; this package the
aggregation and export), a :class:`MetricsRegistry` collects counters/
gauges/histograms from the network, node, and MPI layers, and an
:class:`EngineProfiler` ranks the simulator's own hot paths.

Import note: the runtime layers (``network``, ``node``, ``mpi``)
import the leaf modules here, so this ``__init__`` must only pull in
modules with no ``repro`` dependencies beyond :mod:`repro.sim`.  The
high-level :mod:`repro.obs.capture` helper and the
:mod:`repro.obs.drift` auditor (which needs the model layer) are
deliberately *not* re-exported; import them explicitly::

    from repro.obs.capture import capture_collective
    from repro.obs.drift import audit_artifact
"""

from .critpath import (
    COMPONENTS,
    CriticalPath,
    PathStep,
    critical_path,
    critpath_rows,
    write_critpath_csv,
)
from .export import (
    chrome_trace_document,
    chrome_trace_events,
    profile_to_rows,
    spans_to_rows,
    write_chrome_trace,
    write_folded_stacks,
    write_profile_csv,
    write_spans_csv,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .perf import WORK_COUNTERS, WorkMeter
from .profiler import EngineProfiler
from .report import (
    format_engine_report,
    format_utilization_report,
    link_stats,
)
from .spans import CollectiveObserver

__all__ = [
    "COMPONENTS",
    "CollectiveObserver",
    "Counter",
    "CriticalPath",
    "EngineProfiler",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PathStep",
    "WORK_COUNTERS",
    "WorkMeter",
    "chrome_trace_document",
    "chrome_trace_events",
    "critical_path",
    "critpath_rows",
    "format_engine_report",
    "format_utilization_report",
    "link_stats",
    "profile_to_rows",
    "spans_to_rows",
    "write_chrome_trace",
    "write_critpath_csv",
    "write_folded_stacks",
    "write_profile_csv",
    "write_spans_csv",
]
