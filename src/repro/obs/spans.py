"""Collective-level span bookkeeping shared by all ranks.

Individual ranks enter and leave a collective at different simulated
times; the *operation's* extent is the envelope.  The
:class:`CollectiveObserver` (one per communicator) maintains that
envelope as spans on the machine's tracer:

* one ``collective`` span per sequence number, opened when the first
  rank enters and closed when the last rank reports completion;
* one ``phase`` span per distinct algorithm phase (the tag component
  the algorithms already agree on), parented to the collective span
  and stretched to cover every member message's delivery.

It also feeds the metrics registry the per-operation call and
phase/round counts the algorithm-tuning workflow needs, independent of
whether full span tracing is on.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..sim import Span, Tracer
from .metrics import MetricsRegistry

__all__ = ["CollectiveObserver"]


class _CollectiveState:
    """Per-sequence bookkeeping while a collective is in flight."""

    __slots__ = ("op", "nbytes", "span", "phase_spans", "phases_seen",
                 "entered")

    def __init__(self, op: str, nbytes: int, span: Optional[Span]):
        self.op = op
        self.nbytes = nbytes
        self.span = span
        self.phase_spans: Dict[int, Span] = {}
        self.phases_seen: Set[int] = set()
        self.entered = 0


class CollectiveObserver:
    """Tracks collective/phase spans and per-op metrics for one
    communicator."""

    def __init__(self, tracer: Tracer, metrics: MetricsRegistry,
                 comm_id: int):
        self.tracer = tracer
        self.metrics = metrics
        self.comm_id = comm_id
        self._states: Dict[int, _CollectiveState] = {}

    @property
    def active(self) -> bool:
        return self.tracer.enabled or self.metrics.enabled

    def enter(self, seq: int, op: str, nbytes: int, time: float) -> None:
        """One rank entered collective ``seq`` (post-serialization
        fence)."""
        if not self.active:
            return
        state = self._states.get(seq)
        if state is None:
            span = None
            if self.tracer.enabled:
                span = self.tracer.begin(
                    time, f"{op}", "collective", parent=None,
                    op=op, nbytes=nbytes, seq=seq, comm=self.comm_id)
            state = _CollectiveState(op, nbytes, span)
            self._states[seq] = state
        state.entered += 1

    def phase(self, seq: int, phase: int, time: float) -> Optional[Span]:
        """Register (and return the span of) one algorithm phase.

        Called from both the send and receive sides of collective
        messages; the returned span (or ``None`` when tracing is off)
        becomes the parent of the per-message spans.
        """
        if not self.active:
            return None
        state = self._states.get(seq)
        if state is None:
            # A phase observed without enter() means observation was
            # switched on mid-collective; track it standalone.
            state = _CollectiveState("?", 0, None)
            self._states[seq] = state
        state.phases_seen.add(phase)
        if not self.tracer.enabled:
            return None
        span = state.phase_spans.get(phase)
        if span is None:
            span = self.tracer.begin(
                time, f"{state.op} phase {phase}", "phase",
                parent=state.span, op=state.op, phase=phase, seq=seq,
                comm=self.comm_id)
            # Until a member message completes, the phase is a point.
            span.end = time
            state.phase_spans[phase] = span
        return span

    def complete(self, seq: int, time: float) -> None:
        """Every rank finished ``seq``: close spans, record metrics."""
        state = self._states.pop(seq, None)
        if state is None:
            return
        if state.span is not None:
            self.tracer.end(state.span, time,
                            phases=len(state.phases_seen))
        if self.metrics.enabled:
            self.metrics.counter(f"coll.{state.op}.calls").inc()
            self.metrics.histogram(f"coll.{state.op}.phases").observe(
                len(state.phases_seen))
