"""Engine profiler: where does the *simulator's own* wall-clock go?

Attached to an :class:`~repro.sim.Environment` via ``env.profiler``,
the profiler counts events scheduled and fired per event class and
attributes real (host) wall-clock time to the process *type* whose
callback consumed it — ``rank`` for the SPMD program bodies, ``wire``
for the transport's asynchronous wire legs, and so on, with the
trailing instance numbers stripped so the report ranks hot paths, not
individual processes.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Tuple

__all__ = ["EngineProfiler"]

#: Strips instance suffixes: ``rank-3`` -> ``rank``, ``wire-0-1`` ->
#: ``wire``.
_INSTANCE_SUFFIX = re.compile(r"[-_.]?\d+")


def _process_type(name: str) -> str:
    stripped = _INSTANCE_SUFFIX.sub("", name)
    return stripped or name


class EngineProfiler:
    """Counts and times the engine's work, grouped by type."""

    def __init__(self) -> None:
        self.events_scheduled: Dict[str, int] = {}
        self.events_fired: Dict[str, int] = {}
        #: process/callback type -> [invocations, wall-clock seconds]
        self.callback_stats: Dict[str, List[float]] = {}

    # -- hooks called by Environment ---------------------------------------
    def event_scheduled(self, event: Any) -> None:
        key = type(event).__name__
        self.events_scheduled[key] = self.events_scheduled.get(key, 0) + 1

    def event_fired(self, event: Any) -> None:
        key = type(event).__name__
        self.events_fired[key] = self.events_fired.get(key, 0) + 1

    def callback_timed(self, callback: Callable, seconds: float) -> None:
        owner = getattr(callback, "__self__", None)
        if owner is not None:
            name = getattr(owner, "name", None)
            key = _process_type(name) if isinstance(name, str) \
                else type(owner).__name__
        else:
            key = getattr(callback, "__qualname__", repr(callback))
        stats = self.callback_stats.get(key)
        if stats is None:
            self.callback_stats[key] = [1, seconds]
        else:
            stats[0] += 1
            stats[1] += seconds

    # -- reporting ----------------------------------------------------------
    @property
    def total_scheduled(self) -> int:
        return sum(self.events_scheduled.values())

    @property
    def total_fired(self) -> int:
        return sum(self.events_fired.values())

    @property
    def total_callback_seconds(self) -> float:
        return sum(s for _, s in self.callback_stats.values())

    def hottest(self, top: int = 10) -> List[Tuple[str, int, float]]:
        """``(type, invocations, seconds)`` ranked by wall-clock."""
        ranked = sorted(
            ((key, int(count), seconds)
             for key, (count, seconds) in self.callback_stats.items()),
            key=lambda item: item[2], reverse=True)
        return ranked[:top]

    def format_report(self, top: int = 10) -> str:
        lines = ["engine profile:",
                 f"  events scheduled: {self.total_scheduled}   "
                 f"fired: {self.total_fired}"]
        by_class = sorted(self.events_scheduled.items(),
                          key=lambda item: item[1], reverse=True)
        for name, count in by_class:
            fired = self.events_fired.get(name, 0)
            lines.append(f"    {name:<14s} scheduled={count:<8d} "
                         f"fired={fired}")
        total_s = self.total_callback_seconds
        lines.append(f"  callback wall-clock: {total_s * 1e3:.2f} ms "
                     f"across {len(self.callback_stats)} process types")
        for key, count, seconds in self.hottest(top):
            share = seconds / total_s if total_s else 0.0
            lines.append(f"    {key:<14s} calls={count:<8d} "
                         f"{seconds * 1e3:8.2f} ms  {share:6.1%}")
        return "\n".join(lines)
