"""Engine profiler: where does the *simulator's own* wall-clock go?

Attached to an :class:`~repro.sim.Environment` via ``env.profiler``,
the profiler counts events scheduled and fired per event class and
attributes real (host) wall-clock time to *sites*.  A site is either a
process type whose callback consumed the time — ``rank`` for the SPMD
program bodies, ``wire`` for the transport's asynchronous wire legs,
with trailing instance numbers stripped so the report ranks hot paths,
not individual processes — or a named synchronous region the runtime
layers open inside a callback (``resource.request``,
``transport.deliver``, ``fabric.route``).

Because those regions nest inside callback frames, the profiler keeps
a frame stack and splits every site's time into **cumulative** (time
with the site anywhere on the stack) and **self** (cumulative minus
time spent in nested regions).  Self times sum to the true wall-clock
spent in callbacks; cumulative answers "how expensive is everything
under this entry point".  The per-stack aggregation is also exported
in the collapsed-stack ("folded") format that ``flamegraph.pl`` and
speedscope consume — one line per unique stack, semicolon-joined,
weighted by self-time in integer microseconds.

All rankings and exports are tie-broken by site/stack name so repeated
runs of a deterministic workload produce reports that differ only in
the (inherently noisy) wall-clock figures, never in ordering.
"""

from __future__ import annotations

import re
from time import perf_counter
from typing import Any, Callable, Dict, List, Tuple

__all__ = ["EngineProfiler"]

#: Strips instance suffixes: ``rank-3`` -> ``rank``, ``wire-0-1`` ->
#: ``wire``.
_INSTANCE_SUFFIX = re.compile(r"[-_.]?\d+")


def _process_type(name: str) -> str:
    stripped = _INSTANCE_SUFFIX.sub("", name)
    return stripped or name


class EngineProfiler:
    """Counts and times the engine's work, grouped by site.

    The engine drives the profiler through three hooks:
    :meth:`event_scheduled`, :meth:`event_fired`, and the frame pair
    :meth:`enter_callback` / :meth:`leave`.  Instrumented runtime
    layers (resources, transport, fabric) open nested frames with
    :meth:`enter` / :meth:`leave` around their synchronous hot paths.
    Frames must strictly nest; the engine and all in-tree layers
    guarantee this with ``try/finally``.
    """

    def __init__(self) -> None:
        self.events_scheduled: Dict[str, int] = {}
        self.events_fired: Dict[str, int] = {}
        #: site -> [calls, cumulative seconds, self seconds]
        self.sites: Dict[str, List[float]] = {}
        #: live frames: [site, started, child seconds]
        self._stack: List[List[Any]] = []
        #: stack tuple -> [calls, self seconds]
        self._folded: Dict[Tuple[str, ...], List[float]] = {}

    def reset(self) -> None:
        """Drop all recorded data (live frames survive a mid-run reset
        so the enclosing ``leave`` calls stay balanced)."""
        self.events_scheduled.clear()
        self.events_fired.clear()
        self.sites.clear()
        self._folded.clear()

    # -- hooks called by Environment ---------------------------------------
    def event_scheduled(self, event: Any) -> None:
        key = type(event).__name__
        self.events_scheduled[key] = self.events_scheduled.get(key, 0) + 1

    def event_fired(self, event: Any) -> None:
        key = type(event).__name__
        self.events_fired[key] = self.events_fired.get(key, 0) + 1

    @staticmethod
    def _site_of(callback: Callable) -> str:
        owner = getattr(callback, "__self__", None)
        if owner is not None:
            name = getattr(owner, "name", None)
            return _process_type(name) if isinstance(name, str) \
                else type(owner).__name__
        return getattr(callback, "__qualname__", repr(callback))

    def enter_callback(self, callback: Callable) -> None:
        """Open a frame for an engine callback (site derived from the
        owning process's name, instance suffix stripped)."""
        self._stack.append([self._site_of(callback), perf_counter(), 0.0])

    def enter(self, site: str) -> None:
        """Open a named frame (instrumented synchronous region)."""
        self._stack.append([site, perf_counter(), 0.0])

    def leave(self) -> None:
        """Close the innermost frame, crediting its elapsed time."""
        site, started, child_s = self._stack.pop()
        elapsed = perf_counter() - started
        self_s = elapsed - child_s
        if self_s < 0.0:  # clock granularity underflow
            self_s = 0.0
        stats = self.sites.get(site)
        if stats is None:
            self.sites[site] = [1, elapsed, self_s]
        else:
            stats[0] += 1
            stats[1] += elapsed
            stats[2] += self_s
        if self._stack:
            self._stack[-1][2] += elapsed
            stack_key = tuple(frame[0] for frame in self._stack) + (site,)
        else:
            stack_key = (site,)
        folded = self._folded.get(stack_key)
        if folded is None:
            self._folded[stack_key] = [1, self_s]
        else:
            folded[0] += 1
            folded[1] += self_s

    def callback_timed(self, callback: Callable, seconds: float) -> None:
        """Record an externally timed callback (legacy hook; frames
        recorded this way have no children, so self == cumulative)."""
        site = self._site_of(callback)
        stats = self.sites.get(site)
        if stats is None:
            self.sites[site] = [1, seconds, seconds]
        else:
            stats[0] += 1
            stats[1] += seconds
            stats[2] += seconds
        folded = self._folded.get((site,))
        if folded is None:
            self._folded[(site,)] = [1, seconds]
        else:
            folded[0] += 1
            folded[1] += seconds

    # -- reporting ----------------------------------------------------------
    @property
    def callback_stats(self) -> Dict[str, List[float]]:
        """Site -> ``[invocations, cumulative seconds]`` (legacy view)."""
        return {site: [int(calls), cum_s]
                for site, (calls, cum_s, _self_s) in self.sites.items()}

    @property
    def total_scheduled(self) -> int:
        return sum(self.events_scheduled.values())

    @property
    def total_fired(self) -> int:
        return sum(self.events_fired.values())

    @property
    def total_callback_seconds(self) -> float:
        """True wall-clock spent in callbacks: the sum of self times
        (cumulative times would double-count nested regions)."""
        return sum(self_s for _, _, self_s in self.sites.values())

    def rankings(self) -> List[Tuple[str, int, float, float]]:
        """``(site, calls, cumulative_s, self_s)`` hot-path ranking.

        Sorted by cumulative seconds descending, then self seconds
        descending, then site name — so equal-cost sites always appear
        in the same (alphabetical) order.
        """
        return sorted(
            ((site, int(calls), cum_s, self_s)
             for site, (calls, cum_s, self_s) in self.sites.items()),
            key=lambda item: (-item[2], -item[3], item[0]))

    def hottest(self, top: int = 10) -> List[Tuple[str, int, float]]:
        """``(site, invocations, cumulative seconds)`` ranked by
        wall-clock, deterministically tie-broken by site name."""
        return [(site, calls, cum_s)
                for site, calls, cum_s, _self_s in self.rankings()[:top]]

    def folded_lines(self) -> List[str]:
        """Collapsed-stack export: ``root;child;leaf <usec>`` lines.

        The weight is the stack's total self-time in integer
        microseconds.  Lines are sorted lexicographically, so two
        profiles of the same workload fold to the same stack order.
        Feed to ``flamegraph.pl`` or import into speedscope as-is.
        """
        return [f"{';'.join(stack)} {int(round(self_s * 1e6))}"
                for stack, (_calls, self_s) in sorted(self._folded.items())]

    def format_report(self, top: int = 10) -> str:
        from .report import format_engine_report
        return format_engine_report(self, top=top)
