"""Metrics registry: counters, gauges, and log2-bucket histograms.

The registry follows the :class:`~repro.sim.Tracer` convention: it
always exists (every :class:`~repro.machines.Machine` owns one) but is
disabled by default, and instrumented code guards each update with the
single ``registry.enabled`` check so the hot paths stay flat when
nobody is measuring.

Instruments are identified by dotted names (``fabric.transfers``,
``nic.tx.queue_depth``) and created on first use, so layers never need
to pre-register what they record.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Histogram buckets are powers of two: bucket ``i`` (i >= 1) counts
#: observations in ``[2**(i-1), 2**i)``; bucket 0 counts values < 1.
HISTOGRAM_BUCKETS = 32


class Counter:
    """A monotonically increasing count (events, bytes, stalls)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """An instantaneous level with a high-water mark (queue depths)."""

    __slots__ = ("name", "value", "high_water", "samples")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.high_water = 0.0
        self.samples = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value
        self.samples += 1

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount
        self.samples += 1

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value,
                "high_water": self.high_water, "samples": self.samples}


class Histogram:
    """Distribution sketch over fixed log2 buckets.

    Bucket 0 holds observations below 1; bucket ``i`` holds
    ``[2**(i-1), 2**i)``.  Fixed bucket bounds keep ``observe`` O(1)
    and make histograms from different runs directly comparable.
    """

    __slots__ = ("name", "counts", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.counts: List[int] = [0] * HISTOGRAM_BUCKETS
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative observation {value} for "
                             f"{self.name}")
        index = min(int(value).bit_length(), HISTOGRAM_BUCKETS - 1)
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def nonzero_buckets(self) -> List[tuple]:
        """``(upper_bound, count)`` for populated buckets, ascending."""
        return [(2 ** index if index else 1, count)
                for index, count in enumerate(self.counts) if count]

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "histogram", "count": self.count,
                "sum": self.total, "mean": self.mean,
                "min": self.min, "max": self.max,
                "buckets": self.nonzero_buckets()}


class MetricsRegistry:
    """Named instruments, created on first use, snapshot on demand."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, kind: type) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def clear(self) -> None:
        self._instruments.clear()

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All instruments as plain dicts (JSON-serializable)."""
        return {name: self._instruments[name].snapshot()
                for name in self.names()}

    def format_report(self) -> str:
        """Human-readable dump of every instrument."""
        if not self._instruments:
            return "metrics: (none recorded)"
        lines = ["metrics:"]
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                lines.append(f"  {name:<34s} {instrument.value}")
            elif isinstance(instrument, Gauge):
                lines.append(f"  {name:<34s} now={instrument.value:g} "
                             f"high-water={instrument.high_water:g}")
            else:
                lines.append(
                    f"  {name:<34s} n={instrument.count} "
                    f"mean={instrument.mean:.2f} "
                    f"max={0.0 if instrument.max is None else instrument.max:.2f}")
        return "\n".join(lines)
